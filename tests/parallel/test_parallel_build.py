"""Parallel-vs-serial equivalence of the partitioned offline build.

The central property: for every worker count and partition count, the
partitioned build (:mod:`repro.parallel`) must produce a store that is
**bit-identical** to the serial build's — same TID assignment, same
``TopInfo``/``AllTops``/``LeftTops``/``ExcpTops`` contents *and row
order* — and a system built from it must answer every one of the nine
query methods identically.
"""

from __future__ import annotations

import pytest

from repro.biozon import BiozonConfig, generate
from repro.core import (
    ALL_METHOD_NAMES,
    AttributeConstraint,
    KeywordConstraint,
    NoConstraint,
    TopologyQuery,
    TopologySearchSystem,
)
from repro.core.alltops import compute_alltops
from repro.errors import TopologyError
from repro.parallel import (
    DEFAULT_PARTITIONS_PER_WORKER,
    compute_alltops_parallel,
    partition_histogram,
    partition_sources,
    stable_partition,
)

# Includes an unordered (same-type) pair to cover the a<b orientation
# dedup in the partitioned path.
STORE_PAIRS = [("Protein", "DNA"), ("Protein", "Interaction"), ("Protein", "Protein")]
SYSTEM_PAIRS = [("Protein", "DNA"), ("Protein", "Interaction")]
MAX_LENGTH = 3

EXHAUSTIVE_METHODS = ("sql", "full-top", "fast-top")


# ----------------------------------------------------------------------
# Partitioning
# ----------------------------------------------------------------------
class TestStablePartition:
    def test_deterministic_and_in_range(self):
        for node_id in (0, 1, 17, 10**12, "P1", "", (1, "x"), b"raw"):
            for n in (1, 2, 3, 7, 64):
                first = stable_partition(node_id, n)
                assert 0 <= first < n
                assert stable_partition(node_id, n) == first

    def test_type_discrimination(self):
        # 1, "1", True, b"1" are distinct ids; their encodings must
        # differ (buckets *may* collide, encodings may not).
        from repro.parallel.partition import _canonical_bytes

        encodings = {_canonical_bytes(v) for v in (1, "1", True, b"1")}
        assert len(encodings) == 4

    def test_buckets_partition_the_sources(self):
        sources = list(range(1000, 1100)) + [f"s{i}" for i in range(50)]
        buckets = partition_sources(sources, 7)
        flattened = [x for bucket in buckets.values() for x in bucket]
        assert len(flattened) == len(sources)
        assert set(flattened) == set(sources)
        # Order inside each bucket preserves the input order.
        for bucket in buckets.values():
            positions = [sources.index(x) for x in bucket]
            assert positions == sorted(positions)
        assert sum(partition_histogram(sources, 7)) == len(sources)

    def test_rejects_bad_partition_count(self):
        with pytest.raises(TopologyError):
            stable_partition(1, 0)


# ----------------------------------------------------------------------
# Store-level bit identity
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def graph(tiny_dataset):
    return tiny_dataset.graph()


@pytest.fixture(scope="module")
def serial_store(graph):
    store, _ = compute_alltops(graph, STORE_PAIRS, MAX_LENGTH)
    return store


class TestStoreEquivalence:
    @pytest.mark.parametrize(
        "workers,partitions",
        [(2, 1), (2, 2), (2, 5), (2, None), (4, 3), (4, 4), (4, 9)],
    )
    def test_bit_identical_store(self, graph, serial_store, workers, partitions):
        store, report, parallel_report = compute_alltops_parallel(
            graph,
            STORE_PAIRS,
            MAX_LENGTH,
            workers=workers,
            partitions=partitions,
        )
        assert store.state_digest() == serial_store.state_digest()
        # Row order — not just contents — must match the serial build.
        assert store.alltops_rows == serial_store.alltops_rows
        assert list(store.topologies) == list(serial_store.topologies)
        assert parallel_report.workers == workers
        expected_partitions = (
            partitions if partitions is not None else parallel_report.partitions
        )
        assert len(parallel_report.tasks) == expected_partitions * len(STORE_PAIRS)

    def test_full_state_equality(self, graph, serial_store):
        store, _, _ = compute_alltops_parallel(
            graph, STORE_PAIRS, MAX_LENGTH, workers=2, partitions=3
        )
        assert store.export_state() == serial_store.export_state()

    def test_report_matches_serial(self, graph, serial_store):
        _, serial_report = compute_alltops(graph, STORE_PAIRS, MAX_LENGTH)
        _, report, parallel_report = compute_alltops_parallel(
            graph, STORE_PAIRS, MAX_LENGTH, workers=2, partitions=4
        )
        assert report.pairs_related == serial_report.pairs_related
        assert report.alltops_rows == serial_report.alltops_rows
        assert report.distinct_topologies == serial_report.distinct_topologies
        assert report.truncated_pairs == serial_report.truncated_pairs
        # Every source of every pair was scanned by exactly one task.
        by_pair = {}
        for task in parallel_report.tasks:
            by_pair[task.pair_index] = by_pair.get(task.pair_index, 0) + task.sources_scanned
        from repro.core.alltops import nodes_by_type

        by_type = nodes_by_type(graph)
        for pair_index, (es1, _) in enumerate(STORE_PAIRS):
            assert by_pair[pair_index] == len(by_type.get(es1, []))

    def test_truncation_caps_agree(self, graph):
        """Caps bite identically in serial and partitioned builds."""
        kwargs = dict(combination_cap=2, per_pair_path_limit=3)
        serial, _ = compute_alltops(graph, STORE_PAIRS, MAX_LENGTH, **kwargs)
        parallel, _, _ = compute_alltops_parallel(
            graph, STORE_PAIRS, MAX_LENGTH, workers=2, partitions=3, **kwargs
        )
        assert serial.truncated_pairs > 0  # the tightened caps actually bit
        assert parallel.state_digest() == serial.state_digest()

    def test_spawn_start_method_identical(self, graph, serial_store):
        """The pickled-payload path (spawn workers inherit nothing)
        produces the same bits as the fork copy-on-write path."""
        store, _, parallel_report = compute_alltops_parallel(
            graph,
            STORE_PAIRS,
            MAX_LENGTH,
            workers=2,
            partitions=2,
            start_method="spawn",
        )
        assert parallel_report.start_method == "spawn"
        assert store.state_digest() == serial_store.state_digest()

    def test_unknown_start_method_rejected(self, graph):
        with pytest.raises(TopologyError):
            compute_alltops_parallel(
                graph, STORE_PAIRS, MAX_LENGTH, workers=2,
                start_method="no-such-method",
            )

    def test_duplicate_pairs_rejected(self, graph):
        with pytest.raises(TopologyError):
            compute_alltops_parallel(
                graph,
                [("Protein", "DNA"), ("DNA", "Protein")],
                MAX_LENGTH,
                workers=2,
            )

    def test_bad_worker_count_rejected(self, graph):
        with pytest.raises(TopologyError):
            compute_alltops_parallel(graph, STORE_PAIRS, MAX_LENGTH, workers=0)


# ----------------------------------------------------------------------
# System-level: all nine query methods answer identically
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def serial_system():
    ds = generate(BiozonConfig.tiny(seed=3))
    system = TopologySearchSystem(ds.database, ds.graph())
    system.build(SYSTEM_PAIRS, max_length=MAX_LENGTH)
    return system


@pytest.fixture(scope="module")
def parallel_system():
    # Same seed, fresh dataset object: nothing shared with the serial
    # system except the (deterministic) generator inputs.
    ds = generate(BiozonConfig.tiny(seed=3))
    system = TopologySearchSystem(ds.database, ds.graph())
    system.build(SYSTEM_PAIRS, max_length=MAX_LENGTH, parallel=2, partitions=5)
    return system


def _queries_for(method: str):
    if method in EXHAUSTIVE_METHODS:
        return [
            TopologyQuery(
                "Protein", "DNA",
                KeywordConstraint("DESC", "kinase"),
                AttributeConstraint("TYPE", "mRNA"),
            ),
            # Reversed orientation relative to the build pair list.
            TopologyQuery(
                "DNA", "Protein",
                AttributeConstraint("TYPE", "EST"),
                NoConstraint(),
            ),
        ]
    return [
        TopologyQuery(
            "Protein", "DNA",
            KeywordConstraint("DESC", "human"),
            NoConstraint(),
            k=5, ranking="freq",
        ),
        TopologyQuery(
            "Interaction", "Protein",
            NoConstraint(),
            KeywordConstraint("DESC", "binding"),
            k=3, ranking="rare",
        ),
    ]


class TestNineMethodsEquivalence:
    def test_stores_identical(self, serial_system, parallel_system):
        assert (
            parallel_system.store.state_digest()
            == serial_system.store.state_digest()
        )
        assert (
            parallel_system.store.lefttops_rows
            == serial_system.store.lefttops_rows
        )
        assert (
            parallel_system.store.excptops_rows
            == serial_system.store.excptops_rows
        )

    @pytest.mark.parametrize("method", ALL_METHOD_NAMES)
    def test_method_answers_identical(self, serial_system, parallel_system, method):
        for query in _queries_for(method):
            serial = serial_system.search(query, method=method)
            parallel = parallel_system.search(query, method=method)
            assert serial.tids == parallel.tids, (method, query.describe())
            assert serial.scores == parallel.scores, (method, query.describe())


# ----------------------------------------------------------------------
# Engine / persistence / service wiring
# ----------------------------------------------------------------------
class TestWiring:
    def test_build_report_parallel_section(self, parallel_system):
        report = parallel_system.build_report
        assert report.parallel is not None
        assert report.parallel.workers == 2
        assert report.parallel.partitions == 5
        assert report.parallel.merge_seconds >= 0.0
        assert report.parallel.worker_seconds_total > 0.0
        assert report.parallel.partition_skew() >= 1.0

    def test_negative_parallel_rejected(self):
        ds = generate(BiozonConfig.tiny(seed=3))
        system = TopologySearchSystem(ds.database, ds.graph())
        with pytest.raises(TopologyError):
            system.build(SYSTEM_PAIRS, max_length=MAX_LENGTH, parallel=-4)

    def test_serial_build_has_no_parallel_section(self, serial_system):
        assert serial_system.build_report.parallel is None
        assert serial_system.build_config["parallel"] == 0

    def test_build_config_recorded(self, parallel_system):
        config = parallel_system.build_config
        assert config["parallel"] == 2
        assert config["partitions"] == 5
        assert config["max_length"] == MAX_LENGTH

    def test_snapshot_round_trips_build_config(self, parallel_system, tmp_path):
        from repro.persist import load_system, save_system, snapshot_info

        path = tmp_path / "parallel.topo"
        save_system(parallel_system, path)
        assert snapshot_info(path).build_config == parallel_system.build_config
        loaded = load_system(path)
        assert loaded.build_config == parallel_system.build_config
        assert (
            loaded.store.state_digest()
            == parallel_system.store.state_digest()
        )

    def test_service_rebuild_reuses_parallel_config(self):
        from repro.service import TopologyService

        ds = generate(BiozonConfig.tiny(seed=3))
        system = TopologySearchSystem(ds.database, ds.graph())
        system.build(SYSTEM_PAIRS, max_length=MAX_LENGTH, parallel=2, partitions=3)
        service = TopologyService(system)

        query = TopologyQuery(
            "Protein", "DNA",
            KeywordConstraint("DESC", "kinase"),
            NoConstraint(),
            k=5, ranking="freq",
        )
        before = service.query(query)
        assert service.cache_stats().size == 1

        report = service.rebuild()
        # The recorded configuration is reused without re-specifying it...
        assert report.parallel is not None
        assert report.parallel.workers == 2
        assert report.parallel.partitions == 3
        # ...and the rebuild invalidated the cache (generation bump).
        assert service.cache_stats().size == 0
        after = service.query(query)
        assert after.tids == before.tids
        # An explicit override still wins over the recorded config, and
        # the recorded partition count (resolved for the old worker
        # count) is NOT carried along with it — the new build derives
        # its own default instead of starving the new pool.
        report = service.rebuild(parallel=4)
        assert report.parallel.workers == 4
        assert report.parallel.partitions == 4 * DEFAULT_PARTITIONS_PER_WORKER
        report = service.rebuild(parallel=0)
        assert report.parallel is None
