"""Golden vectors pinning ``stable_partition`` — the shard routing rule.

The sharded store (``repro.shard``, scheme ``crc32-e1/v1``) routes every
AllTops/LeftTops/pair row by ``stable_partition(e1, num_shards)``.  That
makes the function's exact outputs a *persistence format*: a snapshot
set split under one mapping must be read back under the same mapping
forever.  These vectors were computed once from the CRC-32 definition
and must never change — a failure here means existing shard sets on
disk would be misrouted, and the scheme id must be bumped instead.
"""

from __future__ import annotations

import pytest

from repro.errors import TopologyError
from repro.parallel.partition import stable_partition
from repro.shard import SHARD_SCHEME, shard_of

#: The pinned id sample: every supported id type, including the
#: type-tag collision traps (1 vs True vs "1", b"" vs "").
GOLDEN_IDS = (
    0,
    1,
    7,
    42,
    -3,
    10**12,
    True,
    False,
    "P1",
    "protein-42",
    "",
    "1",
    b"P1",
    b"",
    ("Protein", 7),
    ("a", "b"),
)

#: num_partitions -> expected bucket per GOLDEN_IDS entry.  Computed
#: from crc32(tagged-bytes) % n; see module docstring before touching.
GOLDEN_BUCKETS = {
    2: (0, 0, 1, 0, 0, 0, 1, 1, 0, 0, 0, 0, 0, 0, 0, 0),
    3: (2, 0, 0, 2, 2, 2, 0, 2, 2, 0, 0, 2, 1, 1, 1, 2),
    4: (0, 2, 3, 0, 2, 2, 3, 1, 2, 2, 0, 0, 2, 2, 0, 0),
    8: (0, 6, 3, 4, 2, 6, 7, 1, 6, 6, 0, 0, 2, 2, 0, 4),
}


@pytest.mark.parametrize("num_partitions", sorted(GOLDEN_BUCKETS))
def test_golden_vectors(num_partitions):
    got = tuple(stable_partition(i, num_partitions) for i in GOLDEN_IDS)
    assert got == GOLDEN_BUCKETS[num_partitions]


def test_shard_of_is_stable_partition():
    """The shard router must be the partitioner, not a reimplementation:
    shard sets and partitioned builds agree bucket-for-bucket."""
    for node_id in GOLDEN_IDS:
        for n in (2, 3, 4, 8):
            assert shard_of(node_id, n) == stable_partition(node_id, n)


def test_scheme_id_matches_pinned_mapping():
    """The scheme id names this exact mapping; changing the mapping
    without bumping the id would corrupt on-disk shard sets."""
    assert SHARD_SCHEME == "crc32-e1/v1"


def test_type_tags_discriminate():
    """1, True and "1" are different nodes; the encoding must be free
    to separate them (and does, at these counts)."""
    assert stable_partition(1, 8) != stable_partition(True, 8)
    assert stable_partition(1, 3) != stable_partition("1", 3)
    assert stable_partition(b"", 3) != stable_partition("", 3)


def test_single_partition_and_bad_counts():
    assert stable_partition("anything", 1) == 0
    with pytest.raises(TopologyError):
        stable_partition("anything", 0)
