"""Concurrency stress: many threads, one server, exact counters.

Three claims are hammered here:

1. **Exactness** — under a repeated-shape workload from >= 8 threads,
   the result-cache and plan-cache counters obey their invariants
   *exactly* (no lost updates), and single-flight means each distinct
   key executes exactly once.
2. **Correctness** — every concurrent result is identical to a
   single-threaded oracle run on an identically built system.
3. **Generation consistency** — with hot rebuilds racing the traffic,
   every result matches one generation's oracle answer exactly; no
   result ever mixes two generations.
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.biozon import BiozonConfig, generate
from repro.core import (
    AttributeConstraint,
    KeywordConstraint,
    TopologyQuery,
    TopologySearchSystem,
)
from repro.service import TopologyServer

THREADS = 8
REPEATS = 25


def make_query(keyword: str = "kinase", k: int = 4):
    return TopologyQuery(
        "Protein",
        "DNA",
        KeywordConstraint("DESC", keyword),
        AttributeConstraint("TYPE", "mRNA"),
        k=k,
        ranking="rare",
    )


WORKLOAD = [
    make_query(keyword, k)
    for keyword in ("kinase", "binding", "human", "receptor")
    for k in (2, 4, 8)
]


@pytest.fixture(scope="module")
def oracle_system(tiny_system):
    """An identically built private system: the single-threaded oracle.

    Built via clone_base() + build(), which PR 2's determinism contract
    guarantees is bit-identical — and it keeps the oracle's executions
    out of the server system's plan-cache/calibrator counters."""
    clone = tiny_system.clone_base()
    clone.build(list(tiny_system.built_pairs), max_length=tiny_system.max_length)
    return clone


def hammer(server, workload, threads=THREADS, repeats=REPEATS):
    """Each thread walks the workload at its own offset, ``repeats``
    times; returns every (query, tids) observed plus raised errors."""
    observed = []
    errors = []
    lock = threading.Lock()
    barrier = threading.Barrier(threads)

    def worker(offset: int) -> None:
        try:
            barrier.wait()
            local = []
            for i in range(repeats * len(workload)):
                query = workload[(offset + i) % len(workload)]
                result = server.query(query)
                local.append((query, tuple(result.tids), result.generation))
            with lock:
                observed.extend(local)
        except Exception as error:  # pragma: no cover - failure reporting
            with lock:
                errors.append(error)

    pool = [threading.Thread(target=worker, args=(n,)) for n in range(threads)]
    for thread in pool:
        thread.start()
    for thread in pool:
        thread.join()
    return observed, errors


class TestExactCountersUnderContention:
    def test_repeated_shape_workload_counters_and_oracle(self, oracle_system):
        oracle = {q: tuple(oracle_system.search(q).tids) for q in WORKLOAD}
        # A private serving system so counters start at zero.
        serving = oracle_system.clone_base()
        serving.build(
            list(oracle_system.built_pairs), max_length=oracle_system.max_length
        )
        with TopologyServer(serving) as server:
            observed, errors = hammer(server, WORKLOAD)
            stats = server.stats()

        assert errors == []
        total = THREADS * REPEATS * len(WORKLOAD)
        assert len(observed) == total

        # Correctness: every concurrent answer equals the oracle's.
        for query, tids, generation in observed:
            assert tids == oracle[query]
            assert generation == 1

        # Exact counters: nothing lost under contention.
        assert stats.requests == total
        cache = stats.result_cache
        assert cache.hits + cache.misses == stats.requests
        assert cache.misses == stats.executions + stats.coalesced
        # Single-flight + cache: each distinct key ran exactly once.
        assert stats.executions == len(WORKLOAD)
        assert stats.failures == 0
        assert stats.in_flight == 0

        # Plan cache: one lookup per engine execution, all accounted.
        # (invalidations may be nonzero: calibration feedback from the
        # executions can bump the calibrator version mid-run, evicting
        # now-stale plans — that is the design, not a lost update.)
        plan = stats.plan_cache
        assert plan.hits + plan.misses == stats.executions

        # Latency accounting saw exactly the engine executions.
        counts = sum(s["count"] for s in server.latency_stats().values())
        assert counts == stats.executions

    def test_single_flight_coalesces_a_thundering_herd(self, oracle_system):
        serving = oracle_system.clone_base()
        serving.build(
            list(oracle_system.built_pairs), max_length=oracle_system.max_length
        )
        query = make_query("kinase", 8)
        herd = 12
        barrier = threading.Barrier(herd)

        with TopologyServer(serving) as server:

            def rush():
                barrier.wait()
                return server.query(query)

            with ThreadPoolExecutor(max_workers=herd) as pool:
                results = list(pool.map(lambda _: rush(), range(herd)))
            stats = server.stats()

        assert len({tuple(r.tids) for r in results}) == 1
        # Exactly one execution; every other request either coalesced
        # onto it or arrived after it was cached.
        assert stats.executions == 1
        assert stats.coalesced + stats.result_cache.hits == herd - 1
        assert stats.requests == herd

    def test_work_attribution_is_per_thread(self, oracle_system):
        """Concurrent executions report the same per-query work counters
        as a single-threaded run: thread-local ExecStats means one
        query's counters never bleed into another's.

        Calibration is disabled on both systems so every run picks the
        same plan — otherwise differing calibration trajectories change
        strategies, and with them the (legitimately different) work."""
        reference = oracle_system.clone_base()
        reference.build(
            list(oracle_system.built_pairs), max_length=oracle_system.max_length
        )
        reference.calibration_enabled = False
        expected = {q: reference.search(q).work for q in WORKLOAD}
        serving = oracle_system.clone_base()
        serving.build(
            list(oracle_system.built_pairs), max_length=oracle_system.max_length
        )
        serving.calibration_enabled = False
        with TopologyServer(serving) as server:
            with ThreadPoolExecutor(max_workers=THREADS) as pool:
                results = list(pool.map(server.query, WORKLOAD))
        for result in results:
            assert result.work == expected[result.query]


class TestPerThreadExecStats:
    def test_totals_conserved_and_dead_buckets_retired(self, oracle_system):
        """Short-lived threads (thread-per-request style) must not grow
        the per-thread bucket list without bound, and their work must
        survive into the totals after they die."""
        database = oracle_system.database
        database.reset_all_stats()
        query = make_query("kinase", 4)

        def one_shot() -> None:
            oracle_system.search(query)

        for _ in range(6):
            thread = threading.Thread(target=one_shot)
            thread.start()
            thread.join()
        totals_before = database.stats_totals()
        assert totals_before["rows_scanned"] > 0
        # Touching stats from a fresh thread retires the dead buckets...
        prober = threading.Thread(target=lambda: database.stats)
        prober.start()
        prober.join()
        with database._stats_lock:
            live = len(database._stats_buckets)
        assert live <= 2  # this thread + (at most) the just-dead prober
        # ...without losing any completed work.
        assert database.stats_totals() == totals_before


class TestRebuildUnderLoad:
    """Hot rebuilds race live traffic; every result must be entirely
    from one generation.  The two build configurations produce
    *different* answers for every workload query (checked), so a torn
    read — half old store, half new — cannot masquerade as a valid
    result."""

    CONFIGS = {0: {"per_pair_path_limit": None}, 1: {"per_pair_path_limit": 1}}

    @pytest.fixture()
    def private_server(self):
        dataset = generate(BiozonConfig.tiny(seed=3))
        system = TopologySearchSystem(dataset.database, dataset.graph())
        system.build(
            [("Protein", "DNA"), ("Protein", "Interaction")], max_length=3
        )
        with TopologyServer(system) as server:
            yield server

    def test_only_generation_consistent_results(self, private_server):
        server = private_server
        workload = WORKLOAD[:6]
        # Generation oracles, computed on the serving system while it is
        # the stable current generation (reads are thread-safe).
        oracles = {}

        def snapshot_oracle():
            oracles[server.generation] = {
                q: tuple(server.system.search(q).tids) for q in workload
            }

        snapshot_oracle()
        stop = threading.Event()
        observed = []
        errors = []
        lock = threading.Lock()

        def reader(offset: int) -> None:
            try:
                i = 0
                while not stop.is_set():
                    query = workload[(offset + i) % len(workload)]
                    result = server.query(query)
                    with lock:
                        observed.append(
                            (result.generation, query, tuple(result.tids))
                        )
                    i += 1
            except Exception as error:  # pragma: no cover
                with lock:
                    errors.append(error)

        threads = [
            threading.Thread(target=reader, args=(n,)) for n in range(THREADS)
        ]
        for thread in threads:
            thread.start()
        try:
            for round_number in range(3):
                server.rebuild(**self.CONFIGS[(round_number + 1) % 2])
                snapshot_oracle()
        finally:
            stop.set()
            for thread in threads:
                thread.join()

        assert errors == []
        assert len(oracles) == 4  # initial + three rebuilds
        # The alternating configs genuinely disagree — otherwise this
        # test could not detect a mixed-generation answer.
        assert oracles[1] != oracles[2]

        inconsistent = [
            (generation, query, tids)
            for generation, query, tids in observed
            if oracles[generation][query] != tids
        ]
        assert inconsistent == []
        assert {generation for generation, _, _ in observed} <= set(oracles)

        stats = server.stats()
        assert stats.rebuilds == 3
        assert stats.requests == len(observed)
        assert stats.result_cache.hits + stats.result_cache.misses == stats.requests
        assert stats.result_cache.misses == stats.executions + stats.coalesced


class TestLRUCacheFalsyHitsUnderContention:
    """The MISSING-sentinel hit protocol must survive the 8-thread
    stress treatment: a cached falsy value (None, 0, empty list, empty
    string) is a *hit* on every thread, every time — presence of the
    key decides hit vs. miss, never truthiness of the value — and the
    hit/miss counters stay exact (no lost updates) while readers race
    writers refreshing the same falsy entries."""

    FALSY = {f"key{i}": value for i, value in enumerate((None, 0, [], "", False))}

    def test_falsy_values_always_hit_with_exact_counters(self):
        from repro.service import MISSING, LRUCache

        cache = LRUCache(capacity=64)
        for key, value in self.FALSY.items():
            cache.put(key, value)

        rounds = 200
        keys = sorted(self.FALSY)
        wrong = []
        lock = threading.Lock()
        barrier = threading.Barrier(THREADS)

        def worker(offset: int) -> None:
            barrier.wait()
            local = []
            for i in range(rounds):
                key = keys[(offset + i) % len(keys)]
                got = cache.get(key, MISSING)
                if got is MISSING:
                    local.append((key, "reported miss"))
                elif got != self.FALSY[key]:
                    local.append((key, got))
                # Writers race readers: re-putting the same falsy value
                # must never turn a present key into a miss.
                if i % 7 == offset % 7:
                    cache.put(key, self.FALSY[key])
            with lock:
                wrong.extend(local)

        pool = [threading.Thread(target=worker, args=(n,)) for n in range(THREADS)]
        for thread in pool:
            thread.start()
        for thread in pool:
            thread.join()

        assert wrong == []
        stats = cache.stats()
        assert stats.hits == THREADS * rounds  # exact: every get was a hit
        assert stats.misses == 0
        assert stats.hit_rate == 1.0
        # The sentinel itself never leaks into storage.
        assert all(cache.get(k, MISSING) is not MISSING for k in keys)
