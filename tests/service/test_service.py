"""TopologyService: LRU caching, invalidation, batching, latency."""

from __future__ import annotations

import pytest

from repro.biozon import BiozonConfig, generate
from repro.core import (
    AttributeConstraint,
    KeywordConstraint,
    NoConstraint,
    TopologyQuery,
    TopologySearchSystem,
)
from repro.service import CacheStats, LRUCache, TopologyService


def make_query(keyword: str = "kinase", k: int = 4, ranking: str = "rare"):
    return TopologyQuery(
        "Protein",
        "DNA",
        KeywordConstraint("DESC", keyword),
        AttributeConstraint("TYPE", "mRNA"),
        k=k,
        ranking=ranking,
    )


@pytest.fixture()
def mutable_system():
    """A private system (the session fixtures are shared read-only)."""
    ds = generate(BiozonConfig.tiny(seed=5))
    system = TopologySearchSystem(ds.database, ds.graph())
    system.build([("Protein", "DNA")], max_length=3)
    return system


class TestLRUCache:
    def test_put_get_and_counters(self):
        cache = LRUCache(capacity=2)
        assert cache.get("a") is None  # relint: disable=R3 (asserting the documented None default for a fresh cache)
        cache.put("a", 1)
        assert cache.get("a") == 1
        stats = cache.stats()
        assert (stats.hits, stats.misses, stats.size) == (1, 1, 1)
        assert stats.hit_rate == 0.5

    def test_eviction_is_least_recently_used(self):
        cache = LRUCache(capacity=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")          # refresh "a": "b" is now LRU
        cache.put("c", 3)
        assert "a" in cache and "c" in cache
        assert "b" not in cache

    def test_clear_preserves_counters(self):
        cache = LRUCache(capacity=4)
        cache.put("a", 1)
        cache.get("a")
        cache.clear()
        assert len(cache) == 0
        assert cache.stats().hits == 1

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            LRUCache(capacity=0)

    def test_idle_hit_rate(self):
        assert CacheStats(hits=0, misses=0, size=0, capacity=1).hit_rate == 0.0


class TestServiceCaching:
    def test_repeat_query_served_from_cache(self, tiny_system):
        service = TopologyService(tiny_system)
        query = make_query()
        first = service.query(query)
        second = service.query(query)
        assert second is first  # the very same result object
        stats = service.cache_stats()
        assert (stats.hits, stats.misses) == (1, 1)

    def test_cache_key_covers_method_k_and_ranking(self, tiny_system):
        service = TopologyService(tiny_system)
        base = make_query()
        service.query(base)
        service.query(base, method="full-top-k")       # different method
        service.query(make_query(k=2))                 # different k
        service.query(make_query(ranking="freq"))      # different ranking
        service.query(make_query(keyword="binding"))   # different constraint
        stats = service.cache_stats()
        assert stats.hits == 0
        assert stats.misses == 5

    def test_method_name_is_case_insensitive(self, tiny_system):
        service = TopologyService(tiny_system)
        query = make_query()
        service.query(query, method="Fast-Top-K-Opt")
        service.query(query, method="fast-top-k-opt")
        assert service.cache_stats().hits == 1

    def test_query_many_deduplicates(self, tiny_system):
        service = TopologyService(tiny_system)
        q1, q2 = make_query(), make_query(keyword="binding")
        results = service.query_many([q1, q2, q1, q2, q1])
        assert len(results) == 5
        assert results[0] is results[2] is results[4]
        stats = service.cache_stats()
        assert stats.misses == 2
        assert stats.hits == 3

    def test_lru_eviction_in_service(self, tiny_system):
        service = TopologyService(tiny_system, cache_size=2)
        queries = [make_query(k) for k in ("kinase", "binding", "human")]
        for q in queries:
            service.query(q)
        service.query(queries[0])  # evicted by the third insert
        assert service.cache_stats().misses == 4

    def test_correct_results_under_caching(self, tiny_system):
        service = TopologyService(tiny_system)
        query = make_query()
        direct = tiny_system.search(query, method="fast-top-k-opt")
        assert service.query(query).tids == direct.tids
        assert service.query(query).tids == direct.tids


class TestInvalidation:
    def test_rebuild_through_service_invalidates(self, mutable_system):
        service = TopologyService(mutable_system)
        query = make_query()
        before = service.query(query)
        report = service.rebuild()
        assert report.alltops.distinct_topologies > 0
        after = service.query(query)
        assert after is not before
        assert after.tids == before.tids  # same data -> same answer
        assert service.cache_stats().hits == 0

    def test_rebuild_reuses_built_pairs(self, mutable_system):
        service = TopologyService(mutable_system)
        service.rebuild()
        assert mutable_system.built_pairs == [("Protein", "DNA")]

    def test_rebuild_preserves_max_length(self):
        ds = generate(BiozonConfig.tiny(seed=9))
        system = TopologySearchSystem(ds.database, ds.graph())
        system.build([("Protein", "DNA")], max_length=2)
        service = TopologyService(system)
        query = make_query()  # default max_length=3 -> must be rejected
        service.rebuild()
        assert system.max_length == 2  # not reset to build()'s default 3
        service.rebuild(max_length=3)  # explicit override still wins
        assert system.max_length == 3
        assert service.query(query).tids is not None

    def test_external_rebuild_detected(self, mutable_system):
        service = TopologyService(mutable_system)
        query = make_query()
        before = service.query(query)
        mutable_system.build([("Protein", "DNA")], max_length=3)
        after = service.query(query)
        assert after is not before
        assert service.cache_stats().hits == 0

    def test_explicit_invalidate(self, tiny_system):
        service = TopologyService(tiny_system)
        query = make_query()
        service.query(query)
        service.invalidate()
        assert service.cache_stats().size == 0
        service.query(query)
        assert service.cache_stats().misses == 2


class TestLatencyStats:
    def test_only_engine_executions_are_recorded(self, tiny_system):
        service = TopologyService(tiny_system)
        query = make_query()
        for _ in range(5):
            service.query(query)
        stats = service.latency_stats()["fast-top-k-opt"]
        assert stats["count"] == 1  # four cache hits
        assert stats["mean_seconds"] > 0
        assert stats["min_seconds"] <= stats["p50_seconds"] <= stats["max_seconds"]

    def test_per_method_breakdown(self, tiny_system):
        service = TopologyService(tiny_system)
        query = make_query()
        service.query(query, method="full-top-k")
        service.query(query, method="fast-top-k")
        assert set(service.latency_stats()) >= {"full-top-k", "fast-top-k"}

    def test_reset(self, tiny_system):
        service = TopologyService(tiny_system)
        service.query(make_query())
        service.reset_latency_stats()
        assert service.latency_stats() == {}


class TestServicePersistence:
    def test_service_round_trip_through_snapshot(self, tiny_system, tmp_path):
        service = TopologyService(tiny_system)
        query = make_query()
        expected = service.query(query).tids
        path = tmp_path / "svc.topo"
        service.save(path)
        restored = TopologyService.from_snapshot(path, cache_size=16)
        assert restored.query(query).tids == expected
        assert restored.query(query).tids == expected
        assert restored.cache_stats().hits == 1


class TestPlanVisibility:
    def test_explain_returns_plan_without_executing(self, tiny_system):
        service = TopologyService(tiny_system)
        plan = service.explain(make_query())
        assert plan.method == "fast-top-k-opt"
        assert plan.has_costs
        assert "operator tree" in plan.display()
        # explain() must not populate the result cache.
        assert service.cache_stats().size == 0

    def test_explain_respects_method_argument(self, tiny_system):
        service = TopologyService(tiny_system)
        plan = service.explain(make_query(), method="Fast-Top-K-ET")
        assert plan.method == "fast-top-k-et"
        assert plan.strategy == "et-idgj"

    def test_plan_cache_stats_exposed(self, tiny_system):
        service = TopologyService(tiny_system)
        tiny_system.invalidate_plans()
        service.query(make_query(k=5))
        service.query(make_query(k=6))  # same plan class, new result key
        stats = service.plan_cache_stats()
        assert stats.requests >= 2
        assert stats.capacity > 0
        assert service.cache_stats().misses >= 2  # distinct result keys

    def test_calibration_stats_exposed(self, mutable_system):
        service = TopologyService(mutable_system)
        service.query(make_query())
        stats = service.calibration_stats()
        assert "strategies" in stats and "version" in stats
        assert sum(s["count"] for s in stats["strategies"].values()) >= 1
