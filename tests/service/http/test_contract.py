"""Contract tests: the wire protocol, pinned endpoint by endpoint.

Golden request/response pairs for every endpoint, every rejection path
with its exact structured error body, routing (404/405), body limits,
and the streaming behaviours (chunked ``/query`` bodies, NDJSON
``/query_many``).  These tests ARE the wire spec: a change that breaks
one of them is a breaking protocol change and must say so.
"""

from __future__ import annotations

import json

import pytest

from repro.core import (
    AttributeConstraint,
    ConjunctionConstraint,
    KeywordConstraint,
    NoConstraint,
    TopologyQuery,
)
from repro.service import TopologyServer
from repro.service.http import (
    MAX_BATCH,
    MAX_K,
    MAX_LENGTH_BOUND,
    TestClient,
    create_app,
)

from tests.service.http.conftest import valid_query


def make_query(keyword: str = "kinase", k: int = 4) -> TopologyQuery:
    return TopologyQuery(
        "Protein",
        "DNA",
        KeywordConstraint("DESC", keyword),
        AttributeConstraint("TYPE", "mRNA"),
        k=k,
        ranking="rare",
    )


def assert_error_body(response, status: int, code: str):
    """Every error response obeys the pinned envelope."""
    assert response.status == status
    assert response.headers["content-type"] == "application/json"
    payload = response.json()
    assert set(payload) == {"error"}
    error = payload["error"]
    assert set(error) == {"code", "message", "details"}
    assert error["code"] == code
    assert isinstance(error["message"], str) and error["message"]
    assert isinstance(error["details"], list)
    return error


def error_fields(error: dict):
    return {issue["field"] for issue in error["details"]}


# ----------------------------------------------------------------------
# /healthz
# ----------------------------------------------------------------------
class TestHealthz:
    def test_golden_body(self, client):
        response = client.get("/healthz")
        assert response.status == 200
        assert response.json() == {"status": "ok", "generation": 1}
        assert response.headers["content-type"] == "application/json"

    def test_content_length_is_exact(self, client):
        response = client.get("/healthz")
        assert int(response.headers["content-length"]) == len(response.body)


# ----------------------------------------------------------------------
# /query
# ----------------------------------------------------------------------
class TestQuery:
    def test_golden_response_shape_and_answer(self, client, server):
        expected = server.query(make_query())
        response = client.post("/query", json=valid_query())
        assert response.status == 200
        payload = response.json()
        assert set(payload) == {
            "method",
            "generation",
            "count",
            "tids",
            "scores",
            "elapsed_seconds",
            "planning_seconds",
            "plan_choice",
            "trace_id",
        }
        assert payload["method"] == "fast-top-k-opt"
        assert payload["generation"] == 1
        assert payload["tids"] == list(expected.tids)
        assert payload["count"] == len(expected.tids)
        assert payload["scores"] == pytest.approx(expected.scores)
        # The body's trace id and the response header name the same
        # trace — the one GET /trace/{id} serves.
        assert payload["trace_id"] == response.headers["x-trace-id"]

    def test_minimal_body_uses_defaults(self, client, server):
        # Only the entity pair plus an exhaustive method: no
        # constraints, l=3, no top-k cut.  (The default method is a
        # top-k method and rejects k=None — pinned below.)
        expected = server.query(
            TopologyQuery("Protein", "DNA", NoConstraint(), NoConstraint()),
            method="fast-top",
        )
        response = client.post(
            "/query",
            json={"entity1": "Protein", "entity2": "DNA", "method": "fast-top"},
        )
        assert response.status == 200
        assert response.json()["tids"] == sorted(expected.tids)

    def test_default_method_without_k_is_422(self, client):
        # fast-top-k-opt is the default and needs a top-k budget; the
        # engine's refusal surfaces as a structured 422, not a 500.
        response = client.post(
            "/query", json={"entity1": "Protein", "entity2": "DNA"}
        )
        error = assert_error_body(response, 422, "unsupported_query")
        assert "top-k" in error["message"]

    def test_method_override(self, client):
        response = client.post("/query", json=valid_query(method="fast-top-k"))
        assert response.status == 200
        assert response.json()["method"] == "fast-top-k"

    def test_repeat_is_served_from_cache(self, client, server):
        first = client.post("/query", json=valid_query())
        second = client.post("/query", json=valid_query())
        assert first.status == second.status == 200
        # Identical result payload: the cached MethodResult is the same
        # object.  Only the trace id differs — every request is its own
        # trace, cache hit or not.
        first_payload, second_payload = first.json(), second.json()
        assert first_payload.pop("trace_id") != second_payload.pop("trace_id")
        assert first_payload == second_payload
        stats = server.stats()
        assert stats.result_cache.hits >= 1
        assert stats.executions == 1

    def test_conjunction_constraint(self, client, server):
        expected = server.query(
            TopologyQuery(
                "Protein",
                "DNA",
                ConjunctionConstraint(
                    (
                        KeywordConstraint("DESC", "kinase"),
                        AttributeConstraint("ID", 0, ">"),
                    )
                ),
                NoConstraint(),
                k=4,
                ranking="rare",
            )
        )
        response = client.post(
            "/query",
            json=valid_query(
                constraint1={
                    "kind": "and",
                    "parts": [
                        {"kind": "keyword", "column": "DESC", "keyword": "kinase"},
                        {"kind": "attribute", "column": "ID", "value": 0, "op": ">"},
                    ],
                },
                constraint2={"kind": "none"},
            ),
        )
        assert response.status == 200
        assert response.json()["tids"] == list(expected.tids)

    def test_unbuilt_entity_pair_is_422_unsupported_query(self, client):
        response = client.post(
            "/query", json=valid_query(entity1="Interaction", entity2="Unigene")
        )
        error = assert_error_body(response, 422, "unsupported_query")
        assert "Interaction" in error["message"]

    def test_wrong_l_for_the_store_is_422(self, client):
        response = client.post("/query", json=valid_query(max_length=2))
        error = assert_error_body(response, 422, "unsupported_query")
        assert "l=3" in error["message"]


# ----------------------------------------------------------------------
# Validation rejections (the 400/422 taxonomy, pinned)
# ----------------------------------------------------------------------
class TestValidation:
    def test_malformed_json_is_400(self, client):
        response = client.post("/query", body=b'{"entity1": ')
        error = assert_error_body(response, 400, "invalid_json")
        assert error["details"] == []

    def test_empty_body_is_400(self, client):
        response = client.post("/query", body=b"")
        assert_error_body(response, 400, "invalid_json")

    def test_non_object_body_is_422_tagged_at_root(self, client):
        response = client.post("/query", json=[1, 2, 3])
        error = assert_error_body(response, 422, "validation_error")
        assert error_fields(error) == {"$"}

    @pytest.mark.parametrize("k", [0, -3, MAX_K + 1, True, "four", 1.5])
    def test_out_of_range_or_mistyped_k(self, client, k):
        response = client.post("/query", json=valid_query(k=k))
        error = assert_error_body(response, 422, "validation_error")
        assert error_fields(error) == {"k"}

    @pytest.mark.parametrize("l", [0, -1, MAX_LENGTH_BOUND + 1, False, "three"])
    def test_out_of_range_or_mistyped_max_length(self, client, l):
        response = client.post("/query", json=valid_query(max_length=l))
        error = assert_error_body(response, 422, "validation_error")
        assert error_fields(error) == {"max_length"}

    def test_unknown_top_level_field(self, client):
        response = client.post("/query", json=valid_query(raking="freq"))
        error = assert_error_body(response, 422, "validation_error")
        assert error_fields(error) == {"raking"}

    def test_unknown_ranking(self, client):
        response = client.post("/query", json=valid_query(ranking="best"))
        error = assert_error_body(response, 422, "validation_error")
        assert error_fields(error) == {"ranking"}
        assert "freq" in error["details"][0]["message"]

    def test_unknown_method(self, client):
        response = client.post("/query", json=valid_query(method="turbo"))
        error = assert_error_body(response, 422, "validation_error")
        assert error_fields(error) == {"method"}

    def test_missing_entities_both_reported(self, client):
        response = client.post("/query", json={"k": 2})
        error = assert_error_body(response, 422, "validation_error")
        assert error_fields(error) == {"entity1", "entity2"}

    def test_unknown_constraint_kind_tagged_with_path(self, client):
        response = client.post(
            "/query", json=valid_query(constraint1={"kind": "regex", "pat": "x"})
        )
        error = assert_error_body(response, 422, "validation_error")
        assert "constraint1.kind" in error_fields(error)

    def test_keyword_constraint_missing_column(self, client):
        response = client.post(
            "/query", json=valid_query(constraint1={"kind": "keyword", "keyword": "x"})
        )
        error = assert_error_body(response, 422, "validation_error")
        assert error_fields(error) == {"constraint1.column"}

    def test_attribute_constraint_bad_op(self, client):
        response = client.post(
            "/query",
            json=valid_query(
                constraint2={"kind": "attribute", "column": "TYPE", "value": "x", "op": "~"}
            ),
        )
        error = assert_error_body(response, 422, "validation_error")
        assert error_fields(error) == {"constraint2.op"}

    def test_conjunction_part_path_includes_index(self, client):
        response = client.post(
            "/query",
            json=valid_query(
                constraint1={
                    "kind": "and",
                    "parts": [
                        {"kind": "keyword", "column": "DESC", "keyword": "ok"},
                        {"kind": "bogus"},
                    ],
                }
            ),
        )
        error = assert_error_body(response, 422, "validation_error")
        assert "constraint1.parts[1].kind" in error_fields(error)

    def test_hostile_nesting_depth_is_rejected_not_crashed(self, client):
        constraint: dict = {"kind": "none"}
        for _ in range(40):
            constraint = {"kind": "and", "parts": [constraint]}
        response = client.post("/query", json=valid_query(constraint1=constraint))
        error = assert_error_body(response, 422, "validation_error")
        assert any("nest" in issue["message"] for issue in error["details"])

    def test_every_problem_reported_in_one_pass(self, client):
        response = client.post(
            "/query",
            json={
                "entity1": "Protein",
                "k": -1,
                "ranking": "best",
                "bogus": 1,
            },
        )
        error = assert_error_body(response, 422, "validation_error")
        assert error_fields(error) == {"entity2", "k", "ranking", "bogus"}


# ----------------------------------------------------------------------
# Routing
# ----------------------------------------------------------------------
class TestRouting:
    def test_unknown_path_is_404(self, client):
        response = client.get("/nope")
        assert_error_body(response, 404, "not_found")

    def test_wrong_verb_is_405_with_allow(self, client):
        response = client.get("/query")
        error = assert_error_body(response, 405, "method_not_allowed")
        assert response.headers["allow"] == "POST"
        assert "GET" in error["message"]

    def test_post_to_healthz_is_405(self, client):
        response = client.post("/healthz", json={})
        assert_error_body(response, 405, "method_not_allowed")
        assert response.headers["allow"] == "GET"

    def test_query_string_is_ignored_for_routing(self, client):
        response = client.get("/healthz?verbose=1")
        assert response.status == 200


# ----------------------------------------------------------------------
# Body handling
# ----------------------------------------------------------------------
class TestBodyLimits:
    def test_oversized_body_is_413(self, server):
        with create_app(server, max_body_bytes=64) as app:
            with TestClient(app) as client:
                response = client.post("/query", json=valid_query(k=1))
                assert_error_body(response, 413, "body_too_large")

    def test_multi_frame_request_body_is_reassembled(self, client):
        body = json.dumps(valid_query()).encode()
        response = client.request(
            "POST", "/query", body_frames=[body[:10], body[10:20], body[20:]]
        )
        assert response.status == 200


# ----------------------------------------------------------------------
# /explain
# ----------------------------------------------------------------------
class TestExplain:
    def test_golden_plan_payload(self, client):
        response = client.post("/explain", json=valid_query())
        assert response.status == 200
        payload = response.json()
        assert set(payload) == {
            "method",
            "strategy",
            "plan_class",
            "pairs_table",
            "alternatives",
            "display",
            "generation",
        }
        strategies = {alt["strategy"] for alt in payload["alternatives"]}
        assert payload["strategy"] in strategies
        chosen = [alt for alt in payload["alternatives"] if alt["chosen"]]
        assert len(chosen) == 1 and chosen[0]["strategy"] == payload["strategy"]
        for alt in payload["alternatives"]:
            if alt["estimated_cost"] is not None:
                assert alt["calibrated_cost"] == pytest.approx(
                    alt["estimated_cost"] * alt["calibration_factor"]
                )
        assert payload["display"].startswith("QueryPlan[")
        assert payload["generation"] == 1

    def test_explain_never_executes(self, client, server):
        client.post("/explain", json=valid_query())
        assert server.stats().executions == 0

    def test_explain_validation_error(self, client):
        response = client.post("/explain", json={"k": "many"})
        assert_error_body(response, 422, "validation_error")


# ----------------------------------------------------------------------
# /query_many (NDJSON streaming)
# ----------------------------------------------------------------------
class TestQueryMany:
    def batch(self, n: int = 4):
        keywords = ("kinase", "binding", "human", "receptor")
        return [
            valid_query(
                constraint1={
                    "kind": "keyword",
                    "column": "DESC",
                    "keyword": keywords[i % len(keywords)],
                },
                k=2 + i,
            )
            for i in range(n)
        ]

    def test_golden_ndjson_stream(self, client, server):
        queries = self.batch(4)
        expected = [
            server.query(make_query(q["constraint1"]["keyword"], q["k"]))
            for q in queries
        ]
        response = client.post("/query_many", json={"queries": queries})
        assert response.status == 200
        assert response.headers["content-type"] == "application/x-ndjson"
        lines = response.ndjson()
        assert len(lines) == len(queries) + 1
        for i, line in enumerate(lines[:-1]):
            assert line["index"] == i
            assert line["tids"] == list(expected[i].tids)
            assert line["generation"] == 1
        summary = lines[-1]
        assert summary == {"done": True, "count": len(queries), "generations": [1]}

    def test_parallel_matches_serial(self, client, server):
        queries = self.batch(6)
        serial = client.post("/query_many", json={"queries": queries})
        parallel = client.post(
            "/query_many", json={"queries": queries, "parallel": 4}
        )
        serial_tids = [line["tids"] for line in serial.ndjson()[:-1]]
        parallel_tids = [line["tids"] for line in parallel.ndjson()[:-1]]
        assert serial_tids == parallel_tids

    def test_batch_streams_in_slices(self, server):
        with create_app(server, stream_chunk_rows=2) as app:
            with TestClient(app) as client:
                response = client.post(
                    "/query_many", json={"queries": self.batch(6)}
                )
        assert response.status == 200
        # 6 queries in slices of 2 -> 3 result frames + summary frame.
        assert len(response.chunks) >= 4
        assert response.ndjson()[-1]["done"] is True

    def test_queries_must_be_a_non_empty_array(self, client):
        for bad in ({}, {"queries": []}, {"queries": "nope"}):
            response = client.post("/query_many", json=bad)
            error = assert_error_body(response, 422, "validation_error")
            assert error_fields(error) == {"queries"}

    def test_item_errors_are_index_tagged(self, client):
        response = client.post(
            "/query_many",
            json={"queries": [valid_query(), {"entity1": "Protein", "k": 0}]},
        )
        error = assert_error_body(response, 422, "validation_error")
        assert error_fields(error) == {"queries[1].entity2", "queries[1].k"}

    def test_oversized_batch_is_rejected(self, client):
        queries = [{"entity1": "A", "entity2": "B"}] * (MAX_BATCH + 1)
        response = client.post("/query_many", json={"queries": queries})
        error = assert_error_body(response, 422, "validation_error")
        assert error_fields(error) == {"queries"}

    def test_bad_mode_and_parallel(self, client):
        response = client.post(
            "/query_many",
            json={"queries": [valid_query()], "mode": "fiber", "parallel": 0},
        )
        error = assert_error_body(response, 422, "validation_error")
        assert error_fields(error) == {"mode", "parallel"}

    def test_unanswerable_batch_is_a_real_422_not_a_broken_stream(self, client):
        # The first slice runs before the response starts, so a store
        # that cannot answer gets a status code, not a torn stream.
        response = client.post(
            "/query_many",
            json={"queries": [valid_query(entity1="Unigene", entity2="Interaction")]},
        )
        assert_error_body(response, 422, "unsupported_query")


# ----------------------------------------------------------------------
# /rebuild
# ----------------------------------------------------------------------
class TestRebuild:
    def test_golden_rebuild_advances_generation(self, client, server):
        response = client.post("/rebuild", json={})
        assert response.status == 200
        payload = response.json()
        assert set(payload) == {"generation", "previous_generation", "elapsed_seconds"}
        assert payload["generation"] == 2
        assert payload["previous_generation"] == 1
        assert payload["elapsed_seconds"] > 0
        assert client.get("/healthz").json()["generation"] == 2
        assert client.post("/query", json=valid_query()).json()["generation"] == 2
        assert server.stats().rebuilds == 1

    def test_empty_body_means_rebuild_like_before(self, client):
        response = client.post("/rebuild")
        assert response.status == 200
        assert response.json()["generation"] == 2

    def test_override_is_accepted(self, client):
        response = client.post("/rebuild", json={"per_pair_path_limit": 1})
        assert response.status == 200
        assert response.json()["generation"] == 2

    def test_unknown_field_is_422(self, client):
        response = client.post("/rebuild", json={"force": True})
        error = assert_error_body(response, 422, "validation_error")
        assert error_fields(error) == {"force"}

    def test_malformed_json_is_400(self, client):
        response = client.post("/rebuild", body=b"{{")
        assert_error_body(response, 400, "invalid_json")


# ----------------------------------------------------------------------
# /stats
# ----------------------------------------------------------------------
class TestStats:
    def test_payload_sections_and_invariants(self, client):
        client.post("/query", json=valid_query())
        client.post("/query", json=valid_query())
        response = client.get("/stats")
        assert response.status == 200
        payload = response.json()
        assert set(payload) == {
            "generation",
            "requests",
            "executions",
            "coalesced",
            "failures",
            "rebuilds",
            "restores",
            "in_flight",
            "result_cache",
            "plan_cache",
            "latency",
            "http",
        }
        cache = payload["result_cache"]
        assert cache["hits"] + cache["misses"] == payload["requests"] == 2
        assert cache["misses"] == payload["executions"] + payload["coalesced"]
        assert payload["executions"] == 1
        admission = payload["http"]["admission"]
        assert admission["admitted"] == 2
        assert payload["http"]["requests_total"] >= 3
        assert payload["http"]["responses_by_class"]["2xx"] >= 2

    def test_latency_snapshot_has_slo_percentiles(self, client):
        client.post("/query", json=valid_query())
        latency = client.get("/stats").json()["latency"]
        assert "fast-top-k-opt" in latency
        snap = latency["fast-top-k-opt"]
        assert {"count", "p50_seconds", "p95_seconds", "p99_seconds"} <= set(snap)
        assert snap["count"] == 1
        assert snap["p50_seconds"] <= snap["p95_seconds"] <= snap["p99_seconds"]


# ----------------------------------------------------------------------
# Streamed /query responses
# ----------------------------------------------------------------------
class TestQueryStreaming:
    EXHAUSTIVE = {"entity1": "Protein", "entity2": "DNA", "method": "fast-top"}

    def test_large_tid_list_streams_in_chunks(self, client, server):
        expected = server.query(
            TopologyQuery("Protein", "DNA", NoConstraint(), NoConstraint()),
            method="fast-top",
        )
        assert len(expected.tids) > 8  # else the fixture chunk size is moot
        response = client.post("/query", json=self.EXHAUSTIVE)
        assert response.status == 200
        assert len(response.chunks) >= 3
        assert "content-length" not in response.headers
        payload = response.json()  # concatenation is one valid document
        assert payload["tids"] == list(expected.tids)
        assert payload["count"] == len(expected.tids)
        assert payload["scores"] is None

    def test_small_topk_response_is_a_single_frame(self, client):
        response = client.post("/query", json=valid_query())
        assert response.status == 200
        assert len(response.chunks) == 1
        assert "content-length" in response.headers

    def test_streamed_and_plain_agree(self, server):
        with create_app(server, stream_chunk_rows=5) as small_app:
            with TestClient(small_app) as small_client:
                streamed = small_client.post("/query", json=self.EXHAUSTIVE)
        with create_app(server, stream_chunk_rows=10_000) as big_app:
            with TestClient(big_app) as big_client:
                plain = big_client.post("/query", json=self.EXHAUSTIVE)
        assert len(streamed.chunks) > 1 and len(plain.chunks) == 1
        streamed_payload, plain_payload = streamed.json(), plain.json()
        # Distinct requests carry distinct trace ids; everything else
        # must agree byte-for-byte between the two code paths.
        assert streamed_payload.pop("trace_id") != plain_payload.pop("trace_id")
        assert streamed_payload == plain_payload
