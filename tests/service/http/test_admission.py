"""Admission control: the gate in isolation and the 503 surface over HTTP.

The gate unit tests pin the bounded-concurrency / bounded-queue / FIFO
hand-off semantics directly.  The HTTP tests drive the full app over a
stub server whose latency the test controls, so every 503 variant
(``overloaded``, ``timeout``, ``rebuild_in_progress``) is reached
deterministically — no sleeps calibrated against wall-clock luck.
"""

from __future__ import annotations

import asyncio
import threading
from types import SimpleNamespace

import pytest

from repro.service.http import AdmissionGate, AdmissionRejected, TestClient, create_app


# ----------------------------------------------------------------------
# Gate unit tests
# ----------------------------------------------------------------------
class TestAdmissionGate:
    def test_admits_up_to_capacity_without_waiting(self):
        async def scenario():
            gate = AdmissionGate(max_concurrency=3, max_queue=0, queue_timeout=0.1)
            for _ in range(3):
                await gate.acquire()
            return gate.stats()

        stats = asyncio.run(scenario())
        assert stats["active"] == 3
        assert stats["admitted"] == 3
        assert stats["waiting"] == 0

    def test_queue_full_rejects_immediately(self):
        async def scenario():
            gate = AdmissionGate(max_concurrency=1, max_queue=0, queue_timeout=5.0)
            await gate.acquire()
            with pytest.raises(AdmissionRejected) as exc:
                await gate.acquire()
            return gate.stats(), exc.value

        stats, rejected = asyncio.run(scenario())
        assert rejected.reason == "queue_full"
        assert rejected.retry_after == 5
        assert stats["rejected_queue_full"] == 1
        assert stats["active"] == 1  # the holder keeps its slot

    def test_wait_times_out(self):
        async def scenario():
            gate = AdmissionGate(max_concurrency=1, max_queue=4, queue_timeout=0.05)
            await gate.acquire()
            with pytest.raises(AdmissionRejected) as exc:
                await gate.acquire()
            return gate.stats(), exc.value

        stats, rejected = asyncio.run(scenario())
        assert rejected.reason == "timeout"
        assert stats["rejected_timeout"] == 1
        assert stats["waiting"] == 0  # the timed-out waiter was removed

    def test_release_hands_slot_to_oldest_waiter_fifo(self):
        async def scenario():
            gate = AdmissionGate(max_concurrency=1, max_queue=4, queue_timeout=5.0)
            await gate.acquire()
            order = []

            async def waiter(tag):
                await gate.acquire()
                order.append(tag)

            tasks = []
            for tag in ("first", "second", "third"):
                tasks.append(asyncio.ensure_future(waiter(tag)))
                await asyncio.sleep(0.01)  # deterministic queue order
            assert gate.stats()["waiting"] == 3
            for _ in range(3):
                gate.release()
                await asyncio.sleep(0.01)
            await asyncio.gather(*tasks)
            gate.release()  # the last waiter's slot
            return order, gate.stats()

        order, stats = asyncio.run(scenario())
        assert order == ["first", "second", "third"]
        assert stats["active"] == 0
        assert stats["admitted"] == 4

    def test_handoff_does_not_change_active_count(self):
        async def scenario():
            gate = AdmissionGate(max_concurrency=1, max_queue=1, queue_timeout=5.0)
            await gate.acquire()
            task = asyncio.ensure_future(gate.acquire())
            await asyncio.sleep(0.01)
            gate.release()  # hands over, active stays 1
            await task
            mid = gate.stats()
            gate.release()
            return mid, gate.stats()

        mid, final = asyncio.run(scenario())
        assert mid["active"] == 1
        assert final["active"] == 0

    def test_cancelled_waiter_leaks_no_slot(self):
        async def scenario():
            gate = AdmissionGate(max_concurrency=1, max_queue=2, queue_timeout=5.0)
            await gate.acquire()
            task = asyncio.ensure_future(gate.acquire())
            await asyncio.sleep(0.01)
            task.cancel()
            with pytest.raises(asyncio.CancelledError):
                await task
            gate.release()
            # Capacity must be fully restored: a fresh acquire succeeds
            # without waiting.
            await asyncio.wait_for(gate.acquire(), timeout=0.5)
            gate.release()
            return gate.stats()

        stats = asyncio.run(scenario())
        assert stats["active"] == 0
        assert stats["waiting"] == 0

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            AdmissionGate(max_concurrency=0)
        with pytest.raises(ValueError):
            AdmissionGate(max_queue=-1)

    def test_retry_after_is_at_least_one_second(self):
        assert AdmissionGate(queue_timeout=0.05).retry_after == 1
        assert AdmissionGate(queue_timeout=7.4).retry_after == 7


# ----------------------------------------------------------------------
# The 503 surface over HTTP (stub server with controllable latency)
# ----------------------------------------------------------------------
class StubServer:
    """Duck-typed TopologyServer whose query latency the test controls:
    ``query`` blocks until the test sets ``release`` (or forever)."""

    def __init__(self):
        self.generation = 1
        self.release = threading.Event()
        self.started = threading.Semaphore(0)
        self.calls = 0
        self._lock = threading.Lock()

    def _result(self):
        return SimpleNamespace(
            method="stub",
            generation=self.generation,
            tids=[1, 2, 3],
            scores=[3.0, 2.0, 1.0],
            elapsed_seconds=0.001,
            planning_seconds=0.0,
            plan_choice="stub",
        )

    def query(self, query, method=None):
        with self._lock:
            self.calls += 1
        self.started.release()
        self.release.wait()
        return self._result()

    def rebuild(self, **kwargs):
        self.started.release()
        self.release.wait()
        self.generation += 1
        return SimpleNamespace(elapsed_seconds=0.01)

    def stats(self):  # pragma: no cover - not exercised here
        raise NotImplementedError

    def latency_stats(self):  # pragma: no cover
        return {}


QUERY = {"entity1": "A", "entity2": "B", "k": 3}


@pytest.fixture()
def stub():
    server = StubServer()
    yield server
    server.release.set()  # unblock any stuck worker threads


class TestHttp503:
    def test_queue_full_is_503_overloaded_with_retry_after(self, stub):
        with create_app(
            stub, max_concurrency=1, max_queue=0, queue_timeout=3.0
        ) as app:
            with TestClient(app) as client:
                blocker = threading.Thread(
                    target=client.post, args=("/query",), kwargs={"json": QUERY}
                )
                blocker.start()
                assert stub.started.acquire(timeout=5)  # engine call in flight
                try:
                    response = client.post("/query", json=QUERY)
                finally:
                    stub.release.set()
                    blocker.join(timeout=10)
        assert response.status == 503
        error = response.json()["error"]
        assert error["code"] == "overloaded"
        assert "queue_full" in error["message"]
        assert response.headers["retry-after"] == "3"

    def test_queue_wait_timeout_is_503_overloaded(self, stub):
        with create_app(
            stub, max_concurrency=1, max_queue=4, queue_timeout=0.1
        ) as app:
            with TestClient(app) as client:
                blocker = threading.Thread(
                    target=client.post, args=("/query",), kwargs={"json": QUERY}
                )
                blocker.start()
                assert stub.started.acquire(timeout=5)
                try:
                    response = client.post("/query", json=QUERY)  # queues, times out
                finally:
                    stub.release.set()
                    blocker.join(timeout=10)
        assert response.status == 503
        error = response.json()["error"]
        assert error["code"] == "overloaded"
        assert "timeout" in error["message"]
        assert response.headers["retry-after"] == "1"

    def test_request_timeout_is_503_timeout(self, stub):
        with create_app(stub, request_timeout=0.1, queue_timeout=2.0) as app:
            with TestClient(app) as client:
                try:
                    response = client.post("/query", json=QUERY)
                finally:
                    stub.release.set()
        assert response.status == 503
        error = response.json()["error"]
        assert error["code"] == "timeout"
        assert "0.1s" in error["message"]
        assert response.headers["retry-after"] == "2"

    def test_concurrent_rebuild_is_503_rebuild_in_progress(self, stub):
        with create_app(stub, rebuild_timeout=60.0) as app:
            with TestClient(app) as client:
                blocker = threading.Thread(
                    target=client.post, args=("/rebuild",), kwargs={"json": {}}
                )
                blocker.start()
                assert stub.started.acquire(timeout=5)  # rebuild in flight
                try:
                    response = client.post("/rebuild", json={})
                finally:
                    stub.release.set()
                    blocker.join(timeout=10)
        assert response.status == 503
        assert response.json()["error"]["code"] == "rebuild_in_progress"
        assert "retry-after" in response.headers

    def test_shed_requests_never_reach_the_engine(self, stub):
        with create_app(
            stub, max_concurrency=1, max_queue=0, queue_timeout=1.0
        ) as app:
            with TestClient(app) as client:
                blocker = threading.Thread(
                    target=client.post, args=("/query",), kwargs={"json": QUERY}
                )
                blocker.start()
                assert stub.started.acquire(timeout=5)
                try:
                    for _ in range(5):
                        assert client.post("/query", json=QUERY).status == 503
                finally:
                    stub.release.set()
                    blocker.join(timeout=10)
        assert stub.calls == 1  # only the admitted request executed

    def test_engine_exception_is_sanitized_500(self, stub):
        class Exploding(StubServer):
            def query(self, query, method=None):
                raise RuntimeError("secret internal state: /etc/passwd")

        with create_app(Exploding()) as app:
            with TestClient(app) as client:
                response = client.post("/query", json=QUERY)
        assert response.status == 500
        error = response.json()["error"]
        assert error["code"] == "internal"
        assert "RuntimeError" in error["message"]
        assert "passwd" not in error["message"]  # no detail leakage

    def test_admission_stats_count_the_shed(self, stub):
        with create_app(
            stub, max_concurrency=1, max_queue=0, queue_timeout=1.0
        ) as app:
            with TestClient(app) as client:
                blocker = threading.Thread(
                    target=client.post, args=("/query",), kwargs={"json": QUERY}
                )
                blocker.start()
                assert stub.started.acquire(timeout=5)
                try:
                    for _ in range(3):
                        client.post("/query", json=QUERY)
                finally:
                    stub.release.set()
                    blocker.join(timeout=10)
            stats = app.gate.stats()
        assert stats["admitted"] == 1
        assert stats["rejected_queue_full"] == 3
        assert stats["active"] == 0
