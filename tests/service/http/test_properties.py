"""Property tests: no input — valid, hostile, or garbage — crashes the app.

Hypothesis drives the full ASGI stack with arbitrary JSON documents,
mutated valid requests, random byte bodies, and random routes.  The
invariants under test:

* the app always completes the response protocol (no hangs, no
  mid-protocol exceptions — the test client raises if the app dies);
* every response is a structured 2xx/4xx — arbitrary *input* must never
  produce a 500, which is reserved for engine faults;
* every error body obeys the pinned ``{"error": {code, message,
  details}}`` envelope.
"""

from __future__ import annotations

import json

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.service import TopologyServer
from repro.service.http import MAX_K, MAX_LENGTH_BOUND, TestClient, create_app

from tests.service.http.conftest import valid_query

# One stack for the whole module: Hypothesis runs hundreds of examples
# and must not pay a server+app+client rebuild for each.
pytestmark = pytest.mark.usefixtures("prop_client")

SETTINGS = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)

INPUT_STATUSES = {200, 400, 413, 422}  # what arbitrary input may produce


@pytest.fixture(scope="module")
def prop_client(tiny_system):
    with TopologyServer(tiny_system) as srv:
        with create_app(srv, stream_chunk_rows=8) as app:
            with TestClient(app) as client:
                yield client


def assert_structured(response):
    """The cross-cutting postcondition for every response."""
    assert response.status in INPUT_STATUSES | {404, 405}
    payload = json.loads(response.body)  # body is always valid JSON
    if response.status >= 400:
        assert set(payload) == {"error"}
        error = payload["error"]
        assert set(error) == {"code", "message", "details"}
        assert isinstance(error["code"], str)
        assert isinstance(error["message"], str)
        assert isinstance(error["details"], list)
        for issue in error["details"]:
            assert set(issue) == {"field", "message"}
    return payload


json_values = st.recursive(
    st.none()
    | st.booleans()
    | st.integers(-(10**6), 10**6)
    | st.floats(allow_nan=False, allow_infinity=False)
    | st.text(max_size=20),
    lambda children: st.lists(children, max_size=4)
    | st.dictionaries(st.text(max_size=12), children, max_size=4),
    max_leaves=25,
)

field_names = st.sampled_from(
    [
        "entity1",
        "entity2",
        "constraint1",
        "constraint2",
        "max_length",
        "k",
        "ranking",
        "method",
        "queries",
        "parallel",
        "mode",
        "extra",
    ]
)

constraint_trees = st.recursive(
    st.fixed_dictionaries({"kind": st.sampled_from(["none", "keyword", "attribute", "and", "bogus"])}).flatmap(
        lambda base: st.fixed_dictionaries(
            {
                "kind": st.just(base["kind"]),
                "column": st.text(max_size=8) | st.integers(),
                "keyword": st.text(max_size=8) | st.none(),
                "value": json_values,
                "op": st.sampled_from(["=", "!=", "<", ">", "<=", ">=", "~~"]),
            }
        )
    ),
    lambda children: st.fixed_dictionaries(
        {"kind": st.just("and"), "parts": st.lists(children, max_size=3)}
    ),
    max_leaves=10,
)


class TestArbitraryInput:
    @SETTINGS
    @given(document=json_values)
    def test_query_accepts_any_json_document(self, prop_client, document):
        response = prop_client.post("/query", json=document)
        assert_structured(response)

    @SETTINGS
    @given(overlay=st.dictionaries(field_names, json_values, max_size=5))
    def test_mutated_valid_query_never_500s(self, prop_client, overlay):
        body = valid_query()
        body.update(overlay)
        response = prop_client.post("/query", json=body)
        payload = assert_structured(response)
        if response.status == 200:
            # Top-k answers are score-ranked; the stable invariant is
            # count == len(tids) and scores (if any) descending.
            assert payload["count"] == len(payload["tids"])
            if payload["scores"] is not None:
                assert payload["scores"] == sorted(payload["scores"], reverse=True)

    @SETTINGS
    @given(constraint=constraint_trees)
    def test_arbitrary_constraint_trees(self, prop_client, constraint):
        response = prop_client.post(
            "/query", json=valid_query(constraint1=constraint)
        )
        assert_structured(response)

    @SETTINGS
    @given(document=json_values)
    def test_query_many_accepts_any_json_document(self, prop_client, document):
        response = prop_client.post("/query_many", json=document)
        response_payload = assert_structured(response)
        if response.status == 200:  # a valid batch slipped through:
            lines = response.ndjson()  # then the stream must be complete
            assert lines[-1]["done"] is True
        else:
            assert "error" in response_payload

    @SETTINGS
    @given(raw=st.binary(max_size=200))
    def test_raw_bytes_never_crash(self, prop_client, raw):
        response = prop_client.post("/query", body=raw)
        assert_structured(response)

    @SETTINGS
    @given(
        verb=st.sampled_from(["GET", "POST", "PUT", "DELETE"]),
        path=st.text(
            alphabet="abcdefghijklmnopqrstuvwxyz/_", min_size=1, max_size=16
        ).map(lambda s: "/" + s.lstrip("/")),
    )
    def test_random_routes_get_structured_404_405(self, prop_client, verb, path):
        response = prop_client.request(verb, path, json_body={})
        assert_structured(response)
        known = (
            "/healthz",
            "/stats",
            "/metrics",
            "/traces/recent",
            "/query",
            "/query_many",
            "/explain",
            "/rebuild",
        )
        # /trace/{id} is parameterized: GET on it is a valid route (404
        # only because the trace doesn't exist), other verbs are 405.
        parameterized = path.startswith("/trace/") and len(path) > len("/trace/")
        if path not in known and not parameterized:
            assert response.status == 404


class TestBoundsProperties:
    @SETTINGS
    @given(k=st.integers(-(10**9), 10**9))
    def test_k_bounds_are_exact(self, prop_client, k):
        response = prop_client.post("/query", json=valid_query(k=k))
        payload = assert_structured(response)
        if 1 <= k <= MAX_K:
            assert response.status == 200
        else:
            assert response.status == 422
            assert payload["error"]["details"][0]["field"] == "k"

    @SETTINGS
    @given(l=st.integers(-(10**9), 10**9))
    def test_max_length_bounds_are_exact(self, prop_client, l):
        response = prop_client.post("/query", json=valid_query(max_length=l))
        payload = assert_structured(response)
        if l == 3:  # the store's built l
            assert response.status == 200
        elif 1 <= l <= MAX_LENGTH_BOUND:  # shape-valid, store can't answer
            assert response.status == 422
            assert payload["error"]["code"] == "unsupported_query"
        else:
            assert response.status == 422
            assert payload["error"]["code"] == "validation_error"
