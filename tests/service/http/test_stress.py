"""End-to-end stress: hot rebuilds racing >= 8 HTTP client threads.

The PR-4 generation-consistency oracle, pushed through the whole wire
stack: every ``POST /query`` answer must match *one* generation's
single-threaded oracle exactly (the alternating build configurations
provably disagree, so a torn half-old/half-new answer cannot pass), the
generation stamps each thread observes must be monotone, and the
``GET /stats`` payload polled mid-storm must satisfy the exact counter
invariants — the wire-visible form of the snapshot-consistency fix in
:meth:`repro.service.facade.LatencyStats.snapshot`.
"""

from __future__ import annotations

import threading

import pytest

from repro.biozon import BiozonConfig, generate
from repro.core import (
    AttributeConstraint,
    KeywordConstraint,
    TopologyQuery,
    TopologySearchSystem,
)
from repro.service import TopologyServer
from repro.service.http import TestClient, create_app

THREADS = 8
REBUILD_ROUNDS = 2

# Alternating rebuild configurations with provably different answers
# (asserted below): per-pair path cap on/off changes which topologies
# survive the build, so mixed-generation reads cannot look valid.
CONFIGS = {0: {"per_pair_path_limit": None}, 1: {"per_pair_path_limit": 1}}

KEYWORDS = ("kinase", "binding", "human")


def wire_query(keyword: str, k: int) -> dict:
    return {
        "entity1": "Protein",
        "entity2": "DNA",
        "constraint1": {"kind": "keyword", "column": "DESC", "keyword": keyword},
        "constraint2": {"kind": "attribute", "column": "TYPE", "value": "mRNA"},
        "max_length": 3,
        "k": k,
        "ranking": "rare",
    }


def oracle_query(keyword: str, k: int) -> TopologyQuery:
    return TopologyQuery(
        "Protein",
        "DNA",
        KeywordConstraint("DESC", keyword),
        AttributeConstraint("TYPE", "mRNA"),
        k=k,
        ranking="rare",
    )


WORKLOAD = [(kw, k) for kw in KEYWORDS for k in (2, 4)]


@pytest.fixture()
def private_server():
    """A private build: rebuilds here must not disturb the shared
    session fixture other tests read golden values from."""
    dataset = generate(BiozonConfig.tiny(seed=3))
    system = TopologySearchSystem(dataset.database, dataset.graph())
    system.build([("Protein", "DNA"), ("Protein", "Interaction")], max_length=3)
    with TopologyServer(system) as server:
        yield server


class TestRebuildUnderHttpLoad:
    def test_zero_torn_results_and_monotone_generations(self, private_server):
        server = private_server
        oracles = {}

        def snapshot_oracle():
            # Computed on the serving system while it is the stable
            # current generation; engine reads are thread-safe.
            oracles[server.generation] = {
                (kw, k): list(server.system.search(oracle_query(kw, k)).tids)
                for kw, k in WORKLOAD
            }

        snapshot_oracle()

        with create_app(server, max_concurrency=THREADS + 2, max_queue=64) as app:
            with TestClient(app) as client:
                stop = threading.Event()
                observed = []  # (thread, generation, workload key, tids)
                stats_payloads = []
                failures = []
                lock = threading.Lock()
                barrier = threading.Barrier(THREADS + 2)

                def reader(offset: int) -> None:
                    try:
                        barrier.wait()
                        i = 0
                        local = []
                        while not stop.is_set() or i == 0:
                            kw, k = WORKLOAD[(offset + i) % len(WORKLOAD)]
                            response = client.post("/query", json=wire_query(kw, k))
                            if response.status != 200:
                                raise AssertionError(
                                    f"reader got {response.status}: {response.body!r}"
                                )
                            payload = response.json()
                            local.append(
                                (offset, payload["generation"], (kw, k), payload["tids"])
                            )
                            i += 1
                        with lock:
                            observed.extend(local)
                    except Exception as error:  # pragma: no cover - reported below
                        stop.set()
                        with lock:
                            failures.append(error)

                def stats_poller() -> None:
                    try:
                        barrier.wait()
                        local = []
                        while not stop.is_set():
                            response = client.get("/stats")
                            assert response.status == 200
                            local.append(response.json())
                        with lock:
                            stats_payloads.extend(local)
                    except Exception as error:  # pragma: no cover
                        stop.set()
                        with lock:
                            failures.append(error)

                threads = [
                    threading.Thread(target=reader, args=(n,), name=f"reader-{n}")
                    for n in range(THREADS)
                ] + [threading.Thread(target=stats_poller, name="stats-poller")]
                for thread in threads:
                    thread.start()

                rebuild_responses = []
                try:
                    barrier.wait()
                    for round_number in range(REBUILD_ROUNDS):
                        response = client.post(
                            "/rebuild", json=CONFIGS[(round_number + 1) % 2]
                        )
                        assert response.status == 200, response.body
                        rebuild_responses.append(response.json())
                        snapshot_oracle()
                finally:
                    stop.set()
                    for thread in threads:
                        thread.join(timeout=120)

                assert failures == []
                final_stats = client.get("/stats").json()

        # --- rebuilds all landed, generations advanced one at a time
        assert [r["generation"] for r in rebuild_responses] == [2, 3]
        assert [r["previous_generation"] for r in rebuild_responses] == [1, 2]
        assert len(oracles) == REBUILD_ROUNDS + 1

        # --- the oracle can actually detect tearing
        assert oracles[1] != oracles[2]

        # --- zero torn results: every answer is exactly one generation's
        torn = [
            entry
            for entry in observed
            if oracles[entry[1]][entry[2]] != entry[3]
        ]
        assert torn == []
        assert {entry[1] for entry in observed} <= set(oracles)
        assert len(observed) >= THREADS  # every thread completed >= 1 query

        # --- per-thread generation stamps are monotone (no time travel)
        by_thread = {}
        for thread_id, generation, _, _ in observed:
            by_thread.setdefault(thread_id, []).append(generation)
        for generations in by_thread.values():
            assert generations == sorted(generations)

        # --- counter invariants held in every polled /stats payload
        assert stats_payloads, "stats poller never completed a poll"
        for payload in stats_payloads + [final_stats]:
            cache = payload["result_cache"]
            assert cache["hits"] + cache["misses"] == payload["requests"]
            assert cache["misses"] == payload["executions"] + payload["coalesced"]
            assert payload["failures"] == 0
            for snap in payload["latency"].values():
                assert snap["p50_seconds"] <= snap["p95_seconds"] <= snap["p99_seconds"]
                if snap["count"]:
                    assert snap["min_seconds"] <= snap["p50_seconds"]
                    assert snap["p99_seconds"] <= snap["max_seconds"]

        # --- the server agrees with what went over the wire
        stats = server.stats()
        assert stats.rebuilds == REBUILD_ROUNDS
        assert stats.requests == len(observed)
        assert final_stats["generation"] == REBUILD_ROUNDS + 1

    def test_concurrent_rebuild_storm_advances_generation_monotonically(
        self, private_server
    ):
        """Many threads all demanding rebuilds: exactly one runs at a
        time (the rest get 503 rebuild_in_progress or queue behind the
        app-level lock), and the generation advances by exactly the
        number of 200s."""
        server = private_server
        with create_app(server) as app:
            with TestClient(app) as client:
                results = []
                lock = threading.Lock()
                barrier = threading.Barrier(4)

                def rebuilder(n: int) -> None:
                    barrier.wait()
                    response = client.post(
                        "/rebuild", json=CONFIGS[n % 2]
                    )
                    with lock:
                        results.append(response)

                threads = [
                    threading.Thread(target=rebuilder, args=(n,)) for n in range(4)
                ]
                for thread in threads:
                    thread.start()
                for thread in threads:
                    thread.join(timeout=300)

                statuses = sorted(r.status for r in results)
                succeeded = [r for r in results if r.status == 200]
                rejected = [r for r in results if r.status == 503]
                assert len(succeeded) + len(rejected) == 4
                assert len(succeeded) >= 1
                for response in rejected:
                    assert response.json()["error"]["code"] == "rebuild_in_progress"
                    assert "retry-after" in response.headers
                # Generations from the 200s are unique and contiguous.
                generations = sorted(r.json()["generation"] for r in succeeded)
                assert generations == list(
                    range(2, 2 + len(succeeded))
                ), statuses
                assert server.generation == 1 + len(succeeded)
