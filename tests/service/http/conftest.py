"""Shared fixtures for the HTTP layer: app + in-repo ASGI test client.

The server/app/client stack is function-scoped — construction is cheap
(the expensive offline build lives in the session-scoped ``tiny_system``)
and per-test isolation keeps golden counter/generation assertions exact.
"""

from __future__ import annotations

import pytest

from repro.service import TopologyServer
from repro.service.http import TestClient, create_app


@pytest.fixture()
def server(tiny_system):
    with TopologyServer(tiny_system) as srv:
        yield srv


@pytest.fixture()
def app(server):
    with create_app(server, stream_chunk_rows=8) as application:
        yield application


@pytest.fixture()
def client(app):
    with TestClient(app) as c:
        yield c


def valid_query(**overrides) -> dict:
    """A known-good ``POST /query`` body against ``tiny_system``."""
    body = {
        "entity1": "Protein",
        "entity2": "DNA",
        "constraint1": {"kind": "keyword", "column": "DESC", "keyword": "kinase"},
        "constraint2": {"kind": "attribute", "column": "TYPE", "value": "mRNA"},
        "max_length": 3,
        "k": 4,
        "ranking": "rare",
    }
    body.update(overrides)
    return body
