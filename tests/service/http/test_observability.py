"""The observability surface over a single-process server: the
``http.request`` ingress span and its engine children, the
``/trace/{id}`` + ``/traces/recent`` debug endpoints, the ``/metrics``
exposition, and the slow-query log fed from the request's own trace."""

from __future__ import annotations

import pytest

from repro.service import TopologyServer
from repro.service.http import TestClient, create_app

from tests.obs.test_metrics import parse_exposition
from tests.service.http.conftest import valid_query


def span_index(tree: dict) -> dict:
    """Flatten a /trace tree into {name: node}."""
    flat = {}

    def walk(nodes):
        for node in nodes:
            flat[node["name"]] = node
            walk(node["children"])

    walk(tree["spans"])
    return flat


class TestTracedRequest:
    def test_every_response_carries_x_trace_id(self, client):
        seen = set()
        for response in (
            client.get("/healthz"),
            client.get("/stats"),
            client.post("/query", json=valid_query()),
            client.post("/query", json={"bad": "body"}),
            client.get("/nope"),
        ):
            trace_id = response.headers["x-trace-id"]
            assert trace_id and trace_id not in seen
            seen.add(trace_id)

    def test_query_trace_tree_crosses_the_executor(self, client):
        """The engine runs on a worker thread; its spans must still
        attach under the http.request ingress span (run_in_executor does
        not propagate context on its own — the app copies it)."""
        response = client.post("/query", json=valid_query())
        trace_id = response.json()["trace_id"]
        tree = client.get(f"/trace/{trace_id}").json()
        assert tree["trace_id"] == trace_id
        spans = span_index(tree)
        assert set(spans) >= {
            "http.request",
            "server.query",
            "engine.plan",
            "engine.execute",
        }
        # Well-formed parent links, root to leaf.
        assert spans["http.request"]["parent_id"] is None
        assert spans["server.query"]["parent_id"] == spans["http.request"]["span_id"]
        assert spans["engine.plan"]["parent_id"] == spans["server.query"]["span_id"]
        assert spans["engine.execute"]["parent_id"] == spans["server.query"]["span_id"]
        assert spans["http.request"]["tags"]["path"] == "/query"
        assert spans["http.request"]["tags"]["status"] == 200

    def test_unknown_trace_is_404(self, client):
        response = client.get("/trace/deadbeef00000000")
        assert response.status == 404
        assert response.json()["error"]["code"] == "not_found"

    def test_recent_lists_the_latest_trace_first(self, client):
        trace_id = client.post("/query", json=valid_query()).json()["trace_id"]
        payload = client.get("/traces/recent").json()
        assert set(payload) == {"traces", "tracer"}
        assert payload["traces"][0]["trace_id"] == trace_id
        assert payload["traces"][0]["root"] == "http.request"
        assert payload["tracer"]["enabled"] is True


class TestMetricsEndpoint:
    def test_exposition_parses_and_covers_the_subsystems(self, client):
        client.post("/query", json=valid_query())
        response = client.get("/metrics")
        assert response.status == 200
        assert response.headers["content-type"].startswith("text/plain")
        types, samples = parse_exposition(response.text)
        # One family per subsystem the issue names, behind stable names.
        for family, kind in {
            "repro_server_requests": "counter",
            "repro_cache_hits": "counter",
            "repro_plan_cache_hits": "counter",
            "repro_calibrator_version": "gauge",
            "repro_query_latency_seconds": "histogram",
            "repro_http_requests": "counter",
            "repro_http_admission_admitted": "counter",
            "repro_trace_spans_recorded": "counter",
        }.items():
            assert types[family] == kind, family

    def test_counters_come_from_one_consistent_snapshot(self, client):
        for _ in range(3):
            client.post("/query", json=valid_query())
        _, samples = parse_exposition(client.get("/metrics").text)

        def single(name):
            ((_, value),) = samples[name]
            return value

        assert single("repro_cache_hits") + single("repro_cache_misses") == single(
            "repro_server_requests"
        )
        assert single("repro_server_requests") == 3

    def test_latency_histogram_counts_match_executions(self, client):
        client.post("/query", json=valid_query())
        _, samples = parse_exposition(client.get("/metrics").text)
        counts = {
            labels["method"]: value
            for labels, value in samples["repro_query_latency_seconds_count"]
        }
        assert counts == {"fast-top-k-opt": 1}
        buckets = [
            value
            for labels, value in samples["repro_query_latency_seconds_bucket"]
            if labels["method"] == "fast-top-k-opt"
        ]
        assert buckets == sorted(buckets)  # cumulative
        assert buckets[-1] == 1  # +Inf == _count


class TestSlowQueryLog:
    @pytest.fixture()
    def eager_server(self, tiny_system):
        # Threshold 0: every query is "slow", so the log is observable
        # without sleeping.
        with TopologyServer(tiny_system, slow_query_seconds=0.0) as srv:
            yield srv

    def test_http_query_feeds_the_slow_log_with_its_trace(self, eager_server):
        with create_app(eager_server) as app:
            with TestClient(app) as client:
                trace_id = client.post("/query", json=valid_query()).json()["trace_id"]
        (record,) = [
            r for r in eager_server.slow_query_log.recent() if r["trace_id"] == trace_id
        ]
        assert record["event"] == "slow_query"
        assert record["source"] == "server"
        assert record["method"] == "fast-top-k-opt"
        assert record["query"]["entity1"] == "Protein"
        assert record["plan"]["choice"]
        assert record["calibrator_version"] >= 0
        assert record["generation"] == 1
        # The per-span breakdown names the engine phases.
        names = {s["name"] for s in record["spans"]}
        assert {"engine.plan", "engine.execute"} <= names

    def test_default_threshold_keeps_fast_queries_out(self, server, client):
        client.post("/query", json=valid_query())
        assert server.slow_query_log.recent() == []
