"""Replica-pool generation attestation.

A warm replica pool serves exactly one generation.  The parent stamps
the generation into every worker at pool start; every reply carries it
back, and :meth:`ReplicaPool.run` refuses to merge a reply attesting a
different generation — the failure mode is a worker serving a stale
snapshot after a hot-swap, which must be loud, never silently wrong.
"""

from __future__ import annotations

import pytest

from repro.core import KeywordConstraint, NoConstraint, TopologyQuery
from repro.errors import TopologyError
from repro.service.replica import ReplicaPool


@pytest.fixture(scope="module")
def pool(tiny_system):
    with ReplicaPool(
        tiny_system, workers=1, start_method="fork", generation=7
    ) as p:
        yield p


def _chunk(keyword: str):
    query = TopologyQuery(
        "Protein", "DNA", KeywordConstraint("DESC", keyword), NoConstraint()
    )
    return ("fast-top", [(0, query)])


class TestGenerationAttestation:
    def test_replies_attest_the_stamped_generation(self, pool, tiny_system):
        (items,) = pool.run([_chunk("kinase")])
        (index, result) = items[0]
        assert index == 0
        reference = tiny_system.search(
            _chunk("kinase")[1][0][1], method="fast-top"
        )
        assert result.tids == reference.tids

    def test_mismatched_attestation_refuses_to_merge(self, pool):
        """Simulate a pool mix-up: the consumer believes a different
        generation than the workers were initialized with."""
        original = pool.generation
        pool.generation = original + 1
        try:
            with pytest.raises(TopologyError, match="attested generation"):
                pool.run([_chunk("human")])
        finally:
            pool.generation = original

    def test_untagged_pool_still_round_trips(self, tiny_system):
        """generation=None (the facade's single-generation use) must
        keep working: None attests equal to None."""
        with ReplicaPool(tiny_system, workers=1, start_method="fork") as p:
            (items,) = p.run([_chunk("binding")])
            assert items[0][0] == 0

    def test_closed_pool_rejects_work(self, tiny_system):
        p = ReplicaPool(
            tiny_system, workers=1, start_method="fork", generation=1
        )
        p.close()
        p.close()  # idempotent
        with pytest.raises(TopologyError, match="closed"):
            p.run([_chunk("kinase")])
