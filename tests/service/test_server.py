"""TopologyServer: hot rebuild, single-flight, batching — plus the
cache/stats bugfix pins (sentinel misses, plan-cache eviction,
nearest-rank percentiles)."""

from __future__ import annotations

import threading
import time

import pytest

from repro.core import (
    AttributeConstraint,
    KeywordConstraint,
    TopologyQuery,
    TopologySearchSystem,
)
from repro.core.plan import PlanAlternative, PlanCache, PlanClass, QueryPlan
from repro.errors import TopologyError
from repro.obs import span as obs_span
from repro.obs import tracer as obs_tracer
from repro.service import MISSING, LatencyStats, LRUCache, TopologyServer


def make_query(keyword: str = "kinase", k: int = 4, ranking: str = "rare"):
    return TopologyQuery(
        "Protein",
        "DNA",
        KeywordConstraint("DESC", keyword),
        AttributeConstraint("TYPE", "mRNA"),
        k=k,
        ranking=ranking,
    )


@pytest.fixture()
def server(tiny_system):
    with TopologyServer(tiny_system) as srv:
        yield srv


# ----------------------------------------------------------------------
# Bugfix pins
# ----------------------------------------------------------------------
class TestCacheSentinel:
    """A cached falsy/None value is a hit, not a miss (the old ``get``
    returned ``None`` for both, so empty results were re-executed and
    counted as misses forever)."""

    def test_cached_none_is_a_hit(self):
        cache = LRUCache(capacity=4)
        cache.put("k", None)
        assert cache.get("k", MISSING) is None
        stats = cache.stats()
        assert (stats.hits, stats.misses) == (1, 0)

    def test_cached_empty_values_are_hits(self):
        cache = LRUCache(capacity=4)
        for i, value in enumerate(([], 0, "", ())):
            cache.put(i, value)
        for i, value in enumerate(([], 0, "", ())):
            assert cache.get(i, MISSING) == value
        assert cache.stats().hits == 4
        assert cache.stats().misses == 0

    def test_miss_returns_the_default(self):
        cache = LRUCache(capacity=4)
        assert cache.get("absent", MISSING) is MISSING
        assert cache.get("absent") is None  # relint: disable=R3 (asserting the documented None default itself)
        assert cache.stats().misses == 2

    def test_sentinel_is_falsy_and_unique(self):
        assert not MISSING
        assert MISSING is not None


class TestPlanCacheEviction:
    """A stale-version entry is evicted on discovery and counted as an
    invalidation — it must not keep occupying LRU capacity where it can
    push out live plans."""

    @staticmethod
    def plan_class(tag: str) -> PlanClass:
        return PlanClass(
            method="m",
            strategies=("regular",),
            entity1="A",
            entity2=tag,
            shape1=("all", 0),
            shape2=("all", 0),
            max_length=3,
            k_bucket=0,
            ranking="rare",
        )

    @classmethod
    def plan_for(cls, tag: str) -> QueryPlan:
        return QueryPlan(
            method="m",
            strategy="regular",
            plan_class=cls.plan_class(tag),
            alternatives=(PlanAlternative("regular", None, 1.0),),
        )

    def test_stale_version_entry_is_evicted(self):
        cache = PlanCache(capacity=4)
        pc = self.plan_class("B")
        cache.put(pc, 0, self.plan_for("B"))
        assert cache.get(pc, 1) is None  # version moved on
        stats = cache.stats()
        assert stats.misses == 1
        assert stats.invalidations == 1
        assert stats.size == 0  # the dead entry is gone, not resident

    def test_dead_entry_no_longer_evicts_live_plans(self):
        cache = PlanCache(capacity=2)
        stale, live = self.plan_class("stale"), self.plan_class("live")
        cache.put(stale, 0, self.plan_for("stale"))
        cache.put(live, 1, self.plan_for("live"))
        assert cache.get(stale, 1) is None  # discovery evicts the corpse
        cache.put(self.plan_class("new"), 1, self.plan_for("new"))
        # Before the fix the resident corpse made this put evict "live".
        assert cache.get(live, 1) is not None
        assert cache.stats().size == 2

    def test_uncosted_entry_misses_but_stays_resident(self):
        cache = PlanCache(capacity=4)
        pc = self.plan_class("B")
        cache.put(pc, 3, self.plan_for("B"))  # costed=False plan
        assert cache.get(pc, 3, require_costed=True) is None
        assert cache.stats().invalidations == 0
        assert cache.stats().size == 1  # still a fine hot-path plan
        assert cache.get(pc, 3) is not None


class TestNearestRankPercentile:
    """percentile() is the explicit nearest rank ceil(q/100 * n), not
    ``int(round(...))`` whose banker's rounding shifted p50 of an
    even-sized window up a rank."""

    @staticmethod
    def stats_with(samples):
        stats = LatencyStats("m")
        for s in samples:
            stats.record(s)
        return stats

    def test_p50_of_even_window_is_lower_middle(self):
        stats = self.stats_with([0.1, 0.2, 0.3, 0.4])
        assert stats.percentile(50) == 0.2  # was 0.3 via round(1.5) == 2

    def test_known_sample_set(self):
        stats = self.stats_with([0.4, 0.1, 0.3, 0.2])  # order-insensitive
        assert stats.percentile(25) == 0.1
        assert stats.percentile(75) == 0.3
        assert stats.percentile(95) == 0.4
        assert stats.percentile(100) == 0.4
        assert stats.percentile(0) == 0.1  # rank clamps to 1

    def test_odd_window_median(self):
        assert self.stats_with([3.0, 1.0, 2.0]).percentile(50) == 2.0

    def test_empty_window(self):
        assert LatencyStats("m").percentile(50) == 0.0

    def test_snapshot_uses_nearest_rank(self):
        stats = self.stats_with([0.1, 0.2, 0.3, 0.4])
        assert stats.snapshot()["p50_seconds"] == 0.2


class TestSnapshotConsistency:
    """snapshot() reads counters AND percentiles under ONE lock
    acquisition.  The old implementation re-locked once per percentile,
    so concurrent record() calls could slip between — a count from one
    window and a p95 from another, served verbatim by ``GET /stats``."""

    class CountingLock:
        """Context-manager lock that counts acquisitions."""

        def __init__(self):
            self._lock = threading.Lock()
            self.acquisitions = 0

        def __enter__(self):
            self._lock.acquire()
            self.acquisitions += 1
            return self

        def __exit__(self, *exc):
            self._lock.release()

    def test_snapshot_acquires_the_lock_exactly_once(self):
        stats = LatencyStats("m")
        for s in (0.1, 0.2, 0.3):
            stats.record(s)
        counter = self.CountingLock()
        stats._lock = counter
        snap = stats.snapshot()
        assert counter.acquisitions == 1
        assert snap["count"] == 3
        assert snap["p99_seconds"] == 0.3

    def test_snapshot_has_all_slo_percentiles(self):
        snap = LatencyStats("m").snapshot()
        assert {
            "count",
            "total_seconds",
            "mean_seconds",
            "min_seconds",
            "max_seconds",
            "p50_seconds",
            "p95_seconds",
            "p99_seconds",
            "buckets",
        } == set(snap)
        assert snap["count"] == 0
        assert snap["min_seconds"] == 0.0  # not math.inf on the wire

    def test_buckets_are_count_preserving(self):
        """Bucket counts cover every sample ever recorded — they sum to
        ``count`` even past the percentile window — and use the shared
        LATENCY_BUCKETS bounds so `/metrics` histograms line up with
        `/stats`."""
        from repro.obs import LATENCY_BUCKETS
        from repro.service.facade import LATENCY_SAMPLE_WINDOW

        stats = LatencyStats("m")
        for n in range(LATENCY_SAMPLE_WINDOW + 100):  # overflow the window
            stats.record(0.0001 if n % 2 else 20.0)  # first and +Inf buckets
        snap = stats.snapshot()
        buckets = snap["buckets"]
        assert buckets["le"] == list(LATENCY_BUCKETS)
        assert len(buckets["counts"]) == len(LATENCY_BUCKETS) + 1
        assert sum(buckets["counts"]) == snap["count"] == LATENCY_SAMPLE_WINDOW + 100
        assert buckets["counts"][0] == (LATENCY_SAMPLE_WINDOW + 100) // 2
        assert buckets["counts"][-1] == (LATENCY_SAMPLE_WINDOW + 100 + 1) // 2

    def test_every_snapshot_is_internally_consistent_under_races(self):
        """Writers hammer record() while readers take snapshots; every
        snapshot must describe ONE instant: ordered percentiles inside
        the [min, max] envelope and mean == total/count exactly."""
        stats = LatencyStats("m")
        stop = threading.Event()
        bad = []

        def writer(seed: int) -> None:
            value = float(seed + 1)
            while not stop.is_set():
                stats.record(value % 7 + 0.001)
                value += 1.0

        def reader() -> None:
            while not stop.is_set():
                snap = stats.snapshot()
                if snap["count"] == 0:
                    continue
                ok = (
                    snap["min_seconds"]
                    <= snap["p50_seconds"]
                    <= snap["p95_seconds"]
                    <= snap["p99_seconds"]
                    <= snap["max_seconds"]
                    and snap["mean_seconds"] == snap["total_seconds"] / snap["count"]
                )
                if not ok:
                    bad.append(snap)

        threads = [
            threading.Thread(target=writer, args=(n,)) for n in range(4)
        ] + [threading.Thread(target=reader) for _ in range(2)]
        for thread in threads:
            thread.start()
        time.sleep(0.3)
        stop.set()
        for thread in threads:
            thread.join(timeout=30)
        assert bad == []
        assert stats.count > 0


# ----------------------------------------------------------------------
# Server basics
# ----------------------------------------------------------------------
class TestServerQueries:
    def test_requires_a_built_system(self, tiny_dataset):
        unbuilt = TopologySearchSystem(tiny_dataset.database, tiny_dataset.graph())
        with pytest.raises(TopologyError, match="built"):
            TopologyServer(unbuilt)

    def test_repeat_query_served_from_cache(self, server):
        query = make_query()
        first = server.query(query)
        assert server.query(query) is first
        stats = server.stats()
        assert stats.result_cache.hits == 1
        assert stats.result_cache.misses == 1
        assert stats.executions == 1

    def test_results_match_the_engine(self, server, tiny_system):
        query = make_query()
        assert server.query(query).tids == tiny_system.search(query).tids

    def test_results_are_generation_stamped(self, server):
        assert server.query(make_query()).generation == server.generation == 1

    def test_counter_invariants(self, server):
        for keyword in ("kinase", "binding", "kinase"):
            server.query(make_query(keyword))
        stats = server.stats()
        assert stats.requests == 3
        assert stats.result_cache.hits + stats.result_cache.misses == stats.requests
        assert stats.result_cache.misses == stats.executions + stats.coalesced

    def test_explain_does_not_execute_or_cache(self, server):
        plan = server.explain(make_query())
        assert plan.has_costs
        assert server.stats().result_cache.size == 0

    def test_latency_records_only_executions(self, server):
        query = make_query()
        for _ in range(4):
            server.query(query)
        assert server.latency_stats()["fast-top-k-opt"]["count"] == 1

    def test_invalid_pair_raises_and_counts_failure(self, server):
        bad = TopologyQuery(
            "DNA",
            "Unigene",
            KeywordConstraint("DESC", "x"),
            AttributeConstraint("TYPE", "y"),
        )
        with pytest.raises(TopologyError):
            server.query(bad)
        stats = server.stats()
        assert stats.failures == 1
        assert stats.in_flight == 0  # the failed flight was removed


class TestHotRebuild:
    def test_rebuild_swaps_generation_without_touching_the_original(
        self, tiny_system
    ):
        with TopologyServer(tiny_system) as server:
            query = make_query()
            before = server.query(query)
            original_digest = tiny_system.require_store().state_digest()
            report = server.rebuild()
            assert report.alltops.distinct_topologies > 0
            assert server.generation == 2
            after = server.query(query)
            assert after is not before
            assert after.tids == before.tids  # same data -> same answer
            assert after.generation == 2
            # Hot rebuild built a clone; the original system is untouched
            # and still serves other owners.
            assert tiny_system.require_store().state_digest() == original_digest
            assert server.system is not tiny_system

    def test_rebuild_carries_config_and_calibration(self, tiny_system):
        with TopologyServer(tiny_system) as server:
            server.query(make_query())
            observed = sum(
                s["count"] for s in server.calibration_stats()["strategies"].values()
            )
            assert observed >= 1
            server.rebuild()
            carried = sum(
                s["count"] for s in server.calibration_stats()["strategies"].values()
            )
            assert carried == observed  # learned factors survive the swap
            assert server.system.max_length == tiny_system.max_length
            assert server.system.built_pairs == tiny_system.built_pairs

    def test_rebuild_overrides_win(self, tiny_system):
        with TopologyServer(tiny_system) as server:
            baseline = server.query(make_query()).tids
            server.rebuild(per_pair_path_limit=1)
            limited = server.query(make_query()).tids
            assert limited != baseline  # the override changed the store
            server.rebuild(per_pair_path_limit=None)
            assert server.query(make_query()).tids == baseline

    def test_rebuild_preserves_calibration_enabled_flag(self, tiny_system):
        tiny_system.calibration_enabled = False
        try:
            with TopologyServer(tiny_system) as server:
                server.rebuild()
                assert server.system.calibration_enabled is False
        finally:
            tiny_system.calibration_enabled = True

    def test_rebuild_drops_result_cache(self, tiny_system):
        with TopologyServer(tiny_system) as server:
            server.query(make_query())
            server.rebuild()
            assert server.stats().result_cache.size == 0
            assert server.stats().rebuilds == 1


class TestSnapshotLifecycle:
    def test_save_restore_round_trip(self, tiny_system, tmp_path):
        path = tmp_path / "srv.topo"
        query = make_query()
        with TopologyServer(tiny_system) as server:
            expected = server.query(query).tids
            server.save(path)
            server.restore(path)
            assert server.generation == 2
            assert server.stats().restores == 1
            assert server.query(query).tids == expected

    def test_from_snapshot(self, tiny_system, tmp_path):
        path = tmp_path / "srv.topo"
        tiny_system.save(path)
        with TopologyServer.from_snapshot(path, cache_size=16) as server:
            result = server.query(make_query())
            assert result.tids == tiny_system.search(make_query()).tids


class TestQueryMany:
    def workload(self):
        return [
            make_query(keyword, k)
            for keyword in ("kinase", "binding", "human")
            for k in (2, 4)
        ]

    def test_serial_batch_matches_submission_order(self, server):
        batch = self.workload()
        results = server.query_many(batch)
        assert [r.query for r in results] == batch

    def test_parallel_batch_matches_serial_oracle(self, tiny_system):
        batch = self.workload()
        oracle = [tiny_system.search(q).tids for q in batch]
        with TopologyServer(tiny_system) as server:
            results = server.query_many(batch, parallel=4)
            assert [r.tids for r in results] == oracle

    def test_parallel_batch_deduplicates(self, server):
        query = make_query()
        results = server.query_many([query] * 8, parallel=4)
        assert len(results) == 8
        assert len({id(r) for r in results}) == 1  # one shared result
        assert server.stats().executions == 1

    def test_plan_class_grouping_amortizes_planning(self, tiny_system):
        # Same class (same shape, same k bucket), distinct result keys.
        batch = [make_query("kinase", k) for k in (3, 4)] * 2
        # Freeze calibration: a version bump between the leader and the
        # follower would (correctly) evict the plan and hide the hit.
        tiny_system.calibration_enabled = False
        try:
            with TopologyServer(tiny_system) as server:
                before = server.plan_cache_stats()
                server.query_many(batch, parallel=2)
                after = server.plan_cache_stats()
                # 2 distinct keys -> 2 executions -> 2 plan lookups; the
                # leader planned, the follower wave hit.
                assert after.requests - before.requests == 2
                assert after.hits - before.hits >= 1
        finally:
            tiny_system.calibration_enabled = True

    def test_thread_batch_spans_join_the_callers_trace(self, server):
        """Regression pin (relint R4's defect): the thread-pool workers
        must run each batch slot inside a copy of the submitting
        caller's context.  Before the fix the pool threads carried an
        empty context, so every per-slot ``server.query`` ingress span
        started its own orphan trace and a traced batch shattered into
        unjoinable fragments."""
        batch = self.workload()
        with obs_span("test.batch", ingress=True) as root:
            server.query_many(batch, parallel=4)
        if not root.recording:
            pytest.skip("tracing disabled in this environment")
        spans = obs_tracer().trace_spans(root.trace_id)
        query_spans = [s for s in spans if s.name == "server.query"]
        assert len(query_spans) == len(batch)
        assert all(s.parent_id == root.span_id for s in query_spans)

    def test_unknown_mode_rejected(self, server):
        with pytest.raises(TopologyError, match="mode"):
            server.query_many([make_query()], parallel=2, mode="carrier-pigeon")

    def test_process_mode_matches_thread_mode(self, tiny_system):
        batch = self.workload()
        oracle = [tiny_system.search(q).tids for q in batch]
        with TopologyServer(tiny_system) as server:
            results = server.query_many(batch, parallel=2, mode="process")
            assert [r.tids for r in results] == oracle
            assert {r.generation for r in results} == {1}
            # Replica results warm the shared result cache.
            follow_up = server.query(batch[0])
            assert follow_up.tids == oracle[0]
            assert server.stats().result_cache.hits >= 1


class TestClose:
    def test_close_is_idempotent_and_queries_degrade_to_serial(self, tiny_system):
        server = TopologyServer(tiny_system)
        server.query(make_query())
        server.close()
        server.close()
        assert server.query(make_query("binding")).tids is not None
        # Batches still work after close — on the caller's thread.
        results = server.query_many(
            [make_query("kinase"), make_query("human")], parallel=2
        )
        assert [r.tids for r in results] == [
            tiny_system.search(make_query("kinase")).tids,
            tiny_system.search(make_query("human")).tids,
        ]
