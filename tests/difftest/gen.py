"""Seeded random workload generator for differential testing.

Generates schemas, data, expression trees, and SQL statements from an
explicit ``random.Random`` so every workload is reproducible from its
integer seed.  Two deliberate restrictions keep the row and columnar
engines *exactly* comparable (they are the documented divergence points
of the batch evaluator, see ``repro.relational.expressions``):

* **No possibly-zero divisors.**  Division only ever uses a non-zero
  integer literal as the divisor.  Both engines raise
  ``ZeroDivisionError`` on a zero divisor, but the batch engine raises
  while evaluating a whole batch where the row engine raises at the
  individual row — the error surfaces identically, yet any rows the row
  engine would have produced *before* the bad row are lost in the batch
  engine, so error-path outputs are not comparable row-for-row.

* **Bounded integers.**  Data integers stay within ±10 000 and literal
  operands within ±100, so arithmetic at the generated nesting depth
  stays far below 2^63: numpy's int64 would silently wrap where Python
  promotes to arbitrary precision.

Floats are unrestricted beyond being finite: IEEE-754 double arithmetic
is performed element-wise in the same order by both engines, so results
are bit-identical, not merely approximately equal.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core import (
    RANKING_SCHEMES,
    AttributeConstraint,
    ConjunctionConstraint,
    Constraint,
    KeywordConstraint,
    NoConstraint,
    TopologyQuery,
)
from repro.relational import Column, Database, DataType, TableSchema
from repro.relational.expressions import (
    And,
    Arith,
    ColumnRef,
    Comparison,
    Contains,
    Expression,
    InList,
    IsNull,
    Like,
    Literal,
    Neg,
    Not,
    Or,
)

WORDS = (
    "human", "mouse", "kinase", "binding", "membrane", "nuclear",
    "transcription", "receptor", "putative", "conserved", "domain",
    "signal", "transport", "repair", "ribosomal",
)

INT_LO, INT_HI = -10_000, 10_000
LIT_LO, LIT_HI = -100, 100
NULL_PROB = 0.15

#: column metadata the expression generator works from:
#: (alias, column name, DataType, nullable)
ColumnInfo = Tuple[str, str, DataType, bool]


def make_rng(seed: int) -> random.Random:
    return random.Random(seed)


# ----------------------------------------------------------------------
# Schemas and data
# ----------------------------------------------------------------------
def _gen_value(rng: random.Random, dtype: DataType, nullable: bool):
    if nullable and rng.random() < NULL_PROB:
        return None
    if dtype is DataType.INT:
        return rng.randint(INT_LO, INT_HI)
    if dtype is DataType.FLOAT:
        return rng.uniform(-1000.0, 1000.0)
    if dtype is DataType.BOOL:
        return rng.random() < 0.5
    return " ".join(rng.choice(WORDS) for _ in range(rng.randint(1, 4)))


def gen_database(
    rng: random.Random,
    n_tables: int = 2,
    rows_per_table: Optional[int] = None,
) -> Tuple[Database, Dict[str, List[ColumnInfo]]]:
    """A random database plus, per table, the column metadata the
    expression/query generators consume.

    Every table gets an ``ID`` primary key; tables after the first get a
    ``REF`` column drawn from the first table's ID range so equi-joins
    have realistic selectivity.  Secondary hash/sorted indexes are
    rolled randomly so the optimizer can pick index scans and
    index-nested-loop joins, not just heap scans.
    """
    db = Database("difftest")
    tables: Dict[str, List[ColumnInfo]] = {}
    first_rows = rows_per_table if rows_per_table is not None else rng.randint(40, 120)
    dtypes = (DataType.INT, DataType.FLOAT, DataType.BOOL, DataType.TEXT)
    for t in range(n_tables):
        name = f"t{t}"
        columns = [Column("ID", DataType.INT, True)]
        if t > 0:
            columns.append(Column("REF", DataType.INT, True))
        for c in range(rng.randint(2, 4)):
            columns.append(
                Column(f"C{c}", rng.choice(dtypes), rng.random() < 0.5)
            )
        schema = TableSchema(name, columns, primary_key="ID")
        table = db.create_table(schema)

        n_rows = rows_per_table if rows_per_table is not None else rng.randint(40, 120)
        ids = list(range(n_rows))
        rng.shuffle(ids)
        for rid in ids:
            row = [rid]
            if t > 0:
                row.append(rng.randrange(max(first_rows, 1)))
            for col in columns[len(row):]:
                row.append(_gen_value(rng, col.dtype, not col.not_null))
            table.insert(tuple(row))

        # Random secondary indexes over non-null scalar columns.
        for col in columns[1:]:
            if col.not_null and col.dtype is DataType.INT and rng.random() < 0.5:
                table.create_hash_index(f"hx_{name}_{col.name.lower()}", [col.name])
            if (
                col.not_null
                and col.dtype in (DataType.INT, DataType.FLOAT)
                and rng.random() < 0.3
            ):
                table.create_sorted_index(f"sx_{name}_{col.name.lower()}", col.name)

        tables[name] = [
            (name, col.name.lower(), col.dtype, not col.not_null)
            for col in columns
        ]
    return db, tables


# ----------------------------------------------------------------------
# Expression trees (for direct operator-level differential tests)
# ----------------------------------------------------------------------
def _gen_scalar(
    rng: random.Random, cols: Sequence[ColumnInfo], depth: int
) -> Tuple[Expression, DataType]:
    """A numeric-valued expression (column, literal, or arithmetic)."""
    numeric = [c for c in cols if c[2] in (DataType.INT, DataType.FLOAT)]
    roll = rng.random()
    if depth <= 0 or not numeric or roll < 0.35:
        if numeric and roll < 0.6:
            alias, name, dtype, _ = rng.choice(numeric)
            return ColumnRef(alias, name), dtype
        if rng.random() < 0.5:
            return Literal(rng.randint(LIT_LO, LIT_HI)), DataType.INT
        return Literal(round(rng.uniform(-100.0, 100.0), 3)), DataType.FLOAT
    if roll < 0.45:
        inner, dtype = _gen_scalar(rng, cols, depth - 1)
        return Neg(inner), dtype
    op = rng.choice(("+", "-", "*", "/"))
    left, ldt = _gen_scalar(rng, cols, depth - 1)
    if op == "/":
        # Non-zero literal divisor only (see module docstring).
        divisor = rng.choice([d for d in range(-9, 10) if d != 0])
        return Arith(op, left, Literal(divisor)), DataType.FLOAT
    right, rdt = _gen_scalar(rng, cols, depth - 1)
    out = DataType.FLOAT if DataType.FLOAT in (ldt, rdt) else DataType.INT
    return Arith(op, left, right), out


def _gen_leaf(rng: random.Random, cols: Sequence[ColumnInfo]) -> Expression:
    texts = [c for c in cols if c[2] is DataType.TEXT]
    bools = [c for c in cols if c[2] is DataType.BOOL]
    roll = rng.random()
    if texts and roll < 0.2:
        alias, name, _, _ = rng.choice(texts)
        word = rng.choice(WORDS)
        if rng.random() < 0.5:
            return Contains(ColumnRef(alias, name), Literal(word))
        pattern = rng.choice((f"%{word}%", f"{word}%", f"%{word}"))
        return Like(ColumnRef(alias, name), pattern, rng.random() < 0.3)
    if roll < 0.3:
        alias, name, _, _ = rng.choice(list(cols))
        return IsNull(ColumnRef(alias, name), negated=rng.random() < 0.5)
    if roll < 0.42:
        alias, name, dtype, _ = rng.choice(list(cols))
        options = [
            _gen_value(rng, dtype, False) for _ in range(rng.randint(1, 4))
        ]
        return InList(ColumnRef(alias, name), options, rng.random() < 0.3)
    if bools and roll < 0.5:
        alias, name, _, _ = rng.choice(bools)
        ref: Expression = ColumnRef(alias, name)
        return ref if rng.random() < 0.5 else Not(ref)
    op = rng.choice(("=", "<>", "<", "<=", ">", ">="))
    if rng.random() < 0.25:
        # Column-to-column, possibly cross-type (exercises coercion).
        (a1, n1, _, _), (a2, n2, _, _) = (
            rng.choice(list(cols)),
            rng.choice(list(cols)),
        )
        return Comparison(op, ColumnRef(a1, n1), ColumnRef(a2, n2))
    left, _ = _gen_scalar(rng, cols, rng.randint(0, 2))
    if rng.random() < 0.15:
        # Cross-type literal (string vs numeric) on purpose.
        right: Expression = Literal(rng.choice(WORDS))
    else:
        right, _ = _gen_scalar(rng, cols, rng.randint(0, 1))
    return Comparison(op, left, right)


def gen_expression(
    rng: random.Random, cols: Sequence[ColumnInfo], depth: int = 3
) -> Expression:
    """A random predicate over ``cols``, boolean combiners to ``depth``."""
    if depth <= 0 or rng.random() < 0.3:
        return _gen_leaf(rng, cols)
    roll = rng.random()
    if roll < 0.45:
        return And([gen_expression(rng, cols, depth - 1) for _ in range(rng.randint(2, 3))])
    if roll < 0.9:
        return Or([gen_expression(rng, cols, depth - 1) for _ in range(rng.randint(2, 3))])
    return Not(gen_expression(rng, cols, depth - 1))


# ----------------------------------------------------------------------
# SQL statements (for end-to-end Engine-level differential tests)
# ----------------------------------------------------------------------
def _sql_literal(value) -> str:
    if value is None:
        return "NULL"
    if isinstance(value, bool):
        return "TRUE" if value else "FALSE"
    if isinstance(value, str):
        return "'" + value.replace("'", "''") + "'"
    return repr(value)


def _sql_scalar(rng: random.Random, cols: Sequence[ColumnInfo], depth: int) -> str:
    numeric = [c for c in cols if c[2] in (DataType.INT, DataType.FLOAT)]
    if depth <= 0 or not numeric or rng.random() < 0.4:
        if numeric and rng.random() < 0.7:
            alias, name, _, _ = rng.choice(numeric)
            return f"{alias}.{name}"
        return _sql_literal(rng.randint(LIT_LO, LIT_HI))
    op = rng.choice(("+", "-", "*", "/"))
    left = _sql_scalar(rng, cols, depth - 1)
    if op == "/":
        divisor = rng.choice([d for d in range(-9, 10) if d != 0])
        return f"({left} / {divisor})"
    right = _sql_scalar(rng, cols, depth - 1)
    return f"({left} {op} {right})"


def _sql_leaf(rng: random.Random, cols: Sequence[ColumnInfo]) -> str:
    texts = [c for c in cols if c[2] is DataType.TEXT]
    roll = rng.random()
    if texts and roll < 0.2:
        alias, name, _, _ = rng.choice(texts)
        word = rng.choice(WORDS)
        if rng.random() < 0.5:
            return f"CONTAINS({alias}.{name}, {_sql_literal(word)})"
        pattern = rng.choice((f"%{word}%", f"{word}%", f"%{word}"))
        neg = "NOT " if rng.random() < 0.3 else ""
        return f"{alias}.{name} {neg}LIKE {_sql_literal(pattern)}"
    if roll < 0.32:
        alias, name, _, _ = rng.choice(list(cols))
        neg = " NOT" if rng.random() < 0.5 else ""
        return f"{alias}.{name} IS{neg} NULL"
    if roll < 0.45:
        alias, name, dtype, _ = rng.choice(list(cols))
        values = [_gen_value(rng, dtype, False) for _ in range(rng.randint(1, 4))]
        # The parser's IN list takes plain literals (no unary minus).
        values = [abs(v) if isinstance(v, (int, float)) and not isinstance(v, bool) else v
                  for v in values]
        options = ", ".join(_sql_literal(v) for v in values)
        neg = "NOT " if rng.random() < 0.3 else ""
        return f"{alias}.{name} {neg}IN ({options})"
    op = rng.choice(("=", "<>", "<", "<=", ">", ">="))
    left = _sql_scalar(rng, cols, rng.randint(0, 2))
    right = _sql_scalar(rng, cols, rng.randint(0, 1))
    return f"{left} {op} {right}"


def _sql_predicate(rng: random.Random, cols: Sequence[ColumnInfo], depth: int) -> str:
    if depth <= 0 or rng.random() < 0.35:
        return _sql_leaf(rng, cols)
    roll = rng.random()
    if roll < 0.45:
        parts = [_sql_predicate(rng, cols, depth - 1) for _ in range(2)]
        return "(" + " AND ".join(parts) + ")"
    if roll < 0.9:
        parts = [_sql_predicate(rng, cols, depth - 1) for _ in range(2)]
        return "(" + " OR ".join(parts) + ")"
    return "NOT (" + _sql_predicate(rng, cols, depth - 1) + ")"


def gen_queries(
    rng: random.Random,
    tables: Dict[str, List[ColumnInfo]],
    count: int = 6,
) -> List[str]:
    """Random SELECT statements over the generated tables.

    Mixes single-table scans, equi-joins on the generated REF -> ID
    relationship (plus a random residual predicate), DISTINCT,
    ORDER BY, and FETCH FIRST — enough surface to reach every batch
    operator through the real planner.
    """
    names = sorted(tables)
    queries: List[str] = []
    for _ in range(count):
        join = len(names) > 1 and rng.random() < 0.5
        if join:
            t_outer = rng.choice(names[1:])  # has REF
            t_inner = names[0]
            cols = tables[t_outer] + tables[t_inner]
            from_clause = f"{t_outer}, {t_inner}"
            conds = [f"{t_outer}.ref = {t_inner}.id"]
        else:
            t_outer = rng.choice(names)
            cols = tables[t_outer]
            from_clause = t_outer
            conds = []
        if rng.random() < 0.85:
            conds.append(_sql_predicate(rng, cols, rng.randint(1, 3)))
        where = f" WHERE {' AND '.join(conds)}" if conds else ""

        if rng.random() < 0.3:
            select = "*"
            orderable = cols
        else:
            k = rng.randint(1, min(4, len(cols)))
            picked = rng.sample(cols, k)
            select = ", ".join(f"{a}.{n}" for a, n, _, _ in picked)
            orderable = picked  # ORDER BY must reference projected columns
        distinct = "DISTINCT " if rng.random() < 0.25 else ""

        order = ""
        if rng.random() < 0.6:
            alias, name, _, _ = rng.choice(orderable)
            direction = " DESC" if rng.random() < 0.4 else ""
            order = f" ORDER BY {alias}.{name}{direction}"
        fetch = ""
        if rng.random() < 0.4:
            fetch = f" FETCH FIRST {rng.randint(1, 25)} ROWS ONLY"

        queries.append(
            f"SELECT {distinct}{select} FROM {from_clause}{where}{order}{fetch}"
        )
    return queries


# ----------------------------------------------------------------------
# Topology queries (for sharded-vs-unsharded differential tests)
# ----------------------------------------------------------------------
#: keyword vocabulary for constraint generation, split by the entity
#: types the biozon generator seeds keywords into (Protein/Interaction
#: DESC columns; see repro.biozon.generator).  Mixes the calibrated
#: selectivity-tier words with filler words that may match nothing —
#: empty answers are a legitimate differential case.
PROTEIN_WORDS = ("kinase", "binding", "human", "putative", "membrane", "zzz")
INTERACTION_WORDS = ("physical", "direct", "experimental", "conserved")
DNA_TYPES = ("mRNA", "genomic", "EST")


def _gen_constraint(rng: random.Random, entity: str) -> Constraint:
    """A random constraint valid for one biozon entity type."""
    roll = rng.random()
    if roll < 0.2:
        return NoConstraint()
    if entity == "DNA" and roll < 0.5:
        return AttributeConstraint("TYPE", rng.choice(DNA_TYPES))
    words = INTERACTION_WORDS if entity == "Interaction" else PROTEIN_WORDS
    if roll < 0.85:
        return KeywordConstraint("DESC", rng.choice(words))
    return ConjunctionConstraint(
        (
            KeywordConstraint("DESC", rng.choice(words)),
            KeywordConstraint("DESC", rng.choice(words)),
        )
    )


def gen_topology_queries(
    rng: random.Random,
    pairs: Sequence[Tuple[str, str]],
    count: int = 8,
    max_length: int = 3,
) -> List[TopologyQuery]:
    """Random :class:`TopologyQuery` objects over the built entity pairs.

    Roughly a quarter are exhaustive (``k=None`` — only the exhaustive
    methods accept these); the rest carry a small top-k cut-off and a
    random ranking scheme, so a sweep exercises both merge shapes of a
    scatter-gather coordinator plus the exhaustive-method-with-k edge
    (exhaustive methods rank-and-cut too when the query carries ``k``).
    """
    queries: List[TopologyQuery] = []
    for _ in range(count):
        entity1, entity2 = rng.choice(list(pairs))
        if rng.random() < 0.25:
            k, ranking = None, "freq"
        else:
            k, ranking = rng.randint(1, 8), rng.choice(RANKING_SCHEMES)
        queries.append(
            TopologyQuery(
                entity1,
                entity2,
                _gen_constraint(rng, entity1),
                _gen_constraint(rng, entity2),
                max_length=max_length,
                k=k,
                ranking=ranking,
            )
        )
    return queries
