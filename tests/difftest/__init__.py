"""Differential testing support: seeded random workload generation.

The columnar execution engine (PR: vectorized columnar relational
engine) is proven bit-identical to the retained row-at-a-time reference
engine by running randomly generated schemas, data, expression trees,
and SQL statements through both and asserting identical answers.  This
package holds the generator (:mod:`difftest.gen`); the assertions live
in ``tests/relational/test_columnar_equivalence.py``.

Every generator function takes a ``random.Random`` built from an
explicit integer seed, and the test layer prints the failing seed so
any discrepancy reproduces with a one-line ``make_rng(seed)`` call in a
REPL.  The seed *count* is tunable from the command line
(``--difftest-seeds N``) so CI can run a deeper nightly-style sweep
without code changes.

Importable as ``difftest`` because the root ``tests/conftest.py``
directory is on ``sys.path`` under pytest's rootdir import mode.
"""
