"""The slow-query log: the golden record shape, thresholding, and the
JSON line it emits on the ``repro.slowquery`` logger."""

from __future__ import annotations

import json
import logging

from repro.obs import SLOW_QUERY_LOGGER, SlowQueryLog, default_slow_query_seconds
from repro.obs.slowlog import THRESHOLD_ENV
from repro.obs.trace import SpanRecord


def make_span(name: str, span_id: str, parent_id=None) -> SpanRecord:
    return SpanRecord(
        trace_id="trace1",
        span_id=span_id,
        parent_id=parent_id,
        name=name,
        start_unix=100.0,
        elapsed_seconds=1.5,
        tags={"ignored": "by the breakdown"},
    )


class TestThreshold:
    def test_under_threshold_is_silent(self):
        log = SlowQueryLog(threshold_seconds=1.0)
        assert log.maybe_record(
            elapsed_seconds=0.5, method="m", query={}, generation=1
        ) is None
        assert log.recent() == []
        assert log.stats()["emitted"] == 0

    def test_default_comes_from_the_environment(self, monkeypatch):
        monkeypatch.setenv(THRESHOLD_ENV, "2.5")
        assert default_slow_query_seconds() == 2.5
        monkeypatch.setenv(THRESHOLD_ENV, "garbage")
        assert default_slow_query_seconds() == 1.0
        monkeypatch.setenv(THRESHOLD_ENV, "-3")
        assert default_slow_query_seconds() == 1.0
        monkeypatch.delenv(THRESHOLD_ENV)
        assert default_slow_query_seconds() == 1.0


class TestGoldenRecord:
    def test_record_shape_is_pinned(self):
        """The full structured record, field by field — this is the
        contract operators' log pipelines parse."""
        log = SlowQueryLog(threshold_seconds=1.0, source="server")
        record = log.maybe_record(
            elapsed_seconds=2.0,
            method="fast-top-k-opt",
            query={
                "entity1": "Protein",
                "entity2": "DNA",
                "max_length": 3,
                "k": 4,
                "ranking": "rare",
            },
            generation=7,
            trace_id="trace1",
            plan={"choice": "et-idgj"},
            calibrator_version=3,
            spans=[make_span("server.query", "s1"), make_span("engine.plan", "s2", "s1")],
        )
        assert record == {
            "event": "slow_query",
            "source": "server",
            "trace_id": "trace1",
            "method": "fast-top-k-opt",
            "query": {
                "entity1": "Protein",
                "entity2": "DNA",
                "max_length": 3,
                "k": 4,
                "ranking": "rare",
            },
            "elapsed_seconds": 2.0,
            "threshold_seconds": 1.0,
            "plan": {"choice": "et-idgj"},
            "calibrator_version": 3,
            "generation": 7,
            "spans": [
                {
                    "name": "server.query",
                    "span_id": "s1",
                    "parent_id": None,
                    "elapsed_seconds": 1.5,
                },
                {
                    "name": "engine.plan",
                    "span_id": "s2",
                    "parent_id": "s1",
                    "elapsed_seconds": 1.5,
                },
            ],
        }
        assert log.recent() == [record]
        assert log.stats() == {"threshold_seconds": 1.0, "emitted": 1}

    def test_emits_one_parseable_json_warning_line(self, caplog):
        log = SlowQueryLog(threshold_seconds=0.0, source="coordinator")
        with caplog.at_level(logging.WARNING, logger=SLOW_QUERY_LOGGER):
            log.maybe_record(
                elapsed_seconds=0.1, method="m", query={"entity1": "A"}, generation=1
            )
        records = [r for r in caplog.records if r.name == SLOW_QUERY_LOGGER]
        assert len(records) == 1
        parsed = json.loads(records[0].getMessage())
        assert parsed["event"] == "slow_query"
        assert parsed["source"] == "coordinator"
        assert parsed["query"] == {"entity1": "A"}

    def test_ring_is_bounded(self):
        log = SlowQueryLog(threshold_seconds=0.0, keep=3)
        for n in range(5):
            log.maybe_record(
                elapsed_seconds=float(n), method="m", query={}, generation=n
            )
        recent = log.recent()
        assert len(recent) == 3
        assert [r["generation"] for r in recent] == [2, 3, 4]
        assert log.stats()["emitted"] == 5
