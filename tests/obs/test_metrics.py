"""The metrics registry and its Prometheus text exposition.

The property tests pin the exposition contract `/metrics` relies on:
whatever gets registered, the rendered text parses line by line under
the 0.0.4 grammar and every registered metric family appears exactly
once (one ``# TYPE`` header, samples grouped under it)."""

from __future__ import annotations

import re
from typing import Dict, List, Tuple

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs import LATENCY_BUCKETS, MetricsRegistry, bucket_index, prom_name

_NAME_RE = r"[a-zA-Z_:][a-zA-Z0-9_:]*"
_SAMPLE_RE = re.compile(
    rf"^(?P<name>{_NAME_RE})"
    r"(?:\{(?P<labels>.*)\})?"
    r" (?P<value>[^ ]+)$"
)
_LABEL_ITEM = re.compile(rf'(?P<key>{_NAME_RE})="(?P<value>(?:[^"\\]|\\.)*)"')


def _parse_labels(raw: str) -> Dict[str, str]:
    """Parse the inside of ``{...}``: quoted values may contain commas
    and braces (only ``\\``, ``"`` and newline are escaped), so this
    walks label by label instead of splitting on commas."""
    labels: Dict[str, str] = {}
    pos = 0
    while pos < len(raw):
        match = _LABEL_ITEM.match(raw, pos)
        assert match, f"unparseable labels at {raw[pos:]!r}"
        labels[match.group("key")] = match.group("value")
        pos = match.end()
        if pos < len(raw):
            assert raw[pos] == ",", f"expected ',' in labels: {raw!r}"
            pos += 1
    return labels


def parse_exposition(text: str):
    """Parse Prometheus text format 0.0.4; raises on malformed lines.

    Returns ``(types, samples)``: family name -> kind, and sample name
    -> list of (labels, value)."""
    types: Dict[str, str] = {}
    samples: Dict[str, List[Tuple[Dict[str, str], float]]] = {}
    assert text.endswith("\n")
    # Split on "\n" only: it is the format's sole line terminator, and
    # escaped label values may legally contain every other control
    # character raw.
    for line in text[:-1].split("\n"):
        assert line, "blank line in exposition"
        if line.startswith("# HELP "):
            continue
        if line.startswith("# TYPE "):
            _, _, rest = line.partition("# TYPE ")
            name, _, kind = rest.partition(" ")
            assert re.fullmatch(_NAME_RE, name), name
            assert kind in ("counter", "gauge", "histogram", "untyped"), kind
            assert name not in types, f"duplicate # TYPE for {name}"
            types[name] = kind
            continue
        match = _SAMPLE_RE.match(line)
        assert match, f"unparseable sample line: {line!r}"
        raw = match.group("labels")
        labels = _parse_labels(raw) if raw else {}
        value = match.group("value")
        parsed = float("inf") if value == "+Inf" else float(value)
        samples.setdefault(match.group("name"), []).append((labels, parsed))
    return types, samples


# ----------------------------------------------------------------------
# Deterministic registry behaviour
# ----------------------------------------------------------------------
class TestRegistry:
    def test_get_or_create_returns_the_same_metric(self):
        registry = MetricsRegistry()
        assert registry.counter("a.b") is registry.counter("a.b")

    def test_kind_mismatch_is_an_error(self):
        registry = MetricsRegistry()
        registry.counter("a.b")
        with pytest.raises(ValueError, match="already registered"):
            registry.gauge("a.b")

    def test_counter_accumulates_per_label_set(self):
        registry = MetricsRegistry()
        counter = registry.counter("hits")
        counter.inc()
        counter.inc(2, shard="0")
        counter.inc(3, shard="0")
        _, samples = parse_exposition(registry.render())
        by_labels = {tuple(sorted(l.items())): v for l, v in samples["hits"]}
        assert by_labels[()] == 1
        assert by_labels[(("shard", "0"),)] == 5

    def test_gauge_set_inc_dec(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("depth")
        gauge.set(10)
        gauge.inc(5)
        gauge.dec(2)
        _, samples = parse_exposition(registry.render())
        assert samples["depth"] == [({}, 13.0)]

    def test_histogram_buckets_are_cumulative(self):
        registry = MetricsRegistry()
        hist = registry.histogram("lat", buckets=(0.1, 1.0))
        for value in (0.05, 0.5, 0.5, 5.0):
            hist.observe(value)
        _, samples = parse_exposition(registry.render())
        buckets = {l["le"]: v for l, v in samples["lat_bucket"]}
        assert buckets == {"0.1": 1, "1": 3, "+Inf": 4}
        assert samples["lat_count"] == [({}, 4.0)]
        assert samples["lat_sum"][0][1] == pytest.approx(6.05)

    def test_label_values_are_escaped(self):
        registry = MetricsRegistry()
        registry.counter("odd").inc(path='a"b\\c\nd')
        types, samples = parse_exposition(registry.render())
        ((labels, _),) = samples["odd"]
        assert labels["path"] == 'a\\"b\\\\c\\nd'

    def test_collectors_merge_into_families(self):
        registry = MetricsRegistry()
        registry.add_collector(
            lambda: [("derived.x", "gauge", "help", ("derived.x", {}, 7.0))]
        )
        types, samples = parse_exposition(registry.render())
        assert types["derived_x"] == "gauge"
        assert samples["derived_x"] == [({}, 7.0)]

    def test_extra_families_do_not_shadow_registered(self):
        registry = MetricsRegistry()
        registry.counter("a.b").inc(4)
        extra = [("a.b", "gauge", "impostor", [("a.b", {}, 99.0)])]
        types, samples = parse_exposition(registry.render(extra_families=extra))
        assert types["a_b"] == "counter"
        assert samples["a_b"] == [({}, 4.0)]

    def test_bucket_index_is_le_inclusive(self):
        assert bucket_index((0.1, 1.0), 0.1) == 0
        assert bucket_index((0.1, 1.0), 0.5) == 1
        assert bucket_index((0.1, 1.0), 2.0) == 2

    def test_prom_name_sanitizes(self):
        assert prom_name("repro.http.requests") == "repro_http_requests"
        assert prom_name("1weird-name") == "_1weird_name"


# ----------------------------------------------------------------------
# Property: exposition is parseable, every metric exactly once
# ----------------------------------------------------------------------
_names = st.lists(
    st.text(alphabet="abcdefghijklmnopqrstuvwxyz", min_size=1, max_size=6),
    min_size=1,
    max_size=3,
).map(".".join)

_specs = st.lists(
    st.tuples(
        _names,
        st.sampled_from(["counter", "gauge", "histogram"]),
        st.floats(min_value=0, max_value=1e6, allow_nan=False),
        st.dictionaries(
            st.text(alphabet="abcdefghijklmnopqrstuvwxyz", min_size=1, max_size=4),
            st.text(max_size=8),
            max_size=2,
        ),
    ),
    min_size=1,
    max_size=8,
    unique_by=lambda spec: prom_name(spec[0]),
)


class TestExpositionProperty:
    @settings(max_examples=50, deadline=None)
    @given(specs=_specs)
    def test_render_parses_and_covers_every_metric_exactly_once(self, specs):
        registry = MetricsRegistry()
        for name, kind, value, labels in specs:
            if kind == "counter":
                registry.counter(name).inc(value, **labels)
            elif kind == "gauge":
                registry.gauge(name).set(value, **labels)
            else:
                registry.histogram(name, buckets=LATENCY_BUCKETS).observe(
                    value, **labels
                )
        types, samples = parse_exposition(registry.render())
        assert len(registry.names()) == len(specs)
        for name, kind, value, labels in specs:
            base = prom_name(name)
            # exactly once: one # TYPE line of the right kind (parse
            # already rejects duplicates), samples under that family.
            assert types[base] == kind
            if kind == "histogram":
                series = samples[base + "_bucket"]
                count_by_labels = {}
                for sample_labels, sample_value in series:
                    le = sample_labels["le"]
                    if le == "+Inf":
                        count_by_labels[
                            tuple(sorted(
                                (k, v) for k, v in sample_labels.items() if k != "le"
                            ))
                        ] = sample_value
                assert sum(count_by_labels.values()) == 1  # one observation
                assert samples[base + "_count"][0][1] == 1
            else:
                total = sum(v for _, v in samples[base])
                assert total == pytest.approx(value)
