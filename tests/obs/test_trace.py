"""Unit tests for the tracer: span lifecycle, parent links, the ring
buffer bounds, and the explicit cross-process handoff
(``current_wire`` → ``adopt`` → ``take`` → ``ingest``)."""

from __future__ import annotations

import pytest

from repro.obs import NOOP_SPAN, SpanRecord, TraceContext, Tracer


@pytest.fixture()
def tracer():
    return Tracer(enabled=True)


class TestSpanLifecycle:
    def test_ingress_starts_a_trace(self, tracer):
        with tracer.span("root", ingress=True) as root:
            assert root.recording
            assert tracer.current().trace_id == root.trace_id
        assert tracer.current() is None
        spans = tracer.trace_spans(root.trace_id)
        assert [s.name for s in spans] == ["root"]
        assert spans[0].parent_id is None

    def test_interior_span_without_context_is_a_noop(self, tracer):
        with tracer.span("interior") as span:
            assert span is NOOP_SPAN
        assert tracer.stats()["spans_recorded"] == 0

    def test_disabled_tracer_noops_even_at_ingress(self):
        tracer = Tracer(enabled=False)
        with tracer.span("root", ingress=True) as span:
            assert span is NOOP_SPAN
        assert tracer.current_wire() is None
        assert tracer.stats()["spans_recorded"] == 0

    def test_children_link_to_their_parent(self, tracer):
        with tracer.span("root", ingress=True) as root:
            with tracer.span("child") as child:
                with tracer.span("grandchild"):
                    pass
        spans = {s.name: s for s in tracer.trace_spans(root.trace_id)}
        assert spans["grandchild"].parent_id == spans["child"].span_id
        assert spans["child"].parent_id == spans["root"].span_id
        assert spans["root"].parent_id is None
        assert {s.trace_id for s in spans.values()} == {root.trace_id}
        assert child.trace_id == root.trace_id

    def test_sibling_spans_share_the_parent(self, tracer):
        with tracer.span("root", ingress=True) as root:
            with tracer.span("first"):
                pass
            with tracer.span("second"):
                pass
        spans = {s.name: s for s in tracer.trace_spans(root.trace_id)}
        assert spans["first"].parent_id == spans["root"].span_id
        assert spans["second"].parent_id == spans["root"].span_id

    def test_exception_is_recorded_and_propagates(self, tracer):
        with pytest.raises(ValueError):
            with tracer.span("root", ingress=True) as root:
                raise ValueError("boom")
        (span,) = tracer.trace_spans(root.trace_id)
        assert span.error == "ValueError: boom"

    def test_tags_travel_to_the_record(self, tracer):
        with tracer.span("root", ingress=True, a=1) as root:
            root.tag(b=2)
        (span,) = tracer.trace_spans(root.trace_id)
        assert span.tags == {"a": 1, "b": 2}

    def test_elapsed_and_start_are_sane(self, tracer):
        with tracer.span("root", ingress=True) as root:
            pass
        (span,) = tracer.trace_spans(root.trace_id)
        assert span.elapsed_seconds >= 0
        assert span.start_unix > 0


class TestRingBounds:
    def test_oldest_trace_evicted_at_capacity(self):
        tracer = Tracer(enabled=True, max_traces=3)
        ids = []
        for _ in range(5):
            with tracer.span("root", ingress=True) as root:
                pass
            ids.append(root.trace_id)
        assert tracer.stats()["traces"] == 3
        assert tracer.trace_spans(ids[0]) == []
        assert tracer.trace_spans(ids[-1]) != []

    def test_spans_past_per_trace_cap_are_dropped(self):
        tracer = Tracer(enabled=True, max_spans_per_trace=4)
        with tracer.span("root", ingress=True) as root:
            for _ in range(10):
                with tracer.span("child"):
                    pass
        assert len(tracer.trace_spans(root.trace_id)) == 4
        assert tracer.stats()["spans_dropped"] > 0


class TestCrossProcessHandoff:
    def test_wire_roundtrip(self, tracer):
        with tracer.span("root", ingress=True) as root:
            wire = tracer.current_wire()
        ctx = TraceContext.from_wire(wire)
        assert ctx.trace_id == root.trace_id

    @pytest.mark.parametrize("wire", [None, 7, "x", {}, {"trace_id": 1}])
    def test_malformed_wire_is_rejected(self, wire):
        assert TraceContext.from_wire(wire) is None

    def test_adopt_take_ingest(self, tracer):
        """The full parent → worker → parent shipping cycle, in one
        process: spans recorded under an adopted context drain with
        take() and merge back with ingest(), keeping trace and parent
        ids intact."""
        worker = Tracer(enabled=True)
        with tracer.span("root", ingress=True) as root:
            wire = tracer.current_wire()
            with worker.adopt(wire):
                with worker.span("worker.op") as op:
                    pass
            shipped = worker.take(op.trace_id)
        assert worker.trace_spans(op.trace_id) == []  # drained
        assert tracer.ingest(shipped) == 1
        spans = {s.name: s for s in tracer.trace_spans(root.trace_id)}
        assert spans["worker.op"].trace_id == root.trace_id
        assert spans["worker.op"].parent_id == spans["root"].span_id

    def test_adopting_none_leaves_spans_unrecorded(self, tracer):
        with tracer.adopt(None):
            with tracer.span("interior") as span:
                assert span is NOOP_SPAN
        assert tracer.stats()["spans_recorded"] == 0

    def test_ingest_skips_malformed_spans(self, tracer):
        good = SpanRecord(
            trace_id="t", span_id="s", parent_id=None, name="n",
            start_unix=1.0, elapsed_seconds=0.5,
        ).to_wire()
        assert tracer.ingest([{"nope": 1}, good, "junk"]) == 1


class TestReading:
    def test_trace_tree_nests_children(self, tracer):
        with tracer.span("root", ingress=True) as root:
            with tracer.span("child"):
                pass
        tree = tracer.trace_tree(root.trace_id)
        assert tree["span_count"] == 2
        (top,) = tree["spans"]
        assert top["name"] == "root"
        assert [c["name"] for c in top["children"]] == ["child"]
        assert tree["elapsed_seconds"] >= 0

    def test_unknown_trace_tree_is_none(self, tracer):
        assert tracer.trace_tree("missing") is None

    def test_recent_is_newest_first(self, tracer):
        ids = []
        for _ in range(3):
            with tracer.span("root", ingress=True) as root:
                pass
            ids.append(root.trace_id)
        summaries = tracer.recent()
        assert [s["trace_id"] for s in summaries] == list(reversed(ids))
        assert all(s["root"] == "root" for s in summaries)

    def test_reset_clears_everything(self, tracer):
        with tracer.span("root", ingress=True):
            pass
        tracer.reset()
        assert tracer.stats() == {
            "enabled": True,
            "traces": 0,
            "spans_recorded": 0,
            "spans_dropped": 0,
        }
