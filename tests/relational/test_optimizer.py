"""System-R optimizer: plan choice, interesting orders, and result
correctness against a canonical nested-loops evaluation."""

from __future__ import annotations

import itertools
import random

import pytest

from repro.relational import Column, Database, StatsCatalog, TableSchema
from repro.relational.expressions import (
    ColumnRef,
    Comparison,
    Contains,
    Literal,
)
from repro.relational.optimizer import SPJBlock, SystemROptimizer, build_block
from repro.relational.optimizer.logical import BaseRelation, equi_edges
from repro.relational.types import DataType
from repro.errors import OptimizerError


@pytest.fixture(scope="module")
def db():
    rng = random.Random(11)
    db = Database("opt")
    big = db.create_table(
        TableSchema(
            "Big",
            [
                Column("ID", DataType.INT, True),
                Column("FK", DataType.INT),
                Column("TAG", DataType.TEXT),
            ],
            primary_key="ID",
        )
    )
    big.create_hash_index("by_fk", ["FK"])
    big.bulk_load(
        [(i, rng.randint(1, 40), rng.choice(["hot", "cold"])) for i in range(1, 801)]
    )
    small = db.create_table(
        TableSchema(
            "Small",
            [Column("ID", DataType.INT, True), Column("NAME", DataType.TEXT)],
            primary_key="ID",
        )
    )
    small.create_sorted_index("by_name", "NAME")
    small.bulk_load([(i, f"name{i:02d}") for i in range(1, 41)])
    return db


@pytest.fixture(scope="module")
def optimizer(db):
    stats = StatsCatalog(db)
    stats.refresh()
    return SystemROptimizer(db, stats)


def reference_join(db, block: SPJBlock):
    """Brute-force evaluation of a block for correctness checks."""
    tables = [list(db.table(rel.table).rows) for rel in block.relations]
    layout_entries = []
    for rel in block.relations:
        for col in db.table(rel.table).schema.columns:
            layout_entries.append((rel.alias, col.name))
    from repro.relational.expressions import RowLayout, conjoin, is_truthy

    layout = RowLayout(layout_entries)
    all_preds = list(block.join_conjuncts)
    for rel in block.relations:
        all_preds.extend(rel.local_predicates)
    pred = conjoin(all_preds)
    fn = pred.bind(layout) if pred is not None else None
    out = []
    for combo in itertools.product(*tables):
        row = tuple(x for part in combo for x in part)
        if fn is None or is_truthy(fn(row)):
            out.append(row)
    return out


def project_common(rows, layout, entries):
    positions = [layout.position(a, c) for a, c in entries]
    return sorted(tuple(row[p] for p in positions) for row in rows)


class TestPlanChoice:
    def test_selective_eq_uses_index(self, db, optimizer):
        block = build_block(
            [("Small", "s")],
            [Comparison("=", ColumnRef("s", "id"), Literal(7))],
        )
        cand = optimizer.optimize(block)
        assert "HashIndexScan" in cand.description

    def test_unselective_uses_seq_scan(self, db, optimizer):
        block = build_block(
            [("Big", "b")],
            [Comparison("=", ColumnRef("b", "tag"), Literal("hot"))],
        )
        cand = optimizer.optimize(block)
        assert "SeqScan" in cand.description

    def test_join_prefers_index_or_hash(self, db, optimizer):
        block = build_block(
            [("Big", "b"), ("Small", "s")],
            [Comparison("=", ColumnRef("b", "fk"), ColumnRef("s", "id"))],
        )
        cand = optimizer.optimize(block)
        assert "NestedLoopJoin" not in cand.description

    def test_desired_order_returns_ordered_candidate(self, db, optimizer):
        block = build_block([("Small", "s")], [])
        cand = optimizer.optimize(block, desired_order=("s", "name", False))
        assert cand.order == ("s", "name", False)

    def test_desired_order_ignored_when_absent(self, db, optimizer):
        block = build_block([("Big", "b")], [])
        cand = optimizer.optimize(block, desired_order=("b", "tag", False))
        assert cand.order is None

    def test_cross_product_without_conjuncts(self, db, optimizer):
        block = build_block([("Small", "s"), ("Small", "s2")], [])
        cand = optimizer.optimize(block)
        assert "NestedLoopJoin" in cand.description


class TestPlanCorrectness:
    @pytest.mark.parametrize(
        "conjuncts",
        [
            [],
            [Comparison("=", ColumnRef("b", "tag"), Literal("hot"))],
        ],
        ids=["no-filter", "filtered"],
    )
    def test_two_way_join_matches_reference(self, db, optimizer, conjuncts):
        block = build_block(
            [("Big", "b"), ("Small", "s")],
            conjuncts
            + [Comparison("=", ColumnRef("b", "fk"), ColumnRef("s", "id"))],
        )
        cand = optimizer.optimize(block)
        plan = cand.build()
        expected = reference_join(db, block)
        entries = [("b", "id"), ("s", "id")]
        from repro.relational.expressions import RowLayout

        ref_layout_entries = []
        for rel in block.relations:
            for col in db.table(rel.table).schema.columns:
                ref_layout_entries.append((rel.alias, col.name))
        ref_layout = RowLayout(ref_layout_entries)
        assert project_common(plan.run(), plan.layout, entries) == project_common(
            expected, ref_layout, entries
        )

    def test_three_way_join_matches_reference(self, db, optimizer):
        block = build_block(
            [("Big", "b"), ("Small", "s"), ("Big", "b2")],
            [
                Comparison("=", ColumnRef("b", "fk"), ColumnRef("s", "id")),
                Comparison("=", ColumnRef("b2", "fk"), ColumnRef("s", "id")),
                Comparison("=", ColumnRef("b", "id"), Literal(5)),
            ],
        )
        cand = optimizer.optimize(block)
        plan = cand.build()
        expected = reference_join(db, block)
        entries = [("b", "id"), ("s", "id"), ("b2", "id")]
        from repro.relational.expressions import RowLayout

        ref_layout_entries = []
        for rel in block.relations:
            for col in db.table(rel.table).schema.columns:
                ref_layout_entries.append((rel.alias, col.name))
        ref_layout = RowLayout(ref_layout_entries)
        assert project_common(plan.run(), plan.layout, entries) == project_common(
            expected, ref_layout, entries
        )

    def test_theta_join_matches_reference(self, db, optimizer):
        block = build_block(
            [("Small", "s"), ("Small", "s2")],
            [Comparison("<", ColumnRef("s", "id"), ColumnRef("s2", "id"))],
        )
        cand = optimizer.optimize(block)
        rows = cand.build().run()
        assert len(rows) == 40 * 39 // 2


class TestLogicalHelpers:
    def test_build_block_distributes_predicates(self):
        local = Comparison("=", ColumnRef("a", "x"), Literal(1))
        join = Comparison("=", ColumnRef("a", "x"), ColumnRef("b", "y"))
        block = build_block([("T1", "a"), ("T2", "b")], [local, join])
        assert block.relation("a").local_predicates == [local]
        assert block.join_conjuncts == [join]

    def test_build_block_rejects_unknown_alias(self):
        stray = Comparison("=", ColumnRef("zz", "x"), Literal(1))
        with pytest.raises(OptimizerError):
            build_block([("T1", "a")], [stray])

    def test_duplicate_alias_rejected(self):
        with pytest.raises(OptimizerError):
            SPJBlock([BaseRelation("T", "a"), BaseRelation("T", "a")])

    def test_equi_edges(self):
        join = Comparison("=", ColumnRef("a", "x"), ColumnRef("b", "y"))
        theta = Comparison("<", ColumnRef("a", "x"), ColumnRef("b", "y"))
        block = build_block([("T1", "a"), ("T2", "b")], [join, theta])
        edges = equi_edges(block)
        assert len(edges) == 1
        assert edges[0].left_alias == "a" and edges[0].right_column == "y"
