"""DGJ operators (Section 5.3): group order preservation, skipping,
and equivalence with regular joins when groups are fully drained."""

from __future__ import annotations

import pytest

from repro.relational import Column, Database, TableSchema
from repro.relational.expressions import ColumnRef, Comparison, Contains, Literal
from repro.relational.operators import (
    FirstPerGroup,
    Filter,
    GroupFilter,
    HDGJ,
    IDGJ,
    HashJoin,
    OrderedIndexScan,
    SeqScan,
)
from repro.relational.types import DataType


@pytest.fixture
def db():
    db = Database("dgj")
    topinfo = db.create_table(
        TableSchema(
            "TopInfo",
            [Column("TID", DataType.INT, True), Column("SCORE", DataType.FLOAT)],
            primary_key="TID",
        )
    )
    topinfo.create_sorted_index("by_score", "SCORE")
    topinfo.bulk_load([(1, 0.9), (2, 0.8), (3, 0.7), (4, 0.6)])

    pairs = db.create_table(
        TableSchema(
            "Pairs",
            [
                Column("E1", DataType.INT),
                Column("E2", DataType.INT),
                Column("TID", DataType.INT),
            ],
        )
    )
    pairs.create_hash_index("by_tid", ["TID"])
    # tid 1: two pairs (one matching); tid 2: no pairs at all;
    # tid 3: pairs that fail the predicate; tid 4: matching pair.
    pairs.bulk_load(
        [
            (100, 200, 1),
            (101, 201, 1),
            (102, 202, 3),
            (103, 203, 4),
        ]
    )

    prot = db.create_table(
        TableSchema(
            "Prot",
            [Column("ID", DataType.INT, True), Column("DESC", DataType.TEXT)],
            primary_key="ID",
        )
    )
    prot.bulk_load(
        [
            (100, "nope"),
            (101, "enzyme yes"),
            (102, "nope"),
            (103, "enzyme yes"),
        ]
    )
    return db


def _scan(db):
    topinfo = db.table("TopInfo")
    return OrderedIndexScan(
        topinfo,
        "t",
        topinfo.sorted_index_on("SCORE"),
        descending=True,
        group_positions=[0],
        stats=db.stats,
    )


def _idgj_stack(db):
    scan = _scan(db)
    pairs = db.table("Pairs")
    j1 = IDGJ(scan, pairs, "pt", pairs.hash_index_on(["TID"]), [0])
    prot = db.table("Prot")
    pred = Contains(ColumnRef("p", "desc"), Literal("enzyme"))
    return IDGJ(
        j1, prot, "p", prot.hash_index_on(["ID"]),
        [j1.layout.position("pt", "e1")], residual=pred,
    )


def _hdgj_stack(db):
    scan = _scan(db)
    pairs = db.table("Pairs")
    j1 = IDGJ(scan, pairs, "pt", pairs.hash_index_on(["TID"]), [0])
    prot = db.table("Prot")

    def inner():
        return Filter(
            SeqScan(prot, "p", db.stats),
            Contains(ColumnRef("p", "desc"), Literal("enzyme")),
        )

    return HDGJ(j1, inner, [j1.layout.position("pt", "e1")], [0])


class TestGroupOrder:
    @pytest.mark.parametrize("builder", [_idgj_stack, _hdgj_stack])
    def test_groups_in_score_order(self, db, builder):
        rows = builder(db).run()
        tids = [r[0] for r in rows]
        # Full drain: qualifying rows come out grouped, best score first.
        assert tids == sorted(tids, key=lambda t: -{1: 0.9, 3: 0.7, 4: 0.6}.get(t, 0))

    @pytest.mark.parametrize("builder", [_idgj_stack, _hdgj_stack])
    def test_drain_matches_hash_join(self, db, builder):
        got = sorted(builder(db).run())
        # Reference: regular hash joins, same predicate.
        scan = SeqScan(db.table("TopInfo"), "t", db.stats)
        j1 = HashJoin(scan, SeqScan(db.table("Pairs"), "pt", db.stats), [0], [2])
        j2 = HashJoin(
            j1,
            Filter(
                SeqScan(db.table("Prot"), "p", db.stats),
                Contains(ColumnRef("p", "desc"), Literal("enzyme")),
            ),
            [j1.layout.position("pt", "e1")],
            [0],
        )
        assert got == sorted(j2.run())


class TestEarlyTermination:
    def test_first_per_group(self, db):
        rows = FirstPerGroup(_idgj_stack(db), None).run()
        assert [r[0] for r in rows] == [1, 4]  # tid 2 empty, tid 3 filtered

    def test_first_per_group_k(self, db):
        rows = FirstPerGroup(_idgj_stack(db), 1).run()
        assert [r[0] for r in rows] == [1]

    def test_skipping_saves_work(self, db):
        db.stats.reset()
        FirstPerGroup(_idgj_stack(db), 1).run()
        probes_with_skip = db.stats.index_probes
        db.stats.reset()
        _idgj_stack(db).run()
        probes_full = db.stats.index_probes
        assert probes_with_skip < probes_full

    def test_hdgj_first_per_group(self, db):
        rows = FirstPerGroup(_hdgj_stack(db), None).run()
        assert [r[0] for r in rows] == [1, 4]

    def test_group_filter_preserves_groups(self, db):
        scan = _scan(db)
        flt = GroupFilter(scan, Comparison(">", ColumnRef("t", "score"), Literal(0.65)))
        rows = FirstPerGroup(flt, None).run()
        assert [r[0] for r in rows] == [1, 2, 3]

    def test_advance_on_scan_skips_group(self, db):
        scan = _scan(db)
        scan.open()
        first = scan.next()
        assert first[0] == 1
        scan.advance_to_next_group()
        second = scan.next()
        assert second[0] == 2
        scan.close()


class TestGroupSemantics:
    def test_idgj_current_group(self, db):
        stack = _idgj_stack(db)
        stack.open()
        row = stack.next()
        assert stack.current_group() == row[0]
        stack.close()

    def test_hdgj_reopens_inner_per_group(self, db):
        # 4 groups scanned => inner Prot table seq-scanned once per
        # group that reaches HDGJ (groups with pair rows).
        db.stats.reset()
        _hdgj_stack(db).run()
        # Prot has 4 rows; tids 1,3,4 have pair rows -> >= 2 inner scans
        # worth of Prot rows beyond a single pass.
        assert db.stats.rows_scanned > db.table("Prot").row_count + 4
