"""Tables, schemas, indexes: the storage layer."""

from __future__ import annotations

import pytest

from repro.errors import CatalogError, SchemaError
from repro.relational import Column, Database, Table, TableSchema
from repro.relational.types import DataType


def people_schema():
    return TableSchema(
        "People",
        [
            Column("ID", DataType.INT, True),
            Column("NAME", DataType.TEXT),
            Column("AGE", DataType.INT),
        ],
        primary_key="ID",
    )


@pytest.fixture
def people():
    t = Table(people_schema())
    t.bulk_load([(1, "ann", 30), (2, "bob", 25), (3, "cara", 30), (4, None, None)])
    return t


class TestSchema:
    def test_case_insensitive_lookup(self):
        s = people_schema()
        assert s.column_position("id") == 0
        assert s.column_position("Name") == 1

    def test_unknown_column(self):
        with pytest.raises(SchemaError):
            people_schema().column_position("nope")

    def test_duplicate_columns_rejected(self):
        with pytest.raises(SchemaError):
            TableSchema("T", [Column("A", DataType.INT), Column("a", DataType.INT)])

    def test_bad_primary_key(self):
        with pytest.raises(SchemaError):
            TableSchema("T", [Column("A", DataType.INT)], primary_key="B")

    def test_validate_row_types(self):
        s = people_schema()
        with pytest.raises(SchemaError):
            s.validate_row(("x", "ann", 30))
        with pytest.raises(SchemaError):
            s.validate_row((1, "ann"))

    def test_not_null_enforced(self):
        s = people_schema()
        with pytest.raises(SchemaError):
            s.validate_row((None, "ann", 30))

    def test_row_from_mapping(self):
        s = people_schema()
        assert s.row_from_mapping({"id": 9, "name": "zed"}) == (9, "zed", None)
        with pytest.raises(SchemaError):
            s.row_from_mapping({"id": 9, "bogus": 1})

    def test_float_widens_int(self):
        s = TableSchema("T", [Column("X", DataType.FLOAT)])
        assert s.validate_row((3,)) == (3.0,)

    def test_bool_is_not_int(self):
        s = TableSchema("T", [Column("X", DataType.INT)])
        with pytest.raises(SchemaError):
            s.validate_row((True,))


class TestTable:
    def test_insert_and_scan(self, people):
        assert people.row_count == 4
        assert list(people.scan())[0] == (1, "ann", 30)

    def test_duplicate_pk_rejected(self, people):
        with pytest.raises(SchemaError):
            people.insert((1, "dup", 1))

    def test_get_by_key(self, people):
        assert people.get_by_key(2) == [(2, "bob", 25)]
        assert people.get_by_key(99) == []

    def test_hash_index_lookup(self, people):
        idx = people.create_hash_index("by_age", ["AGE"])
        rows = [people.row_at(p) for p in idx.lookup(30)]
        assert {r[1] for r in rows} == {"ann", "cara"}

    def test_hash_index_maintained_on_insert(self, people):
        idx = people.create_hash_index("by_age", ["AGE"])
        people.insert((5, "dia", 30))
        assert len(idx.lookup(30)) == 3

    def test_hash_index_on_lookup_by_columns(self, people):
        people.create_hash_index("by_age", ["AGE"])
        assert people.hash_index_on(["AGE"]) is not None
        assert people.hash_index_on(["NAME"]) is None

    def test_duplicate_index_name(self, people):
        people.create_hash_index("x", ["AGE"])
        with pytest.raises(CatalogError):
            people.create_hash_index("x", ["NAME"])
        with pytest.raises(CatalogError):
            people.create_sorted_index("x", "AGE")

    def test_sorted_index_scan(self, people):
        idx = people.create_sorted_index("age_sorted", "AGE")
        ages = [people.row_at(p)[2] for p in idx.scan()]
        assert ages == [25, 30, 30]  # NULL excluded

    def test_sorted_index_descending(self, people):
        idx = people.create_sorted_index("age_sorted", "AGE")
        ages = [people.row_at(p)[2] for p in idx.scan(descending=True)]
        assert ages == [30, 30, 25]

    def test_sorted_index_range(self, people):
        idx = people.create_sorted_index("age_sorted", "AGE")
        rows = [people.row_at(p) for p in idx.range_scan(low=26)]
        assert {r[1] for r in rows} == {"ann", "cara"}
        rows = [people.row_at(p) for p in idx.range_scan(high=30, high_inclusive=False)]
        assert {r[1] for r in rows} == {"bob"}

    def test_sorted_index_lookup(self, people):
        idx = people.create_sorted_index("age_sorted", "AGE")
        assert len(idx.lookup(30)) == 2
        assert idx.min_key() == 25 and idx.max_key() == 30

    def test_sorted_index_maintained_on_insert(self, people):
        idx = people.create_sorted_index("age_sorted", "AGE")
        people.insert((5, "dia", 27))
        ages = [people.row_at(p)[2] for p in idx.scan()]
        assert ages == [25, 27, 30, 30]

    def test_estimated_bytes_positive(self, people):
        assert people.estimated_bytes() > 0


class TestDatabase:
    def test_catalog(self):
        db = Database("t")
        db.create_table(people_schema())
        assert db.has_table("people")
        assert db.table("PEOPLE").schema.name == "People"

    def test_duplicate_table(self):
        db = Database("t")
        db.create_table(people_schema())
        with pytest.raises(CatalogError):
            db.create_table(people_schema())

    def test_unknown_table(self):
        db = Database("t")
        with pytest.raises(CatalogError):
            db.table("nope")

    def test_drop_table(self):
        db = Database("t")
        db.create_table(people_schema())
        db.drop_table("people")
        assert not db.has_table("people")
        with pytest.raises(CatalogError):
            db.drop_table("people")

    def test_stats_counters(self):
        db = Database("t")
        db.stats.rows_scanned += 5
        db.stats.index_probes += 2
        assert db.stats.total_work() == 7
        db.stats.reset()
        assert db.stats.total_work() == 0
