"""Differential proof that the columnar engine is bit-identical to the
row engine.

The batched columnar executor (``next_batch`` protocol, numpy-backed
where available) and the retained Volcano row executor (``next``) are
run over the *same* operator trees / SQL statements / full systems, and
every answer is asserted **exactly** equal: identical row tuples in
identical order, identical ``state_digest()`` for full offline builds,
and matching answers from all nine query methods.  Workloads come from
the seeded generator in ``tests/difftest/gen.py``; any failure message
carries the seed, so a discrepancy reproduces deterministically.

The number of random seeds is ``--difftest-seeds N`` (default 5;
CI's nightly-style step runs 25).

DGJ-family operators (IDGJ, HDGJ, FirstPerGroup) are row-native in both
modes — the batch protocol transparently downgrades their subtree — so
their differential coverage comes from the nine-method test, which
drives them through real method plans.
"""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

import pytest

from difftest.gen import gen_database, gen_expression, gen_queries, make_rng
from repro.biozon import build_figure3_database
from repro.core import TopologySearchSystem
from repro.core.methods import ALL_METHOD_NAMES, create_method
from repro.relational import Engine, columnar_mode, row_mode
from repro.relational.expressions import ColumnRef, Comparison, Literal, RowLayout
from repro.relational.operators import (
    Distinct,
    Filter,
    HashIndexScan,
    HashJoin,
    HashSemiJoin,
    IndexNestedLoopJoin,
    Limit,
    NestedLoopJoin,
    OrderedIndexScan,
    Project,
    RowsSource,
    SeqScan,
    Sort,
    SortMergeJoin,
    TopN,
    UnionAll,
)


def run_both(build, seed=None):
    """Build + run an operator tree once per mode; assert equal rows."""
    with row_mode():
        expected = build().run()
    with columnar_mode():
        actual = build().run()
    assert actual == expected, f"seed={seed}: columnar differs from row engine"
    return expected


# ----------------------------------------------------------------------
# Per-operator coverage (hand-built trees over generated data)
# ----------------------------------------------------------------------
class TestOperatorEquivalence:
    @pytest.fixture(scope="class")
    def workload(self):
        rng = make_rng(1234)
        db, tables = gen_database(rng, n_tables=2)
        return db, tables, rng

    def test_seq_scan(self, workload):
        db, tables, _ = workload
        rows = run_both(lambda: SeqScan(db.table("t0"), "t0", db.stats))
        assert len(rows) == db.table("t0").row_count

    def test_filter_random_predicates(self, workload):
        db, tables, _ = workload
        for seed in range(30):
            rng = make_rng(seed)
            pred = gen_expression(rng, tables["t0"], depth=3)
            run_both(
                lambda: Filter(SeqScan(db.table("t0"), "t0", db.stats), pred),
                seed=seed,
            )

    def test_project_random_scalars(self, workload):
        db, tables, _ = workload
        from difftest.gen import _gen_scalar

        for seed in range(20):
            rng = make_rng(1000 + seed)
            exprs = [
                _gen_scalar(rng, tables["t0"], depth=2)[0] for _ in range(3)
            ]
            run_both(
                lambda: Project(
                    SeqScan(db.table("t0"), "t0", db.stats),
                    exprs,
                    [f"e{i}" for i in range(len(exprs))],
                ),
                seed=seed,
            )

    def test_hash_index_scan(self, workload):
        db, tables, _ = workload
        table = db.table("t0")
        index = table.hash_index_on(["id"])
        for key in (0, 7, 99_999):  # present, present, absent
            run_both(lambda: HashIndexScan(table, "t0", index, (key,), db.stats))

    def test_ordered_index_scan(self, workload):
        db, tables, _ = workload
        table = db.table("t0")
        sorted_index = table.create_sorted_index("sx_equiv_id", "ID")
        for descending in (False, True):
            run_both(
                lambda: OrderedIndexScan(
                    table, "t0", sorted_index, descending, stats=db.stats
                )
            )

    def _join_inputs(self, db):
        left = SeqScan(db.table("t1"), "t1", db.stats)
        right = SeqScan(db.table("t0"), "t0", db.stats)
        lpos = left.layout.position("t1", "ref")
        rpos = right.layout.position("t0", "id")
        return left, right, lpos, rpos

    def test_hash_join(self, workload):
        db, tables, _ = workload

        def build():
            left, right, lpos, rpos = self._join_inputs(db)
            return HashJoin(left, right, [lpos], [rpos])

        rows = run_both(build)
        assert rows  # the REF -> ID relationship guarantees matches

    def test_hash_join_with_residual(self, workload):
        db, tables, _ = workload
        for seed in range(10):
            rng = make_rng(2000 + seed)
            residual = gen_expression(rng, tables["t1"] + tables["t0"], depth=2)

            def build():
                left, right, lpos, rpos = self._join_inputs(db)
                return HashJoin(left, right, [lpos], [rpos], residual)

            run_both(build, seed=seed)

    def test_index_nested_loop_join(self, workload):
        db, tables, _ = workload
        table = db.table("t0")
        index = table.hash_index_on(["id"])

        def build():
            left = SeqScan(db.table("t1"), "t1", db.stats)
            lpos = left.layout.position("t1", "ref")
            return IndexNestedLoopJoin(left, table, "t0", index, [lpos])

        rows = run_both(build)
        assert rows

    def test_nested_loop_join(self, workload):
        db, tables, _ = workload

        def build():
            left, right, lpos, rpos = self._join_inputs(db)
            pred = Comparison(
                "<", ColumnRef("t1", "ref"), ColumnRef("t0", "id")
            )
            return NestedLoopJoin(Limit(left, 20), Limit(right, 20), pred)

        run_both(build)

    def test_sort_merge_join(self, workload):
        db, tables, _ = workload

        def build():
            left, right, lpos, rpos = self._join_inputs(db)
            return SortMergeJoin(left, right, [lpos], [rpos])

        rows = run_both(build)
        assert rows

    def test_hash_semi_and_anti_join(self, workload):
        db, tables, _ = workload
        for negated in (False, True):

            def build(negated=negated):
                left, right, lpos, rpos = self._join_inputs(db)
                return HashSemiJoin(
                    left, Filter(right, Comparison("<", ColumnRef("t0", "id"), Literal(30))),
                    [lpos], [rpos], negated,
                )

            run_both(build)

    def test_sort_topn_distinct_union_limit(self, workload):
        db, tables, _ = workload
        keys = [(ColumnRef("t0", "id"), True)]

        def scan():
            return SeqScan(db.table("t0"), "t0", db.stats)

        run_both(lambda: Sort(scan(), keys))
        run_both(lambda: TopN(scan(), keys, 7))
        run_both(lambda: TopN(scan(), keys, 0))
        run_both(lambda: Distinct(Project(scan(), [ColumnRef("t0", "id")], ["id"])))
        run_both(lambda: UnionAll([scan(), Limit(scan(), 5), scan()]))
        run_both(lambda: Limit(scan(), 13))
        run_both(lambda: Limit(scan(), 0))

    def test_rows_source_and_empty_inputs(self, workload):
        db, tables, _ = workload
        layout = RowLayout([("x", "a"), ("x", "b")])
        data = [(1, "u"), (2, None), (3, "w")]
        run_both(lambda: RowsSource(list(data), layout, db.stats))
        run_both(lambda: RowsSource([], layout, db.stats))
        run_both(
            lambda: Filter(
                RowsSource(list(data), layout, db.stats),
                Comparison("=", ColumnRef("x", "a"), Literal(99)),
            )
        )


# ----------------------------------------------------------------------
# Random end-to-end SQL through the real parser/optimizer/executor
# ----------------------------------------------------------------------
def test_random_sql_end_to_end(difftest_seeds):
    for seed in difftest_seeds:
        rng = make_rng(seed)
        db, tables = gen_database(rng, n_tables=rng.randint(1, 3))
        engine = Engine(db)
        for i, sql in enumerate(gen_queries(rng, tables, count=6)):
            with row_mode():
                expected = engine.execute(sql)
            with columnar_mode():
                actual = engine.execute(sql)
            assert actual.columns == expected.columns, (
                f"seed={seed} query#{i}: column names differ\n  {sql}"
            )
            assert actual.rows == expected.rows, (
                f"seed={seed} query#{i}: rows differ "
                f"({len(actual.rows)} vs {len(expected.rows)})\n  {sql}"
            )


def test_random_sql_repeated_executions_hit_plan_cache(difftest_seeds):
    """Same statement twice in columnar mode: second run is served by
    the prepared-statement cache and must be byte-identical."""
    seed = difftest_seeds[0]
    rng = make_rng(seed)
    db, tables = gen_database(rng, n_tables=2)
    engine = Engine(db)
    for sql in gen_queries(rng, tables, count=4):
        with columnar_mode():
            first = engine.execute(sql)
            hits_before = engine.plan_cache_hits
            second = engine.execute(sql)
        assert engine.plan_cache_hits == hits_before + 1, sql
        assert second.rows == first.rows, f"seed={seed}: cached plan diverged\n  {sql}"


# ----------------------------------------------------------------------
# Full-system equivalence: offline build digest + the nine methods
# ----------------------------------------------------------------------
def _build_fig3_system():
    system = TopologySearchSystem(build_figure3_database())
    system.build([("Protein", "DNA")], max_length=3)
    return system


def test_state_digest_identical_across_modes():
    """A full offline build must produce the same SHA-256 state digest
    whichever executor performed it."""
    with row_mode():
        row_digest = _build_fig3_system().require_store().state_digest()
    with columnar_mode():
        col_digest = _build_fig3_system().require_store().state_digest()
    assert col_digest == row_digest


def test_nine_methods_agree_across_modes(fig3_system):
    from repro.core import KeywordConstraint, NoConstraint, TopologyQuery
    from repro.core.methods import METHOD_CLASSES

    plain = TopologyQuery(
        "Protein", "DNA", KeywordConstraint("DESC", "human"), NoConstraint()
    )
    topk = TopologyQuery(
        "Protein", "DNA", KeywordConstraint("DESC", "human"), NoConstraint(), k=3
    )
    for name in ALL_METHOD_NAMES:
        query = topk if METHOD_CLASSES[name].is_topk else plain
        with row_mode():
            expected = create_method(name, fig3_system).run(query)
        with columnar_mode():
            actual = create_method(name, fig3_system).run(query)
        assert actual.tids == expected.tids, f"method {name}: TIDs differ"
        assert actual.scores == expected.scores, f"method {name}: scores differ"


# ----------------------------------------------------------------------
# Engine plan cache semantics
# ----------------------------------------------------------------------
class TestPlanCache:
    def _engine(self):
        rng = make_rng(7)
        db, tables = gen_database(rng, n_tables=1, rows_per_table=30)
        return Engine(db), db

    def test_hit_then_invalidation_on_insert(self):
        engine, db = self._engine()
        sql = "SELECT t0.id FROM t0 WHERE t0.id < 10 ORDER BY t0.id"
        with columnar_mode():
            first = engine.execute(sql)
            assert engine.execute(sql).rows == first.rows
            assert engine.plan_cache_hits == 1
            # Any data change flips the change token: replan, new rows.
            schema = db.table("t0").schema
            row = [None] * len(schema.columns)
            row[0] = 5_000_000
            for i, col in enumerate(schema.columns[1:], start=1):
                from difftest.gen import _gen_value

                row[i] = _gen_value(make_rng(0), col.dtype, False)
            db.table("t0").insert(tuple(row))
            hits = engine.plan_cache_hits
            engine.execute(sql)
            assert engine.plan_cache_hits == hits  # miss, not a stale hit

    def test_invalidation_on_catalog_change(self):
        engine, db = self._engine()
        sql = "SELECT t0.id FROM t0 FETCH FIRST 3 ROWS ONLY"
        with columnar_mode():
            engine.execute(sql)
            from repro.relational import Column, DataType, TableSchema

            db.create_table(
                TableSchema("other", [Column("ID", DataType.INT, True)], "ID")
            )
            hits = engine.plan_cache_hits
            engine.execute(sql)
            assert engine.plan_cache_hits == hits

    def test_row_mode_bypasses_cache(self):
        engine, _ = self._engine()
        sql = "SELECT t0.id FROM t0 FETCH FIRST 3 ROWS ONLY"
        with row_mode():
            engine.execute(sql)
            engine.execute(sql)
        assert engine.plan_cache_hits == 0
        assert engine.plan_cache_misses == 0

    def test_distinct_params_are_distinct_entries(self):
        engine, _ = self._engine()
        sql = "SELECT t0.id FROM t0 WHERE t0.id = :key"
        with columnar_mode():
            a = engine.execute(sql, {"key": 1})
            b = engine.execute(sql, {"key": 2})
            assert engine.plan_cache_hits == 0
            a2 = engine.execute(sql, {"key": 1})
        assert a2.rows == a.rows
        assert a.rows != b.rows or (not a.rows and not b.rows)
        assert engine.plan_cache_hits == 1


# ----------------------------------------------------------------------
# numpy-optional: the engine must agree with itself without numpy
# ----------------------------------------------------------------------
_NO_NUMPY_SNIPPET = """
import json, sys
sys.path.insert(0, {src!r})
sys.path.insert(0, {tests!r})
from difftest.gen import gen_database, gen_queries, make_rng
from repro.relational import Engine, HAVE_NUMPY
rng = make_rng({seed})
db, tables = gen_database(rng, n_tables=2, rows_per_table=40)
engine = Engine(db)
out = [repr(engine.execute(sql).rows) for sql in gen_queries(rng, tables, count=5)]
print(json.dumps({{"have_numpy": HAVE_NUMPY, "results": out}}))
"""


def test_numpy_and_fallback_paths_agree(difftest_seeds, tmp_path):
    """Run the same seeded workload in two subprocesses — one with
    REPRO_NO_NUMPY=1 — and require identical results.  Verifies the
    list-backed fallback independently of whether this interpreter has
    numpy at all (if it doesn't, both runs use the fallback and the test
    degenerates to a determinism check, which CI's numpy leg covers)."""
    import os

    repo = Path(__file__).resolve().parents[2]
    seed = difftest_seeds[0]
    snippet = _NO_NUMPY_SNIPPET.format(
        src=str(repo / "src"), tests=str(repo / "tests"), seed=seed
    )

    def run(no_numpy: bool):
        env = dict(os.environ)
        env.pop("REPRO_NO_NUMPY", None)
        if no_numpy:
            env["REPRO_NO_NUMPY"] = "1"
        proc = subprocess.run(
            [sys.executable, "-c", snippet],
            capture_output=True, text=True, env=env, timeout=120,
        )
        assert proc.returncode == 0, proc.stderr
        import json

        return json.loads(proc.stdout)

    with_numpy = run(no_numpy=False)
    without = run(no_numpy=True)
    assert without["have_numpy"] is False
    assert without["results"] == with_numpy["results"], f"seed={seed}"
