"""Volcano operators: scans, filters, joins, sort/distinct/union/limit.

Join operators are cross-checked against a brute-force nested-loops
reference on randomized inputs (hypothesis).
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.relational import Column, Database, TableSchema
from repro.relational.expressions import (
    ColumnRef,
    Comparison,
    Contains,
    Literal,
    RowLayout,
)
from repro.relational.operators import (
    Distinct,
    Filter,
    HashIndexScan,
    HashJoin,
    HashSemiJoin,
    IndexNestedLoopJoin,
    Limit,
    NestedLoopJoin,
    OrderedIndexScan,
    Project,
    RowsSource,
    SeqScan,
    Sort,
    SortMergeJoin,
    TopN,
    UnionAll,
)
from repro.relational.types import DataType


@pytest.fixture
def db():
    db = Database("ops")
    users = db.create_table(
        TableSchema(
            "Users",
            [Column("ID", DataType.INT, True), Column("NAME", DataType.TEXT)],
            primary_key="ID",
        )
    )
    users.bulk_load([(1, "ann"), (2, "bob"), (3, "cara enzyme"), (4, "dan")])
    orders = db.create_table(
        TableSchema(
            "Orders",
            [
                Column("ID", DataType.INT, True),
                Column("UID", DataType.INT),
                Column("AMOUNT", DataType.FLOAT),
            ],
            primary_key="ID",
        )
    )
    orders.create_hash_index("by_uid", ["UID"])
    orders.create_sorted_index("by_amount", "AMOUNT")
    orders.bulk_load(
        [
            (10, 1, 5.0),
            (11, 1, 7.5),
            (12, 2, 1.0),
            (13, 3, 9.0),
            (14, None, 2.0),
        ]
    )
    return db


class TestScans:
    def test_seq_scan(self, db):
        rows = SeqScan(db.table("Users"), "u", db.stats).run()
        assert len(rows) == 4
        assert db.stats.rows_scanned >= 4

    def test_hash_index_scan(self, db):
        orders = db.table("Orders")
        idx = orders.hash_index_on(["UID"])
        rows = HashIndexScan(orders, "o", idx, 1, db.stats).run()
        assert {r[0] for r in rows} == {10, 11}

    def test_hash_index_scan_miss(self, db):
        orders = db.table("Orders")
        idx = orders.hash_index_on(["UID"])
        assert HashIndexScan(orders, "o", idx, 999, db.stats).run() == []

    def test_ordered_index_scan(self, db):
        orders = db.table("Orders")
        idx = orders.sorted_index_on("AMOUNT")
        rows = OrderedIndexScan(orders, "o", idx, stats=db.stats).run()
        amounts = [r[2] for r in rows]
        assert amounts == sorted(amounts)

    def test_ordered_index_scan_desc(self, db):
        orders = db.table("Orders")
        idx = orders.sorted_index_on("AMOUNT")
        rows = OrderedIndexScan(orders, "o", idx, descending=True, stats=db.stats).run()
        amounts = [r[2] for r in rows]
        assert amounts == sorted(amounts, reverse=True)

    def test_rows_source(self, db):
        layout = RowLayout([("x", "a")])
        assert RowsSource([(1,), (2,)], layout, db.stats).run() == [(1,), (2,)]


class TestRowOperators:
    def test_filter(self, db):
        scan = SeqScan(db.table("Users"), "u", db.stats)
        pred = Contains(ColumnRef("u", "name"), Literal("enzyme"))
        rows = Filter(scan, pred).run()
        assert [r[0] for r in rows] == [3]

    def test_project(self, db):
        scan = SeqScan(db.table("Users"), "u", db.stats)
        proj = Project(scan, [ColumnRef("u", "id")], ["uid"])
        assert proj.run() == [(1,), (2,), (3,), (4,)]
        assert proj.layout.position(None, "uid") == 0

    def test_distinct(self, db):
        layout = RowLayout([("x", "a")])
        src = RowsSource([(1,), (2,), (1,), (3,), (2,)], layout, db.stats)
        assert Distinct(src).run() == [(1,), (2,), (3,)]

    def test_limit(self, db):
        scan = SeqScan(db.table("Users"), "u", db.stats)
        assert len(Limit(scan, 2).run()) == 2

    def test_limit_zero(self, db):
        scan = SeqScan(db.table("Users"), "u", db.stats)
        assert Limit(scan, 0).run() == []

    def test_union_all(self, db):
        layout = RowLayout([("x", "a")])
        u = UnionAll(
            [
                RowsSource([(1,)], layout, db.stats),
                RowsSource([(2,), (3,)], layout, db.stats),
            ]
        )
        assert u.run() == [(1,), (2,), (3,)]


class TestSorting:
    def test_sort_asc_desc(self, db):
        layout = RowLayout([("x", "a"), ("x", "b")])
        rows = [(3, "c"), (1, "a"), (2, "b"), (None, "n")]
        src = RowsSource(rows, layout, db.stats)
        out = Sort(src, [(ColumnRef("x", "a"), False)]).run()
        assert [r[0] for r in out] == [1, 2, 3, None]  # NULLS LAST
        src = RowsSource(rows, layout, db.stats)
        out = Sort(src, [(ColumnRef("x", "a"), True)]).run()
        assert [r[0] for r in out] == [3, 2, 1, None]  # NULLS LAST

    def test_sort_multi_key(self, db):
        layout = RowLayout([("x", "a"), ("x", "b")])
        rows = [(1, 2), (1, 1), (0, 9)]
        src = RowsSource(rows, layout, db.stats)
        out = Sort(
            src, [(ColumnRef("x", "a"), False), (ColumnRef("x", "b"), True)]
        ).run()
        assert out == [(0, 9), (1, 2), (1, 1)]

    def test_topn_matches_sort_limit(self, db):
        layout = RowLayout([("x", "a")])
        rng = random.Random(5)
        rows = [(rng.randint(0, 50),) for _ in range(100)]
        keys = [(ColumnRef("x", "a"), True)]
        top = TopN(RowsSource(rows, layout, db.stats), keys, 7).run()
        ref = Limit(Sort(RowsSource(rows, layout, db.stats), keys), 7).run()
        assert [r[0] for r in top] == [r[0] for r in ref]

    def test_topn_zero(self, db):
        layout = RowLayout([("x", "a")])
        src = RowsSource([(1,)], layout, db.stats)
        assert TopN(src, [(ColumnRef("x", "a"), False)], 0).run() == []


def _join_reference(left_rows, right_rows, lkey, rkey):
    out = []
    for l in left_rows:
        for r in right_rows:
            if l[lkey] is not None and l[lkey] == r[rkey]:
                out.append(l + r)
    return out


class TestJoins:
    def _operands(self, db):
        users = SeqScan(db.table("Users"), "u", db.stats)
        orders = SeqScan(db.table("Orders"), "o", db.stats)
        return users, orders

    def test_hash_join(self, db):
        users, orders = self._operands(db)
        joined = HashJoin(users, orders, [0], [1]).run()
        expected = _join_reference(
            list(db.table("Users").rows), list(db.table("Orders").rows), 0, 1
        )
        assert sorted(joined) == sorted(expected)

    def test_hash_join_null_keys_never_match(self, db):
        users, orders = self._operands(db)
        joined = HashJoin(orders, users, [1], [0]).run()
        assert all(row[1] is not None for row in joined)

    def test_hash_join_residual(self, db):
        users, orders = self._operands(db)
        residual = Comparison(">", ColumnRef("o", "amount"), Literal(6.0))
        joined = HashJoin(users, orders, [0], [1], residual).run()
        assert {row[2] for row in joined} == {11, 13}

    def test_index_nested_loop_join(self, db):
        users = SeqScan(db.table("Users"), "u", db.stats)
        orders = db.table("Orders")
        joined = IndexNestedLoopJoin(
            users, orders, "o", orders.hash_index_on(["UID"]), [0]
        ).run()
        expected = _join_reference(
            list(db.table("Users").rows), list(orders.rows), 0, 1
        )
        assert sorted(joined) == sorted(expected)

    def test_nested_loop_theta_join(self, db):
        users, orders = self._operands(db)
        pred = Comparison("<", ColumnRef("u", "id"), ColumnRef("o", "uid"))
        joined = NestedLoopJoin(users, orders, pred).run()
        for row in joined:
            assert row[0] < row[3]

    def test_sort_merge_join(self, db):
        users, orders = self._operands(db)
        joined = SortMergeJoin(users, orders, [0], [1]).run()
        expected = _join_reference(
            list(db.table("Users").rows), list(db.table("Orders").rows), 0, 1
        )
        assert sorted(joined) == sorted(expected)

    def test_semi_join(self, db):
        users, orders = self._operands(db)
        rows = HashSemiJoin(users, orders, [0], [1]).run()
        assert {r[0] for r in rows} == {1, 2, 3}

    def test_anti_join(self, db):
        users, orders = self._operands(db)
        rows = HashSemiJoin(users, orders, [0], [1], negated=True).run()
        assert {r[0] for r in rows} == {4}

    @settings(max_examples=30, deadline=None)
    @given(
        st.lists(st.tuples(st.integers(0, 5), st.integers(0, 3)), max_size=20),
        st.lists(st.tuples(st.integers(0, 5), st.integers(0, 3)), max_size=20),
    )
    def test_joins_agree_with_reference(self, left_rows, right_rows):
        layout_l = RowLayout([("l", "k"), ("l", "v")])
        layout_r = RowLayout([("r", "k"), ("r", "v")])
        from repro.relational.database import ExecStats

        stats = ExecStats()
        expected = sorted(_join_reference(left_rows, right_rows, 0, 0))
        hj = HashJoin(
            RowsSource(list(left_rows), layout_l, stats),
            RowsSource(list(right_rows), layout_r, stats),
            [0],
            [0],
        ).run()
        smj = SortMergeJoin(
            RowsSource(list(left_rows), layout_l, stats),
            RowsSource(list(right_rows), layout_r, stats),
            [0],
            [0],
        ).run()
        nlj = NestedLoopJoin(
            RowsSource(list(left_rows), layout_l, stats),
            RowsSource(list(right_rows), layout_r, stats),
            Comparison("=", ColumnRef("l", "k"), ColumnRef("r", "k")),
        ).run()
        assert sorted(hj) == expected
        assert sorted(smj) == expected
        assert sorted(nlj) == expected

    def test_explain_tree(self, db):
        users, orders = self._operands(db)
        join = HashJoin(users, orders, [0], [1])
        text = join.explain()
        assert "HashJoin" in text and "SeqScan" in text
