"""Property tests for the batch (mask) semantics of ``expressions.py``.

The batch evaluator (``Expression.bind_batch``) must agree *value for
value* with the row evaluator (``Expression.bind``) — not just on which
rows a filter keeps, but on the exact three-valued result (True / False
/ None-unknown) and on computed scalars.  These tests pin that
agreement on the axes where vectorization is most likely to drift:

* SQL three-valued logic (Kleene AND/OR/NOT over True/False/NULL),
* NULL propagation through comparisons and arithmetic,
* type coercion (int vs float, bool-as-int arithmetic, cross-type
  comparisons),
* short-circuit (row) vs vectorized (batch) boolean evaluation order,
  which must be observationally identical on error-free expressions.

Random expressions come from the seeded difftest generator, driven by
hypothesis; failures print the generating seed.
"""

from __future__ import annotations

import pytest

pytest.importorskip(
    "hypothesis", reason="property tests need hypothesis (CI installs it; "
    "the seeded difftest sweep still covers this surface without it)"
)
from hypothesis import given, settings
from hypothesis import strategies as st

from difftest.gen import gen_database, gen_expression, make_rng
from repro.relational.column import Batch
from repro.relational.expressions import (
    And,
    Arith,
    ColumnRef,
    Comparison,
    Contains,
    InList,
    IsNull,
    Like,
    Literal,
    Neg,
    Not,
    Or,
    RowLayout,
    is_truthy,
)

TRI = (True, False, None)
AB = RowLayout([("x", "a"), ("x", "b")])
A = ColumnRef("x", "a")
B = ColumnRef("x", "b")


def eval_both(expr, rows, layout):
    """(row-at-a-time results, batch results as a plain list)."""
    fn = expr.bind(layout)
    row_vals = [fn(row) for row in rows]
    batch_vals = expr.bind_batch(layout)(Batch.from_rows(list(rows), layout.arity))
    return row_vals, batch_vals


def assert_agree(expr, rows, layout, context=""):
    row_vals, batch_vals = eval_both(expr, rows, layout)
    assert batch_vals.pylist() == row_vals, f"{context}: values diverge for {expr!r}"
    keep = batch_vals.as_keep()
    keep = keep if isinstance(keep, list) else keep.tolist()
    expected_keep = [is_truthy(v) for v in row_vals]
    assert keep == expected_keep, f"{context}: keep mask diverges for {expr!r}"


# ----------------------------------------------------------------------
# Three-valued logic
# ----------------------------------------------------------------------
def test_kleene_and_or_not_full_tables():
    rows = [(a, b) for a in TRI for b in TRI]
    for expr in (And([A, B]), Or([A, B]), Not(A), Not(B)):
        assert_agree(expr, rows, AB)


def test_constant_legs_short_circuit_identically():
    rows = [(a, b) for a in TRI for b in TRI]
    cases = [
        And([Literal(False), A]),
        And([Literal(True), A]),
        And([Literal(None), A]),
        Or([Literal(True), A]),
        Or([Literal(False), A]),
        Or([Literal(None), A]),
        And([A, Literal(None), B]),
        Or([A, Literal(None), B]),
        Not(Literal(None)),
    ]
    for expr in cases:
        assert_agree(expr, rows, AB)


def test_nested_combiners_evaluation_order_invisible():
    """Row evaluation short-circuits left-to-right; batch evaluation is
    whole-column.  On error-free input the two must be observationally
    identical, whatever the nesting."""
    rows = [(a, b) for a in TRI for b in TRI]
    expr = Or([And([A, Not(B)]), And([Not(A), B]), And([A, B, A])])
    assert_agree(expr, rows, AB)


# ----------------------------------------------------------------------
# NULL propagation
# ----------------------------------------------------------------------
def test_null_comparisons_are_unknown():
    rows = [(1, 2), (None, 2), (1, None), (None, None)]
    for op in ("=", "<>", "<", "<=", ">", ">="):
        assert_agree(Comparison(op, A, B), rows, AB)
        assert_agree(Comparison(op, A, Literal(None)), rows, AB)


def test_null_arithmetic_propagates():
    rows = [(1, 2), (None, 2), (3, None)]
    for op in ("+", "-", "*", "/"):
        expr = Comparison("=", Arith(op, A, B), Literal(4))
        assert_agree(expr, rows, AB)
    assert_agree(Comparison("<", Neg(A), Literal(0)), rows, AB)


def test_is_null_and_in_list_with_nulls():
    rows = [(1, "u"), (None, None), (3, "w")]
    assert_agree(IsNull(A), rows, AB)
    assert_agree(IsNull(A, negated=True), rows, AB)
    assert_agree(InList(A, [1, 3]), rows, AB)
    assert_agree(InList(A, [1, 3], negated=True), rows, AB)
    assert_agree(Contains(B, Literal("u")), rows, AB)
    assert_agree(Like(B, "%w%", False), rows, AB)
    assert_agree(Like(B, "u%", True), rows, AB)


# ----------------------------------------------------------------------
# Type coercion
# ----------------------------------------------------------------------
def test_int_float_cross_comparisons():
    rows = [(1, 1.0), (2, 2.5), (-3, -3.0)]
    for op in ("=", "<>", "<", ">="):
        assert_agree(Comparison(op, A, B), rows, AB)
    assert_agree(Comparison("=", A, Literal(1.0)), rows, AB)
    assert_agree(Comparison("<", B, Literal(0)), rows, AB)


def test_bool_arithmetic_promotes_like_python():
    rows = [(True, 1), (False, 2), (True, -1)]
    assert_agree(Comparison("=", Arith("+", A, B), Literal(2)), rows, AB)
    assert_agree(Comparison("=", Neg(A), Literal(-1)), rows, AB)
    assert_agree(Comparison("=", Arith("*", A, A), Literal(1)), rows, AB)


def test_cross_type_comparisons_match_row_semantics():
    rows = [(1, "one"), (2, "two")]
    # Equality across incomparable types: uniformly False / <> True.
    assert_agree(Comparison("=", A, Literal("one")), rows, AB)
    assert_agree(Comparison("<>", A, Literal("one")), rows, AB)
    # Ordered comparison across incomparable types: unknown.
    assert_agree(Comparison("<", A, Literal("one")), rows, AB)
    # bool vs non-bool ordered comparison: unknown.
    bool_rows = [(True, 1), (False, 0)]
    assert_agree(Comparison("<", A, B), bool_rows, AB)
    assert_agree(Comparison("=", A, B), bool_rows, AB)


def test_division_matches_python_not_numpy():
    rows = [(7, 2), (-7, 2), (8, -4)]
    assert_agree(Comparison(">", Arith("/", A, B), Literal(0)), rows, AB)
    # Zero divisor: both evaluators raise ZeroDivisionError (numpy's
    # inf/nan semantics must NOT leak through the batch path).
    zero_rows = [(1, 0)]
    fn = Arith("/", A, B).bind(AB)
    with pytest.raises(ZeroDivisionError):
        fn(zero_rows[0])
    bfn = Arith("/", A, B).bind_batch(AB)
    with pytest.raises(ZeroDivisionError):
        bfn(Batch.from_rows(zero_rows, 2))


# ----------------------------------------------------------------------
# Randomized agreement (hypothesis-driven seeds into the difftest gen)
# ----------------------------------------------------------------------
@settings(max_examples=40, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**32 - 1))
def test_random_expressions_agree(seed):
    rng = make_rng(seed)
    db, tables = gen_database(rng, n_tables=1, rows_per_table=20)
    cols = tables["t0"]
    layout = RowLayout([(alias, name) for alias, name, _, _ in cols])
    rows = list(db.table("t0").rows)
    for i in range(3):
        expr = gen_expression(rng, cols, depth=3)
        assert_agree(expr, rows, layout, context=f"seed={seed} expr#{i}")
