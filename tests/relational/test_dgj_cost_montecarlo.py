"""Validate the paper's DGJ cost model (Theorem 1 + Appendix A) against
Monte-Carlo simulation of stack execution.

The simulation materializes random data matching the model's
independence assumptions exactly (each outer tuple joins ``s*N`` inner
tuples, each surviving the local filter with probability ``rho``,
independently), executes the early-terminating probe discipline, and
counts index probes.  The dynamic program's prediction must land close
to the simulated mean.
"""

from __future__ import annotations

import random

import pytest

from repro.relational.optimizer.dgj_cost import (
    DgjLevel,
    GroupParameters,
    expected_topk_cost,
    group_parameters,
    hdgj_stack_cost,
    idgj_stack_cost,
    probe_costs,
    result_probabilities,
)


def simulate_stack(levels, cardinalities, k, rng):
    """One run: process groups in order; per outer tuple, probe level 1
    (cost I_1), fan out, filter, recurse; stop a group at its first
    full-depth survivor; stop everything after k groups succeed."""

    total_cost = 0.0

    def process_tuple(level_idx):
        """Returns True if this tuple leads to a result."""
        nonlocal total_cost
        if level_idx == len(levels):
            return True
        level = levels[level_idx]
        total_cost += level.probe_cost
        fanout = int(round(level.fanout))
        for _ in range(fanout):
            if rng.random() < level.local_selectivity:
                if process_tuple(level_idx + 1):
                    return True
        return False

    found = 0
    for card in cardinalities:
        for _ in range(int(card)):
            if process_tuple(0):
                found += 1
                break
        if found >= k:
            break
    return total_cost


LEVELS = [
    DgjLevel(relation_rows=100, probe_cost=1.0, local_selectivity=0.3, join_selectivity=0.02),
    DgjLevel(relation_rows=50, probe_cost=1.0, local_selectivity=0.5, join_selectivity=0.02),
]


class TestLemmas:
    def test_result_probabilities_monotone_bounds(self):
        xs = result_probabilities(LEVELS)
        assert len(xs) == 3
        assert xs[-1] == 1.0
        for x in xs:
            assert 0.0 <= x <= 1.0

    def test_zero_fanout_means_no_result(self):
        levels = [DgjLevel(100, 1.0, 0.5, 0.0)]
        assert result_probabilities(levels)[0] == 0.0

    def test_zero_selectivity_means_no_result(self):
        levels = [DgjLevel(100, 1.0, 0.0, 0.1)]
        assert result_probabilities(levels)[0] == 0.0

    def test_certain_result(self):
        levels = [DgjLevel(10, 1.0, 1.0, 1.0)]
        assert result_probabilities(levels)[0] == pytest.approx(1.0)

    def test_probe_costs_accumulate(self):
        deltas = probe_costs(LEVELS)
        assert deltas[-1] == 0.0
        assert deltas[0] == pytest.approx(
            1.0 + LEVELS[0].surviving_fanout * deltas[1]
        )
        assert deltas[1] == pytest.approx(1.0)

    def test_probabilities_match_simulation(self):
        rng = random.Random(42)
        trials = 4000
        hits = 0
        for _ in range(trials):

            def survives(level_idx):
                if level_idx == len(LEVELS):
                    return True
                level = LEVELS[level_idx]
                for _ in range(int(round(level.fanout))):
                    if rng.random() < level.local_selectivity and survives(level_idx + 1):
                        return True
                return False

            hits += survives(0)
        simulated = hits / trials
        predicted = result_probabilities(LEVELS)[0]
        assert simulated == pytest.approx(predicted, abs=0.05)


class TestGroupParameters:
    def test_np_decreases_with_cardinality(self):
        params = group_parameters(LEVELS, [1, 5, 50])
        nps = [p.no_result_probability for p in params]
        assert nps[0] > nps[1] > nps[2]

    def test_empty_group(self):
        params = group_parameters(LEVELS, [0])
        assert params[0].no_result_probability == 1.0
        assert params[0].first_result_cost == 0.0

    def test_costs_nonnegative(self):
        for p in group_parameters(LEVELS, [0, 1, 10, 1000]):
            assert p.no_result_cost >= 0
            assert p.first_result_cost >= 0


class TestTheorem1:
    def test_zero_k(self):
        params = group_parameters(LEVELS, [10, 10])
        assert expected_topk_cost(params, 0) == 0.0

    def test_monotone_in_k(self):
        params = group_parameters(LEVELS, [10] * 20)
        costs = [expected_topk_cost(params, k) for k in (1, 3, 5, 10)]
        assert costs == sorted(costs)

    def test_cost_matches_simulation(self):
        cards = [8, 3, 12, 5, 20, 1, 9, 15]
        k = 3
        predicted = idgj_stack_cost(LEVELS, cards, k)
        rng = random.Random(7)
        trials = 600
        simulated = sum(
            simulate_stack(LEVELS, cards, k, rng) for _ in range(trials)
        ) / trials
        # The DP is an estimator built on independence assumptions; it
        # must land in the right ballpark (paper uses it only to choose
        # between plans whose costs differ by orders of magnitude).
        assert predicted == pytest.approx(simulated, rel=0.35)

    def test_cost_matches_simulation_sparse(self):
        sparse = [
            DgjLevel(1000, 1.0, 0.05, 0.001),
            DgjLevel(1000, 1.0, 0.05, 0.001),
        ]
        cards = [50, 100, 30, 200, 80]
        k = 2
        predicted = idgj_stack_cost(sparse, cards, k)
        rng = random.Random(13)
        trials = 400
        simulated = sum(
            simulate_stack(sparse, cards, k, rng) for _ in range(trials)
        ) / trials
        assert predicted == pytest.approx(simulated, rel=0.5)


class TestStackCostHelpers:
    def test_idgj_selective_costs_more_than_unselective(self):
        """Selective predicates force the stack to grind through many
        groups without results — the effect behind Table 2's ET rows."""
        selective = [
            DgjLevel(100, 2.0, 0.05, 0.01),
            DgjLevel(100, 2.0, 0.05, 0.01),
        ]
        unselective = [
            DgjLevel(100, 2.0, 0.9, 0.01),
            DgjLevel(100, 2.0, 0.9, 0.01),
        ]
        cards = [10] * 50
        assert idgj_stack_cost(selective, cards, 5) > idgj_stack_cost(
            unselective, cards, 5
        )

    def test_hdgj_cost_positive_and_scales(self):
        cards = [10] * 20
        small = hdgj_stack_cost(LEVELS, cards, 2)
        large = hdgj_stack_cost(LEVELS, cards, 10)
        assert 0 < small <= large
