"""SQL front end: tokenizer, parser, and end-to-end execution."""

from __future__ import annotations

import pytest

from repro.errors import SqlBindError, SqlError, SqlSyntaxError
from repro.relational import Column, Database, Engine, TableSchema
from repro.relational.expressions import (
    And,
    ColumnRef,
    Comparison,
    Contains,
    InList,
    Like,
    Literal,
    Or,
)
from repro.relational.sql import parse, tokenize
from repro.relational.sql.ast import ExistsExpr
from repro.relational.types import DataType


# ----------------------------------------------------------------------
# Tokenizer
# ----------------------------------------------------------------------
class TestTokenizer:
    def test_keywords_and_idents(self):
        kinds = [(t.kind, t.value) for t in tokenize("SELECT foo FROM Bar")]
        assert kinds[:4] == [
            ("keyword", "select"),
            ("ident", "foo"),
            ("keyword", "from"),
            ("ident", "Bar"),
        ]

    def test_string_with_escaped_quote(self):
        tokens = tokenize("'it''s'")
        assert tokens[0].value == "it's"

    def test_unterminated_string(self):
        with pytest.raises(SqlSyntaxError):
            tokenize("'oops")

    def test_numbers(self):
        tokens = tokenize("42 3.5")
        assert tokens[0].value == 42 and tokens[1].value == 3.5

    def test_comparison_symbols(self):
        values = [t.value for t in tokenize("<= >= <> != = < >") if t.kind == "symbol"]
        assert values == ["<=", ">=", "<>", "<>", "=", "<", ">"]

    def test_params(self):
        tokens = tokenize(":kw")
        assert tokens[0].kind == "param" and tokens[0].value == "kw"

    def test_line_comment(self):
        tokens = tokenize("SELECT -- comment\n1")
        assert [t.kind for t in tokens] == ["keyword", "number", "end"]

    def test_bad_character(self):
        with pytest.raises(SqlSyntaxError):
            tokenize("SELECT !")


# ----------------------------------------------------------------------
# Parser
# ----------------------------------------------------------------------
class TestParser:
    def test_basic_select(self):
        q = parse("SELECT a.x FROM T a WHERE a.x = 1")
        core = q.cores[0]
        assert not core.distinct
        assert core.tables[0].table == "T" and core.tables[0].alias == "a"
        assert isinstance(core.where, Comparison)

    def test_distinct_and_star(self):
        q = parse("SELECT DISTINCT * FROM T")
        assert q.cores[0].distinct
        assert q.cores[0].items[0].star

    def test_aliases(self):
        q = parse("SELECT t.x AS out1, t.y out2 FROM Tab AS t")
        items = q.cores[0].items
        assert items[0].alias == "out1" and items[1].alias == "out2"

    def test_join_on_folds_into_where(self):
        q = parse("SELECT a.x FROM A a JOIN B b ON a.id = b.id WHERE a.x = 1")
        assert isinstance(q.cores[0].where, And)
        assert len(q.cores[0].tables) == 2

    def test_union_and_order(self):
        q = parse(
            "SELECT a.x FROM A a UNION SELECT b.x FROM B b "
            "ORDER BY x DESC FETCH FIRST 5 ROWS ONLY"
        )
        assert len(q.cores) == 2
        assert not q.union_all
        assert q.order_by[0].descending
        assert q.fetch_first == 5

    def test_union_all(self):
        q = parse("SELECT a.x FROM A a UNION ALL SELECT b.x FROM B b")
        assert q.union_all

    def test_limit(self):
        assert parse("SELECT a.x FROM A a LIMIT 3").fetch_first == 3

    def test_contains(self):
        q = parse("SELECT a.x FROM A a WHERE CONTAINS(a.desc, 'enzyme')")
        assert isinstance(q.cores[0].where, Contains)

    def test_keyword_column_after_dot(self):
        q = parse("SELECT a.desc FROM A a")
        item = q.cores[0].items[0]
        assert isinstance(item.expr, ColumnRef) and item.expr.name == "desc"

    def test_exists(self):
        q = parse("SELECT a.x FROM A a WHERE EXISTS (SELECT 1 FROM B b WHERE b.id = a.id)")
        assert isinstance(q.cores[0].where, ExistsExpr)
        assert not q.cores[0].where.negated

    def test_not_exists(self):
        q = parse("SELECT a.x FROM A a WHERE NOT EXISTS (SELECT 1 FROM B b)")
        assert q.cores[0].where.negated

    def test_in_and_between_and_like(self):
        q = parse(
            "SELECT a.x FROM A a WHERE a.x IN (1, 2) AND a.y BETWEEN 1 AND 9 "
            "AND a.name LIKE 'x%'"
        )
        conjuncts = q.cores[0].where.items
        assert isinstance(conjuncts[0], InList)
        assert isinstance(conjuncts[1], And)
        assert isinstance(conjuncts[2], Like)

    def test_params_substitution(self):
        q = parse("SELECT a.x FROM A a WHERE a.x = :v", params={"v": 7})
        assert isinstance(q.cores[0].where.right, Literal)
        assert q.cores[0].where.right.value == 7

    def test_missing_param(self):
        with pytest.raises(SqlSyntaxError):
            parse("SELECT a.x FROM A a WHERE a.x = :v")

    def test_precedence_or_and(self):
        q = parse("SELECT a.x FROM A a WHERE a.x = 1 OR a.x = 2 AND a.y = 3")
        assert isinstance(q.cores[0].where, Or)

    def test_arith_precedence(self):
        q = parse("SELECT a.x + a.y * 2 FROM A a")
        expr = q.cores[0].items[0].expr
        assert expr.op == "+"
        assert expr.right.op == "*"

    def test_trailing_garbage(self):
        with pytest.raises(SqlSyntaxError):
            parse("SELECT a.x FROM A a banana!!")

    def test_missing_from(self):
        with pytest.raises(SqlSyntaxError):
            parse("SELECT 1")


# ----------------------------------------------------------------------
# Execution
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def engine():
    db = Database("sqltests")
    emp = db.create_table(
        TableSchema(
            "Emp",
            [
                Column("ID", DataType.INT, True),
                Column("NAME", DataType.TEXT),
                Column("DEPT", DataType.INT),
                Column("SALARY", DataType.FLOAT),
            ],
            primary_key="ID",
        )
    )
    emp.create_hash_index("by_dept", ["DEPT"])
    emp.create_sorted_index("by_salary", "SALARY")
    emp.bulk_load(
        [
            (1, "ann enzyme", 10, 100.0),
            (2, "bob", 10, 200.0),
            (3, "cara", 20, 150.0),
            (4, "dan enzyme", 20, 50.0),
            (5, "eve", None, None),
        ]
    )
    dept = db.create_table(
        TableSchema(
            "Dept",
            [Column("ID", DataType.INT, True), Column("NAME", DataType.TEXT)],
            primary_key="ID",
        )
    )
    dept.bulk_load([(10, "tools"), (20, "research"), (30, "empty")])
    return Engine(db)


class TestExecution:
    def test_filter_eq(self, engine):
        r = engine.execute("SELECT e.NAME FROM Emp e WHERE e.ID = 3")
        assert r.rows == [("cara",)]

    def test_contains(self, engine):
        r = engine.execute("SELECT e.ID FROM Emp e WHERE CONTAINS(e.NAME, 'enzyme')")
        assert sorted(r.rows) == [(1,), (4,)]

    def test_join(self, engine):
        r = engine.execute(
            "SELECT e.NAME, d.NAME FROM Emp e, Dept d WHERE e.DEPT = d.ID AND d.NAME = 'research'"
        )
        assert sorted(r.rows) == [("cara", "research"), ("dan enzyme", "research")]

    def test_join_syntax(self, engine):
        r = engine.execute(
            "SELECT e.ID FROM Emp e JOIN Dept d ON e.DEPT = d.ID WHERE d.ID = 10"
        )
        assert sorted(r.rows) == [(1,), (2,)]

    def test_null_never_joins(self, engine):
        r = engine.execute("SELECT e.ID FROM Emp e, Dept d WHERE e.DEPT = d.ID")
        assert (5,) not in r.rows

    def test_order_by_desc(self, engine):
        r = engine.execute("SELECT e.ID FROM Emp e ORDER BY e.SALARY DESC")
        assert [row[0] for row in r.rows][:2] == [2, 3]

    def test_order_by_output_alias(self, engine):
        r = engine.execute(
            "SELECT e.ID, e.SALARY AS S FROM Emp e WHERE e.SALARY > 0 ORDER BY S DESC"
        )
        assert [row[0] for row in r.rows] == [2, 3, 1, 4]

    def test_fetch_first(self, engine):
        r = engine.execute(
            "SELECT e.ID FROM Emp e ORDER BY e.SALARY DESC FETCH FIRST 2 ROWS ONLY"
        )
        assert [row[0] for row in r.rows] == [2, 3]

    def test_distinct(self, engine):
        r = engine.execute("SELECT DISTINCT e.DEPT FROM Emp e WHERE e.DEPT = 10")
        assert r.rows == [(10,)]

    def test_union_dedups(self, engine):
        r = engine.execute(
            "SELECT e.ID FROM Emp e WHERE e.ID = 1 UNION SELECT e.ID FROM Emp e WHERE e.ID = 1"
        )
        assert r.rows == [(1,)]

    def test_union_all_keeps_duplicates(self, engine):
        r = engine.execute(
            "SELECT e.ID FROM Emp e WHERE e.ID = 1 UNION ALL SELECT e.ID FROM Emp e WHERE e.ID = 1"
        )
        assert r.rows == [(1,), (1,)]

    def test_exists_correlated(self, engine):
        r = engine.execute(
            "SELECT d.ID FROM Dept d WHERE EXISTS (SELECT 1 FROM Emp e WHERE e.DEPT = d.ID)"
        )
        assert sorted(r.rows) == [(10,), (20,)]

    def test_not_exists_correlated(self, engine):
        r = engine.execute(
            "SELECT d.ID FROM Dept d WHERE NOT EXISTS (SELECT 1 FROM Emp e WHERE e.DEPT = d.ID)"
        )
        assert r.rows == [(30,)]

    def test_not_exists_with_local_predicate(self, engine):
        r = engine.execute(
            "SELECT d.ID FROM Dept d WHERE NOT EXISTS "
            "(SELECT 1 FROM Emp e WHERE e.DEPT = d.ID AND CONTAINS(e.NAME, 'enzyme'))"
        )
        assert r.rows == [(30,)] or sorted(r.rows) == [(30,)]

    def test_uncorrelated_exists(self, engine):
        r = engine.execute(
            "SELECT d.ID FROM Dept d WHERE EXISTS (SELECT 1 FROM Emp e WHERE e.ID = 1)"
        )
        assert len(r.rows) == 3
        r = engine.execute(
            "SELECT d.ID FROM Dept d WHERE EXISTS (SELECT 1 FROM Emp e WHERE e.ID = 999)"
        )
        assert r.rows == []

    def test_literal_select(self, engine):
        r = engine.execute("SELECT 5 AS TID FROM Dept d WHERE d.ID = 10")
        assert r.rows == [(5,)]
        assert r.columns == ["tid"]

    def test_in_list(self, engine):
        r = engine.execute("SELECT e.ID FROM Emp e WHERE e.ID IN (1, 4, 99)")
        assert sorted(r.rows) == [(1,), (4,)]

    def test_is_null(self, engine):
        r = engine.execute("SELECT e.ID FROM Emp e WHERE e.DEPT IS NULL")
        assert r.rows == [(5,)]

    def test_unknown_table(self, engine):
        with pytest.raises(SqlBindError):
            engine.execute("SELECT x.ID FROM Nope x")

    def test_unknown_column(self, engine):
        with pytest.raises(SqlBindError):
            engine.execute("SELECT e.BOGUS FROM Emp e")

    def test_ambiguous_column(self, engine):
        with pytest.raises(SqlBindError):
            engine.execute("SELECT ID FROM Emp e, Dept d WHERE e.DEPT = d.ID")

    def test_unqualified_unique_column(self, engine):
        r = engine.execute("SELECT SALARY FROM Emp e WHERE SALARY = 100.0")
        assert r.rows == [(100.0,)]

    def test_exists_in_or_unsupported(self, engine):
        with pytest.raises(SqlError):
            engine.execute(
                "SELECT e.ID FROM Emp e WHERE e.ID = 1 OR "
                "EXISTS (SELECT 1 FROM Dept d WHERE d.ID = e.DEPT)"
            )

    def test_explain_produces_tree(self, engine):
        text = engine.explain(
            "SELECT e.ID FROM Emp e, Dept d WHERE e.DEPT = d.ID AND d.NAME = 'tools'"
        )
        assert "Project" in text

    def test_result_helpers(self, engine):
        r = engine.execute("SELECT e.ID FROM Emp e WHERE e.ID = 1")
        assert r.scalar() == 1
        assert r.column("id") == [1]
        assert len(r) == 1
