"""Expression binding, evaluation, and SQL NULL (Kleene) semantics."""

from __future__ import annotations

import pytest

from repro.errors import SqlBindError
from repro.relational.expressions import (
    And,
    Arith,
    ColumnRef,
    Comparison,
    Contains,
    InList,
    IsNull,
    Like,
    Literal,
    Neg,
    Not,
    Or,
    RowLayout,
    as_equijoin,
    conjoin,
    is_truthy,
    referenced_aliases,
    split_conjuncts,
)

LAYOUT = RowLayout([("p", "id"), ("p", "name"), ("d", "id"), ("d", "score")])
ROW = (1, "alpha enzyme", 2, 0.5)


def ev(expr, row=ROW):
    return expr.bind(LAYOUT)(row)


class TestRowLayout:
    def test_qualified_position(self):
        assert LAYOUT.position("p", "id") == 0
        assert LAYOUT.position("D", "ID") == 2

    def test_unqualified_unique(self):
        assert LAYOUT.position(None, "name") == 1

    def test_unqualified_ambiguous(self):
        with pytest.raises(SqlBindError):
            LAYOUT.position(None, "id")

    def test_unknown(self):
        with pytest.raises(SqlBindError):
            LAYOUT.position("p", "bogus")
        with pytest.raises(SqlBindError):
            LAYOUT.position(None, "bogus")

    def test_concat(self):
        combined = LAYOUT.concat(RowLayout([("x", "a")]))
        assert combined.arity == 5
        assert combined.position("x", "a") == 4

    def test_duplicate_rejected(self):
        with pytest.raises(SqlBindError):
            RowLayout([("p", "id"), ("P", "ID")])


class TestScalar:
    def test_literal(self):
        assert ev(Literal(42)) == 42

    def test_column_ref(self):
        assert ev(ColumnRef("p", "name")) == "alpha enzyme"

    def test_arith(self):
        assert ev(Arith("+", ColumnRef("d", "score"), Literal(0.5))) == 1.0
        assert ev(Arith("*", Literal(3), Literal(4))) == 12

    def test_arith_null_propagates(self):
        assert ev(Arith("+", Literal(None), Literal(1))) is None

    def test_neg(self):
        assert ev(Neg(Literal(5))) == -5
        assert ev(Neg(Literal(None))) is None


class TestComparisons:
    @pytest.mark.parametrize(
        "op,left,right,expected",
        [
            ("=", 1, 1, True),
            ("=", 1, 2, False),
            ("<>", 1, 2, True),
            ("<", 1, 2, True),
            ("<=", 2, 2, True),
            (">", 3, 2, True),
            (">=", 1, 2, False),
        ],
    )
    def test_ops(self, op, left, right, expected):
        assert ev(Comparison(op, Literal(left), Literal(right))) is expected

    def test_null_is_unknown(self):
        assert ev(Comparison("=", Literal(None), Literal(1))) is None
        assert ev(Comparison("<", Literal(1), Literal(None))) is None

    def test_incomparable_types_unknown(self):
        assert ev(Comparison("<", Literal("a"), Literal(1))) is None

    def test_bang_equals_normalized(self):
        c = Comparison("!=", Literal(1), Literal(2))
        assert c.op == "<>"

    def test_bad_operator(self):
        with pytest.raises(SqlBindError):
            Comparison("~~", Literal(1), Literal(2))


class TestBooleans:
    def test_and_kleene(self):
        t, f, u = Literal(True), Literal(False), Comparison("=", Literal(None), Literal(1))
        assert ev(And([t, t])) is True
        assert ev(And([t, f])) is False
        assert ev(And([t, u])) is None
        assert ev(And([f, u])) is False  # false dominates unknown

    def test_or_kleene(self):
        t, f, u = Literal(True), Literal(False), Comparison("=", Literal(None), Literal(1))
        assert ev(Or([f, f])) is False
        assert ev(Or([f, t])) is True
        assert ev(Or([f, u])) is None
        assert ev(Or([t, u])) is True  # true dominates unknown

    def test_not(self):
        assert ev(Not(Literal(True))) is False
        assert ev(Not(Comparison("=", Literal(None), Literal(1)))) is None

    def test_is_truthy(self):
        assert is_truthy(True)
        assert not is_truthy(False)
        assert not is_truthy(None)


class TestPredicates:
    def test_contains_case_insensitive(self):
        assert ev(Contains(ColumnRef("p", "name"), Literal("ENZYME"))) is True
        assert ev(Contains(ColumnRef("p", "name"), Literal("zzz"))) is False

    def test_contains_null(self):
        assert ev(Contains(Literal(None), Literal("x"))) is None

    def test_like(self):
        assert ev(Like(ColumnRef("p", "name"), "alpha%")) is True
        assert ev(Like(ColumnRef("p", "name"), "%zzz%")) is False
        assert ev(Like(ColumnRef("p", "name"), "alpha_______")) is True

    def test_like_negated(self):
        assert ev(Like(ColumnRef("p", "name"), "%zzz%", negated=True)) is True

    def test_in_list(self):
        assert ev(InList(ColumnRef("p", "id"), [1, 5])) is True
        assert ev(InList(ColumnRef("p", "id"), [7], negated=True)) is True
        assert ev(InList(Literal(None), [1])) is None

    def test_is_null(self):
        assert ev(IsNull(Literal(None))) is True
        assert ev(IsNull(Literal(1))) is False
        assert ev(IsNull(Literal(1), negated=True)) is True


class TestAnalysisHelpers:
    def test_split_and_conjoin(self):
        a = Comparison("=", ColumnRef("p", "id"), Literal(1))
        b = Comparison("=", ColumnRef("d", "id"), Literal(2))
        c = And([a, And([b])])
        parts = split_conjuncts(c)
        assert parts == [a, b]
        assert split_conjuncts(None) == []
        assert conjoin([]) is None
        assert conjoin([a]) is a
        assert isinstance(conjoin([a, b]), And)

    def test_referenced_aliases(self):
        e = Comparison("=", ColumnRef("p", "id"), ColumnRef("d", "id"))
        assert referenced_aliases(e) == {"p", "d"}

    def test_as_equijoin(self):
        e = Comparison("=", ColumnRef("p", "id"), ColumnRef("d", "id"))
        pair = as_equijoin(e)
        assert pair is not None
        assert pair[0].qualifier == "p" and pair[1].qualifier == "d"

    def test_as_equijoin_rejects(self):
        assert as_equijoin(Comparison("<", ColumnRef("p", "id"), ColumnRef("d", "id"))) is None
        assert as_equijoin(Comparison("=", ColumnRef("p", "id"), Literal(1))) is None
        assert (
            as_equijoin(Comparison("=", ColumnRef("p", "id"), ColumnRef("p", "name")))
            is None
        )

    def test_column_refs_traversal(self):
        e = And(
            [
                Contains(ColumnRef("p", "name"), Literal("x")),
                Or([IsNull(ColumnRef("d", "score"))]),
            ]
        )
        assert e.column_refs() == {("p", "name"), ("d", "score")}
