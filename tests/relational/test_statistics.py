"""Statistics collection and selectivity estimation."""

from __future__ import annotations

import pytest

from repro.relational import Column, Database, StatsCatalog, TableSchema
from repro.relational.expressions import (
    And,
    ColumnRef,
    Comparison,
    Contains,
    InList,
    IsNull,
    Literal,
    Not,
    Or,
)
from repro.relational.statistics import collect_table_stats
from repro.relational.types import DataType


@pytest.fixture(scope="module")
def db():
    db = Database("stats")
    t = db.create_table(
        TableSchema(
            "Items",
            [
                Column("ID", DataType.INT, True),
                Column("GRP", DataType.INT),
                Column("PRICE", DataType.FLOAT),
                Column("DESC", DataType.TEXT),
            ],
            primary_key="ID",
        )
    )
    rows = []
    for i in range(1, 101):
        grp = i % 10
        price = float(i)
        desc = "cheap widget" if i <= 25 else "fancy gadget"
        rows.append((i, grp if i % 5 else None, price, desc))
    t.bulk_load(rows)
    return db


@pytest.fixture(scope="module")
def catalog(db):
    c = StatsCatalog(db)
    c.refresh()
    return c


ALIASES = {"i": "Items"}


class TestCollection:
    def test_row_count(self, catalog):
        assert catalog.row_count("Items") == 100

    def test_distinct_and_nulls(self, catalog):
        grp = catalog.table_stats("Items").column("grp")
        assert grp.null_count == 20
        # i % 10 over i not divisible by 5 never produces 0 or 5.
        assert grp.n_distinct == 8
        assert 0.19 < grp.null_fraction < 0.21

    def test_min_max(self, catalog):
        price = catalog.table_stats("Items").column("price")
        assert price.min_value == 1.0 and price.max_value == 100.0

    def test_keyword_fractions(self, catalog):
        stats = catalog.table_stats("Items")
        assert stats.keyword_fractions[("desc", "cheap")] == pytest.approx(0.25)
        assert stats.keyword_fractions[("desc", "fancy")] == pytest.approx(0.75)

    def test_collect_without_keywords(self, db):
        stats = collect_table_stats(db.table("Items"), index_keywords=False)
        assert not stats.keyword_fractions


class TestSelectivity:
    def test_equality(self, catalog):
        sel = catalog.predicate_selectivity(
            Comparison("=", ColumnRef("i", "grp"), Literal(3)), ALIASES
        )
        assert sel == pytest.approx(0.8 / 8)

    def test_range(self, catalog):
        sel = catalog.predicate_selectivity(
            Comparison("<", ColumnRef("i", "price"), Literal(26.0)), ALIASES
        )
        assert 0.15 < sel < 0.35

    def test_contains_known_keyword(self, catalog):
        sel = catalog.predicate_selectivity(
            Contains(ColumnRef("i", "desc"), Literal("cheap")), ALIASES
        )
        assert sel == pytest.approx(0.25)

    def test_contains_unknown_keyword_default(self, catalog):
        sel = catalog.predicate_selectivity(
            Contains(ColumnRef("i", "desc"), Literal("unseen")), ALIASES
        )
        assert sel == pytest.approx(0.1)

    def test_and_multiplies(self, catalog):
        a = Contains(ColumnRef("i", "desc"), Literal("cheap"))
        sel = catalog.predicate_selectivity(And([a, a]), ALIASES)
        assert sel == pytest.approx(0.0625)

    def test_or_inclusion_exclusion(self, catalog):
        a = Contains(ColumnRef("i", "desc"), Literal("cheap"))
        sel = catalog.predicate_selectivity(Or([a, a]), ALIASES)
        assert sel == pytest.approx(1 - 0.75**2)

    def test_not_complements(self, catalog):
        a = Contains(ColumnRef("i", "desc"), Literal("cheap"))
        sel = catalog.predicate_selectivity(Not(a), ALIASES)
        assert sel == pytest.approx(0.75)

    def test_in_list(self, catalog):
        sel = catalog.predicate_selectivity(
            InList(ColumnRef("i", "grp"), [1, 2, 3]), ALIASES
        )
        assert sel == pytest.approx(3 * 0.1)

    def test_is_null(self, catalog):
        sel = catalog.predicate_selectivity(
            IsNull(ColumnRef("i", "grp")), ALIASES
        )
        assert sel == pytest.approx(0.2)
        sel = catalog.predicate_selectivity(
            IsNull(ColumnRef("i", "grp"), negated=True), ALIASES
        )
        assert sel == pytest.approx(0.8)

    def test_join_selectivity(self, catalog):
        sel = catalog.join_selectivity("Items", "id", "Items", "grp")
        assert sel == pytest.approx(1.0 / 100)

    def test_selectivities_bounded(self, catalog):
        exprs = [
            Comparison(">", ColumnRef("i", "price"), Literal(-5.0)),
            Comparison("<", ColumnRef("i", "price"), Literal(1e9)),
            Comparison("<>", ColumnRef("i", "grp"), Literal(1)),
        ]
        for e in exprs:
            sel = catalog.predicate_selectivity(e, ALIASES)
            assert 0.0 <= sel <= 1.0
