"""Frequency analysis, Zipf fits, and report rendering."""

from __future__ import annotations

import math
import random

import pytest

from repro.analysis import (
    fit_zipf,
    frequency_table,
    head_mass,
    rank_frequency,
    render_ascii_loglog,
    render_series,
    render_table,
)


class TestRankFrequency:
    def test_sorted_descending(self):
        points = rank_frequency([3, 9, 1, 5])
        assert points == [(1, 9), (2, 5), (3, 3), (4, 1)]

    def test_zero_frequencies_dropped(self):
        assert rank_frequency([0, 2, 0]) == [(1, 2)]


class TestZipfFit:
    def test_perfect_zipf(self):
        freqs = [int(1000 / rank) for rank in range(1, 30)]
        fit = fit_zipf(freqs)
        assert fit.exponent == pytest.approx(1.0, abs=0.1)
        assert fit.r_squared > 0.98
        assert fit.is_zipf_like

    def test_steeper_law(self):
        freqs = [max(1, int(10000 / rank**2)) for rank in range(1, 25)]
        fit = fit_zipf(freqs)
        assert fit.exponent > 1.5

    def test_uniform_not_zipf(self):
        fit = fit_zipf([50] * 20)
        assert not fit.is_zipf_like

    def test_degenerate_inputs(self):
        assert fit_zipf([]).n_points == 0
        assert fit_zipf([5]).n_points == 1
        assert not fit_zipf([5]).is_zipf_like

    def test_noisy_zipf_still_detected(self):
        rng = random.Random(3)
        freqs = [
            max(1, int((2000 / rank) * rng.uniform(0.7, 1.3)))
            for rank in range(1, 40)
        ]
        assert fit_zipf(freqs).is_zipf_like


class TestHeadMass:
    def test_skewed(self):
        freqs = [1000, 10, 5, 2, 1]
        assert head_mass(freqs, head=1) > 0.95

    def test_uniform(self):
        assert head_mass([10] * 10, head=2) == pytest.approx(0.2)

    def test_empty(self):
        assert head_mass([]) == 0.0


class TestFrequencyTable:
    def test_labels_and_series(self, tiny_system):
        store = tiny_system.require_store()
        table = frequency_table(
            store, [("Protein", "DNA"), ("Protein", "Interaction")]
        )
        assert set(table) == {"PD", "PI"}
        for series in table.values():
            assert series == sorted(series, reverse=True)


class TestRendering:
    def test_render_table(self):
        text = render_table(
            ["a", "b"], [[1, 2.5], ["xy", 0.001]], title="T"
        )
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "b" in lines[1]
        assert len(lines) == 5

    def test_render_series_downsamples(self):
        text = render_series("S", list(range(100)), max_points=10)
        assert text.startswith("S: ")
        assert len(text.split()) == 11

    def test_ascii_loglog(self):
        plot = render_ascii_loglog({"PD": [100, 50, 20, 10, 5, 2, 1]})
        assert "log(rank)" in plot
        assert "o=PD" in plot

    def test_ascii_loglog_degenerate(self):
        assert "not enough data" in render_ascii_loglog({"PD": [1]})
