"""Canonical forms: correctness and isomorphism-invariance.

The hypothesis test is the load-bearing one: relabeling node/edge ids
arbitrarily (an isomorphism by construction) must never change the
canonical form, and structurally distinct graphs must differ.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.graph import (
    LabeledGraph,
    are_isomorphic,
    canonical_form,
    canonical_form_and_order,
    canonical_key,
    graph_from_canonical,
    parse_canonical_key,
)

from tests.conftest import build_graph

NODE_TYPES = ["Protein", "DNA", "Unigene", "Interaction"]
EDGE_TYPES = ["encodes", "uni_encodes", "interacts"]


@st.composite
def random_labeled_graphs(draw):
    n = draw(st.integers(min_value=1, max_value=7))
    types = [draw(st.sampled_from(NODE_TYPES)) for _ in range(n)]
    g = LabeledGraph()
    for i, t in enumerate(types):
        g.add_node(i, t)
    max_edges = n * (n - 1) // 2
    m = draw(st.integers(min_value=0, max_value=min(max_edges, 9)))
    pairs = [(i, j) for i in range(n) for j in range(i + 1, n)]
    chosen = draw(st.permutations(pairs)) if pairs else []
    for k in range(min(m, len(chosen))):
        u, v = chosen[k]
        g.add_edge(f"e{k}", u, v, draw(st.sampled_from(EDGE_TYPES)))
    return g


def relabel(graph: LabeledGraph, seed: int) -> LabeledGraph:
    rng = random.Random(seed)
    nodes = list(graph.nodes())
    new_ids = [f"n{i}" for i in range(len(nodes))]
    rng.shuffle(new_ids)
    mapping = dict(zip(nodes, new_ids))
    out = LabeledGraph()
    for old in nodes:
        out.add_node(mapping[old], graph.node_type(old))
    edges = list(graph.edges())
    rng.shuffle(edges)
    for i, eid in enumerate(edges):
        u, v = graph.edge_endpoints(eid)
        out.add_edge(f"r{i}", mapping[u], mapping[v], graph.edge_type(eid))
    return out


class TestCanonicalBasics:
    def test_empty_graph(self):
        assert canonical_form(LabeledGraph()) == ((), ())

    def test_single_node(self):
        g = build_graph([("a", "Protein")], [])
        assert canonical_form(g) == (("Protein",), ())

    def test_single_edge(self):
        g = build_graph(
            [("a", "Protein"), ("b", "DNA")], [("e", "a", "b", "encodes")]
        )
        node_types, edges = canonical_form(g)
        assert sorted(node_types) == ["DNA", "Protein"]
        assert len(edges) == 1 and edges[0][2] == "encodes"

    def test_node_type_matters(self):
        g1 = build_graph([("a", "Protein")], [])
        g2 = build_graph([("a", "DNA")], [])
        assert canonical_form(g1) != canonical_form(g2)

    def test_edge_type_matters(self):
        nodes = [("a", "Protein"), ("b", "Protein")]
        g1 = build_graph(nodes, [("e", "a", "b", "x")])
        g2 = build_graph(nodes, [("e", "a", "b", "y")])
        assert canonical_form(g1) != canonical_form(g2)

    def test_parallel_edge_multiplicity_matters(self):
        nodes = [("a", "Protein"), ("b", "DNA")]
        g1 = build_graph(nodes, [("e1", "a", "b", "encodes")])
        g2 = build_graph(
            nodes, [("e1", "a", "b", "encodes"), ("e2", "a", "b", "encodes")]
        )
        assert canonical_form(g1) != canonical_form(g2)

    def test_path_vs_star_same_types(self):
        # P-P-P path vs P with two P neighbours is the same here (both
        # are paths of 3) -- use 4 nodes for a real distinction.
        path = build_graph(
            [(i, "Protein") for i in range(4)],
            [("e0", 0, 1, "x"), ("e1", 1, 2, "x"), ("e2", 2, 3, "x")],
        )
        star = build_graph(
            [(i, "Protein") for i in range(4)],
            [("e0", 0, 1, "x"), ("e1", 0, 2, "x"), ("e2", 0, 3, "x")],
        )
        assert canonical_form(path) != canonical_form(star)

    def test_symmetric_cycle(self):
        cycle = build_graph(
            [(i, "Protein") for i in range(4)],
            [("e0", 0, 1, "x"), ("e1", 1, 2, "x"), ("e2", 2, 3, "x"), ("e3", 3, 0, "x")],
        )
        chain = build_graph(
            [(i, "Protein") for i in range(4)],
            [("e0", 0, 1, "x"), ("e1", 1, 2, "x"), ("e2", 2, 3, "x")],
        )
        assert canonical_form(cycle) != canonical_form(chain)

    def test_order_maps_back(self):
        g = build_graph(
            [("a", "Protein"), ("b", "DNA"), ("c", "Unigene")],
            [("e1", "a", "b", "encodes"), ("e2", "c", "b", "uni_contains")],
        )
        form, order = canonical_form_and_order(g)
        assert sorted(order) == ["a", "b", "c"]
        for idx, nid in enumerate(order):
            assert form[0][idx] == g.node_type(nid)


class TestCanonicalKey:
    def test_roundtrip(self):
        g = build_graph(
            [("a", "Protein"), ("b", "DNA"), ("c", "Unigene")],
            [("e1", "a", "b", "encodes"), ("e2", "c", "b", "uni_contains")],
        )
        key = canonical_key(g)
        assert parse_canonical_key(key) == canonical_form(g)

    def test_representative_graph_is_isomorphic(self):
        g = build_graph(
            [("a", "Protein"), ("b", "DNA"), ("c", "Protein")],
            [("e1", "a", "b", "encodes"), ("e2", "c", "b", "encodes")],
        )
        rep = graph_from_canonical(canonical_form(g))
        assert are_isomorphic(g, rep)

    def test_empty_key_roundtrip(self):
        assert parse_canonical_key("[]|[]") == ((), ())


class TestAreIsomorphic:
    def test_fast_reject_by_counts(self):
        g1 = build_graph([("a", "Protein")], [])
        g2 = build_graph([("a", "Protein"), ("b", "Protein")], [])
        assert not are_isomorphic(g1, g2)

    def test_fast_reject_by_type_histogram(self):
        g1 = build_graph([("a", "Protein"), ("b", "DNA")], [])
        g2 = build_graph([("a", "Protein"), ("b", "Protein")], [])
        assert not are_isomorphic(g1, g2)

    def test_isomorphic_relabeled(self):
        g = build_graph(
            [("a", "Protein"), ("b", "DNA"), ("c", "Unigene")],
            [("e1", "a", "b", "encodes"), ("e2", "c", "b", "uni_contains")],
        )
        assert are_isomorphic(g, relabel(g, 99))


class TestHypothesisInvariance:
    @settings(max_examples=60, deadline=None)
    @given(random_labeled_graphs(), st.integers(min_value=0, max_value=10_000))
    def test_relabel_invariance(self, graph, seed):
        assert canonical_form(graph) == canonical_form(relabel(graph, seed))

    @settings(max_examples=40, deadline=None)
    @given(random_labeled_graphs())
    def test_key_roundtrip(self, graph):
        assert parse_canonical_key(canonical_key(graph)) == canonical_form(graph)

    @settings(max_examples=40, deadline=None)
    @given(random_labeled_graphs())
    def test_representative_isomorphic(self, graph):
        rep = graph_from_canonical(canonical_form(graph))
        assert canonical_form(rep) == canonical_form(graph)
