"""Path enumeration: PS(a, b, l) semantics and the single-source
variant, cross-checked against a brute-force enumerator."""

from __future__ import annotations

import itertools
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import GraphError
from repro.graph import (
    LabeledGraph,
    bfs_distances,
    iter_simple_paths,
    pairs_within_distance,
    path_set,
    paths_from_source,
)

from tests.conftest import build_graph


@pytest.fixture
def diamond():
    #   a - m1 - b
    #   a - m2 - b      plus a pendant node c off m1
    return build_graph(
        [("a", "P"), ("b", "D"), ("m1", "U"), ("m2", "U"), ("c", "F")],
        [
            ("e1", "a", "m1", "x"),
            ("e2", "m1", "b", "y"),
            ("e3", "a", "m2", "x"),
            ("e4", "m2", "b", "y"),
            ("e5", "m1", "c", "z"),
        ],
    )


def brute_force_paths(graph, a, b, max_length):
    """Exponential reference: enumerate all node sequences."""
    results = set()

    def extend(seq, edges_used):
        current = seq[-1]
        if current == b and len(seq) > 1:
            results.add((tuple(seq), tuple(edges_used)))
            return
        if len(edges_used) == max_length:
            return
        for eid, nbr in graph.neighbors(current):
            if nbr in seq:
                continue
            extend(seq + [nbr], edges_used + [eid])

    extend([a], [])
    return results


class TestBfs:
    def test_distances(self, diamond):
        dist = bfs_distances(diamond, "a", 3)
        assert dist["a"] == 0
        assert dist["m1"] == 1
        assert dist["b"] == 2
        assert dist["c"] == 2

    def test_depth_cap(self, diamond):
        dist = bfs_distances(diamond, "a", 1)
        assert "b" not in dist

    def test_unknown_source(self, diamond):
        with pytest.raises(GraphError):
            bfs_distances(diamond, "zzz", 2)


class TestPathSet:
    def test_two_parallel_paths(self, diamond):
        paths = path_set(diamond, "a", "b", 2)
        assert len(paths) == 2
        assert {p.nodes[1] for p in paths} == {"m1", "m2"}

    def test_length_bound(self, diamond):
        assert path_set(diamond, "a", "b", 1) == []

    def test_paths_are_simple(self, diamond):
        for p in path_set(diamond, "a", "b", 4):
            assert len(set(p.nodes)) == len(p.nodes)

    def test_endpoints(self, diamond):
        for p in path_set(diamond, "a", "b", 4):
            assert p.source == "a" and p.target == "b"

    def test_same_node_yields_nothing(self, diamond):
        assert path_set(diamond, "a", "a", 3) == []

    def test_limit(self, diamond):
        assert len(path_set(diamond, "a", "b", 4, limit=1)) == 1

    def test_unreachable(self):
        g = build_graph([("a", "P"), ("b", "D")], [])
        assert path_set(g, "a", "b", 5) == []

    def test_unknown_nodes(self, diamond):
        with pytest.raises(GraphError):
            path_set(diamond, "zzz", "b", 2)
        with pytest.raises(GraphError):
            path_set(diamond, "a", "zzz", 2)

    def test_parallel_edges_give_distinct_paths(self):
        g = build_graph(
            [("a", "P"), ("b", "D")],
            [("e1", "a", "b", "x"), ("e2", "a", "b", "x")],
        )
        assert len(path_set(g, "a", "b", 1)) == 2

    def test_matches_brute_force_on_diamond(self, diamond):
        got = {(p.nodes, p.edges) for p in path_set(diamond, "a", "b", 4)}
        assert got == brute_force_paths(diamond, "a", "b", 4)


class TestPathsFromSource:
    def test_grouped_by_endpoint(self, diamond):
        grouped = paths_from_source(diamond, "a", 2, "D")
        assert set(grouped) == {"b"}
        assert len(grouped["b"]) == 2

    def test_matches_per_pair_enumeration(self, diamond):
        grouped = paths_from_source(diamond, "a", 4, "U")
        for target, paths in grouped.items():
            expected = {(p.nodes, p.edges) for p in path_set(diamond, "a", target, 4)}
            assert {(p.nodes, p.edges) for p in paths} == expected

    def test_per_pair_limit(self, diamond):
        grouped = paths_from_source(diamond, "a", 4, "D", per_pair_limit=1)
        assert len(grouped["b"]) == 1

    def test_source_type_not_included(self, diamond):
        grouped = paths_from_source(diamond, "a", 3, "P")
        assert "a" not in grouped


class TestPairsWithinDistance:
    def test_finds_typed_nodes(self, diamond):
        assert pairs_within_distance(diamond, "a", 2, "D") == ["b"]
        assert set(pairs_within_distance(diamond, "a", 2, "U")) == {"m1", "m2"}

    def test_excludes_source(self, diamond):
        assert "a" not in pairs_within_distance(diamond, "a", 3, "P")


class TestHypothesisAgainstBruteForce:
    @settings(max_examples=40, deadline=None)
    @given(
        st.integers(min_value=2, max_value=7),
        st.integers(min_value=0, max_value=12),
        st.integers(min_value=1, max_value=4),
        st.integers(min_value=0, max_value=10_000),
    )
    def test_random_graphs(self, n, m, max_length, seed):
        rng = random.Random(seed)
        g = LabeledGraph()
        for i in range(n):
            g.add_node(i, rng.choice("PDU"))
        pairs = [(i, j) for i in range(n) for j in range(i + 1, n)]
        rng.shuffle(pairs)
        for k, (u, v) in enumerate(pairs[:m]):
            g.add_edge(f"e{k}", u, v, rng.choice("xy"))
        a, b = 0, n - 1
        got = {(p.nodes, p.edges) for p in iter_simple_paths(g, a, b, max_length)}
        assert got == brute_force_paths(g, a, b, max_length)
