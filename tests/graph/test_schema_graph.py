"""Schema graphs and schema-path enumeration — including the paper's
"ten schema paths of length three or less" count."""

from __future__ import annotations

import pytest

from repro.biozon import biozon_schema_graph
from repro.errors import SchemaError
from repro.graph import (
    SchemaEdge,
    SchemaGraph,
    SchemaPath,
    enumerate_schema_paths,
    instantiate_template,
)


@pytest.fixture(scope="module")
def biozon():
    return biozon_schema_graph()


class TestSchemaGraph:
    def test_entity_types(self, biozon):
        assert set(biozon.entity_types) == {
            "Protein", "DNA", "Unigene", "Interaction",
            "Family", "Pathway", "Structure",
        }

    def test_eight_relationships(self, biozon):
        assert len(biozon.relationship_names) == 8

    def test_incident(self, biozon):
        names = {e.name for e in biozon.incident("Protein")}
        assert names == {
            "encodes", "uni_encodes", "interacts_protein", "belongs", "manifests",
        }

    def test_edge_other(self, biozon):
        edge = biozon.edge("encodes")
        assert edge.other("Protein") == "DNA"
        assert edge.other("DNA") == "Protein"
        with pytest.raises(SchemaError):
            edge.other("Unigene")

    def test_duplicate_entity_rejected(self):
        with pytest.raises(SchemaError):
            SchemaGraph(["A", "A"], [])

    def test_duplicate_relationship_rejected(self):
        with pytest.raises(SchemaError):
            SchemaGraph(["A", "B"], [SchemaEdge("r", "A", "B"), SchemaEdge("r", "B", "A")])

    def test_unknown_endpoint_rejected(self):
        with pytest.raises(SchemaError):
            SchemaGraph(["A"], [SchemaEdge("r", "A", "Z")])

    def test_as_labeled_graph(self, biozon):
        g = biozon.as_labeled_graph()
        assert g.node_count == 7
        assert g.edge_count == 8


class TestSchemaPathEnumeration:
    def test_paper_count_protein_dna_l3(self, biozon):
        """Section 1/3.1: ten schema paths of length <= 3 relate
        Proteins and DNAs."""
        assert len(enumerate_schema_paths(biozon, "Protein", "DNA", 3)) == 10

    def test_protein_dna_l1(self, biozon):
        paths = enumerate_schema_paths(biozon, "Protein", "DNA", 1)
        assert [p.labels for p in paths] == [("Protein", "encodes", "DNA")]

    def test_protein_dna_l2(self, biozon):
        paths = enumerate_schema_paths(biozon, "Protein", "DNA", 2)
        assert len(paths) == 3  # direct, via Unigene, via Interaction

    def test_walks_may_repeat_types(self, biozon):
        paths = enumerate_schema_paths(biozon, "Protein", "DNA", 3)
        labels = {p.labels for p in paths}
        assert (
            "Protein", "encodes", "DNA", "encodes", "Protein", "encodes", "DNA"
        ) in labels

    def test_reversal_dedup_same_types(self, biozon):
        paths = enumerate_schema_paths(biozon, "Protein", "Protein", 2)
        sigs = [p.signature() for p in paths]
        assert len(sigs) == len(set(sigs))

    def test_path_properties(self, biozon):
        for p in enumerate_schema_paths(biozon, "Protein", "DNA", 3):
            assert p.source_type == "Protein"
            assert p.target_type == "DNA"
            assert p.length <= 3
            assert len(p.node_labels) == p.length + 1

    def test_deterministic_order(self, biozon):
        a = enumerate_schema_paths(biozon, "Protein", "DNA", 3)
        b = enumerate_schema_paths(biozon, "Protein", "DNA", 3)
        assert [p.labels for p in a] == [p.labels for p in b]

    def test_unknown_types_rejected(self, biozon):
        with pytest.raises(SchemaError):
            enumerate_schema_paths(biozon, "Protein", "Nope", 2)


class TestSchemaPathValue:
    def test_invalid_label_arity(self):
        with pytest.raises(SchemaError):
            SchemaPath(("Protein", "encodes"))

    def test_display(self):
        p = SchemaPath(("Protein", "encodes", "DNA"))
        assert p.display() == "Protein-encodes-DNA"

    def test_signature_reversal(self):
        p = SchemaPath(("Protein", "uni_encodes", "Unigene", "uni_contains", "DNA"))
        q = SchemaPath(("DNA", "uni_contains", "Unigene", "uni_encodes", "Protein"))
        assert p.signature() == q.signature()


class TestTemplates:
    def test_instantiate_shares_endpoints(self, biozon):
        paths = enumerate_schema_paths(biozon, "Protein", "DNA", 2)
        template, node_lists = instantiate_template(paths)
        assert template.has_node("@a") and template.has_node("@b")
        for nodes in node_lists:
            assert nodes[0] == "@a" and nodes[-1] == "@b"
        # Intermediates are distinct across paths before merging.
        intermediates = [n for nodes in node_lists for n in nodes[1:-1]]
        assert len(intermediates) == len(set(intermediates))

    def test_instantiate_type_mismatch(self, biozon):
        pd = enumerate_schema_paths(biozon, "Protein", "DNA", 1)
        pi = enumerate_schema_paths(biozon, "Protein", "Interaction", 1)
        with pytest.raises(SchemaError):
            instantiate_template(pd + pi)
