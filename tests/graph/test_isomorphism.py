"""Subgraph isomorphism: anchored matching and embedding enumeration."""

from __future__ import annotations

import pytest

from repro.graph import (
    find_embeddings,
    has_subgraph_isomorphism,
    subgraph_isomorphisms,
)

from tests.conftest import build_graph


@pytest.fixture
def target():
    # p1 - d1 (encodes), p2 - d1 (encodes), p1 - i1, p2 - i1 (interacts)
    return build_graph(
        [("p1", "P"), ("p2", "P"), ("d1", "D"), ("i1", "I"), ("p3", "P")],
        [
            ("e1", "p1", "d1", "encodes"),
            ("e2", "p2", "d1", "encodes"),
            ("e3", "p1", "i1", "interacts"),
            ("e4", "p2", "i1", "interacts"),
            ("e5", "p3", "d1", "other"),
        ],
    )


def edge_pattern():
    return build_graph([("x", "P"), ("y", "D")], [("pe", "x", "y", "encodes")])


class TestBasicMatching:
    def test_single_edge_pattern(self, target):
        maps = list(subgraph_isomorphisms(edge_pattern(), target))
        assert {(m["x"], m["y"]) for m in maps} == {("p1", "d1"), ("p2", "d1")}

    def test_edge_type_must_match(self, target):
        pattern = build_graph([("x", "P"), ("y", "D")], [("pe", "x", "y", "zzz")])
        assert not has_subgraph_isomorphism(pattern, target)

    def test_node_type_must_match(self, target):
        pattern = build_graph([("x", "U"), ("y", "D")], [("pe", "x", "y", "encodes")])
        assert not has_subgraph_isomorphism(pattern, target)

    def test_injective(self, target):
        # Two distinct P's required: p1/p2 both encode d1 AND interact.
        pattern = build_graph(
            [("x", "P"), ("y", "P"), ("d", "D")],
            [("a", "x", "d", "encodes"), ("b", "y", "d", "encodes")],
        )
        for m in subgraph_isomorphisms(pattern, target):
            assert m["x"] != m["y"]

    def test_motif_figure16(self, target):
        """Two proteins encoded by the same DNA that also interact."""
        pattern = build_graph(
            [("x", "P"), ("y", "P"), ("d", "D"), ("i", "I")],
            [
                ("a", "x", "d", "encodes"),
                ("b", "y", "d", "encodes"),
                ("c", "x", "i", "interacts"),
                ("e", "y", "i", "interacts"),
            ],
        )
        maps = list(subgraph_isomorphisms(pattern, target))
        assert len(maps) == 2  # x/y swap
        for m in maps:
            assert {m["x"], m["y"]} == {"p1", "p2"}


class TestAnchors:
    def test_anchor_restricts(self, target):
        maps = list(
            subgraph_isomorphisms(edge_pattern(), target, anchors={"x": "p1"})
        )
        assert [(m["x"], m["y"]) for m in maps] == [("p1", "d1")]

    def test_anchor_type_mismatch(self, target):
        assert (
            list(subgraph_isomorphisms(edge_pattern(), target, anchors={"x": "d1"}))
            == []
        )

    def test_anchor_without_edge(self, target):
        assert not has_subgraph_isomorphism(
            edge_pattern(), target, anchors={"x": "p3"}
        )

    def test_conflicting_anchor_targets(self, target):
        pattern = build_graph(
            [("x", "P"), ("y", "P"), ("d", "D")],
            [("a", "x", "d", "encodes"), ("b", "y", "d", "encodes")],
        )
        assert (
            list(
                subgraph_isomorphisms(
                    pattern, target, anchors={"x": "p1", "y": "p1"}
                )
            )
            == []
        )


class TestEmbeddings:
    def test_edge_map_injective(self, target):
        pattern = build_graph(
            [("x", "P"), ("y", "P"), ("d", "D")],
            [("a", "x", "d", "encodes"), ("b", "y", "d", "encodes")],
        )
        for node_map, edge_map in find_embeddings(pattern, target):
            assert len(set(edge_map.values())) == len(edge_map)

    def test_parallel_pattern_edges_need_parallel_target_edges(self):
        pattern = build_graph(
            [("x", "P"), ("y", "D")],
            [("a", "x", "y", "encodes"), ("b", "x", "y", "encodes")],
        )
        single = build_graph(
            [("p", "P"), ("d", "D")], [("e", "p", "d", "encodes")]
        )
        double = build_graph(
            [("p", "P"), ("d", "D")],
            [("e1", "p", "d", "encodes"), ("e2", "p", "d", "encodes")],
        )
        assert find_embeddings(pattern, single) == []
        assert len(find_embeddings(pattern, double)) == 2  # edge swap

    def test_limit(self, target):
        embeddings = find_embeddings(edge_pattern(), target, limit=1)
        assert len(embeddings) == 1

    def test_embedding_maps_edges_consistently(self, target):
        for node_map, edge_map in find_embeddings(edge_pattern(), target):
            teid = edge_map["pe"]
            endpoints = set(target.edge_endpoints(teid))
            assert endpoints == {node_map["x"], node_map["y"]}
