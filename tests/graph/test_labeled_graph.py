"""Unit tests for the labeled multigraph model."""

from __future__ import annotations

import pytest

from repro.errors import GraphError
from repro.graph import LabeledGraph, Path, union_all

from tests.conftest import build_graph


@pytest.fixture
def small():
    return build_graph(
        [("p1", "Protein"), ("d1", "DNA"), ("u1", "Unigene")],
        [("e1", "p1", "d1", "encodes"), ("e2", "u1", "p1", "uni_encodes")],
    )


class TestConstruction:
    def test_counts(self, small):
        assert small.node_count == 3
        assert small.edge_count == 2

    def test_node_type(self, small):
        assert small.node_type("p1") == "Protein"
        assert small.node_type("d1") == "DNA"

    def test_edge_type_and_endpoints(self, small):
        assert small.edge_type("e1") == "encodes"
        assert set(small.edge_endpoints("e1")) == {"p1", "d1"}

    def test_readding_same_node_is_noop(self, small):
        small.add_node("p1", "Protein")
        assert small.node_count == 3

    def test_readding_node_with_different_type_fails(self, small):
        with pytest.raises(GraphError):
            small.add_node("p1", "DNA")

    def test_duplicate_edge_id_fails(self, small):
        with pytest.raises(GraphError):
            small.add_edge("e1", "p1", "u1", "x")

    def test_edge_with_unknown_endpoint_fails(self, small):
        with pytest.raises(GraphError):
            small.add_edge("e9", "p1", "nope", "x")

    def test_self_loop_rejected(self, small):
        with pytest.raises(GraphError):
            small.add_edge("loop", "p1", "p1", "x")

    def test_unknown_node_lookup_fails(self, small):
        with pytest.raises(GraphError):
            small.node_type("zzz")
        with pytest.raises(GraphError):
            small.neighbors("zzz")

    def test_unknown_edge_lookup_fails(self, small):
        with pytest.raises(GraphError):
            small.edge_type("zzz")


class TestAdjacency:
    def test_neighbors(self, small):
        nbrs = {nbr for _, nbr in small.neighbors("p1")}
        assert nbrs == {"d1", "u1"}

    def test_degree(self, small):
        assert small.degree("p1") == 2
        assert small.degree("d1") == 1

    def test_edges_between(self, small):
        assert small.edges_between("p1", "d1") == ["e1"]
        assert small.edges_between("d1", "u1") == []

    def test_parallel_edges_allowed(self, small):
        small.add_edge("e3", "p1", "d1", "encodes")
        assert sorted(small.edges_between("p1", "d1")) == ["e1", "e3"]
        assert small.degree("p1") == 3

    def test_contains(self, small):
        assert "p1" in small
        assert "zzz" not in small

    def test_type_counts(self, small):
        assert small.type_counts() == {"Protein": 1, "DNA": 1, "Unigene": 1}


class TestDerivedGraphs:
    def test_subgraph(self, small):
        sub = small.subgraph(["p1", "d1"], ["e1"])
        assert sub.node_count == 2 and sub.edge_count == 1

    def test_subgraph_dangling_edge_fails(self, small):
        with pytest.raises(GraphError):
            small.subgraph(["p1"], ["e1"])

    def test_union_merges_shared_ids(self, small):
        other = build_graph(
            [("p1", "Protein"), ("d2", "DNA")], [("e9", "p1", "d2", "encodes")]
        )
        u = small.union(other)
        assert u.node_count == 4
        assert u.edge_count == 3

    def test_union_all(self, small):
        g1 = small.subgraph(["p1", "d1"], ["e1"])
        g2 = small.subgraph(["p1", "u1"], ["e2"])
        u = union_all([g1, g2])
        assert u.node_count == 3 and u.edge_count == 2

    def test_copy_is_independent(self, small):
        c = small.copy()
        c.add_node("x", "Family")
        assert not small.has_node("x")


class TestPath:
    def test_basic_properties(self, small):
        p = Path(["d1", "p1", "u1"], ["e1", "e2"], small)
        assert p.length == 2
        assert p.source == "d1" and p.target == "u1"

    def test_label_sequence(self, small):
        p = Path(["d1", "p1", "u1"], ["e1", "e2"], small)
        assert p.label_sequence() == (
            "DNA", "encodes", "Protein", "uni_encodes", "Unigene",
        )

    def test_signature_direction_independent(self, small):
        p = Path(["d1", "p1", "u1"], ["e1", "e2"], small)
        assert p.signature() == p.reversed().signature()

    def test_as_graph(self, small):
        g = Path(["d1", "p1"], ["e1"], small).as_graph()
        assert g.node_count == 2 and g.edge_count == 1

    def test_non_simple_rejected(self, small):
        with pytest.raises(GraphError):
            Path(["p1", "d1", "p1"], ["e1", "e1"], small)

    def test_arity_mismatch_rejected(self, small):
        with pytest.raises(GraphError):
            Path(["p1", "d1"], [], small)

    def test_equality_and_hash(self, small):
        p1 = Path(["d1", "p1"], ["e1"], small)
        p2 = Path(["d1", "p1"], ["e1"], small)
        assert p1 == p2
        assert hash(p1) == hash(p2)
        assert p1 != p1.reversed()
