"""Possible-topology enumeration (Figure 8 / Section 3.1 counts)."""

from __future__ import annotations

import pytest

from repro.biozon import biozon_schema_graph
from repro.core.topologies import topologies_for_pair
from repro.graph import (
    count_possible_topologies,
    enumerate_possible_topologies,
    graph_from_canonical,
)
from repro.graph.schema_enum import SOURCE_ID, TARGET_ID


@pytest.fixture(scope="module")
def biozon():
    return biozon_schema_graph()


class TestTwoTopologies:
    """l=2 between Protein and DNA: three path classes (direct, via
    Unigene, via Interaction) with no mergeable intermediates, so every
    non-empty class subset gives exactly one topology: 7 total
    (Figure 8's enumeration)."""

    def test_count(self, biozon):
        assert count_possible_topologies(biozon, "Protein", "DNA", 2) == 7

    def test_class_subsets(self, biozon):
        tops = enumerate_possible_topologies(biozon, "Protein", "DNA", 2)
        by_size = {}
        for t in tops:
            by_size[t.num_classes] = by_size.get(t.num_classes, 0) + 1
        assert by_size == {1: 3, 2: 3, 3: 1}

    def test_forms_distinct(self, biozon):
        tops = enumerate_possible_topologies(biozon, "Protein", "DNA", 2)
        assert len({t.form for t in tops}) == len(tops)

    def test_each_is_self_consistent(self, biozon):
        """Every enumerated topology must be realizable: its own graph,
        treated as data, yields itself via Definition 2."""
        for t in enumerate_possible_topologies(biozon, "Protein", "DNA", 2):
            pair = topologies_for_pair(t.graph, SOURCE_ID, TARGET_ID, 2)
            from repro.graph.canonical import canonical_key

            assert canonical_key(t.graph) in pair.topology_keys


class TestCapsAndGrowth:
    def test_max_results_cap(self, biozon):
        tops = enumerate_possible_topologies(
            biozon, "Protein", "DNA", 2, max_results=3
        )
        assert len(tops) == 3

    def test_subset_size_cap(self, biozon):
        tops = enumerate_possible_topologies(
            biozon, "Protein", "DNA", 2, max_subset_size=1
        )
        assert len(tops) == 3

    def test_l3_single_class_count(self, biozon):
        """With max_subset_size=1 each of the 10 schema path classes
        yields exactly one (path-shaped) topology."""
        tops = enumerate_possible_topologies(
            biozon, "Protein", "DNA", 3, max_subset_size=1
        )
        assert len(tops) == 10

    def test_l3_growth_with_mixing(self, biozon):
        """Allowing two-class combinations must add many intermixed
        shapes — the combinatorial blow-up behind the paper's 88453."""
        single = count_possible_topologies(
            biozon, "Protein", "DNA", 3, max_subset_size=1
        )
        pairs = count_possible_topologies(
            biozon, "Protein", "DNA", 3, max_subset_size=2
        )
        assert pairs > single * 4

    def test_interaction_pair_enumeration(self, biozon):
        tops = enumerate_possible_topologies(biozon, "Protein", "Interaction", 2)
        assert len(tops) >= 1
        for t in tops:
            types = set(t.form[0])
            assert "Protein" in types and "Interaction" in types
