"""Biozon schema, Figure-3 fixture, graph mapping, and generator."""

from __future__ import annotations

import pytest

from repro.biozon import (
    BiozonConfig,
    INTERACTION_KEYWORDS,
    PROTEIN_KEYWORDS,
    RELATIONSHIPS,
    biozon_schema_graph,
    build_empty_database,
    build_figure3_database,
    database_to_graph,
    generate,
)
from repro.errors import GeneratorError
from repro.graph import enumerate_schema_paths


class TestSchema:
    def test_seven_entity_tables_eight_relationship_tables(self):
        db = build_empty_database()
        names = set(db.table_names())
        entity = {"Protein", "DNA", "Unigene", "Interaction", "Family", "Pathway", "Structure"}
        assert entity <= names
        assert len(names) == 15  # 7 + 8, the paper's table counts

    def test_fk_indexes_exist(self):
        db = build_empty_database()
        for spec in RELATIONSHIPS:
            t = db.table(spec.table)
            assert t.hash_index_on([spec.left_column]) is not None
            assert t.hash_index_on([spec.right_column]) is not None

    def test_ten_schema_paths(self):
        sg = biozon_schema_graph()
        assert len(enumerate_schema_paths(sg, "Protein", "DNA", 3)) == 10


class TestFigure3:
    def test_row_counts(self):
        db = build_figure3_database()
        assert db.table("Protein").row_count == 4
        assert db.table("DNA").row_count == 3
        assert db.table("Unigene").row_count == 4
        assert db.table("Encodes").row_count == 2
        assert db.table("UniEncodes").row_count == 5
        assert db.table("UniContains").row_count == 4

    def test_graph_mapping(self):
        g = database_to_graph(build_figure3_database())
        assert g.node_count == 11
        assert g.edge_count == 11
        assert g.node_type(78) == "Protein"
        assert g.node_type(215) == "DNA"

    def test_edges_reconstruct_figure6(self):
        g = database_to_graph(build_figure3_database())
        assert g.edges_between(103, 78)  # uni_encodes 25
        assert g.edges_between(103, 34)  # uni_encodes 14
        assert g.edges_between(103, 215)  # uni_contains 62
        assert g.edges_between(34, 215)  # encodes 44
        assert not g.edges_between(78, 215)  # no direct edge


class TestGenerator:
    def test_reproducible(self):
        a = generate(BiozonConfig.tiny(seed=9))
        b = generate(BiozonConfig.tiny(seed=9))
        assert a.database.table("Protein").rows == b.database.table("Protein").rows
        assert a.database.table("Encodes").rows == b.database.table("Encodes").rows

    def test_seed_changes_data(self):
        a = generate(BiozonConfig.tiny(seed=1))
        b = generate(BiozonConfig.tiny(seed=2))
        assert a.database.table("Protein").rows != b.database.table("Protein").rows

    def test_keyword_fractions_near_targets(self):
        ds = generate(BiozonConfig.small(seed=5))
        for keyword, target in PROTEIN_KEYWORDS:
            achieved = ds.truth.protein_keyword_fractions[keyword]
            assert abs(achieved - target) < 0.08, (keyword, achieved)
        for keyword, target in INTERACTION_KEYWORDS:
            achieved = ds.truth.interaction_keyword_fractions[keyword]
            assert abs(achieved - target) < 0.12, (keyword, achieved)

    def test_keyword_fractions_match_actual_rows(self):
        ds = generate(BiozonConfig.tiny(seed=4))
        rows = ds.database.table("Protein").rows
        for keyword, _ in PROTEIN_KEYWORDS:
            actual = sum(1 for r in rows if keyword in r[1]) / len(rows)
            assert actual == pytest.approx(
                ds.truth.protein_keyword_fractions[keyword]
            )

    def test_operons_planted(self):
        ds = generate(BiozonConfig.small(seed=5))
        assert ds.truth.operons
        g = ds.graph()
        for operon in ds.truth.operons[:5]:
            a, b = operon.interacting_pair
            # Both proteins encoded by the operon DNA...
            assert g.edges_between(a, operon.dna_id)
            assert g.edges_between(b, operon.dna_id)
            # ...and both attached to the planted interaction.
            assert g.edges_between(a, operon.interaction_id)
            assert g.edges_between(b, operon.interaction_id)

    def test_self_regulation_planted(self):
        ds = generate(BiozonConfig.small(seed=5))
        assert ds.truth.self_regulating
        g = ds.graph()
        for pid, did, iid in ds.truth.self_regulating[:5]:
            assert g.edges_between(pid, did)   # encoded by
            assert g.edges_between(pid, iid)   # participates
            assert g.edges_between(did, iid)   # DNA bound by interaction

    def test_every_row_maps_to_graph(self):
        ds = generate(BiozonConfig.tiny(seed=4))
        g = ds.graph()
        n_entities = sum(
            ds.database.table(t).row_count
            for t in ("Protein", "DNA", "Unigene", "Interaction",
                       "Family", "Pathway", "Structure")
        )
        n_edges = sum(ds.database.table(s.table).row_count for s in RELATIONSHIPS)
        assert g.node_count == n_entities
        assert g.edge_count == n_edges

    def test_config_validation(self):
        with pytest.raises(GeneratorError):
            BiozonConfig(n_proteins=2)

    def test_presets_scale(self):
        assert BiozonConfig.tiny().n_proteins < BiozonConfig.small().n_proteins
        assert BiozonConfig.small().n_proteins < BiozonConfig.medium().n_proteins
        assert BiozonConfig.medium().n_proteins < BiozonConfig.large().n_proteins

    def test_est_dnas_recorded(self):
        ds = generate(BiozonConfig.small(seed=5))
        assert ds.truth.est_dna_ids
        dna = ds.database.table("DNA")
        for did in ds.truth.est_dna_ids[:10]:
            assert dna.get_by_key(did)[0][1] == "EST"
