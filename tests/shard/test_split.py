"""Shard splitting: losslessness, manifests, and failure detection."""

from __future__ import annotations

import copy
import json
import logging
import os
import random

import pytest

from repro.errors import ShardError
from repro.persist import read_store_state, save_system, snapshot_info
from repro.shard import (
    MANIFEST_FORMAT,
    SHARD_SCHEME,
    SKEW_WARNING_THRESHOLD,
    ShardSplitReport,
    read_manifest,
    shard_of,
    shard_set_id,
    split_state,
    split_system,
    state_digest,
    union_digest,
    union_state,
    verify_split,
    write_manifest,
)
from repro.shard.build import _warn_on_skew

NUM_SHARDS = 4  # matches the session split in conftest.py


# ----------------------------------------------------------------------
# split_state: the in-memory split
# ----------------------------------------------------------------------
class TestSplitState:
    def test_routed_rows_partition_exactly(self, reference_state):
        shards = split_state(reference_state, NUM_SHARDS)
        for kind in ("alltops_rows", "lefttops_rows"):
            assert sum(len(s[kind]) for s in shards) == len(
                reference_state[kind]
            )
            for index, shard in enumerate(shards):
                assert all(
                    shard_of(row[0], NUM_SHARDS) == index
                    for row in shard[kind]
                )
        assert sum(len(s["pairs"]) for s in shards) == len(
            reference_state["pairs"]
        )

    def test_replicated_components_are_full_copies(self, reference_state):
        for shard in split_state(reference_state, NUM_SHARDS):
            assert shard["topologies"] == list(reference_state["topologies"])
            assert shard["excptops_rows"] == list(
                reference_state["excptops_rows"]
            )
            assert shard["pruned_tids"] == list(reference_state["pruned_tids"])
            assert shard["truncated_pairs"] == reference_state["truncated_pairs"]

    def test_split_is_nonempty_per_shard(self, reference_state):
        """Regression guard on the fixture itself: the tiny system must
        route rows to *every* shard or the equality tests prove nothing
        about merging."""
        shards = split_state(reference_state, NUM_SHARDS)
        assert all(
            s["alltops_rows"] or s["lefttops_rows"] for s in shards
        )

    def test_bad_shard_count_rejected(self, reference_state):
        with pytest.raises(ShardError):
            split_state(reference_state, 0)

    def test_single_shard_split_is_identity(self, reference_state):
        (only,) = split_state(reference_state, 1)
        assert only["alltops_rows"] == list(reference_state["alltops_rows"])
        assert only["lefttops_rows"] == list(reference_state["lefttops_rows"])
        assert len(only["pairs"]) == len(reference_state["pairs"])


# ----------------------------------------------------------------------
# Canonical digests and union
# ----------------------------------------------------------------------
class TestUnionDigest:
    def test_union_digest_equals_reference(self, reference_state):
        shards = split_state(reference_state, NUM_SHARDS)
        assert union_digest(shards) == state_digest(reference_state)

    def test_state_digest_is_row_order_insensitive(self, reference_state):
        shuffled = copy.deepcopy(reference_state)
        rng = random.Random(0)
        rng.shuffle(shuffled["alltops_rows"])
        rng.shuffle(shuffled["lefttops_rows"])
        assert state_digest(shuffled) == state_digest(reference_state)

    def test_union_rejects_duplicated_routed_row(self, reference_state):
        shards = split_state(reference_state, NUM_SHARDS)
        donor = next(i for i, s in enumerate(shards) if s["alltops_rows"])
        row = shards[donor]["alltops_rows"][0]
        shards[(donor + 1) % NUM_SHARDS]["alltops_rows"].append(row)
        with pytest.raises(ShardError, match="appears in both"):
            union_state(shards)

    def test_union_rejects_diverged_replica(self, reference_state):
        shards = split_state(reference_state, NUM_SHARDS)
        shards[1]["pruned_tids"] = list(shards[1]["pruned_tids"]) + [999_999]
        with pytest.raises(ShardError, match="pruned_tids"):
            union_state(shards)

    def test_union_rejects_empty_list(self):
        with pytest.raises(ShardError):
            union_state([])


class TestVerifySplit:
    def test_accepts_good_split(self, reference_state):
        verify_split(
            reference_state, split_state(reference_state, NUM_SHARDS)
        )

    def test_detects_dropped_row(self, reference_state):
        shards = split_state(reference_state, NUM_SHARDS)
        donor = next(s for s in shards if s["alltops_rows"])
        donor["alltops_rows"] = donor["alltops_rows"][1:]
        with pytest.raises(ShardError, match="does not match"):
            verify_split(reference_state, shards)

    def test_detects_misrouted_row(self, reference_state):
        shards = split_state(reference_state, NUM_SHARDS)
        donor = next(i for i, s in enumerate(shards) if s["alltops_rows"])
        row = shards[donor]["alltops_rows"].pop(0)
        shards[(donor + 1) % NUM_SHARDS]["alltops_rows"].append(row)
        with pytest.raises(ShardError, match="does not match"):
            verify_split(reference_state, shards)

    def test_detects_tampered_replica(self, reference_state):
        shards = split_state(reference_state, NUM_SHARDS)
        if shards[0]["excptops_rows"]:
            shards[0]["excptops_rows"] = shards[0]["excptops_rows"][:-1]
        else:
            shards[0]["excptops_rows"] = [("ghost", "ghost", 0)]
        with pytest.raises(ShardError, match="excptops_rows|does not match"):
            verify_split(reference_state, shards)


# ----------------------------------------------------------------------
# split_system: files on disk
# ----------------------------------------------------------------------
class TestSplitSystem:
    def test_writes_all_files(self, split4):
        assert os.path.exists(split4.manifest_path)
        assert len(split4.shard_paths) == NUM_SHARDS
        for path, size in zip(split4.shard_paths, split4.file_bytes):
            assert os.path.exists(path)
            assert os.path.getsize(path) == size > 0

    def test_report_histograms_match_reference(self, split4, reference_state):
        assert sum(split4.alltops_histogram) == len(
            reference_state["alltops_rows"]
        )
        assert sum(split4.lefttops_histogram) == len(
            reference_state["lefttops_rows"]
        )
        assert sum(split4.pairs_histogram) == len(reference_state["pairs"])
        assert split4.replicated_topologies == len(
            reference_state["topologies"]
        )
        assert split4.skew >= 1.0
        assert split4.scheme == SHARD_SCHEME

    def test_report_round_trips_through_json(self, split4):
        wire = json.loads(json.dumps(split4.to_wire()))
        assert wire["num_shards"] == NUM_SHARDS
        assert wire["set_id"] == split4.set_id
        assert wire["row_histogram"] == list(split4.row_histogram)

    def test_saved_files_carry_membership_metadata(self, split4):
        for index, path in enumerate(split4.shard_paths):
            shard = snapshot_info(path).shard
            assert shard == {
                "index": index,
                "count": NUM_SHARDS,
                "scheme": SHARD_SCHEME,
                "set_id": split4.set_id,
            }

    def test_saved_union_equals_reference(self, split4, reference_state):
        states = [read_store_state(p) for p in split4.shard_paths]
        assert union_digest(states) == state_digest(reference_state)

    def test_set_id_is_deterministic(self, split4, tiny_system):
        digest = tiny_system.require_store().state_digest()
        assert split4.set_id == shard_set_id(digest, NUM_SHARDS)
        assert shard_set_id(digest, NUM_SHARDS) != shard_set_id(
            digest, NUM_SHARDS + 1
        )

    def test_unbuilt_system_rejected(self, tiny_dataset, tmp_path):
        from repro.core import TopologySearchSystem

        empty = TopologySearchSystem(
            tiny_dataset.database, tiny_dataset.graph()
        )
        with pytest.raises(ShardError, match="unbuilt"):
            split_system(empty, 2, tmp_path)


class TestSkewWarning:
    def _report(self, histogram):
        return ShardSplitReport(
            num_shards=len(histogram),
            scheme=SHARD_SCHEME,
            set_id="deadbeefdeadbeef",
            manifest_path="x.manifest.json",
            shard_paths=[],
            alltops_histogram=tuple(histogram),
            lefttops_histogram=tuple(0 for _ in histogram),
            pairs_histogram=tuple(0 for _ in histogram),
            replicated_topologies=0,
            replicated_excptops=0,
        )

    def test_skewed_split_logs_structured_warning(self, caplog):
        report = self._report((30, 1, 1, 0))  # skew 3.75x
        with caplog.at_level(logging.WARNING, logger="repro.shard"):
            _warn_on_skew(report)
        (record,) = caplog.records
        payload = json.loads(record.message.split(": ", 1)[1])
        assert payload["event"] == "shard_skew"
        assert payload["row_histogram"] == [30, 1, 1, 0]
        assert payload["skew"] > SKEW_WARNING_THRESHOLD

    def test_balanced_split_stays_quiet(self, caplog):
        with caplog.at_level(logging.WARNING, logger="repro.shard"):
            _warn_on_skew(self._report((8, 8, 9, 8)))
        assert not caplog.records


# ----------------------------------------------------------------------
# Manifests
# ----------------------------------------------------------------------
class TestManifest:
    def test_read_back_resolves_absolute_paths(self, split4):
        manifest = read_manifest(split4.manifest_path)
        assert manifest.set_id == split4.set_id
        assert manifest.scheme == SHARD_SCHEME
        assert manifest.count == NUM_SHARDS
        assert all(os.path.isabs(p) for p in manifest.shard_paths)
        assert [os.path.basename(p) for p in manifest.shard_paths] == [
            os.path.basename(p) for p in split4.shard_paths
        ]
        with pytest.raises(ShardError):
            manifest.shard_path(NUM_SHARDS)

    def test_paths_are_relative_in_the_file(self, split4):
        with open(split4.manifest_path, encoding="utf-8") as handle:
            payload = json.load(handle)
        assert payload["format"] == MANIFEST_FORMAT
        assert all(
            not os.path.isabs(entry["path"]) for entry in payload["shards"]
        )

    def test_missing_manifest(self, tmp_path):
        with pytest.raises(ShardError, match="does not exist"):
            read_manifest(tmp_path / "nope.manifest.json")

    def test_wrong_format_marker(self, tmp_path):
        path = tmp_path / "bad.manifest.json"
        path.write_text(json.dumps({"format": "something-else/9"}))
        with pytest.raises(ShardError, match="format"):
            read_manifest(path)

    def test_count_mismatch(self, split4, tmp_path):
        with open(split4.manifest_path, encoding="utf-8") as handle:
            payload = json.load(handle)
        payload["count"] = NUM_SHARDS + 1
        path = tmp_path / "bad.manifest.json"
        path.write_text(json.dumps(payload))
        with pytest.raises(ShardError, match="declares"):
            read_manifest(path)

    def test_missing_shard_file(self, split4, tmp_path):
        manifest = write_manifest(
            tmp_path / "m.manifest.json",
            set_id=split4.set_id,
            scheme=SHARD_SCHEME,
            shard_paths=list(split4.shard_paths[:-1])
            + [str(tmp_path / "gone.topo")],
        )
        with pytest.raises(ShardError, match="does not exist"):
            read_manifest(manifest.path)

    def test_swapped_shard_files_rejected(self, split4, tmp_path):
        """A shard file listed under the wrong index is a routing error
        waiting to happen; membership metadata catches it at open."""
        swapped = list(split4.shard_paths)
        swapped[0], swapped[1] = swapped[1], swapped[0]
        manifest = write_manifest(
            tmp_path / "swapped.manifest.json",
            set_id=split4.set_id,
            scheme=SHARD_SCHEME,
            shard_paths=swapped,
        )
        with pytest.raises(ShardError, match="membership"):
            read_manifest(manifest.path)

    def test_whole_store_snapshot_rejected(self, split4, tiny_system, tmp_path):
        stray = tmp_path / "whole.topo"
        save_system(tiny_system, stray)
        manifest = write_manifest(
            tmp_path / "stray.manifest.json",
            set_id=split4.set_id,
            scheme=SHARD_SCHEME,
            shard_paths=[str(stray)] + list(split4.shard_paths[1:]),
        )
        with pytest.raises(ShardError, match="no shard metadata"):
            read_manifest(manifest.path)

    def test_check_can_be_deferred(self, split4, tmp_path):
        swapped = list(split4.shard_paths)
        swapped[0], swapped[1] = swapped[1], swapped[0]
        manifest = write_manifest(
            tmp_path / "deferred.manifest.json",
            set_id=split4.set_id,
            scheme=SHARD_SCHEME,
            shard_paths=swapped,
        )
        parsed = read_manifest(manifest.path, check_snapshots=False)
        assert parsed.count == NUM_SHARDS
