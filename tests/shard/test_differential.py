"""Seeded differential sweep: sharded vs unsharded answers.

Mirrors the row-vs-columnar differential suite
(``tests/relational/test_columnar_equivalence.py``): a seeded random
workload (``tests/difftest/gen.py``) runs through a 2-shard
scatter-gather coordinator and directly against the unsharded engine,
and every answer — tids *and* scores — must match exactly.  The seed
count scales with ``--difftest-seeds N`` (default 5); CI's deep step
raises it.
"""

from __future__ import annotations

import pytest

from difftest.gen import gen_topology_queries, make_rng
from repro.core import ALL_METHOD_NAMES
from repro.service import ShardCoordinator
from repro.shard import split_system

EXHAUSTIVE_METHODS = ("sql", "full-top", "fast-top")
PAIRS = (("Protein", "DNA"), ("Protein", "Interaction"))


@pytest.fixture(scope="module")
def coordinator2(tmp_path_factory, tiny_system):
    """A 2-shard coordinator over the tiny system (module-scoped: the
    sweep is read-only and the split + spawn cost is the expensive
    part)."""
    directory = tmp_path_factory.mktemp("shards2")
    split = split_system(tiny_system, 2, directory)
    with ShardCoordinator(split.manifest_path, start_method="fork") as coord:
        yield coord


def test_random_workload_matches_unsharded(
    coordinator2, tiny_system, difftest_seeds
):
    checked = 0
    for seed in difftest_seeds:
        rng = make_rng(seed)
        # 4 queries/seed keeps the default sweep (~5 seeds x 9 methods)
        # tractable on a 1-core box; CI's deep step raises the seeds.
        queries = gen_topology_queries(rng, PAIRS, count=4, max_length=3)
        for method in ALL_METHOD_NAMES:
            applicable = [
                q
                for q in queries
                if q.k is not None or method in EXHAUSTIVE_METHODS
            ]
            if not applicable:
                continue
            merged = coordinator2.query_many(applicable, method=method)
            for query, result in zip(applicable, merged):
                reference = tiny_system.search(query, method=method)
                context = f"seed={seed} method={method} query={query!r}"
                assert result.tids == reference.tids, context
                assert result.scores == reference.scores, context
                checked += 1
    # The sweep must have real coverage of both merge shapes.
    assert checked >= len(difftest_seeds) * len(ALL_METHOD_NAMES)


def test_sweep_covers_both_merge_shapes(difftest_seeds):
    """Guard on the generator itself: across the sweep's seeds the
    workload must include exhaustive (k=None) and ranked queries and
    both entity pairs, so the sweep above cannot silently degenerate
    into one merge shape."""
    queries = [
        q
        for seed in difftest_seeds
        for q in gen_topology_queries(make_rng(seed), PAIRS, count=12)
    ]
    assert any(q.k is None for q in queries)
    ranked = [q for q in queries if q.k is not None]
    assert ranked and all(1 <= q.k <= 8 for q in ranked)
    assert {(q.entity1, q.entity2) for q in queries} == set(PAIRS)
    assert all(q.max_length == 3 for q in queries)
