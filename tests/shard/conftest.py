"""Shared shard fixtures: one 4-shard split of the tiny system.

The split and the coordinator over it are session-scoped (process
spawn + snapshot restore per shard is the expensive part); tests that
mutate a coordinator — rebuilds, killed backends — build their own
function-scoped one from the same manifest.

Backends use ``fork`` here: the suite runs single-threaded, fork is
safe, and it skips a per-worker interpreter boot + reimport.
"""

from __future__ import annotations

import pytest

from repro.service import ShardCoordinator
from repro.shard import split_system

NUM_SHARDS = 4
START_METHOD = "fork"


@pytest.fixture(scope="session")
def reference_state(tiny_system):
    return tiny_system.require_store().export_state()


@pytest.fixture(scope="session")
def split4(tmp_path_factory, tiny_system):
    directory = tmp_path_factory.mktemp("shards4")
    return split_system(tiny_system, NUM_SHARDS, directory)


@pytest.fixture(scope="session")
def coordinator(split4):
    with ShardCoordinator(
        split4.manifest_path, start_method=START_METHOD
    ) as coord:
        yield coord


@pytest.fixture()
def fresh_coordinator(split4):
    """A private coordinator for tests that kill backends or rebuild."""
    with ShardCoordinator(
        split4.manifest_path, start_method=START_METHOD
    ) as coord:
        yield coord
