"""The HTTP layer fronting a ShardCoordinator.

The app is backend-agnostic; these tests pin the two places sharding
shows through the wire contract: the /stats payload grows per-shard and
skew sections, and a dead shard maps to ``503 shard_unavailable`` with
``Retry-After`` — never a partial answer, never a hang.
"""

from __future__ import annotations

import json

import pytest

from repro.service import ShardCoordinator
from repro.service.http import TestClient, create_app


@pytest.fixture()
def coordinator_client(split4):
    with ShardCoordinator(
        split4.manifest_path, start_method="fork"
    ) as coordinator:
        with create_app(coordinator, stream_chunk_rows=8) as app:
            with TestClient(app) as client:
                yield client, coordinator


def valid_query(**overrides) -> dict:
    body = {
        "entity1": "Protein",
        "entity2": "DNA",
        "constraint1": {"kind": "keyword", "column": "DESC", "keyword": "kinase"},
        "constraint2": {"kind": "attribute", "column": "TYPE", "value": "mRNA"},
        "max_length": 3,
        "k": 4,
        "ranking": "rare",
    }
    body.update(overrides)
    return body


def test_query_answers_match_single_server(coordinator_client, tiny_system):
    client, _ = coordinator_client
    response = client.post("/query", json=valid_query())
    assert response.status == 200
    payload = response.json()
    from repro.core import (
        AttributeConstraint,
        KeywordConstraint,
        TopologyQuery,
    )

    reference = tiny_system.search(
        TopologyQuery(
            "Protein",
            "DNA",
            KeywordConstraint("DESC", "kinase"),
            AttributeConstraint("TYPE", "mRNA"),
            max_length=3,
            k=4,
            ranking="rare",
        )
    )
    assert payload["tids"] == reference.tids
    assert payload["scores"] == reference.scores
    assert payload["generation"] == 1


def test_healthz_reports_coordinator_generation(coordinator_client):
    client, coordinator = coordinator_client
    response = client.get("/healthz")
    assert response.status == 200
    assert response.json()["generation"] == coordinator.generation


def test_stats_payload_grows_shard_sections(coordinator_client):
    client, coordinator = coordinator_client
    client.post("/query", json=valid_query())
    payload = client.get("/stats").json()
    # The shared counter shape still holds...
    cache = payload["result_cache"]
    assert payload["requests"] == cache["hits"] + cache["misses"]
    assert cache["misses"] == payload["executions"] + payload["coalesced"]
    # ...plus the shard sections and the skew block.
    assert [s["index"] for s in payload["shards"]] == list(
        range(coordinator.num_shards)
    )
    assert sum(s["calls"] for s in payload["shards"]) == coordinator.num_shards
    sharding = payload["sharding"]
    assert sharding["row_histogram"] == list(coordinator.partition_histogram())
    assert sharding["skew"] >= 1.0
    assert sharding["skew_warning"] is False
    assert json.dumps(payload)  # whole payload stays JSON-serializable


def test_query_many_streams_over_shards(coordinator_client):
    client, _ = coordinator_client
    body = {
        "queries": [valid_query(), valid_query(k=2)],
        "method": "fast-top-k-opt",
    }
    response = client.post("/query_many", json=body)
    assert response.status == 200
    lines = [json.loads(l) for l in response.body.decode().splitlines() if l]
    assert lines[-1]["done"] is True
    assert lines[-1]["count"] == 2


def test_explain_uses_shard_zero(coordinator_client):
    client, _ = coordinator_client
    response = client.post("/explain", json=valid_query())
    assert response.status == 200
    assert response.json()["method"] == "fast-top-k-opt"


def test_rebuild_bumps_generation(coordinator_client):
    client, coordinator = coordinator_client
    response = client.post("/rebuild", json={})
    assert response.status == 200
    assert response.json()["generation"] == 2
    assert coordinator.generation == 2
    follow_up = client.post("/query", json=valid_query())
    assert follow_up.status == 200
    assert follow_up.json()["generation"] == 2


def test_dead_shard_maps_to_503(coordinator_client):
    client, coordinator = coordinator_client
    coordinator._backends[3].close()
    response = client.post("/query", json=valid_query())
    assert response.status == 503
    headers = {k.lower(): v for k, v in response.headers.items()}
    assert headers["retry-after"] == "1"
    error = response.json()["error"]
    assert error["code"] == "shard_unavailable"
    assert error["details"] == [{"field": "shard", "message": "3"}]


def test_unsupported_query_is_not_a_shard_failure(coordinator_client):
    """Engine-level rejections ride through the scatter as 422s — only
    infrastructure failures may claim the 503 contract."""
    client, _ = coordinator_client
    response = client.post(
        "/query", json=valid_query(entity2="Pathway")
    )
    assert response.status == 422
    assert response.json()["error"]["code"] in (
        "unsupported_query",
        "validation_error",
    )
