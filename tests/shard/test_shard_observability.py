"""Observability across the process boundary: one HTTP request against
a sharded coordinator yields ONE trace whose ``shard.query`` spans were
recorded in the worker processes and shipped back, `/metrics` merges the
workers' own counters, and the coordinator-side satellites (uptime,
started generation, once-per-generation skew warning, slow-query log)
behave."""

from __future__ import annotations

import json
import logging

import pytest

from repro.service import ShardCoordinator
from repro.service.http import TestClient, create_app

from tests.obs.test_metrics import parse_exposition
from tests.shard.conftest import START_METHOD
from tests.shard.test_coordinator import query_for
from tests.shard.test_http import valid_query


@pytest.fixture()
def traced_client(split4):
    with ShardCoordinator(split4.manifest_path, start_method=START_METHOD) as coord:
        with create_app(coord) as app:
            with TestClient(app) as client:
                yield client, coord


def flatten(tree: dict) -> list:
    flat = []

    def walk(nodes):
        for node in nodes:
            flat.append(node)
            walk(node["children"])

    walk(tree["spans"])
    return flat


class TestCrossProcessTrace:
    def test_one_query_one_trace_spanning_worker_processes(self, traced_client):
        """The acceptance path: POST /query against a sharded
        coordinator, then GET /trace/{id} shows the scatter fanning out
        into shard.query spans recorded by DISTINCT worker processes,
        all under one trace id with well-formed parent links."""
        client, coordinator = traced_client
        response = client.post("/query", json=valid_query())
        assert response.status == 200
        trace_id = response.json()["trace_id"]
        assert response.headers["x-trace-id"] == trace_id

        tree = client.get(f"/trace/{trace_id}").json()
        spans = flatten(tree)
        assert {s["trace_id"] for s in spans} == {trace_id}

        by_name = {}
        for span in spans:
            by_name.setdefault(span["name"], []).append(span)
        (http_span,) = by_name["http.request"]
        (scatter,) = by_name["coordinator.scatter"]
        shard_spans = by_name["shard.query"]

        assert http_span["parent_id"] is None
        assert scatter["parent_id"] == http_span["span_id"]
        # Every shard in the scatter contributed a span, each recorded
        # in its own worker process.
        assert len(shard_spans) == coordinator.num_shards >= 2
        assert all(s["parent_id"] == scatter["span_id"] for s in shard_spans)
        worker_pids = {s["tags"]["pid"] for s in shard_spans}
        assert len(worker_pids) == coordinator.num_shards
        assert {s["tags"]["shard"] for s in shard_spans} == set(
            range(coordinator.num_shards)
        )
        # The engine phases ran inside the workers, under shard.query.
        shard_span_ids = {s["span_id"] for s in shard_spans}
        assert {
            s["parent_id"] for s in by_name["engine.plan"]
        } <= shard_span_ids
        assert len(by_name["engine.execute"]) == coordinator.num_shards

    def test_untraced_direct_query_ships_no_spans(self, traced_client):
        """A direct coordinator.query() call (no HTTP ingress) still
        opens its own coordinator.scatter ingress trace — the
        coordinator is an ingress for non-HTTP callers."""
        _, coordinator = traced_client
        from repro.obs import tracer

        coordinator.query(query_for("fast-top-k-opt"))
        recent = tracer().recent(limit=5)
        assert recent[0]["root"] == "coordinator.scatter"


class TestShardMetrics:
    def test_metrics_stay_readable_with_a_wedged_shard(self, traced_client):
        """The scrape must degrade, not fail: with one worker wedged
        (busy, missing the reply deadline) ``/metrics`` still answers
        200 and reports that shard down — while queries that need the
        wedged shard keep mapping to 503, not a hang."""
        client, coordinator = traced_client
        backend = coordinator._backends[1]
        backend.submit("sleep", 5.0)  # occupies the one worker
        backend.timeout = 0.2

        response = client.get("/metrics")
        assert response.status == 200
        _, samples = parse_exposition(response.text)
        up = {labels["shard"]: value for labels, value in samples["repro_shard_up"]}
        assert up["1"] == 0
        assert all(up[str(n)] == 1 for n in range(coordinator.num_shards) if n != 1)

        query_response = client.post("/query", json=valid_query())
        assert query_response.status == 503
        assert query_response.json()["error"]["code"] == "shard_unavailable"

    def test_metrics_merge_worker_sections(self, traced_client):
        client, coordinator = traced_client
        client.post("/query", json=valid_query())
        types, samples = parse_exposition(client.get("/metrics").text)
        up = {labels["shard"]: value for labels, value in samples["repro_shard_up"]}
        assert up == {str(n): 1 for n in range(coordinator.num_shards)}
        assert types["repro_shard_plan_cache_misses"] == "counter"
        misses = {
            labels["shard"]: value
            for labels, value in samples["repro_shard_plan_cache_misses"]
        }
        assert set(misses) == set(up)
        assert all(value >= 1 for value in misses.values())
        generations = {
            value for _, value in samples["repro_shard_generation"]
        }
        assert generations == {coordinator.generation}
        ((_, skew),) = samples["repro_shard_skew"]
        assert skew >= 1.0

    def test_dead_shard_reports_up_zero_not_a_failed_scrape(self, traced_client):
        client, coordinator = traced_client
        coordinator._backends[1].close()
        response = client.get("/metrics")
        assert response.status == 200
        _, samples = parse_exposition(response.text)
        up = {labels["shard"]: value for labels, value in samples["repro_shard_up"]}
        assert up["1"] == 0
        assert up["0"] == 1


class TestCoordinatorSatellites:
    def test_stats_carry_uptime_and_started_generation(self, traced_client):
        client, _ = traced_client
        payload = client.get("/stats").json()
        assert payload["uptime_seconds"] > 0
        assert payload["started_generation"] == 1
        client.post("/rebuild", json={})
        after = client.get("/stats").json()
        assert after["generation"] == 2
        assert after["started_generation"] == 1  # unchanged across rebuilds
        assert after["uptime_seconds"] >= payload["uptime_seconds"]

    def test_skew_warning_logs_once_per_generation(self, traced_client, caplog):
        _, coordinator = traced_client
        # Force a skewed row histogram (the tiny split is balanced).
        coordinator._shard_rows = [1000, 10, 10, 10]
        with caplog.at_level(logging.WARNING, logger="repro.shard"):
            first = coordinator.skew_report()
            second = coordinator.skew_report()
        assert first["skew_warning"] is second["skew_warning"] is True
        warnings = [
            r for r in caplog.records if "shard_routing_skew" in r.getMessage()
        ]
        assert len(warnings) == 1
        structured = json.loads(
            warnings[0].getMessage().partition(": ")[2]
        )
        assert structured["event"] == "shard_routing_skew"
        assert structured["generation"] == coordinator.generation
        # A new generation may warn again.
        caplog.clear()
        coordinator._generation += 1
        with caplog.at_level(logging.WARNING, logger="repro.shard"):
            coordinator.skew_report()
        assert any(
            "shard_routing_skew" in r.getMessage() for r in caplog.records
        )

    def test_coordinator_slow_query_log_records_the_scatter(self, split4):
        with ShardCoordinator(
            split4.manifest_path, start_method=START_METHOD, slow_query_seconds=0.0
        ) as coordinator:
            coordinator.query(query_for("fast-top-k-opt"))
            (record,) = coordinator.slow_query_log.recent()
        assert record["source"] == "coordinator"
        assert record["event"] == "slow_query"
        assert record["query"]["entity1"] == "Protein"
        # Calibration lives shard-side; the coordinator record says so.
        assert record["calibrator_version"] is None
        names = {s["name"] for s in record["spans"]}
        assert "shard.query" in names
