"""Scatter-gather coordinator: answer equality, caching, failure modes,
and all-or-nothing rebuild."""

from __future__ import annotations

import threading

import pytest

from repro.core import (
    ALL_METHOD_NAMES,
    AttributeConstraint,
    KeywordConstraint,
    NoConstraint,
    TopologyQuery,
)
from repro.errors import ShardUnavailableError, TopologyError
from repro.persist import load_system
from repro.service import ShardCoordinator

EXHAUSTIVE_METHODS = ("sql", "full-top", "fast-top")
NUM_SHARDS = 4  # matches the session split in conftest.py


def query_for(method: str, keyword: str = "kinase") -> TopologyQuery:
    """A method-appropriate Protein-DNA query (top-k methods need k)."""
    if method in EXHAUSTIVE_METHODS:
        return TopologyQuery(
            "Protein", "DNA", KeywordConstraint("DESC", keyword), NoConstraint()
        )
    return TopologyQuery(
        "Protein",
        "DNA",
        KeywordConstraint("DESC", keyword),
        AttributeConstraint("TYPE", "mRNA"),
        k=4,
        ranking="rare",
    )


class TestAnswerEquality:
    @pytest.mark.parametrize("method", ALL_METHOD_NAMES)
    def test_all_nine_methods_match_unsharded(
        self, coordinator, tiny_system, method
    ):
        query = query_for(method)
        reference = tiny_system.search(query, method=method)
        merged = coordinator.query(query, method=method)
        assert merged.tids == reference.tids
        assert merged.scores == reference.scores
        assert merged.method == method

    def test_exhaustive_method_with_k_merges_ranked(
        self, coordinator, tiny_system
    ):
        """Exhaustive methods rank-and-cut when the query carries k; a
        tid-union merge of per-shard top-4s would return too many tids
        and drop the scores."""
        query = TopologyQuery(
            "Protein",
            "DNA",
            KeywordConstraint("DESC", "binding"),
            NoConstraint(),
            k=4,
            ranking="freq",
        )
        reference = tiny_system.search(query, method="sql")
        merged = coordinator.query(query, method="sql")
        assert merged.tids == reference.tids
        assert merged.scores == reference.scores

    def test_second_entity_pair(self, coordinator, tiny_system):
        query = TopologyQuery(
            "Protein",
            "Interaction",
            KeywordConstraint("DESC", "human"),
            KeywordConstraint("DESC", "physical"),
            k=5,
            ranking="domain",
        )
        reference = tiny_system.search(query)
        merged = coordinator.query(query)
        assert merged.tids == reference.tids
        assert merged.scores == reference.scores

    def test_merged_work_counters_account_all_shards(self, coordinator):
        query = query_for("fast-top-k", keyword="membrane")
        merged = coordinator.query(query, method="fast-top-k")
        assert merged.work["shards"] == NUM_SHARDS
        assert merged.generation == coordinator.generation

    def test_shard_digests_match_the_files(self, coordinator):
        """What the worker processes serve is byte-for-byte what the
        manifest names — the live half of the losslessness proof."""
        expected = [
            load_system(path).require_store().state_digest()
            for path in coordinator.manifest.shard_paths
        ]
        assert coordinator.shard_digests() == expected


class TestCachingAndStats:
    def test_cache_and_coalescing_invariants(self, fresh_coordinator):
        coord = fresh_coordinator
        query = query_for("fast-top-k-opt", keyword="human")
        first = coord.query(query)
        assert coord.query(query) is first  # LRU hit returns the object
        repeated = coord.query_many([query, query, query_for("fast-top-k-opt")])
        assert repeated[0] is first and repeated[1] is first
        stats = coord.stats()
        assert stats.generation == 1
        assert stats.requests == 5
        cache = stats.result_cache
        assert cache.hits + cache.misses == stats.requests
        assert cache.misses == stats.executions + stats.coalesced
        assert stats.executions == 2  # two distinct queries scattered
        assert stats.failures == 0 and stats.in_flight == 0

    def test_query_many_dedups_inside_the_batch(self, fresh_coordinator):
        coord = fresh_coordinator
        a, b = query_for("full-top-k", "kinase"), query_for("full-top-k", "human")
        results = coord.query_many([a, b, a, a], method="full-top-k")
        assert results[0] is results[2] is results[3]
        assert results[1] is not results[0]
        stats = coord.stats()
        assert stats.executions == 2
        assert stats.coalesced == 2

    def test_empty_batch(self, coordinator):
        assert coordinator.query_many([]) == []

    def test_unknown_method_and_mode_rejected(self, coordinator):
        with pytest.raises(TopologyError, match="unknown method"):
            coordinator.query(query_for("sql"), method="nope")
        with pytest.raises(TopologyError, match="mode"):
            coordinator.query_many([query_for("sql")], mode="teleport")

    def test_latency_stats_record_merged_results(self, fresh_coordinator):
        fresh_coordinator.query(query_for("fast-top-k"), method="fast-top-k")
        snapshot = fresh_coordinator.latency_stats()
        assert snapshot["fast-top-k"]["count"] == 1

    def test_explain_returns_shard_plan(self, coordinator, tiny_system):
        query = query_for("fast-top-k-opt")
        plan = coordinator.explain(query)
        assert plan.method == tiny_system.explain(query).method

    def test_stats_shard_sections(self, coordinator, split4):
        sections = coordinator.stats().shards
        assert [s["index"] for s in sections] == list(range(NUM_SHARDS))
        assert all(s["set_id"] == split4.set_id for s in sections)
        assert tuple(
            s["routed_rows"] for s in sections
        ) == coordinator.partition_histogram()
        assert coordinator.partition_histogram() == split4.row_histogram
        report = coordinator.skew_report()
        assert report["skew"] == pytest.approx(split4.skew)
        assert report["skew_warning"] is False
        assert report["row_histogram"] == list(split4.row_histogram)


class TestFailureModes:
    def test_dead_shard_aborts_loudly(self, fresh_coordinator):
        coord = fresh_coordinator
        coord._backends[2].close()
        with pytest.raises(ShardUnavailableError) as info:
            coord.query(query_for("fast-top-k"), method="fast-top-k")
        assert info.value.shard_index == 2
        assert info.value.retry_after >= 1
        stats = coord.stats()
        assert stats.failures == 1
        assert stats.shards[2]["failures"] == 1
        # The flight was cleaned up: the same query can be retried.
        assert coord.stats().in_flight == 0

    def test_queue_timeout_surfaces_as_unavailable(self, fresh_coordinator):
        """A wedged worker (single process per shard, busy with a long
        op) must miss the reply deadline, not hang the coordinator."""
        coord = fresh_coordinator
        backend = coord._backends[1]
        backend.submit("sleep", 5.0)  # occupies the one worker
        backend.timeout = 0.2
        with pytest.raises(ShardUnavailableError) as info:
            coord.query(query_for("fast-top-k-et"), method="fast-top-k-et")
        assert info.value.shard_index == 1
        assert "no reply" in str(info.value)
        assert coord.stats().shards[1]["timeouts"] == 1
        # Teardown terminates the still-sleeping worker; no drain needed.

    def test_wedged_shard_scrape_records_the_error(self, fresh_coordinator):
        """Regression pin (relint R9's defect): ``shard_obs_sections``
        used to swallow scrape failures with a silent broad except, so a
        wedged worker was indistinguishable from a healthy-but-empty
        one.  The scrape must still succeed, mark the shard down, and
        say *why*."""
        coord = fresh_coordinator
        backend = coord._backends[1]
        backend.submit("sleep", 5.0)  # occupies the one worker
        backend.timeout = 0.2
        sections = coord.shard_obs_sections()
        assert [s["index"] for s in sections] == list(range(NUM_SHARDS))
        wedged = sections[1]
        assert wedged["up"] is False
        assert "error" in wedged and wedged["error"]  # the cause, named
        healthy = [s for i, s in enumerate(sections) if i != 1]
        assert all(s["up"] is True for s in healthy)
        assert all("error" not in s for s in healthy)
        # Teardown terminates the still-sleeping worker; no drain needed.

    def test_batch_failure_counts_every_slot(self, fresh_coordinator):
        coord = fresh_coordinator
        coord._backends[0].close()
        queries = [query_for("full-top-k", w) for w in ("kinase", "human")]
        with pytest.raises(ShardUnavailableError):
            coord.query_many(queries, method="full-top-k")
        assert coord.stats().failures == 2

    def test_generation_stamp_mismatch_is_loud(self, fresh_coordinator):
        """A backend serving a different generation than the coordinator
        believes must be rejected at the gather, never merged."""
        backend = fresh_coordinator._backends[0]
        backend.generation += 1
        with pytest.raises(TopologyError, match="stamped"):
            backend.call("ping")


class TestRebuild:
    def test_rebuild_commits_a_new_generation(self, fresh_coordinator, tiny_system):
        coord = fresh_coordinator
        query = query_for("fast-top-k-opt")
        manifest_before = coord.manifest
        before = coord.query(query)
        assert before.generation == 1

        report = coord.rebuild()
        assert report.elapsed_seconds > 0  # a real offline-phase report
        assert coord.generation == 2
        assert coord.manifest.path != manifest_before.path
        assert coord.manifest.set_id == manifest_before.set_id  # same store

        after = coord.query(query)
        assert after.generation == 2
        reference = tiny_system.search(query)
        assert after.tids == reference.tids
        assert after.scores == reference.scores
        assert coord.stats().rebuilds == 1
        # New backends answer with the new generation's stamp.
        assert len(coord.shard_digests()) == NUM_SHARDS

    def test_failed_rebuild_leaves_serving_set_untouched(
        self, fresh_coordinator, monkeypatch
    ):
        coord = fresh_coordinator
        query = query_for("fast-top-k")
        before = coord.query(query, method="fast-top-k")
        manifest_before = coord.manifest

        import repro.shard.build as shard_build

        def explode(*args, **kwargs):
            raise RuntimeError("injected split failure")

        monkeypatch.setattr(shard_build, "split_system", explode)
        with pytest.raises(RuntimeError, match="injected"):
            coord.rebuild()

        assert coord.generation == 1
        assert coord.manifest is manifest_before
        assert coord.stats().rebuilds == 0
        again = coord.query(query, method="fast-top-k")
        assert again.tids == before.tids  # old backends still serving

    def test_rebuild_overlaps_with_live_queries(self, fresh_coordinator):
        """Readers keep getting answers while the writer rebuilds; every
        answer is stamped with a single generation (no torn reads)."""
        coord = fresh_coordinator
        query = query_for("fast-top-k-opt", keyword="binding")
        stop = threading.Event()
        seen: list = []
        failures: list = []

        def reader():
            while not stop.is_set():
                try:
                    seen.append(coord.query(query).generation)
                except Exception as exc:  # pragma: no cover - fails test
                    failures.append(exc)
                    return

        thread = threading.Thread(target=reader)
        thread.start()
        try:
            coord.rebuild()
        finally:
            stop.set()
            thread.join()
        assert not failures
        assert set(seen) <= {1, 2}
        assert coord.generation == 2

    def test_closed_coordinator_rejects_work(self, split4):
        coord = ShardCoordinator(split4.manifest_path, start_method="fork")
        coord.close()
        with pytest.raises(TopologyError, match="closed"):
            coord.query(query_for("fast-top-k"), method="fast-top-k")
        with pytest.raises(TopologyError):
            coord.explain(query_for("fast-top-k"))
        with pytest.raises(TopologyError, match="closed"):
            coord.rebuild()
