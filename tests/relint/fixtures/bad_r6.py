"""R6 fixture: blocking work while holding a hot lock."""

import subprocess
import time


class Store:
    def __init__(self, lock):
        self._lock = lock

    def flush(self, path, rows):
        with self._lock:
            time.sleep(0.1)  # EXPECT: R6
            with open(path, "w") as handle:  # EXPECT: R6
                handle.write(str(rows))

    def reindex(self):
        with self._lock:
            subprocess.run(["make", "index"])  # EXPECT: R6
