"""R1 fixture: values go through sql_quote(); identifiers may
interpolate bare (they are not quoted values)."""

from repro.relational.sql import sql_quote


def quoted_value(keyword):
    return f"SELECT P.ID FROM Protein P WHERE CONTAINS(P.DESC, {sql_quote(keyword)})"


def identifier(table_name):
    return f"SELECT T.TID FROM {table_name} T ORDER BY T.FREQ DESC"
