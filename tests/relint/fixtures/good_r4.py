"""R4 fixture: each submission carries a copy of the caller's context."""

import contextvars

from repro.obs import span


class Batcher:
    def __init__(self, pool):
        self._pool = pool

    def run_all(self, tasks):
        with span("batch.run"):
            futures = [
                self._pool.submit(contextvars.copy_context().run, task)
                for task in tasks
            ]
        return [f.result() for f in futures]
