"""R8 fixture: dynamic or non-conforming metric and span names."""

from repro.obs import span


def record(registry, tracer, method):
    registry.counter(f"queries.{method}", "Total queries.")  # EXPECT: R8
    registry.gauge("Shard-Up", "Shard liveness.")  # EXPECT: R8
    with span("server." + method):  # EXPECT: R8
        pass
    with tracer.span("Server.Query"):  # EXPECT: R8
        pass
