"""R9 fixture: broad catches degrade loudly; narrow catches may pass."""

import logging

log = logging.getLogger(__name__)


def scrape(calls):
    sections = []
    for call in calls:
        try:
            sections.append({"up": True, "stats": call()})
        except Exception as error:
            log.warning("scrape failed: %s", error)
            sections.append({"up": False, "error": str(error)})
    return sections


def narrow(fn):
    try:
        fn()
    except ValueError:
        pass
