"""R5 fixture: wall-clock time used to measure durations."""

import time


def measure(work):
    start = time.time()  # EXPECT: R5
    work()
    return time.time() - start  # EXPECT: R5
