"""R2 fixture: one returned snapshot assembled across two acquisitions."""

import threading


class Stats:
    def __init__(self):
        self._lock = threading.Lock()
        self.count = 0
        self.total = 0.0

    def snapshot(self):
        with self._lock:
            count = self.count
        with self._lock:  # EXPECT: R2
            total = self.total
        return count, total
