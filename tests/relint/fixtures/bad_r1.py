"""R1 fixture: SQL assembled with raw value interpolation."""


def fstring_hand_quoted(keyword):
    return f"SELECT P.ID FROM Protein P WHERE CONTAINS(P.DESC, '{keyword}')"  # EXPECT: R1


def concat(table):
    return "SELECT * FROM " + table  # EXPECT: R1


def percent(keyword):
    return "SELECT ID FROM Protein WHERE DESC = '%s'" % keyword  # EXPECT: R1


def str_format(keyword):
    return "SELECT ID FROM Protein WHERE DESC = {}".format(keyword)  # EXPECT: R1
