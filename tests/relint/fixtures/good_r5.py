"""R5 fixture: durations come off the monotonic clock; time.time() is
for wall-clock timestamps only."""

import time


def measure(work):
    t0 = time.perf_counter()
    work()
    return time.perf_counter() - t0


def stamp():
    saved_at = time.time()
    return saved_at
