"""R7 fixture: nondeterminism in an offline build/merge path."""

import glob
import os
import random


def pick_seed_rows(rows):
    return random.sample(rows, 3)  # EXPECT: R7


def merge_order(path):
    for name in os.listdir(path):  # EXPECT: R7
        yield name
    for name in glob.glob("*.shard"):  # EXPECT: R7
        yield name


def walk_classes(classes):
    for item in {1, 2, 3}:  # EXPECT: R7
        yield item
    for item in set(classes):  # EXPECT: R7
        yield item
