"""R7 fixture: explicit seeds and sorted iteration keep rebuilds
bit-identical."""

import os
import random


def pick_seed_rows(rows, seed):
    rng = random.Random(seed)
    return rng.sample(rows, 3)


def merge_order(path):
    for name in sorted(os.listdir(path)):
        yield name


def walk_classes(classes):
    for item in sorted(set(classes)):
        yield item
