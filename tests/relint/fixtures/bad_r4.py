"""R4 fixture: executor submissions drop the ambient trace context."""

from repro.obs import span


class Batcher:
    def __init__(self, pool):
        self._pool = pool

    def run_all(self, tasks):
        with span("batch.run"):
            futures = [self._pool.submit(task) for task in tasks]  # EXPECT: R4
        return [f.result() for f in futures]

    def map_all(self, tasks):
        return list(self._pool.map(run_one, tasks))  # EXPECT: R4


def run_one(task):
    return task()
