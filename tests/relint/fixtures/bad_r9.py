"""R9 fixture: silently swallowed broad exceptions."""


def scrape(calls):
    sections = []
    for call in calls:
        try:
            sections.append(call())
        except Exception:  # EXPECT: R9
            pass
    return sections


def ancient(fn):
    try:
        fn()
    except:  # EXPECT: R9
        pass
