"""R6 fixture: snapshot under the lock, block outside it; heavy work
belongs under a writer mutex, never a hot lock."""

import subprocess


class Store:
    def __init__(self, lock):
        self._lock = lock
        self._writer_mutex = lock

    def flush(self, path, rows):
        with self._lock:
            snapshot = list(rows)
        with open(path, "w") as handle:
            handle.write(str(snapshot))

    def reindex(self):
        with self._writer_mutex:
            subprocess.run(["make", "index"])
