"""R3 fixture: the MISSING sentinel separates cached-falsy from absent."""

MISSING = object()


def lookup(cache, key):
    value = cache.get(key, MISSING)
    if value is MISSING:
        return 0
    return value


def explicit_default(cache, key):
    return cache.get(key, MISSING) is MISSING
