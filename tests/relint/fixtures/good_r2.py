"""R2 fixture: every returned composite reads under one acquisition;
multiple acquisitions are fine when nothing is returned."""

import threading


class Stats:
    def __init__(self):
        self._lock = threading.Lock()
        self.count = 0
        self.total = 0.0

    def snapshot(self):
        with self._lock:
            return self.count, self.total

    def bump_twice(self):
        with self._lock:
            self.count += 1
        with self._lock:
            self.total += 1.0
