"""R3 fixture: truthiness on cache.get() conflates falsy hits with misses."""


def lookup(cache, key):
    if cache.get(key):  # EXPECT: R3
        return True
    value = cache.get(key) or 0  # EXPECT: R3
    hit = cache.get(key) is None  # EXPECT: R3
    return value, hit
