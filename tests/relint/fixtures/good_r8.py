"""R8 fixture: stable dotted-lowercase names; variation rides in tags."""

from repro.obs import span


def record(registry, tracer, method):
    registry.counter("server.queries_total", "Total queries.")
    with span("server.query", method=method):
        pass
    with tracer.span("server.query", route="/query"):
        pass
