"""Every rule is pinned by a paired fixture: the ``bad_*`` file must
fire exactly on its ``# EXPECT: <ID>`` lines (no more, no fewer), and
the ``good_*`` twin — the idiomatic rewrite of the same code — must be
completely clean.  The pairs are the rule catalog's executable half:
``docs/STATIC_ANALYSIS.md`` tells each rule's story, these files pin
its reach."""

from __future__ import annotations

import re
from pathlib import Path

import pytest

from tools.relint.engine import lint_source
from tools.relint.rules import ALL_RULES

FIXTURES = Path(__file__).parent / "fixtures"
EXPECT_RE = re.compile(r"#\s*EXPECT:\s*(R\d+)")

#: R7 is path-scoped to the offline build/merge packages, so its
#: fixtures are linted as if they lived there.
PATH_OVERRIDES = {"r7": "src/repro/parallel/fixture.py"}

RULES = [rule.rule_id.lower() for rule in ALL_RULES]


def expected_findings(source: str) -> set:
    return {
        (lineno, rule_id)
        for lineno, line in enumerate(source.splitlines(), start=1)
        for rule_id in EXPECT_RE.findall(line)
    }


def test_the_corpus_is_complete():
    """One bad and one good fixture per rule, no strays."""
    names = {p.name for p in FIXTURES.glob("*.py")}
    assert names == {f"bad_{r}.py" for r in RULES} | {f"good_{r}.py" for r in RULES}
    assert (FIXTURES / ".relint-fixtures").exists()


@pytest.mark.parametrize("rule", RULES)
def test_bad_fixture_fires_exactly_where_marked(rule):
    path = FIXTURES / f"bad_{rule}.py"
    source = path.read_text()
    expected = expected_findings(source)
    assert expected, f"{path.name} declares no EXPECT markers"
    found = {
        (v.line, v.rule_id)
        for v in lint_source(source, PATH_OVERRIDES.get(rule, str(path)))
    }
    assert found == expected


@pytest.mark.parametrize("rule", RULES)
def test_good_fixture_is_clean(rule):
    path = FIXTURES / f"good_{rule}.py"
    violations = lint_source(path.read_text(), PATH_OVERRIDES.get(rule, str(path)))
    assert violations == []


def test_rule_ids_are_stable_and_unique():
    ids = [rule.rule_id for rule in ALL_RULES]
    assert ids == [f"R{i}" for i in range(1, len(ids) + 1)]
    assert len(ALL_RULES) >= 8
    assert all(rule.name and rule.summary for rule in ALL_RULES)
