"""The relint engine: suppression semantics, the fixture-corpus
exclusion, the CLI contract — and the pins that keep the live tree
clean (CI runs the same command; these tests make a dirty tree a test
failure before it is a CI failure)."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from tools.relint.engine import (
    SUPPRESSION_ID,
    Violation,
    lint_paths,
    lint_source,
    main,
)
from tools.relint.rules import ALL_RULES

REPO = Path(__file__).resolve().parents[2]

#: One R5 violation, nothing else.
WALLCLOCK = (
    "import time\n"
    "\n"
    "\n"
    "def mark():\n"
    "    start = time.time()\n"
    "    return start\n"
)


def rule_ids(violations) -> list:
    return [v.rule_id for v in violations]


class TestSuppressions:
    def test_unsuppressed_violation_survives(self):
        assert rule_ids(lint_source(WALLCLOCK)) == ["R5"]

    def test_trailing_suppression_with_reason_silences(self):
        src = WALLCLOCK.replace(
            "time.time()",
            "time.time()  # relint: disable=R5 (wall-clock mark is the point here)",
        )
        assert lint_source(src) == []

    def test_standalone_suppression_covers_next_code_line(self):
        src = WALLCLOCK.replace(
            "    start = time.time()",
            "    # relint: disable=R5 (wall-clock mark is the point here)\n"
            "    start = time.time()",
        )
        assert lint_source(src) == []

    def test_reason_is_mandatory(self):
        src = WALLCLOCK.replace(
            "time.time()", "time.time()  # relint: disable=R5"
        )
        ids = rule_ids(lint_source(src))
        # The reasonless disable is itself a violation AND does not
        # suppress anything.
        assert sorted(ids) == [SUPPRESSION_ID, "R5"]

    def test_unknown_rule_id_is_rejected(self):
        src = WALLCLOCK.replace(
            "time.time()", "time.time()  # relint: disable=R99 (no such rule)"
        )
        assert sorted(rule_ids(lint_source(src))) == [SUPPRESSION_ID, "R5"]

    def test_r0_itself_cannot_be_suppressed(self):
        src = "x = 1  # relint: disable=R0 (trying to silence the hygiene rule)\n"
        ids = rule_ids(lint_source(src))
        assert ids == [SUPPRESSION_ID]

    def test_unused_suppression_is_a_violation(self):
        src = "x = 1  # relint: disable=R5 (nothing here ever fired)\n"
        violations = lint_source(src)
        assert rule_ids(violations) == [SUPPRESSION_ID]
        assert "never" in violations[0].message

    def test_unused_suppression_exempt_under_rule_filter(self):
        """Running a rule subset must not flag suppressions of the rules
        that did not run (they may well fire on full runs)."""
        src = "x = 1  # relint: disable=R5 (nothing here ever fired)\n"
        r9_only = [r for r in ALL_RULES if r.rule_id == "R9"]
        assert lint_source(src, rules=r9_only) == []

    def test_directive_inside_a_string_is_inert(self):
        src = 'example = "# relint: disable=R5 (not a real comment)"\n'
        assert lint_source(src) == []

    def test_malformed_directive_is_flagged(self):
        src = "x = 1  # relint: disable R5 -- forgot the equals sign\n"
        violations = lint_source(src)
        assert rule_ids(violations) == [SUPPRESSION_ID]
        assert "malformed" in violations[0].message

    def test_syntax_error_reports_instead_of_crashing(self):
        violations = lint_source("def broken(:\n")
        assert len(violations) == 1
        assert violations[0].rule_name == "parse-error"


class TestFixtureExclusion:
    def test_fixture_corpus_is_skipped_by_default(self):
        violations, checked = lint_paths([str(Path(__file__).parent)])
        assert violations == []
        assert checked >= 2  # the test modules themselves

    def test_include_fixtures_lints_the_corpus(self):
        violations, checked = lint_paths(
            [str(Path(__file__).parent)], include_fixtures=True
        )
        assert checked >= 20
        assert violations  # the bad_* files fire by design


class TestCli:
    def test_violations_exit_nonzero_with_json(self, tmp_path, capsys):
        target = tmp_path / "sample.py"
        target.write_text(WALLCLOCK)
        code = main([str(target), "--json"])
        payload = json.loads(capsys.readouterr().out)
        assert code == 1
        assert payload["files_checked"] == 1
        assert [v["rule"] for v in payload["violations"]] == ["R5"]
        assert payload["violations"][0]["line"] == 5

    def test_rule_filter(self, tmp_path, capsys):
        target = tmp_path / "sample.py"
        target.write_text(WALLCLOCK)
        assert main([str(target), "--rule", "R9"]) == 0
        assert main([str(target), "--rule", "R5"]) == 1

    def test_list_rules_covers_the_catalog(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule in ALL_RULES:
            assert rule.rule_id in out
        assert SUPPRESSION_ID in out

    def test_nonexistent_path_is_an_error_not_a_clean_pass(self, tmp_path, capsys):
        with pytest.raises(SystemExit) as info:
            main([str(tmp_path / "no_such_dir")])
        assert info.value.code == 2

    def test_render_is_path_line_col_rule(self):
        violation = Violation("a.py", 3, 7, "R5", "wallclock-duration", "msg")
        assert violation.render() == "a.py:3:7: R5 [wallclock-duration] msg"


class TestLiveTree:
    """CI's exact invocations, as tests: the tree stays lintable."""

    def test_live_tree_is_clean(self):
        violations, checked = lint_paths(
            [str(REPO / part) for part in ("src", "tests", "benchmarks", "examples")]
        )
        assert [v.render() for v in violations] == []
        assert checked > 150

    def test_relint_lints_itself_clean(self):
        violations, checked = lint_paths([str(REPO / "tools")])
        assert [v.render() for v in violations] == []
        assert checked >= 5


class TestRegressionPins:
    """The sweeps behind the fixed defects stay at zero findings."""

    def test_src_has_no_wallclock_durations(self):
        r5 = [r for r in ALL_RULES if r.rule_id == "R5"]
        violations, _ = lint_paths([str(REPO / "src")], rules=r5)
        assert [v.render() for v in violations] == []

    def test_server_executor_submissions_carry_context(self):
        """PR 9's defect #1: ``_query_many_threads`` submitted work
        without copying the caller's context, so engine spans detached
        from the request trace."""
        r4 = [r for r in ALL_RULES if r.rule_id == "R4"]
        violations, _ = lint_paths(
            [str(REPO / "src" / "repro" / "service")], rules=r4
        )
        assert [v.render() for v in violations] == []

    def test_coordinator_has_no_silent_broad_excepts(self):
        """PR 9's defect #2: ``shard_obs_sections`` swallowed scrape
        failures with a bare ``except Exception: pass``."""
        r9 = [r for r in ALL_RULES if r.rule_id == "R9"]
        violations, _ = lint_paths(
            [str(REPO / "src" / "repro" / "service")], rules=r9
        )
        assert [v.render() for v in violations] == []
