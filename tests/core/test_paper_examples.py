"""Ground-truth tests for the paper's running example (Sections 1-2).

Every concrete claim the paper makes about the Figure-3 database is
pinned here: the isolated paths of Figure 4, the equivalence classes of
Figure 7, the topologies of Figure 5, and the query result
3-Topology(Q1) = {T1, T2, T3, T4}.
"""

from __future__ import annotations

import pytest

from repro.biozon import (
    Q1_EXPECTED_DNAS,
    Q1_EXPECTED_PROTEINS,
    build_figure3_database,
)
from repro.core import (
    AttributeConstraint,
    KeywordConstraint,
    TopologyQuery,
    path_equivalence_classes,
    topologies_for_pair,
    topology_result,
)
from repro.graph import canonical_key


Q1 = TopologyQuery(
    "Protein",
    "DNA",
    KeywordConstraint("DESC", "enzyme"),
    AttributeConstraint("TYPE", "mRNA"),
)


class TestSatisfyingEntities:
    """Example 2.2: proteins {32, 78, 44}; DNAs {214, 215, 742}."""

    def test_proteins(self, fig3_system):
        r = fig3_system.engine.execute(
            "SELECT P.ID FROM Protein P WHERE CONTAINS(P.DESC, 'enzyme')"
        )
        assert {row[0] for row in r.rows} == Q1_EXPECTED_PROTEINS

    def test_protein_34_excluded(self, fig3_system):
        assert 34 not in Q1_EXPECTED_PROTEINS

    def test_dnas(self, fig3_system):
        r = fig3_system.engine.execute(
            "SELECT D.ID FROM DNA D WHERE D.TYPE = 'mRNA'"
        )
        assert {row[0] for row in r.rows} == Q1_EXPECTED_DNAS


class TestIsolatedPaths:
    """Section 1 / Figure 4: p78 relates to d215 via three paths
    (78-103-215, 78-150-215, 78-103-34-215); (44, 742) via two."""

    def test_ps_78_215(self, fig3_graph):
        from repro.graph import path_set

        paths = path_set(fig3_graph, 78, 215, 3)
        assert len(paths) == 3
        node_sets = {p.nodes for p in paths}
        assert (78, 103, 215) in node_sets          # l2
        assert (78, 150, 215) in node_sets          # l3
        assert (78, 103, 34, 215) in node_sets      # l6

    def test_ps_44_742(self, fig3_graph):
        from repro.graph import path_set

        paths = path_set(fig3_graph, 44, 742, 3)
        assert {p.nodes for p in paths} == {(44, 188, 742), (44, 194, 742)}

    def test_ps_32_214(self, fig3_graph):
        from repro.graph import path_set

        paths = path_set(fig3_graph, 32, 214, 3)
        assert [p.nodes for p in paths] == [(32, 214)]

    def test_no_other_pairs_related(self, fig3_graph):
        from repro.graph import path_set

        for a in (32, 78, 44):
            for b in (214, 215, 742):
                if (a, b) in {(32, 214), (78, 215), (44, 742)}:
                    continue
                assert path_set(fig3_graph, a, b, 3) == []


class TestEquivalenceClasses:
    """Figure 7: l2 and l3 share a class (c2); l6 is its own class (c3);
    l1 its own (c1); l4 and l5 share c2's structure too."""

    def test_3_pathec_78_215_has_two_classes(self, fig3_graph):
        classes = path_equivalence_classes(fig3_graph, 78, 215, 3)
        assert len(classes) == 2
        sizes = sorted(len(v) for v in classes.values())
        assert sizes == [1, 2]

    def test_l2_l3_same_class(self, fig3_graph):
        classes = path_equivalence_classes(fig3_graph, 78, 215, 3)
        c2 = ("DNA", "uni_contains", "Unigene", "uni_encodes", "Protein")
        sig = min(c2, c2[::-1])
        assert sig in classes
        assert {p.nodes for p in classes[sig]} == {(78, 103, 215), (78, 150, 215)}

    def test_44_742_single_class(self, fig3_graph):
        classes = path_equivalence_classes(fig3_graph, 44, 742, 3)
        assert len(classes) == 1
        (paths,) = classes.values()
        assert len(paths) == 2


class TestTopologies:
    """The example after Definition 2: 3-Top(78,215) = {T3, T4};
    3-Top(32,214) = {T1}; 3-Top(44,742) = {T2}; T5 (union of the two
    isomorphic paths l4, l5) is NOT a topology."""

    def test_pair_78_215(self, fig3_graph):
        pair = topologies_for_pair(fig3_graph, 78, 215, 3)
        assert len(pair.topology_keys) == 2  # T3 and T4

    def test_t3_and_t4_structures(self, fig3_graph):
        pair = topologies_for_pair(fig3_graph, 78, 215, 3)
        sizes = set()
        for key in pair.topology_keys:
            from repro.graph import parse_canonical_key

            node_types, edges = parse_canonical_key(key)
            sizes.add((len(node_types), len(edges)))
        # T3 = l2 ∪ l6 shares u103 and the 78-103 edge: 4 nodes, 4 edges.
        # T4 = l3 ∪ l6 shares only the endpoints: 5 nodes, 5 edges.
        assert sizes == {(4, 4), (5, 5)}

    def test_pair_32_214_is_t1(self, fig3_graph):
        pair = topologies_for_pair(fig3_graph, 32, 214, 3)
        assert len(pair.topology_keys) == 1
        from repro.graph import parse_canonical_key

        node_types, edges = parse_canonical_key(pair.topology_keys[0])
        assert sorted(node_types) == ["DNA", "Protein"]
        assert edges == ((0, 1, "encodes"),)

    def test_pair_44_742_is_t2_not_t5(self, fig3_graph):
        pair = topologies_for_pair(fig3_graph, 44, 742, 3)
        assert len(pair.topology_keys) == 1
        from repro.graph import parse_canonical_key

        node_types, _ = parse_canonical_key(pair.topology_keys[0])
        # T2 = single P-U-D path (3 nodes), not T5 (the 4-node union of
        # both isomorphic paths).
        assert len(node_types) == 3

    def test_query_result_is_t1_t2_t3_t4(self, fig3_graph):
        """Definition 3 example: 3-Topology(Q1, G) = {T1, T2, T3, T4}."""
        result = topology_result(
            fig3_graph, sorted(Q1_EXPECTED_PROTEINS), sorted(Q1_EXPECTED_DNAS), 3
        )
        assert len(result) == 4

    def test_witness_pairs(self, fig3_graph):
        result = topology_result(
            fig3_graph, sorted(Q1_EXPECTED_PROTEINS), sorted(Q1_EXPECTED_DNAS), 3
        )
        witnesses = {pair for pairs in result.values() for pair in pairs}
        assert witnesses == {(32, 214), (78, 215), (44, 742)}


class TestSystemOnQ1:
    """End-to-end: every method returns the paper's four topologies."""

    @pytest.mark.parametrize("method", ["full-top", "fast-top", "sql"])
    def test_exhaustive_methods(self, fig3_system, method):
        result = fig3_system.search(Q1, method)
        assert len(result.tids) == 4

    @pytest.mark.parametrize(
        "method",
        [
            "full-top-k", "fast-top-k", "full-top-k-et",
            "fast-top-k-et", "full-top-k-opt", "fast-top-k-opt",
        ],
    )
    @pytest.mark.parametrize("ranking", ["freq", "rare", "domain"])
    def test_topk_methods(self, fig3_system, method, ranking):
        query = TopologyQuery(
            "Protein", "DNA",
            KeywordConstraint("DESC", "enzyme"),
            AttributeConstraint("TYPE", "mRNA"),
            k=10, ranking=ranking,
        )
        reference = fig3_system.search(query, "full-top-k")
        result = fig3_system.search(query, method)
        assert result.tids == reference.tids
        assert len(result.tids) == 4

    def test_frequencies_all_one(self, fig3_system):
        """Each Figure-5 topology has exactly one witnessing pair."""
        store = fig3_system.require_store()
        result = fig3_system.search(Q1, "full-top")
        for tid in result.tids:
            assert store.topology(tid).frequency == 1
