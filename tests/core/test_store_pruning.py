"""TopologyStore, the offline AllTops computation, and pruning
(Sections 4.1-4.2): exception-table exactness and space accounting."""

from __future__ import annotations

import pytest

from repro.biozon import BiozonConfig, generate
from repro.core import (
    TopologyStore,
    apply_pruning,
    compute_alltops,
    suggest_threshold,
)
from repro.core.pruning import PruneReport
from repro.errors import TopologyError


@pytest.fixture(scope="module")
def built():
    ds = generate(BiozonConfig.tiny(seed=12))
    store, report = compute_alltops(
        ds.graph(), [("Protein", "DNA"), ("Protein", "Interaction")], 3
    )
    return ds, store, report


class TestAllTops:
    def test_report_consistency(self, built):
        _, store, report = built
        assert report.alltops_rows == len(store.alltops_rows)
        assert report.distinct_topologies == len(store.topologies)
        assert report.pairs_related == len(store.pair_classes)

    def test_frequencies_sum_to_rows(self, built):
        _, store, _ = built
        assert sum(t.frequency for t in store.topologies.values()) == len(
            store.alltops_rows
        )

    def test_pair_tids_match_alltops(self, built):
        _, store, _ = built
        rebuilt = {}
        for e1, e2, tid in store.alltops_rows:
            rebuilt.setdefault((e1, e2), set()).add(tid)
        assert rebuilt == {k: v for k, v in store.pair_tids.items() if v}

    def test_entity_pairs_scoped(self, built):
        _, store, _ = built
        for t in store.topologies.values():
            assert t.entity_pair in [("Protein", "DNA"), ("Protein", "Interaction")]

    def test_scores_computed(self, built):
        _, store, _ = built
        for t in store.topologies.values():
            assert set(t.scores) == {"freq", "rare", "domain"}

    def test_duplicate_pair_rejected(self, built):
        ds, store, _ = built
        with pytest.raises(TopologyError):
            compute_alltops(ds.graph(), [("Protein", "DNA"), ("Protein", "DNA")], 3)

    def test_record_after_finalize_rejected(self, built):
        _, store, _ = built
        with pytest.raises(TopologyError):
            store.record_pair(1, 2, ("Protein", "DNA"), frozenset(), {}, False)


class TestPruning:
    def test_lefttops_is_alltops_minus_pruned(self, built):
        ds, _, _ = built
        store, _ = compute_alltops(
            ds.graph(), [("Protein", "DNA"), ("Protein", "Interaction")], 3
        )
        report = apply_pruning(store)
        pruned = set(report.pruned_tids)
        assert store.lefttops_rows == [
            row for row in store.alltops_rows if row[2] not in pruned
        ]

    def test_pruned_are_most_frequent(self, built):
        ds, _, _ = built
        store, _ = compute_alltops(
            ds.graph(), [("Protein", "DNA"), ("Protein", "Interaction")], 3
        )
        report = apply_pruning(store)
        if not report.pruned_tids:
            pytest.skip("nothing pruned at this scale")
        min_pruned_freq = min(
            store.topologies[t].frequency for t in report.pruned_tids
        )
        max_kept_freq = max(
            (
                t.frequency
                for tid, t in store.topologies.items()
                if tid not in store.pruned_tids
            ),
            default=0,
        )
        assert min_pruned_freq > report.threshold >= 0
        assert max_kept_freq <= report.threshold

    def test_exception_semantics(self, built):
        """ExcpTops = pairs with the pruned topology's classes present
        but the topology absent from l-Top (Section 4.2.2's subtlety)."""
        ds, _, _ = built
        store, _ = compute_alltops(
            ds.graph(), [("Protein", "DNA"), ("Protein", "Interaction")], 3
        )
        apply_pruning(store)
        for e1, e2, tid in store.excptops_rows:
            topology = store.topologies[tid]
            classes = store.pair_classes[(e1, e2)]
            assert frozenset(topology.class_signatures) <= classes
            assert tid not in store.pair_tids[(e1, e2)]

    def test_exceptions_complete(self, built):
        """Every pair that satisfies a pruned topology's path condition
        without being related by it must appear in ExcpTops."""
        ds, _, _ = built
        store, _ = compute_alltops(
            ds.graph(), [("Protein", "DNA"), ("Protein", "Interaction")], 3
        )
        apply_pruning(store)
        excp = set(store.excptops_rows)
        for tid in store.pruned_tids:
            topology = store.topologies[tid]
            cs = frozenset(topology.class_signatures)
            for pair, classes in store.pair_classes.items():
                if store.pair_entity_types[pair] != topology.entity_pair:
                    continue
                if cs <= classes and tid not in store.pair_tids[pair]:
                    assert (pair[0], pair[1], tid) in excp

    def test_space_ratio(self, built):
        ds, _, _ = built
        store, _ = compute_alltops(
            ds.graph(), [("Protein", "DNA"), ("Protein", "Interaction")], 3
        )
        report = apply_pruning(store)
        assert 0.0 < report.space_ratio <= 1.0
        if report.pruned_tids:
            assert report.lefttops_rows < report.alltops_rows

    def test_threshold_suggestion_bounds(self, built):
        _, store, _ = built
        threshold = suggest_threshold(store, max_pruned_fraction=0.05)
        pruned = [t for t in store.topologies.values() if t.frequency > threshold]
        assert len(pruned) <= max(1, int(len(store.topologies) * 0.05)) + 1

    def test_zero_threshold_prunes_everything_observed(self, built):
        ds, _, _ = built
        store, _ = compute_alltops(ds.graph(), [("Protein", "DNA")], 3)
        report = apply_pruning(store, threshold=0)
        assert store.lefttops_rows == []
        assert set(report.pruned_tids) == set(store.topologies)

    def test_huge_threshold_prunes_nothing(self, built):
        ds, _, _ = built
        store, _ = compute_alltops(ds.graph(), [("Protein", "DNA")], 3)
        report = apply_pruning(store, threshold=10**9)
        assert report.pruned_tids == ()
        assert store.lefttops_rows == store.alltops_rows
        assert store.excptops_rows == []

    def test_negative_threshold_rejected(self, built):
        ds, _, _ = built
        store, _ = compute_alltops(ds.graph(), [("Protein", "DNA")], 3)
        with pytest.raises(TopologyError):
            apply_pruning(store, threshold=-1)


class TestMaterialization:
    def test_tables_created(self, tiny_system):
        db = tiny_system.database
        for name in ("TopInfo", "AllTops", "LeftTops", "ExcpTops"):
            assert db.has_table(name)

    def test_topinfo_rows_match_store(self, tiny_system):
        store = tiny_system.require_store()
        topinfo = tiny_system.database.table("TopInfo")
        assert topinfo.row_count == len(store.topologies)

    def test_score_indexes_exist(self, tiny_system):
        topinfo = tiny_system.database.table("TopInfo")
        for scheme in ("SCORE_FREQ", "SCORE_RARE", "SCORE_DOMAIN"):
            assert topinfo.sorted_index_on(scheme) is not None

    def test_pruned_flag_matches(self, tiny_system):
        store = tiny_system.require_store()
        topinfo = tiny_system.database.table("TopInfo")
        pruned_pos = topinfo.schema.column_position("PRUNED")
        tid_pos = topinfo.schema.column_position("TID")
        for row in topinfo.rows:
            assert row[pruned_pos] == (row[tid_pos] in store.pruned_tids)

    def test_space_report(self, tiny_system):
        report = tiny_system.require_store().space_report()
        assert report["AllTops"] >= report["LeftTops"]
        assert report["TopInfo"] > 0
