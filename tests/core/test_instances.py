"""Instance-level retrieval (Section 6.2.4)."""

from __future__ import annotations

import pytest

from repro.core import (
    AttributeConstraint,
    InstanceRetriever,
    KeywordConstraint,
    TopologyQuery,
)


@pytest.fixture(scope="module")
def retriever(fig3_system):
    return InstanceRetriever(fig3_system)


def tid_by_size(fig3_system, n_nodes):
    store = fig3_system.require_store()
    hits = [t.tid for t in store.topologies.values() if t.num_nodes == n_nodes]
    assert hits, f"no topology with {n_nodes} nodes"
    return hits[0]


class TestPairs:
    def test_pairs_for_t1(self, fig3_system, retriever):
        tid = tid_by_size(fig3_system, 2)  # T1: single encodes edge
        assert retriever.pairs_for_topology(tid) == [(32, 214)]

    def test_pairs_for_t3(self, fig3_system, retriever):
        tid = tid_by_size(fig3_system, 4)  # T3
        assert retriever.pairs_for_topology(tid) == [(78, 215)]


class TestInstances:
    def test_t1_instance(self, fig3_system, retriever):
        tid = tid_by_size(fig3_system, 2)
        instances = retriever.instances(tid)
        assert len(instances) == 1
        inst = instances[0]
        assert set(inst.entities()) == {32, 214}
        assert inst.e1 == 32 and inst.e2 == 214

    def test_t3_instance_covers_shared_unigene(self, fig3_system, retriever):
        tid = tid_by_size(fig3_system, 4)
        instances = retriever.instances(tid)
        assert instances
        entities = set(instances[0].entities())
        assert entities == {78, 103, 34, 215}

    def test_edge_map_refers_to_real_edges(self, fig3_system, retriever):
        tid = tid_by_size(fig3_system, 4)
        graph = fig3_system.graph
        for inst in retriever.instances(tid):
            for _, edge_id in inst.edge_map:
                assert graph.has_edge(edge_id)

    def test_instance_count_limit(self, fig3_system, retriever):
        tid = tid_by_size(fig3_system, 3)  # T2-shaped
        capped = retriever.instances(tid, limit=1)
        assert len(capped) == 1

    def test_query_filter(self, fig3_system, retriever):
        tid = tid_by_size(fig3_system, 3)
        q = TopologyQuery(
            "Protein", "DNA",
            KeywordConstraint("DESC", "zzz-no-match"),
            AttributeConstraint("TYPE", "mRNA"),
        )
        assert retriever.instances(tid, query=q) == []

    def test_verify_pair(self, fig3_system, retriever):
        t1 = tid_by_size(fig3_system, 2)
        assert retriever.verify_pair(t1, 32, 214, 3)
        assert not retriever.verify_pair(t1, 78, 215, 3)

    def test_instances_on_synthetic(self, tiny_system):
        retriever = InstanceRetriever(tiny_system)
        store = tiny_system.require_store()
        # Pick the most frequent topology and spot-check a few instances.
        top = max(store.topologies.values(), key=lambda t: t.frequency)
        instances = retriever.instances(top.tid, limit=5, per_pair_limit=2)
        assert instances
        graph = tiny_system.graph
        for inst in instances:
            for canon_idx, node_id in inst.node_map:
                assert graph.has_node(node_id)
