"""Property tests of Definitions 1-3 on random labeled graphs."""

from __future__ import annotations

import itertools
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import path_equivalence_classes, topologies_for_pair, topology_result
from repro.core.topologies import topologies_from_classes
from repro.graph import (
    LabeledGraph,
    canonical_key,
    iter_simple_paths,
    parse_canonical_key,
    union_all,
)

from tests.conftest import build_graph


def random_biograph(seed: int, n: int, m: int) -> LabeledGraph:
    rng = random.Random(seed)
    g = LabeledGraph()
    types = ["Protein", "DNA", "Unigene", "Interaction"]
    for i in range(n):
        g.add_node(i, rng.choice(types))
    pairs = [(i, j) for i in range(n) for j in range(i + 1, n)]
    rng.shuffle(pairs)
    for k, (u, v) in enumerate(pairs[:m]):
        g.add_edge(f"e{k}", u, v, rng.choice(["encodes", "links", "contains"]))
    return g


graph_params = st.tuples(
    st.integers(min_value=0, max_value=100_000),  # seed
    st.integers(min_value=2, max_value=8),        # nodes
    st.integers(min_value=1, max_value=14),       # edges
    st.integers(min_value=1, max_value=3),        # l
)


class TestPathEquivalenceClasses:
    @settings(max_examples=40, deadline=None)
    @given(graph_params)
    def test_classes_partition_path_set(self, params):
        seed, n, m, l = params
        g = random_biograph(seed, n, m)
        a, b = 0, n - 1
        classes = path_equivalence_classes(g, a, b, l)
        all_paths = list(iter_simple_paths(g, a, b, l))
        grouped_count = sum(len(v) for v in classes.values())
        assert grouped_count == len(all_paths)
        for sig, paths in classes.items():
            for p in paths:
                assert p.signature() == sig

    @settings(max_examples=25, deadline=None)
    @given(graph_params)
    def test_classes_symmetric_in_endpoints(self, params):
        seed, n, m, l = params
        g = random_biograph(seed, n, m)
        a, b = 0, n - 1
        assert set(path_equivalence_classes(g, a, b, l)) == set(
            path_equivalence_classes(g, b, a, l)
        )


class TestTopologiesForPair:
    @settings(max_examples=40, deadline=None)
    @given(graph_params)
    def test_matches_brute_force_definition(self, params):
        """Definition 2, literally: enumerate ALL combinations of one
        path per class, union, canonicalize."""
        seed, n, m, l = params
        g = random_biograph(seed, n, m)
        a, b = 0, n - 1
        classes = path_equivalence_classes(g, a, b, l)
        expected = set()
        if classes:
            for combo in itertools.product(*classes.values()):
                expected.add(canonical_key(union_all([p.as_graph() for p in combo])))
        pair = topologies_for_pair(g, a, b, l)
        assert set(pair.topology_keys) == expected
        assert not pair.truncated

    @settings(max_examples=25, deadline=None)
    @given(graph_params)
    def test_topology_count_bounded_by_combinations(self, params):
        seed, n, m, l = params
        g = random_biograph(seed, n, m)
        classes = path_equivalence_classes(g, 0, n - 1, l)
        pair = topologies_for_pair(g, 0, n - 1, l)
        bound = 1
        for paths in classes.values():
            bound *= len(paths)
        assert len(pair.topology_keys) <= max(bound, 0) or not classes

    @settings(max_examples=25, deadline=None)
    @given(graph_params)
    def test_every_topology_uses_all_classes(self, params):
        """Each topology realizes exactly the pair's class set between
        the endpoints (the 'full interaction' requirement that excludes
        the paper's T2 for pair (78, 215))."""
        seed, n, m, l = params
        g = random_biograph(seed, n, m)
        a, b = 0, n - 1
        classes = path_equivalence_classes(g, a, b, l)
        pair = topologies_for_pair(g, a, b, l)
        for key in pair.topology_keys:
            node_types, edges = parse_canonical_key(key)
            # Rebuild and re-derive the classes between ITS endpoints:
            # since the topology is a union of a->b paths, its class set
            # must equal the pair's class set.
            rep = build_graph(
                [(i, t) for i, t in enumerate(node_types)],
                [(f"c{k}", i, j, t) for k, (i, j, t) in enumerate(edges)],
            )
            # endpoints of the union are the original a, b images; find
            # any pair of nodes realizing the full class set.
            found = False
            nodes = list(rep.nodes())
            for x in nodes:
                for y in nodes:
                    if x == y:
                        continue
                    sigs = {
                        p.signature() for p in iter_simple_paths(rep, x, y, l)
                    }
                    if sigs == set(classes):
                        found = True
                        break
                if found:
                    break
            assert found

    def test_truncation_flag(self):
        # A pair with many parallel same-class paths and several classes
        # exceeds a tiny combination cap.
        g = build_graph(
            [("a", "P"), ("b", "D")] + [(f"u{i}", "U") for i in range(4)],
            [(f"e{i}a", "a", f"u{i}", "x") for i in range(4)]
            + [(f"e{i}b", f"u{i}", "b", "y") for i in range(4)]
            + [("direct", "a", "b", "z")],
        )
        classes = path_equivalence_classes(g, "a", "b", 2)
        tops, truncated = topologies_from_classes(classes, "a", "b", combination_cap=2)
        assert truncated
        assert tops  # still returns what it found


class TestTopologyResult:
    @settings(max_examples=20, deadline=None)
    @given(graph_params)
    def test_union_over_pairs(self, params):
        seed, n, m, l = params
        g = random_biograph(seed, n, m)
        nodes = list(g.nodes())
        half = max(1, len(nodes) // 2)
        set_a, set_b = nodes[:half], nodes[half:]
        result = topology_result(g, set_a, set_b, l)
        expected = {}
        for a in set_a:
            for b in set_b:
                if a == b:
                    continue
                for key in topologies_for_pair(g, a, b, l).topology_keys:
                    expected.setdefault(key, set()).add((a, b))
        assert result == expected

    def test_skips_identical_endpoints(self):
        g = build_graph([("a", "P"), ("b", "P")], [("e", "a", "b", "x")])
        result = topology_result(g, ["a", "b"], ["a", "b"], 2)
        for pairs in result.values():
            for a, b in pairs:
                assert a != b
