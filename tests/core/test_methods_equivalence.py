"""Cross-method equivalence on synthetic data (the central correctness
property): every method must agree with the Definition-3 reference and
with each other, for both orientations, all rankings, and several k."""

from __future__ import annotations

import pytest

from repro.core import (
    AttributeConstraint,
    KeywordConstraint,
    NoConstraint,
    TopologyQuery,
    topology_result,
)

TOPK_METHODS = [
    "full-top-k",
    "fast-top-k",
    "full-top-k-et",
    "fast-top-k-et",
    "full-top-k-opt",
    "fast-top-k-opt",
]


def reference_tids(system, dataset, query):
    """Definition-3 reference evaluation."""
    db = dataset.database
    graph = system.graph
    t1 = db.table(query.entity1)
    layout1 = [(query.entity1.lower(), c.name) for c in t1.schema.columns]
    from repro.relational.expressions import RowLayout

    fn1 = query.constraint1.to_expression(query.entity1.lower()).bind(
        RowLayout(layout1)
    )
    set_a = [r[0] for r in t1.rows if fn1(r) is True]
    t2 = db.table(query.entity2)
    layout2 = [(query.entity2.lower(), c.name) for c in t2.schema.columns]
    fn2 = query.constraint2.to_expression(query.entity2.lower()).bind(
        RowLayout(layout2)
    )
    set_b = [r[0] for r in t2.rows if fn2(r) is True]
    result = topology_result(graph, set_a, set_b, query.max_length)
    pair = system.store_entity_pair(query)
    store = system.require_store()
    return sorted(store.tid_of(key, pair) for key in result)


QUERIES = [
    TopologyQuery(
        "Protein", "DNA",
        KeywordConstraint("DESC", "human"),
        AttributeConstraint("TYPE", "mRNA"),
    ),
    TopologyQuery(
        "Protein", "DNA",
        KeywordConstraint("DESC", "kinase"),
        NoConstraint(),
    ),
    TopologyQuery(
        "Protein", "Interaction",
        KeywordConstraint("DESC", "binding"),
        KeywordConstraint("DESC", "direct"),
    ),
    # Reversed orientation relative to the build() pair list.
    TopologyQuery(
        "DNA", "Protein",
        AttributeConstraint("TYPE", "EST"),
        NoConstraint(),
    ),
    TopologyQuery(
        "Interaction", "Protein",
        NoConstraint(),
        KeywordConstraint("DESC", "human"),
    ),
]


class TestExhaustiveMethods:
    @pytest.mark.parametrize("qidx", range(len(QUERIES)))
    def test_full_top_matches_reference(self, tiny_system, tiny_dataset, qidx):
        query = QUERIES[qidx]
        expected = reference_tids(tiny_system, tiny_dataset, query)
        result = tiny_system.search(query, "full-top")
        assert result.tids == expected

    @pytest.mark.parametrize("qidx", range(len(QUERIES)))
    def test_fast_top_matches_full_top(self, tiny_system, qidx):
        query = QUERIES[qidx]
        assert (
            tiny_system.search(query, "fast-top").tids
            == tiny_system.search(query, "full-top").tids
        )

    def test_sql_method_matches(self, tiny_system, tiny_dataset):
        query = QUERIES[0]
        expected = reference_tids(tiny_system, tiny_dataset, query)
        assert tiny_system.search(query, "sql").tids == expected


class TestTopKMethods:
    @pytest.mark.parametrize("method", TOPK_METHODS[1:])
    @pytest.mark.parametrize("ranking", ["freq", "rare", "domain"])
    def test_agree_with_full_top_k(self, tiny_system, method, ranking):
        query = TopologyQuery(
            "Protein", "DNA",
            KeywordConstraint("DESC", "human"),
            AttributeConstraint("TYPE", "mRNA"),
            k=7, ranking=ranking,
        )
        reference = tiny_system.search(query, "full-top-k")
        result = tiny_system.search(query, method)
        assert result.tids == reference.tids
        assert result.scores == pytest.approx(reference.scores)

    @pytest.mark.parametrize("k", [1, 3, 10, 1000])
    def test_varying_k(self, tiny_system, k):
        query = TopologyQuery(
            "Protein", "Interaction",
            KeywordConstraint("DESC", "binding"),
            NoConstraint(),
            k=k, ranking="rare",
        )
        reference = tiny_system.search(query, "full-top-k")
        for method in TOPK_METHODS[1:]:
            assert tiny_system.search(query, method).tids == reference.tids

    def test_topk_is_prefix_of_larger_k(self, tiny_system):
        small = TopologyQuery(
            "Protein", "DNA",
            KeywordConstraint("DESC", "human"), NoConstraint(),
            k=3, ranking="freq",
        )
        large = TopologyQuery(
            "Protein", "DNA",
            KeywordConstraint("DESC", "human"), NoConstraint(),
            k=8, ranking="freq",
        )
        s = tiny_system.search(small, "fast-top-k").tids
        l = tiny_system.search(large, "fast-top-k").tids
        assert l[: len(s)] == s

    def test_topk_subset_of_exhaustive(self, tiny_system):
        query_all = QUERIES[0]
        query_k = TopologyQuery(
            query_all.entity1, query_all.entity2,
            query_all.constraint1, query_all.constraint2,
            k=5, ranking="domain",
        )
        all_tids = set(tiny_system.search(query_all, "full-top").tids)
        top = tiny_system.search(query_k, "fast-top-k-et").tids
        assert set(top) <= all_tids

    def test_scores_descending(self, tiny_system):
        query = TopologyQuery(
            "Protein", "DNA",
            NoConstraint(), NoConstraint(),
            k=10, ranking="rare",
        )
        result = tiny_system.search(query, "fast-top-k-et")
        assert result.scores == sorted(result.scores, reverse=True)

    @pytest.mark.parametrize("flavor", ["idgj", "hdgj"])
    def test_et_flavors_agree(self, tiny_system, flavor):
        from repro.core.methods.et import FastTopKEtMethod

        query = TopologyQuery(
            "Protein", "DNA",
            KeywordConstraint("DESC", "human"),
            AttributeConstraint("TYPE", "mRNA"),
            k=6, ranking="freq",
        )
        reference = tiny_system.search(query, "full-top-k").tids
        method = FastTopKEtMethod(tiny_system, flavor=flavor)
        assert method.run(query).tids == reference


class TestMethodBehaviour:
    def test_et_does_less_work_for_small_k(self, tiny_system):
        query_small = TopologyQuery(
            "Protein", "DNA", NoConstraint(), NoConstraint(), k=1, ranking="freq"
        )
        query_large = TopologyQuery(
            "Protein", "DNA", NoConstraint(), NoConstraint(), k=50, ranking="freq"
        )
        small = tiny_system.search(query_small, "fast-top-k-et")
        large = tiny_system.search(query_large, "fast-top-k-et")
        assert small.work["index_probes"] <= large.work["index_probes"]

    def test_opt_reports_structured_plan(self, tiny_system):
        query = TopologyQuery(
            "Protein", "DNA",
            KeywordConstraint("DESC", "human"), NoConstraint(),
            k=5, ranking="freq",
        )
        result = tiny_system.search(query, "fast-top-k-opt")
        plan = result.plan
        assert plan is not None
        assert plan.strategy in ("regular", "et-idgj", "et-hdgj")
        # All three alternatives were priced; the chosen one is cheapest
        # by calibrated cost (ties go to the regular plan).
        costs = {a.strategy: a.calibrated_cost for a in plan.alternatives}
        assert set(costs) == {"regular", "et-idgj", "et-hdgj"}
        assert all(c is not None for c in costs.values())
        assert costs[plan.strategy] == min(costs.values())
        # The derived free-text label survives for backward compatibility.
        assert result.plan_choice is not None
        assert result.plan_choice.startswith(plan.strategy)

    def test_unbuilt_pair_rejected(self, tiny_system):
        from repro.errors import TopologyError

        query = TopologyQuery("Family", "Pathway", NoConstraint(), NoConstraint())
        with pytest.raises(TopologyError):
            tiny_system.search(query, "full-top")

    def test_wrong_l_rejected(self, tiny_system):
        from repro.errors import TopologyError

        query = TopologyQuery(
            "Protein", "DNA", NoConstraint(), NoConstraint(), max_length=2
        )
        with pytest.raises(TopologyError):
            tiny_system.search(query, "full-top")

    def test_unknown_method_rejected(self, tiny_system):
        from repro.errors import TopologyError

        query = QUERIES[0]
        with pytest.raises(TopologyError):
            tiny_system.search(query, "quantum-top")

    def test_work_counters_populated(self, tiny_system):
        result = tiny_system.search(QUERIES[0], "full-top")
        assert result.work["rows_scanned"] >= 0
        assert result.elapsed_seconds >= 0

    def test_empty_result_when_no_matches(self, tiny_system):
        query = TopologyQuery(
            "Protein", "DNA",
            KeywordConstraint("DESC", "zzz_no_such_keyword"),
            NoConstraint(),
        )
        assert tiny_system.search(query, "full-top").tids == []
        assert tiny_system.search(query, "fast-top").tids == []
        qk = TopologyQuery(
            "Protein", "DNA",
            KeywordConstraint("DESC", "zzz_no_such_keyword"),
            NoConstraint(), k=5,
        )
        assert tiny_system.search(qk, "fast-top-k-et").tids == []

    def test_apostrophe_values_render_safely(self, tiny_system):
        """Constraint values with embedded quotes must be escaped, not
        break (or alter) the generated SQL."""
        query = TopologyQuery(
            "Protein", "DNA",
            KeywordConstraint("DESC", "o'brien's"),
            AttributeConstraint("TYPE", "5'-mRNA'"),
        )
        assert tiny_system.search(query, "full-top").tids == []
        assert tiny_system.search(query, "fast-top").tids == []
        qk = TopologyQuery(
            "Protein", "DNA",
            KeywordConstraint("DESC", "it's"), NoConstraint(), k=3,
        )
        assert tiny_system.search(qk, "full-top-k").tids == []


class TestCalibratedOptQuality:
    """Satellite: the calibrated planner's choices must be at least as
    good — measured by *observed* work — as the uncalibrated ones, and
    calibration must never change answers."""

    @pytest.fixture()
    def fresh_system(self):
        from repro.biozon import BiozonConfig, generate
        from repro.core import TopologySearchSystem

        ds = generate(BiozonConfig.tiny(seed=11))
        system = TopologySearchSystem(ds.database, ds.graph())
        system.build([("Protein", "DNA"), ("Protein", "Interaction")], max_length=3)
        return system

    @staticmethod
    def _workload():
        keywords = ["human", "kinase", "binding", "putative", "conserved"]
        queries = []
        for i, keyword in enumerate(keywords):
            queries.append(
                TopologyQuery(
                    "Protein", "DNA",
                    KeywordConstraint("DESC", keyword), NoConstraint(),
                    k=3 + (i % 3), ranking=("freq", "rare")[i % 2],
                )
            )
        return queries

    @staticmethod
    def _observed_work(system, query):
        """Observed work units per strategy, via the direct methods."""
        from repro.core.methods.et import FastTopKEtMethod
        from repro.core.plan import work_units

        observed = {}
        observed["regular"] = work_units(system.search(query, "fast-top-k").work)
        for flavor in ("idgj", "hdgj"):
            method = FastTopKEtMethod(system, flavor=flavor)
            observed[f"et-{flavor}"] = work_units(method.run(query).work)
        return observed

    def test_calibration_never_hurts_choice_quality(self, fresh_system):
        system = fresh_system
        workload = self._workload()
        before = {
            id(q): system.explain(q, "fast-top-k-opt").strategy for q in workload
        }
        # Execute every strategy once per query: this is the feedback
        # the calibrator learns from, and the ground truth we score
        # choices against.
        observed = {id(q): self._observed_work(system, q) for q in workload}
        assert system.calibrator.observation_count() > 0
        system.invalidate_plans()
        after = {
            id(q): system.explain(q, "fast-top-k-opt").strategy for q in workload
        }

        def optimal_choices(choices):
            return sum(
                1
                for q in workload
                if observed[id(q)][choices[id(q)]] <= min(observed[id(q)].values())
            )

        assert optimal_choices(after) >= optimal_choices(before)

    def test_all_methods_identical_after_calibration(self, fresh_system):
        system = fresh_system
        workload = self._workload()
        for query in workload:
            self._observed_work(system, query)  # feed the calibrator
        system.invalidate_plans()
        for query in workload:
            reference = system.search(query, "full-top-k")
            for method in TOPK_METHODS[1:]:
                result = system.search(query, method)
                assert result.tids == reference.tids, method
                assert result.scores == pytest.approx(reference.scores), method
