"""System facade, query/constraint values, and error paths."""

from __future__ import annotations

import pytest

from repro.biozon import build_figure3_database
from repro.core import (
    AttributeConstraint,
    ConjunctionConstraint,
    KeywordConstraint,
    NoConstraint,
    TopologyQuery,
    TopologySearchSystem,
)
from repro.errors import TopologyError
from repro.relational.expressions import RowLayout


class TestConstraints:
    LAYOUT = RowLayout([("x", "id"), ("x", "desc"), ("x", "type")])

    def _eval(self, constraint, row):
        return constraint.to_expression("x").bind(self.LAYOUT)(row)

    def test_keyword_constraint(self):
        c = KeywordConstraint("DESC", "enzyme")
        assert self._eval(c, (1, "an enzyme", "t")) is True
        assert self._eval(c, (1, "nothing", "t")) is False
        assert c.to_sql("P") == "CONTAINS(P.DESC, 'enzyme')"

    def test_attribute_constraint(self):
        c = AttributeConstraint("TYPE", "mRNA")
        assert self._eval(c, (1, "d", "mRNA")) is True
        assert self._eval(c, (1, "d", "EST")) is False
        assert c.to_sql("D") == "D.TYPE = 'mRNA'"

    def test_attribute_constraint_operators(self):
        c = AttributeConstraint("ID", 5, op=">")
        assert self._eval(c, (7, "d", "t")) is True
        assert self._eval(c, (3, "d", "t")) is False
        assert c.to_sql("D") == "D.ID > 5"

    def test_conjunction(self):
        c = ConjunctionConstraint(
            (KeywordConstraint("DESC", "a"), AttributeConstraint("TYPE", "t"))
        )
        assert self._eval(c, (1, "xax", "t")) is True
        assert self._eval(c, (1, "xax", "z")) is False
        assert "AND" in c.to_sql("P")

    def test_no_constraint(self):
        c = NoConstraint()
        assert self._eval(c, (1, None, None)) is True
        assert c.to_sql("P") == "1 = 1"

    def test_sql_quote_escapes_quotes(self):
        c = KeywordConstraint("DESC", "o'neil")
        sql = c.to_sql("P")
        assert "''" in sql
        # And it still parses + executes.
        db = build_figure3_database()
        system = TopologySearchSystem(db)
        result = system.engine.execute(
            f"SELECT P.ID FROM Protein P WHERE {sql}"
        )
        assert result.rows == []


class TestTopologyQueryValue:
    def test_validation(self):
        with pytest.raises(TopologyError):
            TopologyQuery("A", "B", NoConstraint(), NoConstraint(), max_length=0)
        with pytest.raises(TopologyError):
            TopologyQuery("A", "B", NoConstraint(), NoConstraint(), k=0)

    def test_describe(self):
        q = TopologyQuery(
            "Protein", "DNA",
            KeywordConstraint("DESC", "x"), NoConstraint(),
            k=5, ranking="rare",
        )
        text = q.describe()
        assert "top-5" in text and "rare" in text and "l=3" in text

    def test_entity_pair(self):
        q = TopologyQuery("A", "B", NoConstraint(), NoConstraint())
        assert q.entity_pair == ("A", "B")


class TestSystemFacade:
    def test_search_before_build_fails(self):
        system = TopologySearchSystem(build_figure3_database())
        q = TopologyQuery("Protein", "DNA", NoConstraint(), NoConstraint())
        with pytest.raises(TopologyError):
            system.search(q, "full-top")

    def test_build_report_contents(self, fig3_system):
        report = fig3_system.build_report
        assert report is not None
        assert report.alltops.distinct_topologies == 5
        assert report.elapsed_seconds > 0
        assert report.pruning is not None

    def test_build_report_carries_phase_spans(self, fig3_system):
        """The offline build traces itself: the report ships the span
        tree (engine.build root, one child per phase) so build timing is
        inspectable without a live tracer."""
        spans = fig3_system.build_report.spans
        by_name = {s["name"]: s for s in spans}
        assert {
            "engine.build",
            "build.compute_alltops",
            "build.prune",
            "build.materialize",
        } <= set(by_name)
        root = by_name["engine.build"]
        assert root["parent_id"] is None
        for phase in ("build.compute_alltops", "build.prune", "build.materialize"):
            assert by_name[phase]["parent_id"] == root["span_id"]
            assert by_name[phase]["trace_id"] == root["trace_id"]
            assert by_name[phase]["elapsed_seconds"] >= 0

    def test_orientation(self, fig3_system):
        fwd = TopologyQuery("Protein", "DNA", NoConstraint(), NoConstraint())
        rev = TopologyQuery("DNA", "Protein", NoConstraint(), NoConstraint())
        assert fig3_system.orientation(fwd) is True
        assert fig3_system.orientation(rev) is False
        assert fig3_system.store_entity_pair(rev) == ("Protein", "DNA")

    def test_method_cache(self, fig3_system):
        assert fig3_system.method("full-top") is fig3_system.method("full-top")

    def test_describe_topologies(self, fig3_system):
        q = TopologyQuery("Protein", "DNA", NoConstraint(), NoConstraint())
        result = fig3_system.search(q, "full-top")
        descriptions = fig3_system.describe_topologies(result.tids)
        assert len(descriptions) == len(result.tids)
        assert all("-" in d for d in descriptions)

    def test_no_prune_build(self):
        system = TopologySearchSystem(build_figure3_database())
        system.build([("Protein", "DNA")], max_length=3, prune=False)
        store = system.require_store()
        assert store.pruned_tids == set()
        assert store.lefttops_rows == store.alltops_rows
        q = TopologyQuery(
            "Protein", "DNA",
            KeywordConstraint("DESC", "enzyme"),
            AttributeConstraint("TYPE", "mRNA"),
        )
        assert len(system.search(q, "fast-top").tids) == 4

    def test_rebuild_replaces_store(self):
        system = TopologySearchSystem(build_figure3_database())
        system.build([("Protein", "DNA")], max_length=2)
        first = len(system.require_store().topologies)
        system.build([("Protein", "DNA")], max_length=3)
        second = len(system.require_store().topologies)
        assert second >= first
        assert system.max_length == 3


class TestMethodResult:
    def test_ranked_requires_scores(self, fig3_system):
        q = TopologyQuery("Protein", "DNA", NoConstraint(), NoConstraint())
        result = fig3_system.search(q, "full-top")
        with pytest.raises(ValueError):
            result.ranked

    def test_ranked_pairs(self, fig3_system):
        q = TopologyQuery(
            "Protein", "DNA", NoConstraint(), NoConstraint(), k=3, ranking="freq"
        )
        result = fig3_system.search(q, "fast-top-k")
        assert result.ranked == list(zip(result.tids, result.scores))
