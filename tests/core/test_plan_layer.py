"""The plan layer: plan classes, caching, EXPLAIN, calibration.

Covers :mod:`repro.core.plan` plus its engine/service wiring — plans as
first-class objects, the query-class cache, ``explain()`` for all nine
methods, and the observation-driven cost calibrator.
"""

from __future__ import annotations

import pytest

from repro.core import (
    ALL_METHOD_NAMES,
    AttributeConstraint,
    ConjunctionConstraint,
    CostCalibrator,
    KeywordConstraint,
    NoConstraint,
    TopologyQuery,
)
from repro.core.plan import (
    ET_STRATEGIES,
    STRATEGY_PER_TOPOLOGY,
    STRATEGY_REGULAR,
    PlanCache,
    constraint_structure,
    k_bucket,
    selectivity_bucket,
    work_units,
)

EXHAUSTIVE = ("sql", "full-top", "fast-top")


def make_query(keyword="human", k=5, ranking="freq"):
    return TopologyQuery(
        "Protein", "DNA",
        KeywordConstraint("DESC", keyword),
        AttributeConstraint("TYPE", "mRNA"),
        k=k, ranking=ranking,
    )


class TestPlanClassification:
    def test_k_buckets_are_powers_of_two(self):
        assert k_bucket(None) == 0
        assert [k_bucket(k) for k in (1, 2, 3, 4, 5, 8, 9)] == [1, 2, 4, 4, 8, 8, 16]

    def test_selectivity_buckets_are_orders_of_magnitude(self):
        assert selectivity_bucket(1.0) == 0
        assert selectivity_bucket(0.2) == -1
        assert selectivity_bucket(0.02) == -2
        assert selectivity_bucket(0.0) == -9  # clamped

    def test_constraint_structure_is_value_free(self):
        a = constraint_structure(KeywordConstraint("DESC", "kinase"))
        b = constraint_structure(KeywordConstraint("DESC", "binding"))
        assert a == b == ("contains", "desc")
        assert constraint_structure(NoConstraint()) == ("all",)
        conj = ConjunctionConstraint(
            (KeywordConstraint("DESC", "x"), AttributeConstraint("TYPE", "y"))
        )
        assert constraint_structure(conj) == (
            "and", ("contains", "desc"), ("cmp", "type", "="),
        )

    def test_same_shape_queries_share_a_class(self, tiny_system):
        method = tiny_system.method("fast-top-k-opt")
        planner = tiny_system.planner
        # Same keyword, different k within one power-of-two bucket.
        c1 = planner.classify(make_query(k=5), method)
        c2 = planner.classify(make_query(k=7), method)
        assert c1 == c2
        # Different ranking, k-bucket, or l -> different classes.
        assert planner.classify(make_query(ranking="rare"), method) != c1
        assert planner.classify(make_query(k=2), method) != c1

    def test_flavors_get_distinct_classes(self, tiny_system):
        from repro.core.methods.et import FastTopKEtMethod

        idgj = FastTopKEtMethod(tiny_system, flavor="idgj")
        hdgj = FastTopKEtMethod(tiny_system, flavor="hdgj")
        query = make_query()
        assert (
            tiny_system.planner.classify(query, idgj)
            != tiny_system.planner.classify(query, hdgj)
        )


@pytest.fixture()
def stable_plans(tiny_system):
    """Pause calibration so its version bumps cannot invalidate plans
    mid-test (the shared session system accumulates observations)."""
    tiny_system.calibration_enabled = False
    tiny_system.invalidate_plans()
    try:
        yield tiny_system
    finally:
        tiny_system.calibration_enabled = True


class TestPlanCacheBehaviour:
    def test_same_class_traffic_hits_the_cache(self, stable_plans):
        system = stable_plans
        before = system.plan_cache_stats()
        system.search(make_query(k=5), "fast-top-k-opt")
        system.search(make_query(k=6), "fast-top-k-opt")
        system.search(make_query(k=7), "fast-top-k-opt")
        stats = system.plan_cache_stats()
        assert stats.hits - before.hits >= 2

    def test_cache_hit_skips_planning_work(self, stable_plans):
        system = stable_plans
        cold = system.search(make_query(k=5), "fast-top-k-opt")
        warm = system.search(make_query(k=6), "fast-top-k-opt")
        assert warm.planning_seconds < cold.planning_seconds

    def test_rebuild_invalidates_plans(self):
        from repro.biozon import BiozonConfig, generate
        from repro.core import TopologySearchSystem

        ds = generate(BiozonConfig.tiny(seed=6))
        system = TopologySearchSystem(ds.database, ds.graph())
        system.build([("Protein", "DNA")], max_length=3)
        query = TopologyQuery(
            "Protein", "DNA",
            KeywordConstraint("DESC", "human"), NoConstraint(), k=4,
        )
        system.search(query, "fast-top-k-opt")
        invalidations = system.plan_cache_stats().invalidations
        system.build([("Protein", "DNA")], max_length=3)
        system.search(query, "fast-top-k-opt")
        assert system.plan_cache_stats().invalidations > invalidations

    def test_lru_semantics(self):
        from repro.core.plan import PlanClass, QueryPlan

        def cls(tag):
            return PlanClass(
                method=tag, strategies=("regular",), entity1="A", entity2="B",
                shape1=("all",), shape2=("all",), max_length=3,
                k_bucket=0, ranking="freq",
            )

        def plan(tag):
            return QueryPlan(
                method=tag, strategy="regular", plan_class=cls(tag), alternatives=(),
            )

        cache = PlanCache(capacity=2)
        cache.put(cls("a"), 0, plan("a"))
        cache.put(cls("b"), 0, plan("b"))
        assert cache.get(cls("a"), 0) is not None
        cache.put(cls("c"), 0, plan("c"))      # evicts "b" (LRU)
        assert cache.get(cls("b"), 0) is None
        # A stale calibrator version is a miss, not a hit.
        assert cache.get(cls("a"), 1) is None
        with pytest.raises(ValueError):
            PlanCache(capacity=0)


class TestExplain:
    @pytest.mark.parametrize("method", ALL_METHOD_NAMES)
    def test_explain_works_for_every_method(self, tiny_system, method):
        query = make_query() if method not in EXHAUSTIVE else TopologyQuery(
            "Protein", "DNA",
            KeywordConstraint("DESC", "human"),
            AttributeConstraint("TYPE", "mRNA"),
        )
        plan = tiny_system.explain(query, method)
        assert plan.method == method
        assert plan.strategy in plan.plan_class.strategies
        text = plan.display(query)
        assert method in text
        assert "operator tree" in text
        assert plan.costed  # explain always prices what it can

    def test_explain_shows_all_opt_alternatives(self, tiny_system):
        plan = tiny_system.explain(make_query(), "fast-top-k-opt")
        strategies = {a.strategy for a in plan.alternatives}
        assert strategies == {STRATEGY_REGULAR, *ET_STRATEGIES}
        assert all(a.estimated_cost is not None for a in plan.alternatives)
        text = plan.display()
        for s in strategies:
            assert s in text

    def test_explain_matches_executed_plan(self, tiny_system):
        query = make_query(keyword="kinase", k=4)
        explained = tiny_system.explain(query, "fast-top-k-opt")
        executed = tiny_system.search(query, "fast-top-k-opt").plan
        assert executed.strategy == explained.strategy
        assert executed.plan_class == explained.plan_class

    def test_sql_method_plan_is_costless_but_displayable(self, tiny_system):
        query = TopologyQuery(
            "Protein", "DNA",
            KeywordConstraint("DESC", "human"),
            AttributeConstraint("TYPE", "mRNA"),
        )
        plan = tiny_system.explain(query, "sql")
        assert plan.strategy == STRATEGY_PER_TOPOLOGY
        assert plan.estimated_cost is None
        assert "ForEach" in plan.display()


class TestCostCalibrator:
    def test_factor_is_geometric_mean_of_ratios(self):
        calibrator = CostCalibrator()
        for observed in (200.0, 800.0, 400.0):  # estimates of 100 each
            calibrator.record("et-idgj", 100.0, observed)
        # geometric mean of (2, 8, 4) = 4
        assert calibrator.factor("et-idgj") == pytest.approx(4.0)
        assert calibrator.factor("regular") == 1.0  # no observations

    def test_factor_needs_minimum_observations(self):
        calibrator = CostCalibrator()
        calibrator.record("regular", 100.0, 1000.0)
        calibrator.record("regular", 100.0, 1000.0)
        assert calibrator.factor("regular") == 1.0
        calibrator.record("regular", 100.0, 1000.0)
        assert calibrator.factor("regular") == pytest.approx(10.0)

    def test_version_bumps_on_drift(self):
        calibrator = CostCalibrator()
        v0 = calibrator.version
        for _ in range(3):
            calibrator.record("et-hdgj", 100.0, 1000.0)
        assert calibrator.version > v0

    def test_ignores_degenerate_observations(self):
        calibrator = CostCalibrator()
        calibrator.record("regular", 0.0, 10.0)
        calibrator.record("regular", 10.0, 0.0)
        assert calibrator.observation_count("regular") == 0

    def test_state_round_trip(self):
        calibrator = CostCalibrator()
        for i in range(4):
            calibrator.record("et-idgj", 100.0, 300.0 + i)
        restored = CostCalibrator.from_state(calibrator.export_state())
        assert restored.factor("et-idgj") == pytest.approx(
            calibrator.factor("et-idgj")
        )
        assert restored.version == calibrator.version
        assert restored.observation_count() == calibrator.observation_count()
        assert CostCalibrator.from_state(None).observation_count() == 0

    def test_work_units_weight_counters(self):
        assert work_units({}) == 0.0
        assert work_units({"rows_scanned": 10}) == pytest.approx(10.0)
        assert work_units({"index_probes": 5}) == pytest.approx(10.0)
        assert work_units({"unknown_counter": 99}) == 0.0


class TestCalibrationFeedbackLoop:
    @pytest.fixture()
    def fresh_system(self):
        from repro.biozon import BiozonConfig, generate
        from repro.core import TopologySearchSystem

        ds = generate(BiozonConfig.tiny(seed=12))
        system = TopologySearchSystem(ds.database, ds.graph())
        system.build([("Protein", "DNA")], max_length=3)
        return system

    def test_executions_feed_the_calibrator(self, fresh_system):
        query = TopologyQuery(
            "Protein", "DNA",
            KeywordConstraint("DESC", "human"), NoConstraint(), k=4,
        )
        result = fresh_system.search(query, "fast-top-k-et")
        assert result.plan.estimated_cost is not None
        assert result.plan.calibration_key == "LeftTops:et-idgj"
        assert (
            fresh_system.calibrator.observation_count("LeftTops:et-idgj") == 1
        )

    def test_explain_forced_costs_do_not_feed_calibration(self, fresh_system):
        """A costed plan cached by EXPLAIN for a non-estimating method
        must not start contributing observations on later executions."""
        query = TopologyQuery(
            "Protein", "DNA",
            KeywordConstraint("DESC", "human"), NoConstraint(),
        )
        plan = fresh_system.explain(query, "fast-top")
        assert plan.costed and not plan.feeds_calibration
        fresh_system.search(query, "fast-top")  # reuses the costed plan
        assert fresh_system.calibrator.observation_count() == 0

    def test_calibration_can_be_disabled(self, fresh_system):
        fresh_system.calibration_enabled = False
        query = TopologyQuery(
            "Protein", "DNA",
            KeywordConstraint("DESC", "human"), NoConstraint(), k=4,
        )
        fresh_system.search(query, "fast-top-k-et")
        assert fresh_system.calibrator.observation_count() == 0

    def test_calibration_flips_a_mispriced_choice(self, fresh_system):
        """Force a large learned penalty onto the strategy the planner
        would otherwise pick; the next planning round must avoid it."""
        system = fresh_system
        query = TopologyQuery(
            "Protein", "DNA",
            KeywordConstraint("DESC", "human"), NoConstraint(), k=4,
        )
        plan = system.explain(query, "fast-top-k-opt")
        chosen = plan.strategy
        estimated = plan.estimated_cost
        # Report the chosen strategy as 1000x more expensive than priced.
        for _ in range(CostCalibrator.MIN_OBSERVATIONS):
            system.calibrator.record(
                plan.calibration_key, estimated, estimated * 1000.0
            )
        system.invalidate_plans()
        recalibrated = system.explain(query, "fast-top-k-opt")
        assert recalibrated.strategy != chosen
        # Answers are unchanged either way.
        assert (
            system.search(query, "fast-top-k-opt").tids
            == system.search(query, "full-top-k").tids
        )


class TestSqlQuoting:
    def test_shared_helper_escapes(self):
        from repro.relational.sql import sql_quote, tokenize

        assert sql_quote("O'Brien") == "'O''Brien'"
        assert sql_quote(None) == "NULL"
        assert sql_quote(True) == "TRUE"
        assert sql_quote(7) == "7"
        # The escaped literal round-trips through the tokenizer.
        tokens = tokenize(f"SELECT {sql_quote(chr(39) + 'start')}")
        assert tokens[1].value == "'start"

    def test_entity_pair_filter_quotes_values(self, tiny_system):
        method = tiny_system.method("fast-top")
        query = TopologyQuery(
            "Protein", "DNA",
            KeywordConstraint("DESC", "human"), NoConstraint(),
        )
        rendered = method._entity_pair_filter(query, "T")
        assert rendered == "T.ES1 = 'Protein' AND T.ES2 = 'DNA'"
