"""Path-chain SQL generation, ranking schemes, and weak-path rules."""

from __future__ import annotations

import pytest

from repro.core import RANKING_SCHEMES, Topology, WeakPathRules, score_column
from repro.core.pathsql import chain_fragments, multi_chain_fragments, orient_signature
from repro.core.ranking import compute_scores, domain_score, freq_score, rare_score
from repro.core.weak import BIOZON_WEAK_PATTERNS
from repro.errors import TopologyError
from repro.graph import canonical_key

from tests.conftest import build_graph


def topology_from_graph(g, tid=1, pair=("Protein", "DNA"), sigs=()):
    return Topology(
        tid=tid,
        key=canonical_key(g),
        entity_pair=pair,
        endpoint_indices=(0, 1),
        class_signatures=tuple(sigs),
    )


C2 = ("DNA", "uni_contains", "Unigene", "uni_encodes", "Protein")
C1 = ("DNA", "encodes", "Protein")


class TestOrientSignature:
    def test_forward(self):
        sig = ("Protein", "encodes", "DNA")
        assert orient_signature(sig, "Protein", "DNA") == sig

    def test_reversed(self):
        sig = ("DNA", "encodes", "Protein")
        assert orient_signature(sig, "Protein", "DNA") == sig[::-1]

    def test_mismatch(self):
        with pytest.raises(TopologyError):
            orient_signature(("DNA", "encodes", "Protein"), "Protein", "Unigene")


class TestChainFragments:
    def test_direct_edge(self):
        chain = chain_fragments(("Protein", "encodes", "DNA"), "P", "D", "c0")
        assert chain.from_items == ("Encodes c0r0",)
        assert "c0r0.PID = P.ID" in chain.conditions
        assert "D.ID = c0r0.DID" in chain.conditions

    def test_two_hop(self):
        chain = chain_fragments(
            ("Protein", "uni_encodes", "Unigene", "uni_contains", "DNA"),
            "P", "D", "c0",
        )
        assert chain.from_items == ("UniEncodes c0r0", "UniContains c0r1")
        assert "c0r1.UID = c0r0.UID" in chain.conditions

    def test_simplicity_conditions(self):
        # P-e-D-e-P-e-D revisits both types: expect <> conditions.
        sig = ("Protein", "encodes", "DNA", "encodes", "Protein", "encodes", "DNA")
        chain = chain_fragments(sig, "P", "D", "c0")
        neqs = [c for c in chain.conditions if "<>" in c]
        assert len(neqs) == 2  # P vs P, D vs D

    def test_unknown_relationship(self):
        with pytest.raises(TopologyError):
            chain_fragments(("Protein", "bogus", "DNA"), "P", "D", "c0")

    def test_wrong_types_for_relationship(self):
        with pytest.raises(TopologyError):
            chain_fragments(("Protein", "uni_contains", "DNA"), "P", "D", "c0")

    def test_multi_chain_unique_aliases(self):
        frags = multi_chain_fragments([C1, C2], "Protein", "DNA", "P", "D")
        aliases = [item.split()[1] for item in frags.from_items]
        assert len(aliases) == len(set(aliases))

    def test_multi_chain_executes(self, fig3_system):
        frags = multi_chain_fragments([C2], "Protein", "DNA", "P", "D")
        sql = (
            f"SELECT DISTINCT P.ID, D.ID FROM Protein P, DNA D, {frags.from_sql()} "
            f"WHERE {frags.where_sql()}"
        )
        rows = fig3_system.engine.execute(sql).rows
        # Pairs with a P-U-D path: (78,215) x2 routes, (34,215), (44,742) x2.
        assert set(rows) == {(78, 215), (34, 215), (44, 742)}


class TestRanking:
    def test_score_column_names(self):
        assert score_column("freq") == "SCORE_FREQ"
        assert score_column("rare") == "SCORE_RARE"
        with pytest.raises(ValueError):
            score_column("bogus")

    def test_freq_monotone(self):
        g = build_graph([("a", "Protein"), ("b", "DNA")], [("e", "a", "b", "encodes")])
        t1 = topology_from_graph(g, 1)
        t2 = topology_from_graph(g, 2)
        t1.frequency, t2.frequency = 10, 100
        assert freq_score(t2, 100) > freq_score(t1, 100)

    def test_rare_antimonotone(self):
        g = build_graph([("a", "Protein"), ("b", "DNA")], [("e", "a", "b", "encodes")])
        t1 = topology_from_graph(g, 1)
        t2 = topology_from_graph(g, 2)
        t1.frequency, t2.frequency = 10, 100
        assert rare_score(t1) > rare_score(t2)

    def test_domain_rewards_interactions_and_cycles(self):
        rules = WeakPathRules()
        plain = build_graph(
            [("a", "Protein"), ("b", "DNA")], [("e", "a", "b", "encodes")]
        )
        motif = build_graph(
            [("a", "Protein"), ("b", "Protein"), ("d", "DNA"), ("i", "Interaction")],
            [
                ("e1", "a", "d", "encodes"),
                ("e2", "b", "d", "encodes"),
                ("e3", "a", "i", "interacts_protein"),
                ("e4", "b", "i", "interacts_protein"),
            ],
        )
        t_plain = topology_from_graph(plain, 1, sigs=[C1])
        t_motif = topology_from_graph(motif, 2, sigs=[C1, C2])
        assert domain_score(t_motif, rules) > domain_score(t_plain, rules)

    def test_compute_scores_fills_all_schemes(self):
        g = build_graph([("a", "Protein"), ("b", "DNA")], [("e", "a", "b", "encodes")])
        tops = [topology_from_graph(g, i) for i in (1, 2, 3)]
        for i, t in enumerate(tops):
            t.frequency = i + 1
        compute_scores(tops)
        for t in tops:
            assert set(t.scores) == set(RANKING_SCHEMES)
            assert all(s >= 0 for s in t.scores.values())


class TestWeakRules:
    RULES = WeakPathRules()

    def test_pdp_in_long_path_is_weak(self):
        # P-D-P-U-D, the paper's canonical weak relationship.
        seq = ("Protein", "DNA", "Protein", "Unigene", "DNA")
        assert self.RULES.is_weak_sequence(seq)

    def test_short_paths_never_weak(self):
        assert not self.RULES.is_weak_sequence(("Protein", "DNA", "Protein"))

    def test_reverse_direction_detected(self):
        seq = ("DNA", "Unigene", "Protein", "DNA", "Protein")  # reversed PDPUD
        assert self.RULES.is_weak_sequence(seq)

    def test_strong_long_path_not_weak(self):
        seq = ("Protein", "Interaction", "Protein", "Interaction", "DNA")
        assert not self.RULES.is_weak_sequence(seq)

    def test_is_weak_class_uses_node_positions(self):
        sig = (
            "Protein", "encodes", "DNA", "encodes", "Protein",
            "uni_encodes", "Unigene", "uni_contains", "DNA",
        )
        assert self.RULES.is_weak_class(sig)

    def test_topology_weak_fraction(self):
        g = build_graph([("a", "Protein"), ("b", "DNA")], [("e", "a", "b", "encodes")])
        weak_sig = (
            "Protein", "encodes", "DNA", "encodes", "Protein",
            "uni_encodes", "Unigene", "uni_contains", "DNA",
        )
        t = topology_from_graph(g, 1, sigs=[C1, weak_sig])
        assert self.RULES.topology_weak_fraction(t) == pytest.approx(0.5)
        assert not self.RULES.is_weak_topology(t)

    def test_prune_weak_topologies(self):
        g = build_graph([("a", "Protein"), ("b", "DNA")], [("e", "a", "b", "encodes")])
        weak_sig = (
            "Protein", "encodes", "DNA", "encodes", "Protein",
            "uni_encodes", "Unigene", "uni_contains", "DNA",
        )
        strong = topology_from_graph(g, 1, sigs=[C1])
        weak = topology_from_graph(g, 2, sigs=[weak_sig])
        kept, pruned = self.RULES.prune_weak_topologies([strong, weak])
        assert kept == [strong]
        assert pruned == [weak]

    def test_table4_patterns_present(self):
        assert ("Protein", "DNA", "Protein") in BIOZON_WEAK_PATTERNS
        assert ("Family", "Pathway", "Family") in BIOZON_WEAK_PATTERNS
        assert len(BIOZON_WEAK_PATTERNS) == 9  # Table 4 has nine rows
