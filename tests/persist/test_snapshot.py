"""Snapshot persistence: round-trip fidelity and failure modes."""

from __future__ import annotations

import os
import sqlite3

import pytest

from repro.biozon import BiozonConfig, generate
from repro.core import (
    ALL_METHOD_NAMES,
    AttributeConstraint,
    KeywordConstraint,
    NoConstraint,
    TopologyQuery,
    TopologySearchSystem,
)
from repro.errors import TopologyError
from repro.persist import SCHEMA_VERSION, load_system, save_system, snapshot_info
from repro.persist.codec import check_endpoint

EXHAUSTIVE_METHODS = ("sql", "full-top", "fast-top")


def query_for(method: str, keyword: str = "kinase") -> TopologyQuery:
    """A method-appropriate Protein-DNA query (top-k methods need k)."""
    if method in EXHAUSTIVE_METHODS:
        return TopologyQuery(
            "Protein", "DNA", KeywordConstraint("DESC", keyword), NoConstraint()
        )
    return TopologyQuery(
        "Protein",
        "DNA",
        KeywordConstraint("DESC", keyword),
        AttributeConstraint("TYPE", "mRNA"),
        k=4,
        ranking="rare",
    )


@pytest.fixture(scope="module")
def snapshot_path(tmp_path_factory, tiny_system):
    path = tmp_path_factory.mktemp("persist") / "tiny.topo"
    save_system(tiny_system, path)
    return path


@pytest.fixture(scope="module")
def restored(snapshot_path):
    return load_system(snapshot_path)


class TestRoundTrip:
    @pytest.mark.parametrize("method", ALL_METHOD_NAMES)
    def test_all_nine_methods_answer_identically(
        self, tiny_system, restored, method
    ):
        query = query_for(method)
        before = tiny_system.search(query, method=method)
        after = restored.search(query, method=method)
        assert before.tids == after.tids
        assert before.scores == after.scores

    def test_store_state_is_preserved(self, tiny_system, restored):
        original = tiny_system.require_store()
        copy = restored.require_store()
        assert original.space_report() == copy.space_report()
        assert original.pruned_tids == copy.pruned_tids
        assert original.pair_classes == copy.pair_classes
        assert original.pair_tids == copy.pair_tids
        assert original.pair_entity_types == copy.pair_entity_types
        assert original.truncated_pairs == copy.truncated_pairs
        assert set(original.topologies) == set(copy.topologies)
        for tid, topology in original.topologies.items():
            other = copy.topologies[tid]
            assert topology.key == other.key
            assert topology.entity_pair == other.entity_pair
            assert topology.endpoint_indices == other.endpoint_indices
            assert topology.class_signatures == other.class_signatures
            assert topology.frequency == other.frequency
            assert topology.scores == other.scores

    def test_export_state_round_trips_exactly(self, tiny_system, restored):
        assert (
            tiny_system.require_store().export_state()
            == restored.require_store().export_state()
        )

    def test_build_metadata_restored(self, tiny_system, restored):
        assert restored.max_length == tiny_system.max_length
        assert restored.built_pairs == tiny_system.built_pairs
        assert restored.weak_rules == tiny_system.weak_rules
        assert restored.database.name == tiny_system.database.name

    def test_base_tables_and_indexes_restored(self, tiny_system, restored):
        assert sorted(restored.database.table_names()) == sorted(
            tiny_system.database.table_names()
        )
        for table in tiny_system.database.tables():
            other = restored.database.table(table.schema.name)
            assert other.rows == table.rows
            assert other.index_definitions() == table.index_definitions()

    def test_reversed_orientation_still_works(self, restored):
        query = TopologyQuery(
            "DNA", "Protein", NoConstraint(), KeywordConstraint("DESC", "kinase")
        )
        assert restored.orientation(query) is False
        assert restored.search(query, method="fast-top").tids

    def test_restored_system_can_rebuild(self, snapshot_path):
        system = load_system(snapshot_path)
        generation = system.build_generation
        report = system.build([("Protein", "DNA")], max_length=3)
        assert report.alltops.distinct_topologies > 0
        assert system.build_generation == generation + 1


class TestCalibrationRoundTrip:
    """Learned cost factors must survive a save/load cycle."""

    @pytest.fixture()
    def calibrated_system(self):
        ds = generate(BiozonConfig.tiny(seed=21))
        system = TopologySearchSystem(ds.database, ds.graph())
        system.build([("Protein", "DNA")], max_length=3)
        query = query_for("fast-top-k-et")
        for _ in range(4):  # past MIN_OBSERVATIONS, factor locked in
            system.search(query, "fast-top-k-et")
        assert system.calibrator.factor("LeftTops:et-idgj") != 1.0
        return system

    def test_factors_survive_snapshot(self, calibrated_system, tmp_path):
        path = tmp_path / "calibrated.topo"
        save_system(calibrated_system, path)
        restored = load_system(path)
        for key in ("LeftTops:et-idgj", "LeftTops:regular", "LeftTops:et-hdgj"):
            assert restored.calibrator.factor(key) == pytest.approx(
                calibrated_system.calibrator.factor(key)
            )
        assert (
            restored.calibrator.observation_count()
            == calibrated_system.calibrator.observation_count()
        )
        # The restored planner applies the learned factors.
        query = query_for("fast-top-k-opt")
        before = calibrated_system.explain(query, "fast-top-k-opt")
        after = restored.explain(query, "fast-top-k-opt")
        assert after.strategy == before.strategy
        assert after.calibrated_cost == pytest.approx(before.calibrated_cost)

    def test_snapshot_info_reports_calibration(self, calibrated_system, tmp_path):
        path = tmp_path / "calibrated.topo"
        save_system(calibrated_system, path)
        info = snapshot_info(path)
        assert info.calibration is not None
        assert info.calibration["strategies"]["LeftTops:et-idgj"]["count"] >= 4

    def test_pre_plan_layer_snapshot_loads_clean(self, calibrated_system, tmp_path):
        """A snapshot without a calibration entry (older writer) still
        restores — with a fresh calibrator."""
        path = tmp_path / "legacy.topo"
        save_system(calibrated_system, path)
        conn = sqlite3.connect(path)
        conn.execute("DELETE FROM meta WHERE key = 'calibration'")
        conn.commit()
        conn.close()
        restored = load_system(path)
        assert restored.calibrator.observation_count() == 0
        assert restored.calibrator.factor("LeftTops:et-idgj") == 1.0


class TestSnapshotFile:
    def test_snapshot_info(self, snapshot_path, tiny_system):
        info = snapshot_info(snapshot_path)
        store = tiny_system.require_store()
        assert info.schema_version == SCHEMA_VERSION
        assert info.max_length == 3
        assert info.built_pairs == tiny_system.built_pairs
        assert info.topologies == len(store.topologies)
        assert info.alltops_rows == len(store.alltops_rows)
        assert info.lefttops_rows == len(store.lefttops_rows)
        assert info.excptops_rows == len(store.excptops_rows)
        assert info.file_bytes == os.path.getsize(snapshot_path)

    def test_save_overwrites_atomically(self, tiny_system, tmp_path):
        path = tmp_path / "twice.topo"
        save_system(tiny_system, path)
        first = snapshot_info(path)
        save_system(tiny_system, path)
        assert snapshot_info(path).topologies == first.topologies
        assert not os.path.exists(str(path) + ".tmp")

    def test_save_creates_parent_directories(self, tiny_system, tmp_path):
        path = tmp_path / "deeply" / "nested" / "snap.topo"
        save_system(tiny_system, path)
        assert path.exists()


class TestFailureModes:
    def test_save_requires_built_system(self, tmp_path, tiny_dataset):
        system = TopologySearchSystem(tiny_dataset.database, tiny_dataset.graph())
        with pytest.raises(TopologyError, match="build"):
            save_system(system, tmp_path / "never.topo")

    def test_load_missing_file(self, tmp_path):
        with pytest.raises(TopologyError, match="does not exist"):
            load_system(tmp_path / "missing.topo")

    def test_load_non_sqlite_garbage(self, tmp_path):
        path = tmp_path / "garbage.topo"
        path.write_bytes(b"this is not a sqlite database, not even close")
        with pytest.raises(TopologyError, match="corrupt|not a topology"):
            load_system(path)

    def test_load_sqlite_but_not_a_snapshot(self, tmp_path):
        path = tmp_path / "other.db"
        conn = sqlite3.connect(path)
        conn.execute("CREATE TABLE unrelated (x INTEGER)")
        conn.commit()
        conn.close()
        with pytest.raises(TopologyError):
            load_system(path)

    def test_version_mismatch_is_explicit(self, snapshot_path, tmp_path):
        path = tmp_path / "future.topo"
        path.write_bytes(snapshot_path.read_bytes())
        conn = sqlite3.connect(path)
        conn.execute(
            "UPDATE meta SET value = ? WHERE key = 'schema_version'",
            (str(SCHEMA_VERSION + 1),),
        )
        conn.commit()
        conn.close()
        with pytest.raises(TopologyError, match="schema version"):
            load_system(path)
        with pytest.raises(TopologyError, match="schema version"):
            snapshot_info(path)

    def test_tampered_index_metadata_wrapped(self, snapshot_path, tmp_path):
        """Engine-level errors during restore (here: an index referencing
        a nonexistent column) must surface as TopologyError, not leak as
        SchemaError — the benchmarks' self-heal path catches only the
        former."""
        path = tmp_path / "tampered.topo"
        path.write_bytes(snapshot_path.read_bytes())
        conn = sqlite3.connect(path)
        conn.execute(
            "UPDATE base_tables SET hash_indexes ="
            " '[[\"bad\", [\"NO_SUCH_COL\"]]]' WHERE position = 0"
        )
        conn.commit()
        conn.close()
        with pytest.raises(TopologyError, match="malformed"):
            load_system(path)

    def test_corrupt_meta_json_wrapped_everywhere(self, snapshot_path, tmp_path):
        path = tmp_path / "badmeta.topo"
        path.write_bytes(snapshot_path.read_bytes())
        conn = sqlite3.connect(path)
        conn.execute(
            "UPDATE meta SET value = '{not json' WHERE key = 'built_pairs'"
        )
        conn.commit()
        conn.close()
        with pytest.raises(TopologyError):
            load_system(path)
        with pytest.raises(TopologyError):
            snapshot_info(path)

    def test_truncated_snapshot(self, snapshot_path, tmp_path):
        data = snapshot_path.read_bytes()
        path = tmp_path / "truncated.topo"
        path.write_bytes(data[: len(data) // 3])
        with pytest.raises(TopologyError):
            load_system(path)

    def test_endpoint_type_guard(self):
        assert check_endpoint(17) == 17
        assert check_endpoint("ACC-1") == "ACC-1"
        assert check_endpoint(None) is None
        with pytest.raises(TopologyError, match="endpoint"):
            check_endpoint(True)
        with pytest.raises(TopologyError, match="endpoint"):
            check_endpoint((1, 2))


class TestIncludeAlltops:
    def test_empty_alltops_table_round_trips(self, tmp_path):
        ds = generate(BiozonConfig.tiny(seed=11))
        system = TopologySearchSystem(ds.database, ds.graph())
        system.build([("Protein", "DNA")], max_length=3)
        store = system.require_store()
        # The Fast-Top-only deployment drops the AllTops table to save
        # space (Table 1); the snapshot must preserve that choice.
        store.materialize(system.database, include_alltops=False)
        path = tmp_path / "no-alltops.topo"
        save_system(system, path)
        restored = load_system(path)
        assert restored.database.table("AllTops").row_count == 0
        assert len(restored.require_store().alltops_rows) == len(store.alltops_rows)
        query = query_for("fast-top")
        assert (
            restored.search(query, method="fast-top").tids
            == system.search(query, method="fast-top").tids
        )
