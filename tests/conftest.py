"""Shared fixtures: the Figure-3 system and a small synthetic system.

Both are session-scoped — the offline build is the expensive part and
every consumer treats it as read-only.
"""

from __future__ import annotations

import pytest

from repro.biozon import BiozonConfig, build_figure3_database, generate
from repro.core import TopologySearchSystem
from repro.graph import LabeledGraph


def pytest_addoption(parser):
    parser.addoption(
        "--difftest-seeds",
        type=int,
        default=5,
        help=(
            "number of random seeds the differential row-vs-columnar "
            "tests sweep (tests/relational/test_columnar_equivalence.py); "
            "CI's nightly-style step raises this to 25+"
        ),
    )


@pytest.fixture(scope="session")
def difftest_seeds(request):
    """Seed list for the differential tests, sized from the CLI."""
    return list(range(request.config.getoption("--difftest-seeds")))


@pytest.fixture(scope="session")
def fig3_db():
    return build_figure3_database()


@pytest.fixture(scope="session")
def fig3_system(fig3_db):
    system = TopologySearchSystem(fig3_db)
    system.build([("Protein", "DNA")], max_length=3)
    return system


@pytest.fixture(scope="session")
def fig3_graph(fig3_system):
    return fig3_system.graph


@pytest.fixture(scope="session")
def tiny_dataset():
    return generate(BiozonConfig.tiny(seed=3))


@pytest.fixture(scope="session")
def tiny_system(tiny_dataset):
    system = TopologySearchSystem(tiny_dataset.database, tiny_dataset.graph())
    system.build([("Protein", "DNA"), ("Protein", "Interaction")], max_length=3)
    return system


def build_graph(nodes, edges) -> LabeledGraph:
    """Test helper: graph from [(id, type)] and [(eid, u, v, type)]."""
    g = LabeledGraph()
    for nid, ntype in nodes:
        g.add_node(nid, ntype)
    for eid, u, v, etype in edges:
        g.add_edge(eid, u, v, etype)
    return g
