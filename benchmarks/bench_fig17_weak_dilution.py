"""Figure 17: a weak relationship (P-D-P-U-D) interacting with the
Figure-16 motif splits the meaningful topology into several diluted
variants; weak-path pruning restores the clean picture."""

from __future__ import annotations

from repro.analysis import render_table
from repro.core import WeakPathRules
from repro.core.topologies import path_equivalence_classes, topologies_for_pair
from repro.graph import LabeledGraph

from benchmarks.common import emit


def figure17_graph() -> LabeledGraph:
    """The paper's Figure-17 scenario, built explicitly: protein p and
    DNA d related by (a) P-D-P-D, (b) P-I-P-D, and (c) the weak
    P-D-P-U-D path (two instances of it, via two unigenes)."""
    g = LabeledGraph()
    for nid, t in [
        ("p", "Protein"), ("d", "DNA"),
        ("p2", "Protein"), ("d2", "DNA"),
        ("i", "Interaction"),
        ("u1", "Unigene"), ("u2", "Unigene"),
    ]:
        g.add_node(nid, t)
    # (a) p -encodes- d2 -encodes- p2 -encodes- d
    g.add_edge("e1", "p", "d2", "encodes")
    g.add_edge("e2", "p2", "d2", "encodes")
    g.add_edge("e3", "p2", "d", "encodes")
    # (b) p -interacts- i -interacts- p2 (-encodes- d)
    g.add_edge("e4", "p", "i", "interacts_protein")
    g.add_edge("e5", "p2", "i", "interacts_protein")
    # (c) weak: p -encodes- d2 -encodes- p2 -uni_encodes- u -uni_contains- d
    g.add_edge("e6", "u1", "p2", "uni_encodes")
    g.add_edge("e7", "u1", "d", "uni_contains")
    g.add_edge("e8", "u2", "p2", "uni_encodes")
    g.add_edge("e9", "u2", "d", "uni_contains")
    return g


def test_fig17_weak_dilution(benchmark):
    g = figure17_graph()

    def compute():
        return (
            topologies_for_pair(g, "p", "d", 4),
            path_equivalence_classes(g, "p", "d", 4),
        )

    pair, classes = benchmark(compute)
    rules = WeakPathRules()
    weak = [sig for sig in classes if rules.is_weak_class(sig)]
    strong = [sig for sig in classes if not rules.is_weak_class(sig)]

    # Without weak paths, l-Top would union only the strong classes:
    strong_classes = {sig: classes[sig] for sig in strong}
    from repro.core.topologies import topologies_from_classes

    clean, _ = topologies_from_classes(strong_classes, "p", "d")

    rows = [
        ["path classes (l=4)", len(classes)],
        ["weak classes (Table 4 rules)", len(weak)],
        ["topologies with weak paths", len(pair.topology_keys)],
        ["topologies after weak-path pruning", len(clean)],
    ]
    emit(
        "fig17_weak_dilution",
        render_table(["quantity", "value"], rows,
                     title="Figure 17: weak relationship dilutes the motif"),
    )

    # The paper's effect: the weak class multiplies topology variants
    # (Figure 17 shows the motif split into four); pruning collapses
    # them back to fewer, cleaner topologies.
    assert weak, "the P-D-P-U-D class must be flagged weak"
    assert len(pair.topology_keys) > len(clean)
    assert len(pair.topology_keys) >= 2
