"""Figure 12: the ten most frequent 3-topologies relating Proteins and
DNAs have simple structures ("most of them are no more complicated than
a path")."""

from __future__ import annotations

from repro.analysis import render_table
from repro.core.model import signature_display

from benchmarks.common import built_system, emit


def test_fig12_top10_structures(benchmark):
    system = built_system()
    store = system.require_store()

    def top10():
        tops = store.topologies_for_entity_pair("Protein", "DNA")
        return sorted(tops, key=lambda t: -t.frequency)[:10]

    top = benchmark(top10)
    rows = []
    for rank, t in enumerate(top, start=1):
        rows.append(
            [
                rank,
                t.frequency,
                t.num_classes,
                t.num_nodes,
                t.num_edges,
                "path" if t.is_single_path else "graph",
                signature_display(t.class_signatures[0])[:60],
            ]
        )
    emit(
        "fig12_top10_topologies",
        render_table(
            ["rank", "freq", "classes", "nodes", "edges", "shape", "first class"],
            rows,
            title="Figure 12: top-10 most frequent 3-topologies (Protein-DNA)",
        ),
    )

    # Shape claims: frequencies non-increasing; the head is dominated by
    # structurally simple topologies (single-path or near-path).
    freqs = [t.frequency for t in top]
    assert freqs == sorted(freqs, reverse=True)
    simple_head = [t for t in top[:5] if t.num_classes <= 2]
    assert len(simple_head) >= 3
    assert top[0].is_single_path
