"""Table 3: 4-topologies — space overhead and Fast-Top-k-Opt query
performance at path length 4, where weak relationships appear.

Paper shape: query performance and space overhead remain comparable to
l=3, but the offline phase gets markedly more expensive and weak paths
(P-D-P-U-D style) show up with large instance counts."""

from __future__ import annotations

from repro.analysis import render_table
from repro.biozon import INTERACTION_KEYWORDS, PROTEIN_KEYWORDS
from repro.core import KeywordConstraint, TopologyQuery, TopologySearchSystem, WeakPathRules

from benchmarks.common import dataset, emit


def test_table3_l4_space_and_queries(benchmark):
    ds = dataset()

    def build_l4():
        system = TopologySearchSystem(ds.database, ds.graph())
        system.build(
            [("Protein", "Interaction")],
            max_length=4,
            combination_cap=512,
            per_pair_path_limit=256,
        )
        return system

    system = benchmark.pedantic(build_l4, iterations=1, rounds=1)
    store = system.require_store()
    space = store.space_report()

    times = []
    for p_idx, p_label in enumerate(("selective", "medium", "unselective")):
        query = TopologyQuery(
            "Protein",
            "Interaction",
            KeywordConstraint("DESC", PROTEIN_KEYWORDS[p_idx][0]),
            KeywordConstraint("DESC", INTERACTION_KEYWORDS[1][0]),
            max_length=4,
            k=10,
            ranking="freq",
        )
        result = system.search(query, "fast-top-k-opt")
        reference = system.search(query, "full-top-k")
        assert result.tids == reference.tids
        plan = result.plan
        costs = " ".join(
            f"{a.strategy}={a.calibrated_cost:.0f}" for a in plan.alternatives
        )
        times.append(
            [p_label, f"{result.elapsed_seconds * 1000:.1f}", f"{plan.strategy} ({costs})"]
        )

    rules = WeakPathRules()
    weak_classes = set()
    for topology in store.topologies.values():
        for sig in topology.class_signatures:
            if rules.is_weak_class(sig):
                weak_classes.add(sig)

    space_rows = [[k, v] for k, v in space.items()]
    space_rows.append(["weak path classes observed", len(weak_classes)])
    space_rows.append(["truncated pairs", store.truncated_pairs])
    emit(
        "table3_l4",
        render_table(["quantity", "value"], space_rows,
                     title="Table 3: 4-topology space overhead")
        + "\n\n"
        + render_table(
            ["protein selectivity", "fast-top-k-opt ms", "plan"],
            times,
            title="Table 3: 4-topology query performance",
        ),
    )
    # Weak relationships must actually appear at l=4 on this data.
    assert weak_classes
    assert space["AllTops"] >= space["LeftTops"]
