"""Table 2: performance of all nine strategies across predicate
selectivities (selective/medium/unselective on Protein and Interaction)
and the three ranking schemes.

Shape claims asserted (the paper's findings, Section 6.2.2):

* the SQL method is slower than every precomputed method by a large
  factor,
* the ET methods do the least engine work for unselective predicates
  with small k,
* the Opt methods track (approximately) the better of their regular and
  ET variants.
"""

from __future__ import annotations

import time
from typing import Dict, List, Tuple

from repro.analysis import render_table
from repro.biozon import INTERACTION_KEYWORDS, PROTEIN_KEYWORDS
from repro.core import KeywordConstraint, TopologyQuery

from benchmarks.common import built_system, emit

SELECTIVITY_LABELS = ("selective", "medium", "unselective")
RANKINGS = ("freq", "domain", "rare")
FAST_METHODS = (
    "full-top",
    "fast-top",
    "full-top-k",
    "fast-top-k",
    "full-top-k-et",
    "fast-top-k-et",
    "full-top-k-opt",
    "fast-top-k-opt",
)


def _query(p_idx: int, i_idx: int, ranking: str, k=10) -> TopologyQuery:
    p_kw, _ = PROTEIN_KEYWORDS[p_idx]
    i_kw, _ = INTERACTION_KEYWORDS[i_idx]
    return TopologyQuery(
        "Protein",
        "Interaction",
        KeywordConstraint("DESC", p_kw),
        KeywordConstraint("DESC", i_kw),
        k=k,
        ranking=ranking,
    )


def test_table2_full_sweep(benchmark):
    system = built_system()
    cells: Dict[Tuple[str, str, str, str], Tuple[float, int]] = {}

    def sweep():
        for p_idx, p_label in enumerate(SELECTIVITY_LABELS):
            for i_idx, i_label in enumerate(SELECTIVITY_LABELS):
                for ranking in RANKINGS:
                    reference = None
                    for method in FAST_METHODS:
                        query = _query(p_idx, i_idx, ranking)
                        if method in ("full-top", "fast-top"):
                            query = TopologyQuery(
                                query.entity1, query.entity2,
                                query.constraint1, query.constraint2,
                            )
                        result = system.search(query, method)
                        cells[(p_label, i_label, ranking, method)] = (
                            result.elapsed_seconds * 1000,
                            result.work["rows_scanned"]
                            + result.work["index_probes"],
                        )
                        if method == "full-top-k":
                            reference = result.tids
                        elif query.k is not None and reference is not None:
                            assert result.tids == reference, (method, p_label, i_label)
        return cells

    benchmark.pedantic(sweep, iterations=1, rounds=1)

    rows: List[List[object]] = []
    for p_label in SELECTIVITY_LABELS:
        for i_label in SELECTIVITY_LABELS:
            for method in FAST_METHODS:
                per_ranking = [
                    f"{cells[(p_label, i_label, r, method)][0]:.1f}" for r in RANKINGS
                ]
                rows.append([p_label, i_label, method] + per_ranking)
    emit(
        "table2_query_performance",
        render_table(
            ["protein", "interaction", "method", "freq ms", "domain ms", "rare ms"],
            rows,
            title="Table 2: query times (ms) - 8 precomputed strategies, top-10",
        ),
    )

    # Shape claim: for unselective predicates the ET variant touches
    # fewer rows+probes than the regular top-k variant.
    et_work = cells[("unselective", "unselective", "freq", "fast-top-k-et")][1]
    reg_work = cells[("unselective", "unselective", "freq", "fast-top-k")][1]
    assert et_work <= reg_work


def test_table2_sql_method_is_slowest(benchmark):
    """One Table-2 cell for the SQL method (selective/selective): it is
    orders of magnitude slower than Full-Top on the same query."""
    system = built_system()
    query = TopologyQuery(
        "Protein",
        "Interaction",
        KeywordConstraint("DESC", PROTEIN_KEYWORDS[0][0]),
        KeywordConstraint("DESC", INTERACTION_KEYWORDS[0][0]),
    )
    full = system.search(query, "full-top")

    result_holder = {}

    def run_sql():
        result_holder["result"] = system.search(query, "sql")

    benchmark.pedantic(run_sql, iterations=1, rounds=1)
    sql_result = result_holder["result"]
    assert sql_result.tids == full.tids
    slowdown = sql_result.elapsed_seconds / max(full.elapsed_seconds, 1e-9)
    emit(
        "table2_sql_method",
        render_table(
            ["method", "time ms"],
            [
                ["sql", f"{sql_result.elapsed_seconds * 1000:.0f}"],
                ["full-top", f"{full.elapsed_seconds * 1000:.1f}"],
                ["slowdown", f"{slowdown:.0f}x"],
            ],
            title="Table 2 (SQL row): SQL method vs Full-Top, selective/selective",
        ),
    )
    assert slowdown > 10
