"""Row vs columnar executor: per-operator microbenchmarks + e2e floor.

The columnar rewrite of ``repro.relational`` keeps the row-at-a-time
Volcano engine alive as the differential-testing reference, which makes
it the natural benchmark baseline: the same operator trees and the same
SQL run under ``row_mode()`` and ``columnar_mode()``, so every ratio
below is apples-to-apples on identical plans.

Two sections land in ``BENCH_columnar.json``:

* ``columnar_operators`` — isolated operator drains (scan, filter,
  project, hash join, sort/top-n, distinct) timed in both modes.
* ``columnar_end_to_end`` — a mixed SQL workload through ``Engine``
  (parse + plan + execute in row mode vs plan-cache + batch execution
  in columnar mode) with the headline queries/sec ratio.

The PR's acceptance floor — **>= 10x single-core end-to-end
throughput** — is asserted at realistic scale only (small/medium).  At
``REPRO_BENCH_SCALE=tiny`` (CI smoke) tables are a few hundred rows,
fixed per-query overhead dominates, and the ratio is meaningless; the
harness still runs end to end so CI catches breakage, it just skips the
floor assertion.
"""

from __future__ import annotations

import random
import time
from typing import Callable, Dict, List

import pytest

from benchmarks.common import bench_scale, emit, emit_json
from repro.relational import (
    HAVE_NUMPY,
    Column,
    Database,
    DataType,
    Engine,
    TableSchema,
    columnar_mode,
    row_mode,
)
from repro.relational.expressions import (
    And,
    Arith,
    ColumnRef,
    Comparison,
    Contains,
    Literal,
)
from repro.relational.operators import (
    Distinct,
    Filter,
    HashJoin,
    Project,
    SeqScan,
    Sort,
    TopN,
)

FACT_ROWS = {"tiny": 1_000, "small": 40_000, "medium": 150_000}[bench_scale()]
DIM_ROWS = max(FACT_ROWS // 40, 10)
WORDS = (
    "kinase", "membrane", "nuclear", "receptor", "conserved",
    "domain", "signal", "transport", "repair", "ribosomal",
)
E2E_FLOOR = 10.0


@pytest.fixture(scope="module")
def db() -> Database:
    rng = random.Random(20_070_407)
    database = Database("columnar-bench")
    fact = database.create_table(
        TableSchema(
            "fact",
            [
                Column("ID", DataType.INT, True),
                Column("GRP", DataType.INT, True),
                Column("VAL", DataType.FLOAT, True),
                Column("FLAG", DataType.BOOL, True),
                Column("NOTE", DataType.TEXT, True),
            ],
            primary_key="ID",
        )
    )
    for i in range(FACT_ROWS):
        fact.insert(
            [
                i,
                rng.randrange(DIM_ROWS),
                rng.uniform(-1000.0, 1000.0),
                rng.random() < 0.5,
                " ".join(rng.choice(WORDS) for _ in range(3)),
            ]
        )
    dim = database.create_table(
        TableSchema(
            "dim",
            [
                Column("ID", DataType.INT, True),
                Column("WEIGHT", DataType.INT, True),
            ],
            primary_key="ID",
        )
    )
    for i in range(DIM_ROWS):
        dim.insert([i, rng.randrange(100)])
    return database


def _best_of(fn: Callable[[], object], repeat: int = 3) -> float:
    best = float("inf")
    for _ in range(repeat):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _operator_trees(db: Database) -> Dict[str, Callable[[], object]]:
    """Fresh-tree builders for each microbenchmarked operator.

    Each builder returns a new operator tree (trees are single-use), and
    each tree is dominated by the operator under test.
    """
    fact = db.table("fact")
    dim = db.table("dim")
    grp = ColumnRef("f", "GRP")
    val = ColumnRef("f", "VAL")

    def scan():
        return SeqScan(fact, "f", db.stats)

    def filter_():
        pred = And(
            [
                Comparison(">", val, Literal(0.0)),
                Comparison("<", grp, Literal(DIM_ROWS // 2)),
            ]
        )
        return Filter(scan(), pred)

    def project():
        return Project(
            scan(),
            [Arith("+", Arith("*", val, Literal(2.0)), Literal(1.0)), grp],
            ["scaled", "grp"],
        )

    def contains():
        return Filter(scan(), Contains(ColumnRef("f", "NOTE"), Literal("kinase")))

    def hash_join():
        return HashJoin(scan(), SeqScan(dim, "d", db.stats), [1], [0])

    def sort():
        return Sort(scan(), [(val, False)])

    def topn():
        return TopN(scan(), [(val, True)], 10)

    def distinct():
        return Distinct(Project(scan(), [grp], ["grp"]))

    return {
        "seq_scan": scan,
        "filter": filter_,
        "project": project,
        "contains_filter": contains,
        "hash_join": hash_join,
        "sort": sort,
        "top_n": topn,
        "distinct": distinct,
    }


def test_operator_microbenchmarks(db: Database) -> None:
    results: Dict[str, Dict[str, float]] = {}
    lines: List[str] = [
        f"rows={FACT_ROWS} numpy={HAVE_NUMPY} scale={bench_scale()}",
        f"{'operator':<16} {'row ms':>9} {'columnar ms':>12} {'speedup':>8}",
    ]
    for name, build in _operator_trees(db).items():
        with row_mode():
            row_s = _best_of(lambda: build().run())
        with columnar_mode():
            col_s = _best_of(lambda: build().run())
        speedup = row_s / col_s if col_s > 0 else float("inf")
        results[name] = {
            "row_ms": round(row_s * 1e3, 3),
            "columnar_ms": round(col_s * 1e3, 3),
            "speedup": round(speedup, 2),
        }
        lines.append(
            f"{name:<16} {row_s * 1e3:>9.2f} {col_s * 1e3:>12.2f} "
            f"{speedup:>7.1f}x"
        )
        # Sanity, not a perf gate: both drains agree on cardinality.
        with row_mode():
            n_row = len(build().run())
        with columnar_mode():
            n_col = len(build().run())
        assert n_row == n_col, f"{name}: drains disagree ({n_row} vs {n_col})"
    emit("columnar_operators", "\n".join(lines))
    emit_json(
        "columnar",
        {
            "columnar_operators": {
                "rows": FACT_ROWS,
                "numpy": HAVE_NUMPY,
                "operators": results,
            }
        },
    )


E2E_QUERIES = [
    (
        "SELECT fact.id, fact.val FROM fact "
        "WHERE fact.val > 0 AND fact.grp < :g "
        "ORDER BY fact.val DESC FETCH FIRST 10 ROWS ONLY",
        {"g": DIM_ROWS // 2},
    ),
    (
        "SELECT fact.id, dim.weight FROM fact, dim "
        "WHERE fact.grp = dim.id AND fact.flag = TRUE AND dim.weight < 30",
        None,
    ),
    (
        "SELECT fact.grp FROM fact WHERE CONTAINS(fact.note, 'kinase') "
        "FETCH FIRST 50 ROWS ONLY",
        None,
    ),
    ("SELECT DISTINCT fact.grp FROM fact WHERE fact.val > :lo", {"lo": -500.0}),
    (
        "SELECT fact.id FROM fact "
        "WHERE fact.val * 2.0 + fact.grp > 900 AND NOT fact.flag",
        None,
    ),
]


def test_end_to_end_throughput(db: Database) -> None:
    engine = Engine(db)
    rounds = {"tiny": 3, "small": 5, "medium": 3}[bench_scale()]

    def workload() -> None:
        for sql, params in E2E_QUERIES:
            engine.execute(sql, params)

    with row_mode():
        workload()  # warm stats catalog etc. outside the timed region
        row_s = _best_of(workload, rounds)
    with columnar_mode():
        workload()  # warm the plan cache: steady-state serving is the claim
        col_s = _best_of(workload, rounds)

    n = len(E2E_QUERIES)
    row_qps = n / row_s
    col_qps = n / col_s
    speedup = row_s / col_s
    emit(
        "columnar_end_to_end",
        (
            f"rows={FACT_ROWS} numpy={HAVE_NUMPY} scale={bench_scale()}\n"
            f"row mode:      {row_qps:>10.1f} queries/s\n"
            f"columnar mode: {col_qps:>10.1f} queries/s\n"
            f"speedup:       {speedup:>10.1f}x (floor {E2E_FLOOR:.0f}x at "
            f"small/medium scale)"
        ),
    )
    emit_json(
        "columnar",
        {
            "columnar_end_to_end": {
                "rows": FACT_ROWS,
                "numpy": HAVE_NUMPY,
                "queries": n,
                "row_qps": round(row_qps, 1),
                "columnar_qps": round(col_qps, 1),
                "speedup": round(speedup, 2),
                "floor": E2E_FLOOR,
                "floor_enforced": bench_scale() != "tiny",
            }
        },
    )
    if bench_scale() == "tiny":
        pytest.skip(
            "tiny scale: fixed per-query overhead dominates, the 10x floor "
            "is only meaningful at small/medium scale"
        )
    assert speedup >= E2E_FLOOR, (
        f"end-to-end columnar speedup {speedup:.1f}x is below the "
        f"{E2E_FLOOR:.0f}x floor (row {row_qps:.1f} q/s vs columnar "
        f"{col_qps:.1f} q/s at {FACT_ROWS} rows)"
    )
