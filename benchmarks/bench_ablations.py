"""Ablations of the design choices DESIGN.md calls out:

* canonical forms vs pairwise-isomorphism grouping for equivalence
  classes (identity must agree; canonical grouping scales better),
* staged top-k (SQL4 then SQL5 only when needed) vs always checking
  every pruned topology.
"""

from __future__ import annotations

from repro.analysis import render_table
from repro.biozon import PROTEIN_KEYWORDS
from repro.core import KeywordConstraint, NoConstraint, TopologyQuery
from repro.core.methods.topk import FastTopKMethod
from repro.graph import are_isomorphic, canonical_form

from benchmarks.common import built_system, emit


def _union_graphs(system, limit=60):
    store = system.require_store()
    graphs = []
    for t in list(store.topologies.values())[:limit]:
        graphs.append(t.graph())
    return graphs


def test_ablation_canonical_vs_pairwise(benchmark):
    """Group topology representative graphs by isomorphism: canonical
    keys (dict build) vs pairwise VF2-style comparisons."""
    system = built_system()
    graphs = _union_graphs(system)

    def canonical_grouping():
        groups = {}
        for g in graphs:
            groups.setdefault(canonical_form(g), []).append(g)
        return groups

    def pairwise_grouping():
        groups = []
        for g in graphs:
            for group in groups:
                if are_isomorphic(group[0], g):
                    group.append(g)
                    break
            else:
                groups.append([g])
        return groups

    canon = benchmark(canonical_grouping)
    pairwise = pairwise_grouping()
    assert len(canon) == len(pairwise)
    emit(
        "ablation_canonical",
        render_table(
            ["strategy", "groups", "comparisons"],
            [
                ["canonical keys", len(canon), len(graphs)],
                [
                    "pairwise isomorphism",
                    len(pairwise),
                    sum(range(len(pairwise))) * 2,
                ],
            ],
            title="Ablation: canonical forms vs pairwise isomorphism grouping",
        ),
    )


def test_ablation_staged_topk(benchmark):
    """Staged Fast-Top-k skips SQL5 checks that cannot reach the top k;
    the ablated variant checks every pruned topology."""
    system = built_system()
    store = system.require_store()
    method = FastTopKMethod(system)
    query = TopologyQuery(
        "Protein", "DNA",
        KeywordConstraint("DESC", PROTEIN_KEYWORDS[2][0]),
        NoConstraint(),
        k=5, ranking="rare",
    )

    def staged():
        return method.run(query)

    def unstaged():
        stats = system.database.stats
        before = stats.subqueries_run
        result = system.engine.execute(method.unpruned_sql(query))
        ranked = [(row[0], row[1]) for row in result.rows]
        checks = 0
        for topology in method._fast_top.pruned_topologies(query):
            checks += 1
            hit = system.engine.execute(method.pruned_check_sql(query, topology))
            if hit.rows:
                ranked.append((topology.tid, topology.scores[query.ranking]))
        ranked.sort(key=lambda ts: (-ts[1], -ts[0]))
        return [t for t, _ in ranked[: query.k]], checks

    staged_result = benchmark(staged)
    unstaged_tids, unstaged_checks = unstaged()
    assert staged_result.tids == unstaged_tids

    pruned_total = len(
        [
            t
            for t in store.pruned_tids
            if store.topology(t).entity_pair == ("Protein", "DNA")
        ]
    )
    emit(
        "ablation_staged_topk",
        render_table(
            ["variant", "pruned checks issued"],
            [
                ["staged (SQL4 then SQL5 as needed)", f"<= {pruned_total}"],
                ["unstaged (always check all)", unstaged_checks],
            ],
            title="Ablation: staged top-k evaluation (Section 5.1)",
        ),
    )
