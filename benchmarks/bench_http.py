"""HTTP serving benchmark: SLO percentiles at the wire, shed under burst,
rebuild under live socket traffic.

The full stack is measured — stdlib socket server, ASGI app, admission
gate, JSON wire schemas, engine — with real ``http.client`` keep-alive
connections, not the in-process test client:

* **Closed loop** — N client threads each keep one connection saturated
  (a new request the instant the previous response lands).  Reported:
  throughput and p50/p95/p99 latency for a cache-mixed workload.  Every
  response must be a 200.
* **Open loop** — requests arrive on a fixed schedule regardless of
  completions, against a deliberately tiny admission gate.  Reported:
  served vs shed.  The gate must shed (503 + Retry-After) rather than
  queue without bound; nothing may fail any other way.
* **Rebuild under load** — readers hammer ``POST /query`` over sockets
  while ``POST /rebuild`` hot-swaps generations with provably different
  answers under them.  Zero failed responses and zero torn results are
  *enforced*, not just reported.

Machine-readable results land in ``BENCH_http.json`` at the repo root.
"""

from __future__ import annotations

import http.client
import json
import math
import threading
import time
from typing import Dict, List, Optional, Tuple

from repro.analysis import render_table
from repro.service import TopologyServer
from repro.service.http import HttpServerThread, create_app

from benchmarks.common import emit, emit_json, private_system

CLOSED_CLIENTS = 4
CLOSED_REQUESTS_PER_CLIENT = 40
OPEN_TARGET_QPS = 40.0
OPEN_REQUESTS = 80
REBUILD_READERS = 8
REBUILD_ROUNDS = 2

KEYWORDS = ["kinase", "binding", "human", "receptor", "membrane", "conserved"]


def _wire_query(keyword: str, k: int) -> dict:
    return {
        "entity1": "Protein",
        "entity2": "DNA",
        "constraint1": {"kind": "keyword", "column": "DESC", "keyword": keyword},
        "constraint2": {"kind": "none"},
        "k": k,
        "ranking": ("freq", "rare")[k % 2],
    }


WORKLOAD = [_wire_query(kw, 2 + i % 4) for i, kw in enumerate(KEYWORDS)]


def _fresh_server() -> TopologyServer:
    server = TopologyServer(private_system())
    server.system.calibration_enabled = False  # pin plan choices
    server.system.restore_calibration(None)
    return server


class _Client:
    """One keep-alive HTTP connection with request timing."""

    def __init__(self, base_url: str, timeout: float = 60.0) -> None:
        host = base_url.split("//", 1)[1]
        self.conn = http.client.HTTPConnection(host, timeout=timeout)

    def post(self, path: str, payload: dict) -> Tuple[int, bytes, float]:
        body = json.dumps(payload).encode()
        start = time.perf_counter()
        self.conn.request(
            "POST", path, body=body, headers={"Content-Type": "application/json"}
        )
        response = self.conn.getresponse()
        data = response.read()  # http.client de-chunks transparently
        return response.status, data, time.perf_counter() - start

    def close(self) -> None:
        self.conn.close()


def _percentile(ordered: List[float], q: float) -> float:
    if not ordered:
        return 0.0
    rank = math.ceil(q / 100.0 * len(ordered))
    return ordered[min(len(ordered), max(1, rank)) - 1]


def test_closed_loop_slo_percentiles(benchmark):
    """Saturating clients: throughput + latency percentiles, all-200."""
    with _fresh_server() as server:
        with create_app(server, max_concurrency=CLOSED_CLIENTS + 2) as app:
            with HttpServerThread(app) as base_url:
                latencies: List[float] = []
                statuses: List[int] = []
                lock = threading.Lock()
                barrier = threading.Barrier(CLOSED_CLIENTS + 1)

                def client_thread(offset: int) -> None:
                    client = _Client(base_url)
                    try:
                        barrier.wait()
                        local = []
                        for i in range(CLOSED_REQUESTS_PER_CLIENT):
                            body = WORKLOAD[(offset + i) % len(WORKLOAD)]
                            status, _, seconds = client.post("/query", body)
                            local.append((status, seconds))
                        with lock:
                            for status, seconds in local:
                                statuses.append(status)
                                latencies.append(seconds)
                    finally:
                        client.close()

                def run() -> float:
                    threads = [
                        threading.Thread(target=client_thread, args=(n,))
                        for n in range(CLOSED_CLIENTS)
                    ]
                    for thread in threads:
                        thread.start()
                    barrier.wait()
                    start = time.perf_counter()
                    for thread in threads:
                        thread.join()
                    return time.perf_counter() - start

                wall = benchmark.pedantic(run, iterations=1, rounds=1)

    total = CLOSED_CLIENTS * CLOSED_REQUESTS_PER_CLIENT
    ordered = sorted(latencies)
    p50, p95, p99 = (_percentile(ordered, q) for q in (50, 95, 99))
    qps = total / max(wall, 1e-9)

    emit(
        "http_closed_loop",
        render_table(
            ["metric", "value"],
            [
                ["clients (closed loop)", str(CLOSED_CLIENTS)],
                ["requests", str(total)],
                ["throughput", f"{qps:.1f} req/s"],
                ["p50 latency", f"{p50 * 1000:.2f} ms"],
                ["p95 latency", f"{p95 * 1000:.2f} ms"],
                ["p99 latency", f"{p99 * 1000:.2f} ms"],
                ["non-200 responses", str(sum(1 for s in statuses if s != 200))],
            ],
            title="Closed-loop HTTP serving (real sockets, keep-alive)",
        ),
    )
    emit_json(
        "http",
        {
            "closed_loop": {
                "clients": CLOSED_CLIENTS,
                "requests": total,
                "wall_seconds": wall,
                "throughput_rps": qps,
                "p50_seconds": p50,
                "p95_seconds": p95,
                "p99_seconds": p99,
                "non_200": sum(1 for s in statuses if s != 200),
            }
        },
    )
    assert statuses == [200] * total
    assert p50 <= p95 <= p99


def test_open_loop_sheds_instead_of_queueing():
    """Fixed-rate arrivals against a tiny gate: shed cleanly, never fail."""
    with _fresh_server() as server:
        with create_app(
            server, max_concurrency=2, max_queue=2, queue_timeout=0.2
        ) as app:
            with HttpServerThread(app) as base_url:
                outcomes: List[Tuple[int, Optional[str]]] = []
                lock = threading.Lock()
                interval = 1.0 / OPEN_TARGET_QPS
                epoch = time.perf_counter() + 0.2  # shared schedule origin

                def one_shot(n: int) -> None:
                    client = _Client(base_url)
                    try:
                        delay = epoch + n * interval - time.perf_counter()
                        if delay > 0:
                            time.sleep(delay)
                        status, data, _ = client.post(
                            "/query", WORKLOAD[n % len(WORKLOAD)]
                        )
                        code = None
                        if status != 200:
                            code = json.loads(data)["error"]["code"]
                        with lock:
                            outcomes.append((status, code))
                    finally:
                        client.close()

                threads = [
                    threading.Thread(target=one_shot, args=(n,))
                    for n in range(OPEN_REQUESTS)
                ]
                for thread in threads:
                    thread.start()
                for thread in threads:
                    thread.join()

    served = sum(1 for status, _ in outcomes if status == 200)
    shed = sum(1 for status, _ in outcomes if status == 503)
    other = [(s, c) for s, c in outcomes if s not in (200, 503)]
    emit(
        "http_open_loop",
        render_table(
            ["metric", "value"],
            [
                ["target arrival rate", f"{OPEN_TARGET_QPS:.0f} req/s"],
                ["requests", str(OPEN_REQUESTS)],
                ["served (200)", str(served)],
                ["shed (503)", str(shed)],
                ["other", str(len(other))],
            ],
            title="Open-loop arrivals vs a 2-slot/2-queue admission gate",
        ),
    )
    emit_json(
        "http",
        {
            "open_loop": {
                "target_rps": OPEN_TARGET_QPS,
                "requests": OPEN_REQUESTS,
                "served": served,
                "shed": shed,
                "other": len(other),
            }
        },
    )
    assert other == []  # every non-200 is a structured 503 shed
    assert served + shed == OPEN_REQUESTS
    assert served > 0


def test_rebuild_under_http_load_zero_torn():
    """Generation hot-swaps under live socket traffic: zero torn, zero
    failed."""
    from repro.core import KeywordConstraint, NoConstraint, TopologyQuery

    configs = [{"per_pair_path_limit": 1}, {"per_pair_path_limit": None}]

    def oracle_query(body: dict) -> TopologyQuery:
        return TopologyQuery(
            body["entity1"],
            body["entity2"],
            KeywordConstraint("DESC", body["constraint1"]["keyword"]),
            NoConstraint(),
            k=body["k"],
            ranking=body["ranking"],
        )

    with _fresh_server() as server:
        oracles: Dict[int, Dict[int, List[int]]] = {}

        def snapshot_oracle() -> None:
            oracles[server.generation] = {
                i: list(server.system.search(oracle_query(body)).tids)
                for i, body in enumerate(WORKLOAD)
            }

        snapshot_oracle()
        with create_app(server, max_concurrency=REBUILD_READERS + 2, max_queue=64) as app:
            with HttpServerThread(app) as base_url:
                stop = threading.Event()
                observed: List[Tuple[int, int, List[int]]] = []
                failed: List[Tuple[int, bytes]] = []
                lock = threading.Lock()
                barrier = threading.Barrier(REBUILD_READERS + 1)

                def reader(offset: int) -> None:
                    client = _Client(base_url)
                    try:
                        barrier.wait()
                        i = 0
                        local_ok, local_bad = [], []
                        while not stop.is_set() or i == 0:
                            index = (offset + i) % len(WORKLOAD)
                            status, data, _ = client.post("/query", WORKLOAD[index])
                            if status != 200:
                                local_bad.append((status, data))
                            else:
                                payload = json.loads(data)
                                local_ok.append(
                                    (payload["generation"], index, payload["tids"])
                                )
                            i += 1
                        with lock:
                            observed.extend(local_ok)
                            failed.extend(local_bad)
                    finally:
                        client.close()

                threads = [
                    threading.Thread(target=reader, args=(n,))
                    for n in range(REBUILD_READERS)
                ]
                for thread in threads:
                    thread.start()
                rebuild_client = _Client(base_url, timeout=600.0)
                rebuild_seconds = []
                try:
                    barrier.wait()
                    for round_number in range(REBUILD_ROUNDS):
                        status, data, seconds = rebuild_client.post(
                            "/rebuild", configs[round_number % 2]
                        )
                        assert status == 200, data
                        rebuild_seconds.append(seconds)
                        snapshot_oracle()
                finally:
                    stop.set()
                    for thread in threads:
                        thread.join(timeout=300)
                    rebuild_client.close()

    torn = sum(
        1
        for generation, index, tids in observed
        if oracles[generation][index] != tids
    )
    per_generation = {
        generation: sum(1 for g, _, _ in observed if g == generation)
        for generation in sorted(oracles)
    }
    emit(
        "http_rebuild_under_load",
        render_table(
            ["metric", "value"],
            [
                ["reader threads", str(REBUILD_READERS)],
                ["responses observed", str(len(observed))],
                ["failed responses", str(len(failed))],
                ["torn (mixed-generation) results", str(torn)],
                ["generations served", str(len(per_generation))],
                ["per-generation counts", str(per_generation)],
                ["mean rebuild wall", f"{sum(rebuild_seconds) / len(rebuild_seconds):.2f} s"],
            ],
            title="Hot rebuild under live HTTP load",
        ),
    )
    emit_json(
        "http",
        {
            "rebuild_under_load": {
                "reader_threads": REBUILD_READERS,
                "responses_observed": len(observed),
                "failed_responses": len(failed),
                "torn_results": torn,
                "generations": len(per_generation),
                "per_generation_counts": {
                    str(k): v for k, v in per_generation.items()
                },
                "mean_rebuild_seconds": sum(rebuild_seconds) / len(rebuild_seconds),
            }
        },
    )
    assert oracles[1] != oracles[2], "configs must disagree for a real check"
    assert failed == []
    assert torn == 0
    assert len(observed) >= REBUILD_READERS
