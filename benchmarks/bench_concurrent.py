"""Concurrent serving benchmark: throughput scaling + rebuild under load.

Two claims about :class:`~repro.service.TopologyServer` are measured:

* **Throughput scales with workers on a read-heavy mix.**  The same
  cache-busting workload (every query distinct, so engine executions
  dominate — the hard case for scaling) runs single-threaded, over the
  thread pool, and over warm replica processes.  The >= 2x floor at 4
  workers is enforced where 2x is physically reachable: a machine with
  >= 4 cores, using the replica-process path on a GIL interpreter (GIL
  threads *interleave* pure-Python work — they provide concurrency, not
  speedup — so on a stock build the floor additionally applies to
  thread mode only when the interpreter is free-threaded).

* **Hot rebuilds never produce torn results.**  Readers hammer the
  server while generations with *provably different answers* swap in
  under them; every observed result must match exactly one generation's
  single-threaded oracle.  Enforced everywhere, at every scale.

Machine-readable results land in ``BENCH_concurrent.json`` at the repo
root so the trajectory is tracked across PRs.
"""

from __future__ import annotations

import os
import sys
import threading
import time
from typing import Dict, List, Tuple

from repro.analysis import render_table
from repro.core import KeywordConstraint, NoConstraint, TopologyQuery
from repro.service import TopologyServer

from benchmarks.common import emit, emit_json, private_system

WORKERS = 4
THROUGHPUT_SCALING_FLOOR = 2.0
THREAD_OVERHEAD_FLOOR = 0.3  # GIL thread mode must stay within 1/0.3x of serial
READERS = 8

KEYWORDS = [
    "kinase", "binding", "human", "putative", "conserved", "receptor",
    "membrane", "transcription",
]


def _gil_enabled() -> bool:
    return getattr(sys, "_is_gil_enabled", lambda: True)()


def _parallel_capable() -> bool:
    """Whether 2x at 4 workers is physically reachable on this host."""
    return (os.cpu_count() or 1) >= WORKERS


def _workload(repeat: int = 1) -> List[TopologyQuery]:
    """A read-heavy, cache-busting mix: every query distinct (unique
    (keyword, k, ranking) triples), several plan classes."""
    queries = []
    for r in range(repeat):
        for i, keyword in enumerate(KEYWORDS):
            queries.append(
                TopologyQuery(
                    "Protein",
                    "DNA",
                    KeywordConstraint("DESC", keyword),
                    NoConstraint(),
                    k=2 + (i % 4) + 4 * r,
                    ranking=("freq", "rare")[i % 2],
                )
            )
    return queries


def _fresh_server() -> TopologyServer:
    server = TopologyServer(private_system())
    # Pin plan choices: a calibrator version bump mid-measurement would
    # trigger (correct, but noisy) re-planning in one mode and not
    # another.
    server.system.calibration_enabled = False
    server.system.restore_calibration(None)
    return server


def _throughput(seconds: float, queries: int) -> float:
    return queries / max(seconds, 1e-9)


def test_read_heavy_throughput_scales(benchmark):
    workload = _workload(repeat=3)

    # -- Serial baseline: one thread, cold caches -----------------------
    with _fresh_server() as server:
        start = time.perf_counter()
        serial_results = [server.query(q) for q in workload]
        serial_seconds = time.perf_counter() - start
    oracle = [r.tids for r in serial_results]

    # -- Thread pool: shared engine, 4 workers --------------------------
    with _fresh_server() as server:
        start = time.perf_counter()
        thread_results = server.query_many(workload, parallel=WORKERS)
        thread_seconds = time.perf_counter() - start
    assert [r.tids for r in thread_results] == oracle

    # -- Replica processes: 4 warm replicas -----------------------------
    with _fresh_server() as server:
        # Warm the pool (process start + snapshot restore) off the
        # clock: a serving deployment pays that once, not per batch.
        server.query_many(workload[:WORKERS], parallel=WORKERS, mode="process")
        server.invalidate()

        def run_replicas():
            return server.query_many(workload, parallel=WORKERS, mode="process")

        start = time.perf_counter()
        process_results = benchmark.pedantic(run_replicas, iterations=1, rounds=1)
        process_seconds = time.perf_counter() - start
    assert [r.tids for r in process_results] == oracle

    serial_qps = _throughput(serial_seconds, len(workload))
    thread_qps = _throughput(thread_seconds, len(workload))
    process_qps = _throughput(process_seconds, len(workload))
    thread_scaling = thread_qps / serial_qps
    process_scaling = process_qps / serial_qps

    cores = os.cpu_count() or 1
    enforce_process = _parallel_capable()
    enforce_thread = _parallel_capable() and not _gil_enabled()
    emit(
        "concurrent_throughput",
        render_table(
            ["mode", "queries/s", "vs serial", "floor"],
            [
                ["serial (1 thread)", f"{serial_qps:.1f}", "1.00x", "-"],
                [
                    f"threads ({WORKERS})",
                    f"{thread_qps:.1f}",
                    f"{thread_scaling:.2f}x",
                    f">={THROUGHPUT_SCALING_FLOOR:.0f}x"
                    if enforce_thread
                    else f">={THREAD_OVERHEAD_FLOOR:.1f}x (GIL interleaves)",
                ],
                [
                    f"replica processes ({WORKERS})",
                    f"{process_qps:.1f}",
                    f"{process_scaling:.2f}x",
                    f">={THROUGHPUT_SCALING_FLOOR:.0f}x"
                    if enforce_process
                    else f"report only ({cores} core(s))",
                ],
            ],
            title=(
                f"Read-heavy throughput, {len(workload)} distinct queries "
                f"({cores} cores, GIL {'on' if _gil_enabled() else 'off'})"
            ),
        ),
    )
    emit_json(
        "concurrent",
        {
            "throughput": {
                "workload_queries": len(workload),
                "workers": WORKERS,
                "cores": cores,
                "gil_enabled": _gil_enabled(),
                "serial_qps": serial_qps,
                "thread_qps": thread_qps,
                "process_qps": process_qps,
                "thread_scaling": thread_scaling,
                "process_scaling": process_scaling,
                "scaling_floor": THROUGHPUT_SCALING_FLOOR,
                "floor_enforced_process": enforce_process,
                "floor_enforced_thread": enforce_thread,
            }
        },
    )
    if enforce_process:
        assert process_scaling >= THROUGHPUT_SCALING_FLOOR, (
            f"replica fan-out must reach >={THROUGHPUT_SCALING_FLOOR}x serial "
            f"throughput at {WORKERS} workers on {cores} cores; got "
            f"{process_scaling:.2f}x ({serial_qps:.1f} -> {process_qps:.1f} q/s)"
        )
    if enforce_thread:
        assert thread_scaling >= THROUGHPUT_SCALING_FLOOR, (
            f"free-threaded build: thread pool must reach "
            f">={THROUGHPUT_SCALING_FLOOR}x; got {thread_scaling:.2f}x"
        )
    else:
        # Even when the GIL forbids speedup, coordination overhead must
        # stay bounded: threads may interleave, not collapse.
        assert thread_scaling >= THREAD_OVERHEAD_FLOOR, (
            f"thread-pool coordination overhead too high: "
            f"{thread_scaling:.2f}x of serial throughput"
        )


def test_rebuild_under_load_returns_only_consistent_results():
    workload = _workload()[:6]
    configs = [{"per_pair_path_limit": 1}, {"per_pair_path_limit": None}]

    with _fresh_server() as server:
        oracles: Dict[int, Dict[TopologyQuery, Tuple[int, ...]]] = {}

        def snapshot_oracle() -> None:
            oracles[server.generation] = {
                q: tuple(server.system.search(q).tids) for q in workload
            }

        snapshot_oracle()
        observed: List[Tuple[int, TopologyQuery, Tuple[int, ...]]] = []
        errors: List[BaseException] = []
        lock = threading.Lock()
        stop = threading.Event()

        def reader(offset: int) -> None:
            try:
                i = 0
                while not stop.is_set():
                    query = workload[(offset + i) % len(workload)]
                    result = server.query(query)
                    with lock:
                        observed.append(
                            (result.generation, query, tuple(result.tids))
                        )
                    i += 1
            except BaseException as error:  # pragma: no cover
                with lock:
                    errors.append(error)

        threads = [
            threading.Thread(target=reader, args=(n,)) for n in range(READERS)
        ]
        for thread in threads:
            thread.start()
        rebuild_seconds = []
        try:
            for round_number in range(2):
                start = time.perf_counter()
                server.rebuild(**configs[round_number % 2])
                rebuild_seconds.append(time.perf_counter() - start)
                snapshot_oracle()
        finally:
            stop.set()
            for thread in threads:
                thread.join()

        stats = server.stats()

    assert errors == []
    assert oracles[1] != oracles[2], "configs must disagree for a real check"
    inconsistent = sum(
        1
        for generation, query, tids in observed
        if oracles[generation][query] != tids
    )
    per_generation = {
        generation: sum(1 for g, _, _ in observed if g == generation)
        for generation in sorted(oracles)
    }
    emit(
        "concurrent_rebuild",
        render_table(
            ["metric", "value"],
            [
                ["reader threads", str(READERS)],
                ["results observed", str(len(observed))],
                ["generations served", str(len(per_generation))],
                ["per-generation counts", str(per_generation)],
                ["rebuilds (hot swaps)", str(len(rebuild_seconds))],
                ["mean rebuild wall", f"{sum(rebuild_seconds) / len(rebuild_seconds):.2f} s"],
                ["generation-inconsistent results", str(inconsistent)],
            ],
            title="Rebuild under load: traffic keeps flowing, results stay consistent",
        ),
    )
    emit_json(
        "concurrent",
        {
            "rebuild_under_load": {
                "cores": os.cpu_count() or 1,
                "reader_threads": READERS,
                "results_observed": len(observed),
                "generations": len(per_generation),
                "per_generation_counts": {
                    str(k): v for k, v in per_generation.items()
                },
                "inconsistent_results": inconsistent,
                "requests": stats.requests,
                "executions": stats.executions,
                "coalesced": stats.coalesced,
                "cache_hits": stats.result_cache.hits,
            }
        },
    )
    assert inconsistent == 0, f"{inconsistent} results mixed generations"
    assert len(observed) > 0
    # Counter invariants hold even across swaps.
    assert stats.result_cache.hits + stats.result_cache.misses == stats.requests
    assert stats.result_cache.misses == stats.executions + stats.coalesced
