"""Sharded serving benchmark: scatter-gather speedup, per-shard memory,
rebuild under live HTTP load.

Three claims about the sharded store (:mod:`repro.shard` +
:class:`~repro.service.ShardCoordinator`) are measured:

* **Scatter-gather answers are identical and faster.**  A cache-busting
  workload runs against one engine and against a 4-shard coordinator
  (one warm worker process per shard).  Answer equality — tids *and*
  scores, every query — is enforced unconditionally, at every scale, on
  every machine.  The >= 2x throughput floor is enforced only where 2x
  is physically reachable (>= 4 cores); on smaller machines the scaling
  is report-only.

* **A shard worker fits under the single-engine memory budget.**  Peak
  RSS is measured in *subprocesses* (one clean interpreter per
  measurement, ``ru_maxrss``): each shard-serving process must stay at
  or under what one whole-store process needs — the property that lets
  a shard set scale past one machine's memory.

* **Generation commits are invisible to HTTP traffic.**  Readers hammer
  ``POST /query`` over real sockets while ``POST /rebuild`` commits a
  new shard generation with provably different answers.  Zero failed
  requests and zero torn (mixed-generation) results are enforced,
  everywhere.

Machine-readable results land in ``BENCH_sharding.json`` at the repo
root so the trajectory is tracked across PRs.
"""

from __future__ import annotations

import json
import os
import resource
import subprocess
import sys
import tempfile
import threading
import time
from typing import Dict, List, Tuple

from repro.analysis import render_table
from repro.core import KeywordConstraint, NoConstraint, TopologyQuery
from repro.persist import save_system
from repro.service import ShardCoordinator
from repro.service.http import HttpServerThread, create_app
from repro.shard import split_system

from benchmarks.common import emit, emit_json, private_system

NUM_SHARDS = 4
SCALING_FLOOR = 2.0
REBUILD_READERS = 6
#: Per-shard peak RSS budget as a fraction of the single-engine peak.
#: The store slice shrinks ~1/N but the interpreter + replicated base
#: tables do not, so the enforced bound is "no worse than one engine",
#: with 5% for allocator noise.
RSS_BUDGET_RATIO = 1.05

KEYWORDS = [
    "kinase", "binding", "human", "putative", "conserved", "receptor",
    "membrane", "transcription",
]


def _workload(repeat: int = 3) -> List[TopologyQuery]:
    """Cache-busting: every query distinct, both ranked and exhaustive
    merge shapes represented."""
    queries = []
    for r in range(repeat):
        for i, keyword in enumerate(KEYWORDS):
            queries.append(
                TopologyQuery(
                    "Protein",
                    "DNA",
                    KeywordConstraint("DESC", keyword),
                    NoConstraint(),
                    k=2 + (i % 4) + 4 * r,
                    ranking=("freq", "rare")[i % 2],
                )
            )
    return queries


def _parallel_capable() -> bool:
    return (os.cpu_count() or 1) >= NUM_SHARDS


def test_scatter_gather_equality_and_throughput():
    system = private_system()
    workload = _workload()

    with tempfile.TemporaryDirectory(prefix="bench-shards-") as directory:
        split = split_system(system, NUM_SHARDS, directory)

        # -- Serial baseline: one engine, one thread --------------------
        start = time.perf_counter()
        serial_results = [system.search(q) for q in workload]
        serial_seconds = time.perf_counter() - start

        with ShardCoordinator(split.manifest_path) as coordinator:
            # Warm the per-shard workers off the clock (a deployment
            # pays process start + snapshot restore once, not per batch).
            coordinator.query_many(workload[:NUM_SHARDS])
            start = time.perf_counter()
            merged_results = coordinator.query_many(workload)
            scatter_seconds = time.perf_counter() - start
            histogram = list(coordinator.partition_histogram())
            skew = coordinator.partition_skew()

    # -- Equality floor: unconditional, every query, tids AND scores ----
    mismatches = sum(
        1
        for mine, theirs in zip(merged_results, serial_results)
        if mine.tids != theirs.tids or mine.scores != theirs.scores
    )
    assert mismatches == 0, (
        f"{mismatches}/{len(workload)} scatter-gather answers differ "
        f"from the single-engine reference"
    )

    serial_qps = len(workload) / max(serial_seconds, 1e-9)
    scatter_qps = len(workload) / max(scatter_seconds, 1e-9)
    scaling = scatter_qps / serial_qps
    cores = os.cpu_count() or 1
    enforce = _parallel_capable()

    emit(
        "sharding_throughput",
        render_table(
            ["mode", "queries/s", "vs serial", "floor"],
            [
                ["single engine (1 thread)", f"{serial_qps:.1f}", "1.00x", "-"],
                [
                    f"scatter-gather ({NUM_SHARDS} shards)",
                    f"{scatter_qps:.1f}",
                    f"{scaling:.2f}x",
                    f">={SCALING_FLOOR:.0f}x"
                    if enforce
                    else f"report only ({cores} core(s))",
                ],
            ],
            title=(
                f"Sharded throughput, {len(workload)} distinct queries, "
                f"routing skew {skew:.2f}x"
            ),
        ),
    )
    emit_json(
        "sharding",
        {
            "scatter_gather": {
                "num_shards": NUM_SHARDS,
                "cores": cores,
                "workload_queries": len(workload),
                "equality_mismatches": mismatches,
                "serial_qps": serial_qps,
                "scatter_qps": scatter_qps,
                "scaling": scaling,
                "scaling_floor": SCALING_FLOOR,
                "floor_enforced": enforce,
                "row_histogram": histogram,
                "skew": skew,
            }
        },
    )
    if enforce:
        assert scaling >= SCALING_FLOOR, (
            f"scatter-gather must reach >={SCALING_FLOOR}x single-engine "
            f"throughput with {NUM_SHARDS} shards on {cores} cores; got "
            f"{scaling:.2f}x ({serial_qps:.1f} -> {scatter_qps:.1f} q/s)"
        )


_RSS_SCRIPT = """
import json, resource, sys
from repro.core import KeywordConstraint, NoConstraint, TopologyQuery
from repro.persist import load_system

system = load_system(sys.argv[1])
query = TopologyQuery(
    "Protein", "DNA",
    KeywordConstraint("DESC", "kinase"), NoConstraint(),
    k=4, ranking="freq",
)
result = system.search(query)
print(json.dumps({
    "ru_maxrss_kb": resource.getrusage(resource.RUSAGE_SELF).ru_maxrss,
    "tids": result.tids,
}))
"""


def _peak_rss_kb(snapshot_path: str) -> int:
    """Peak RSS of a clean subprocess that restores ``snapshot_path``
    and serves one query — the footprint of a serving worker."""
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.run(
        [sys.executable, "-c", _RSS_SCRIPT, snapshot_path],
        capture_output=True,
        text=True,
        env=env,
        check=True,
    )
    return int(json.loads(proc.stdout)["ru_maxrss_kb"])


def test_per_shard_memory_under_single_engine_budget():
    system = private_system()
    with tempfile.TemporaryDirectory(prefix="bench-shards-") as directory:
        split = split_system(system, NUM_SHARDS, directory)
        whole_path = os.path.join(directory, "whole.topo")
        save_system(system, whole_path)

        whole_kb = _peak_rss_kb(whole_path)
        shard_kb = [_peak_rss_kb(path) for path in split.shard_paths]
        file_bytes = list(split.file_bytes)
        whole_bytes = os.path.getsize(whole_path)

    worst_kb = max(shard_kb)
    ratio = worst_kb / max(whole_kb, 1)
    emit(
        "sharding_memory",
        render_table(
            ["process", "peak RSS", "vs single engine", "snapshot bytes"],
            [
                ["single engine", f"{whole_kb} KiB", "1.00x", str(whole_bytes)],
                *[
                    [
                        f"shard {i}/{NUM_SHARDS}",
                        f"{kb} KiB",
                        f"{kb / max(whole_kb, 1):.2f}x",
                        str(file_bytes[i]),
                    ]
                    for i, kb in enumerate(shard_kb)
                ],
            ],
            title=f"Per-worker peak RSS (budget <= {RSS_BUDGET_RATIO:.2f}x)",
        ),
    )
    emit_json(
        "sharding",
        {
            "memory": {
                "num_shards": NUM_SHARDS,
                "single_engine_rss_kb": whole_kb,
                "shard_rss_kb": shard_kb,
                "worst_shard_rss_kb": worst_kb,
                "worst_over_single": ratio,
                "budget_ratio": RSS_BUDGET_RATIO,
                "single_snapshot_bytes": whole_bytes,
                "shard_snapshot_bytes": file_bytes,
            }
        },
    )
    assert ratio <= RSS_BUDGET_RATIO, (
        f"worst shard worker peaks at {worst_kb} KiB = {ratio:.2f}x the "
        f"single-engine {whole_kb} KiB; budget is {RSS_BUDGET_RATIO:.2f}x"
    )


def _wire_query(keyword: str, k: int) -> dict:
    return {
        "entity1": "Protein",
        "entity2": "DNA",
        "constraint1": {"kind": "keyword", "column": "DESC", "keyword": keyword},
        "constraint2": {"kind": "none"},
        "k": k,
        "ranking": ("freq", "rare")[k % 2],
    }


def test_shard_rebuild_under_live_http_load():
    import http.client

    wire_workload = [_wire_query(kw, 2 + i % 4) for i, kw in enumerate(KEYWORDS)]
    system = private_system()

    with tempfile.TemporaryDirectory(prefix="bench-shards-") as directory:
        split = split_system(system, NUM_SHARDS, directory)
        with ShardCoordinator(split.manifest_path) as coordinator:
            oracles: Dict[int, Dict[int, List[int]]] = {}

            def snapshot_oracle() -> None:
                from repro.service.http.schemas import parse_query_request

                oracles[coordinator.generation] = {
                    i: list(
                        coordinator.query(parse_query_request(body)[0]).tids
                    )
                    for i, body in enumerate(wire_workload)
                }

            snapshot_oracle()
            with create_app(
                coordinator,
                max_concurrency=REBUILD_READERS + 2,
                max_queue=64,
                rebuild_timeout=1800.0,
            ) as app:
                with HttpServerThread(app) as base_url:
                    host = base_url.split("//", 1)[1]
                    stop = threading.Event()
                    observed: List[Tuple[int, int, List[int]]] = []
                    failed: List[Tuple[int, bytes]] = []
                    lock = threading.Lock()
                    barrier = threading.Barrier(REBUILD_READERS + 1)

                    def reader(offset: int) -> None:
                        conn = http.client.HTTPConnection(host, timeout=120.0)
                        try:
                            barrier.wait()
                            i = 0
                            local_ok, local_bad = [], []
                            while not stop.is_set() or i == 0:
                                index = (offset + i) % len(wire_workload)
                                body = json.dumps(wire_workload[index]).encode()
                                conn.request(
                                    "POST",
                                    "/query",
                                    body,
                                    {"Content-Type": "application/json"},
                                )
                                response = conn.getresponse()
                                data = response.read()
                                if response.status != 200:
                                    local_bad.append((response.status, data))
                                else:
                                    payload = json.loads(data)
                                    local_ok.append(
                                        (
                                            payload["generation"],
                                            index,
                                            payload["tids"],
                                        )
                                    )
                                i += 1
                            with lock:
                                observed.extend(local_ok)
                                failed.extend(local_bad)
                        finally:
                            conn.close()

                    threads = [
                        threading.Thread(target=reader, args=(n,))
                        for n in range(REBUILD_READERS)
                    ]
                    for thread in threads:
                        thread.start()
                    rebuild_conn = http.client.HTTPConnection(
                        host, timeout=1800.0
                    )
                    try:
                        barrier.wait()
                        start = time.perf_counter()
                        rebuild_conn.request(
                            "POST",
                            "/rebuild",
                            json.dumps({"per_pair_path_limit": 1}).encode(),
                            {"Content-Type": "application/json"},
                        )
                        response = rebuild_conn.getresponse()
                        rebuild_body = response.read()
                        rebuild_seconds = time.perf_counter() - start
                        assert response.status == 200, rebuild_body
                        snapshot_oracle()
                    finally:
                        stop.set()
                        for thread in threads:
                            thread.join(timeout=600)
                        rebuild_conn.close()

            stats = coordinator.stats()

    torn = sum(
        1
        for generation, index, tids in observed
        if oracles[generation][index] != tids
    )
    per_generation = {
        generation: sum(1 for g, _, _ in observed if g == generation)
        for generation in sorted(oracles)
    }
    assert (
        oracles[1] != oracles[2]
    ), "generations must disagree for a real torn-read check"
    emit(
        "sharding_rebuild",
        render_table(
            ["metric", "value"],
            [
                ["reader threads", str(REBUILD_READERS)],
                ["responses observed", str(len(observed))],
                ["failed responses", str(len(failed))],
                ["torn (mixed-generation) results", str(torn)],
                ["per-generation counts", str(per_generation)],
                ["rebuild wall", f"{rebuild_seconds:.2f} s"],
            ],
            title="Shard generation commit under live HTTP load",
        ),
    )
    emit_json(
        "sharding",
        {
            "rebuild_under_load": {
                "num_shards": NUM_SHARDS,
                "cores": os.cpu_count() or 1,
                "reader_threads": REBUILD_READERS,
                "responses_observed": len(observed),
                "failed_responses": len(failed),
                "torn_results": torn,
                "per_generation_counts": {
                    str(k): v for k, v in per_generation.items()
                },
                "rebuild_seconds": rebuild_seconds,
                "requests": stats.requests,
                "executions": stats.executions,
                "coalesced": stats.coalesced,
            }
        },
    )
    assert failed == [], f"{len(failed)} requests failed during the commit"
    assert torn == 0, f"{torn} results mixed generations"
    assert len(observed) > 0
    assert stats.result_cache.hits + stats.result_cache.misses == stats.requests
    assert stats.result_cache.misses == stats.executions + stats.coalesced
