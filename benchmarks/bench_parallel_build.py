"""Parallel offline-build benchmark: fan-out speedup and merge overhead.

The offline phase dominates operating cost at Biozon scale (the paper's
Figure 10 assumes it runs "rarely, in bulk"); this harness measures the
partitioned build (:mod:`repro.parallel`) against the single-process
baseline on the synthetic benchmark dataset:

* full ``build()`` wall-clock, serial vs 2 and 4 workers (pruning and
  materialization are sequential in both, so the reported speedup is
  the honest end-to-end number, not just the fan-out stage's);
* merge overhead (the serial-order replay that makes the store
  bit-identical) as seconds and as a fraction of the parallel build;
* partition skew (slowest task over mean task time);
* **bit identity**: the parallel store's ``state_digest()`` must equal
  the serial store's — asserted unconditionally.

The ≥1.8x speedup floor for 4 workers is asserted only when the
measurement can express it: the machine must have ≥4 usable cores
(CPU-bound Python workers cannot beat the hardware — on a 1-core
container the pool *adds* overhead) **and** the scale must not be
``tiny`` (a sub-100ms build is dominated by pool start-up, making the
ratio a timing lottery).  Outside that envelope the table still reports
the measured speedup, marked "skipped"; the bit-identity assertion runs
everywhere, matching this suite's rule of checking shape claims rather
than absolute times.
"""

from __future__ import annotations

import os
import time
from typing import Dict, List, Tuple

from repro.analysis import render_table
from repro.biozon import generate
from repro.core import TopologySearchSystem

from benchmarks.common import bench_config, bench_scale, emit

PAIRS: List[Tuple[str, str]] = [("Protein", "DNA"), ("Protein", "Interaction")]
MAX_LENGTH = 3
WORKER_COUNTS = (2, 4)
SPEEDUP_FLOOR = 1.8
SPEEDUP_FLOOR_WORKERS = 4
# The merge must stay a small tax on the build it parallelizes.
MERGE_OVERHEAD_CEILING = 0.25


def _usable_cores() -> int:
    if hasattr(os, "sched_getaffinity"):
        return len(os.sched_getaffinity(0))
    return os.cpu_count() or 1


def _fresh_system() -> TopologySearchSystem:
    # A fresh dataset per build: nothing (database, graph, statistics)
    # is shared between the timed configurations.
    ds = generate(bench_config())
    return TopologySearchSystem(ds.database, ds.graph())


def test_parallel_build_speedup():
    cores = _usable_cores()

    serial_system = _fresh_system()
    start = time.perf_counter()
    serial_system.build(PAIRS, max_length=MAX_LENGTH)
    serial_seconds = time.perf_counter() - start
    serial_digest = serial_system.store.state_digest()

    rows = [
        ["serial", f"{serial_seconds:.3f}", "1.00x", "-", "-", "-"],
    ]
    speedups: Dict[int, float] = {}
    for workers in WORKER_COUNTS:
        system = _fresh_system()
        start = time.perf_counter()
        report = system.build(PAIRS, max_length=MAX_LENGTH, parallel=workers)
        seconds = time.perf_counter() - start
        parallel = report.parallel
        assert parallel is not None and parallel.workers == workers

        # Correctness before speed: bit-identical to the serial build.
        assert system.store.state_digest() == serial_digest, (
            f"{workers}-worker build diverged from the serial store"
        )

        speedups[workers] = serial_seconds / seconds
        merge_fraction = parallel.merge_seconds / seconds
        assert merge_fraction <= MERGE_OVERHEAD_CEILING, (
            f"merge replay consumed {100 * merge_fraction:.1f}% of the "
            f"{workers}-worker build (ceiling "
            f"{100 * MERGE_OVERHEAD_CEILING:.0f}%)"
        )
        rows.append(
            [
                f"{workers} workers / {parallel.partitions} partitions",
                f"{seconds:.3f}",
                f"{speedups[workers]:.2f}x",
                f"{parallel.merge_seconds:.3f} ({100 * merge_fraction:.1f}%)",
                f"{parallel.partition_skew():.2f}",
                str(len(parallel.tasks)),
            ]
        )

    scale = bench_scale()
    if cores < SPEEDUP_FLOOR_WORKERS:
        floor_note = f"skipped ({cores} core(s))"
    elif scale == "tiny":
        floor_note = "skipped (tiny scale)"
    else:
        floor_note = "enforced"
    floor_enforced = floor_note == "enforced"
    rows.append(
        [
            "speedup floor",
            "-",
            f"{SPEEDUP_FLOOR:.1f}x @ {SPEEDUP_FLOOR_WORKERS} workers",
            "-",
            "-",
            floor_note,
        ]
    )
    emit(
        "parallel_build",
        render_table(
            ["configuration", "seconds", "speedup", "merge s (%)", "skew", "tasks"],
            rows,
            title=(
                f"Partitioned offline build vs serial "
                f"({cores} usable core(s); stores verified bit-identical)"
            ),
        ),
    )

    if floor_enforced:
        assert speedups[SPEEDUP_FLOOR_WORKERS] >= SPEEDUP_FLOOR, (
            f"expected >= {SPEEDUP_FLOOR}x with {SPEEDUP_FLOOR_WORKERS} "
            f"workers on {cores} cores; got "
            f"{speedups[SPEEDUP_FLOOR_WORKERS]:.2f}x"
        )
