"""Persistence + service benchmark: build-vs-load speedup, cache hits.

The paper separates an expensive offline phase from cheap online
dispatch (Figure 10) but leaves cold-start implicit — the topology
tables are assumed to already live in the host database.  This harness
measures that assumption made real:

* ``build()`` vs ``load_system()`` wall-clock on the default Biozon
  generator instance, asserting the snapshot restore is at least 10x
  faster than recomputing the offline phase, and that every one of the
  nine query methods answers identically before and after the
  round-trip;
* the :class:`~repro.service.TopologyService` LRU cache under a skewed
  online workload, reporting hit rate and per-method engine latency.
"""

from __future__ import annotations

import os
import tempfile
import time

from repro.analysis import render_table
from repro.biozon import BiozonConfig, generate
from repro.core import (
    ALL_METHOD_NAMES,
    AttributeConstraint,
    KeywordConstraint,
    NoConstraint,
    TopologyQuery,
    TopologySearchSystem,
)
from repro.persist import load_system, save_system, snapshot_info
from repro.service import TopologyService

from benchmarks.common import emit, emit_json

# Methods that evaluate the whole result set (no k) vs. top-k methods.
EXHAUSTIVE_METHODS = ("sql", "full-top", "fast-top")

SPEEDUP_FLOOR = 10.0


def _default_system() -> TopologySearchSystem:
    """The acceptance-criterion instance: the generator's defaults."""
    ds = generate(BiozonConfig())
    return TopologySearchSystem(ds.database, ds.graph())


def _query_for(method: str, keyword: str = "kinase") -> TopologyQuery:
    if method in EXHAUSTIVE_METHODS:
        return TopologyQuery(
            "Protein",
            "DNA",
            KeywordConstraint("DESC", keyword),
            NoConstraint(),
        )
    return TopologyQuery(
        "Protein",
        "DNA",
        KeywordConstraint("DESC", keyword),
        AttributeConstraint("TYPE", "mRNA"),
        k=5,
        ranking="rare",
    )


def test_persistence_speedup(benchmark):
    system = _default_system()
    t0 = time.perf_counter()
    system.build([("Protein", "DNA"), ("Protein", "Interaction")], max_length=3)
    build_seconds = time.perf_counter() - t0

    path = os.path.join(tempfile.mkdtemp(prefix="repro-bench-"), "default.topo")
    t0 = time.perf_counter()
    save_system(system, path)
    save_seconds = time.perf_counter() - t0

    def cold_start():
        return load_system(path)

    restored = benchmark.pedantic(cold_start, iterations=1, rounds=3)
    load_seconds = min(benchmark.stats.stats.data)
    speedup = build_seconds / load_seconds
    info = snapshot_info(path)

    # Round-trip equality across all nine methods.
    for method in ALL_METHOD_NAMES:
        query = _query_for(method)
        before = system.search(query, method=method)
        after = restored.search(query, method=method)
        assert before.tids == after.tids, method
        assert before.scores == after.scores, method

    emit(
        "persistence_speedup",
        render_table(
            ["phase", "seconds", "notes"],
            [
                ["build()", f"{build_seconds:.3f}", "offline phase from scratch"],
                ["save_system()", f"{save_seconds:.3f}", f"{info.file_bytes / 1024:.0f} KiB snapshot"],
                ["load_system()", f"{load_seconds:.3f}", "cold start from snapshot"],
                ["speedup", f"{speedup:.1f}x", f"floor {SPEEDUP_FLOOR:.0f}x"],
                ["topologies", str(info.topologies), f"{info.alltops_rows} AllTops rows"],
            ],
            title="Persistence: build vs snapshot restore (default instance)",
        ),
    )
    emit_json(
        "persistence",
        {
            "cold_start": {
                "build_seconds": build_seconds,
                "save_seconds": save_seconds,
                "load_seconds": load_seconds,
                "speedup": speedup,
                "speedup_floor": SPEEDUP_FLOOR,
                "snapshot_bytes": info.file_bytes,
                "topologies": info.topologies,
                "alltops_rows": info.alltops_rows,
            }
        },
    )
    assert speedup >= SPEEDUP_FLOOR, (
        f"load_system() must be >= {SPEEDUP_FLOOR}x faster than build(); "
        f"got {speedup:.1f}x ({build_seconds:.3f}s vs {load_seconds:.3f}s)"
    )


def test_service_cache_hit_rate(benchmark):
    system = _default_system()
    system.build([("Protein", "DNA"), ("Protein", "Interaction")], max_length=3)
    service = TopologyService(system, cache_size=256)

    # A skewed online workload: 10 distinct queries, the head queried
    # far more often than the tail (the access pattern caching exists
    # for).  200 requests -> at most 10 engine executions.
    keywords = ["kinase", "binding", "human", "putative", "conserved",
                "receptor", "nuclear", "ribosomal", "membrane", "factor"]
    workload = []
    for i in range(200):
        keyword = keywords[0] if i % 2 else keywords[i % len(keywords)]
        workload.append(_query_for("fast-top-k-opt", keyword))
    distinct = len(set(workload))

    def run_workload():
        return service.query_many(workload)

    results = benchmark.pedantic(run_workload, iterations=1, rounds=1)
    assert len(results) == len(workload)

    stats = service.cache_stats()
    latency = service.latency_stats()["fast-top-k-opt"]
    emit(
        "persistence_cache",
        render_table(
            ["metric", "value"],
            [
                ["requests", str(stats.requests)],
                ["cache hits", str(stats.hits)],
                ["cache misses", str(stats.misses)],
                ["hit rate", f"{100 * stats.hit_rate:.1f}%"],
                ["engine executions", str(latency["count"])],
                ["engine mean latency", f"{latency['mean_seconds'] * 1e3:.2f} ms"],
                ["engine p95 latency", f"{latency['p95_seconds'] * 1e3:.2f} ms"],
            ],
            title="TopologyService LRU cache under a skewed workload",
        ),
    )
    emit_json(
        "persistence",
        {
            "service_cache": {
                "requests": stats.requests,
                "hits": stats.hits,
                "misses": stats.misses,
                "hit_rate": stats.hit_rate,
                "engine_executions": latency["count"],
                "engine_mean_seconds": latency["mean_seconds"],
                "engine_p95_seconds": latency["p95_seconds"],
                "plan_cache": {
                    "hits": service.plan_cache_stats().hits,
                    "misses": service.plan_cache_stats().misses,
                },
            }
        },
    )
    # Few distinct queries over 200 requests: the hit rate must be high
    # and the engine must have run each distinct query exactly once.
    assert stats.misses == distinct
    assert stats.hit_rate >= 0.9
