"""Shared infrastructure for the benchmark harnesses.

Each harness regenerates one paper table/figure.  Rendered output goes
both to stdout (visible with ``pytest -s``) and to
``benchmarks/results/<name>.txt`` so the teed benchmark run leaves the
reproduced tables on disk.

Scale: ``REPRO_BENCH_SCALE`` ∈ {tiny, small, medium} (default small)
controls the synthetic dataset size.  All claims checked here are shape
claims (who wins, what distribution looks like), never absolute times.
"""

from __future__ import annotations

import os
import pathlib
from functools import lru_cache
from typing import Dict, List, Sequence, Tuple

from repro.biozon import BiozonConfig, generate
from repro.core import TopologySearchSystem

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

# Figure 11's four curves: PD, DU, PI, PU.
FIG11_PAIRS: Tuple[Tuple[str, str], ...] = (
    ("Protein", "DNA"),
    ("DNA", "Unigene"),
    ("Protein", "Interaction"),
    ("Protein", "Unigene"),
)


def bench_scale() -> str:
    scale = os.environ.get("REPRO_BENCH_SCALE", "small").lower()
    if scale not in ("tiny", "small", "medium"):
        raise ValueError(f"bad REPRO_BENCH_SCALE {scale!r}")
    return scale


def bench_config(seed: int = 7) -> BiozonConfig:
    return getattr(BiozonConfig, bench_scale())(seed=seed)


@lru_cache(maxsize=4)
def dataset(seed: int = 7):
    return generate(bench_config(seed))


@lru_cache(maxsize=4)
def built_system(
    pairs: Tuple[Tuple[str, str], ...] = (("Protein", "DNA"), ("Protein", "Interaction")),
    max_length: int = 3,
    seed: int = 7,
) -> TopologySearchSystem:
    ds = dataset(seed)
    system = TopologySearchSystem(ds.database, ds.graph())
    system.build(list(pairs), max_length=max_length)
    return system


def emit(name: str, text: str) -> None:
    """Print a harness's rendered output and persist it."""
    RESULTS_DIR.mkdir(exist_ok=True)
    banner = f"\n===== {name} =====\n"
    print(banner + text)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
