"""Shared infrastructure for the benchmark harnesses.

Each harness regenerates one paper table/figure.  Rendered output goes
both to stdout (visible with ``pytest -s``) and to
``benchmarks/results/<name>.txt`` so the teed benchmark run leaves the
reproduced tables on disk.

Scale: ``REPRO_BENCH_SCALE`` ∈ {tiny, small, medium} (default small)
controls the synthetic dataset size.  All claims checked here are shape
claims (who wins, what distribution looks like), never absolute times.

Snapshot reuse: the offline build dominates harness start-up, so
``built_system`` persists each built system under
``benchmarks/.snapshots/`` (via :mod:`repro.persist`) and restores it on
later runs instead of rebuilding.  Set ``REPRO_BENCH_SNAPSHOTS=0`` to
force a fresh build (e.g. after changing the generator or the offline
pipeline); stale or incompatible snapshot files are rebuilt
automatically when the snapshot schema version changes.
"""

from __future__ import annotations

import os
import pathlib
from functools import lru_cache
from typing import Dict, List, Sequence, Tuple

import repro
from repro.biozon import BiozonConfig, generate
from repro.core import TopologySearchSystem
from repro.errors import TopologyError
from repro.persist import SCHEMA_VERSION, load_system, save_system

RESULTS_DIR = pathlib.Path(__file__).parent / "results"
SNAPSHOT_DIR = pathlib.Path(__file__).parent / ".snapshots"

# Figure 11's four curves: PD, DU, PI, PU.
FIG11_PAIRS: Tuple[Tuple[str, str], ...] = (
    ("Protein", "DNA"),
    ("DNA", "Unigene"),
    ("Protein", "Interaction"),
    ("Protein", "Unigene"),
)


def bench_scale() -> str:
    scale = os.environ.get("REPRO_BENCH_SCALE", "small").lower()
    if scale not in ("tiny", "small", "medium"):
        raise ValueError(f"bad REPRO_BENCH_SCALE {scale!r}")
    return scale


def bench_config(seed: int = 7) -> BiozonConfig:
    return getattr(BiozonConfig, bench_scale())(seed=seed)


@lru_cache(maxsize=4)
def dataset(seed: int = 7):
    return generate(bench_config(seed))


def snapshots_enabled() -> bool:
    return os.environ.get("REPRO_BENCH_SNAPSHOTS", "1") != "0"


def snapshot_path(
    pairs: Tuple[Tuple[str, str], ...], max_length: int, seed: int
) -> pathlib.Path:
    """Deterministic per-configuration snapshot file name.  Both the
    snapshot format version and the engine version are part of the
    name, so incompatible old files — or systems built by an older
    engine/generator — are ignored and rebuilt rather than silently
    served stale."""
    pair_part = "+".join(f"{a}-{b}" for a, b in pairs)
    name = (
        f"{bench_scale()}-seed{seed}-l{max_length}-{pair_part}"
        f"-v{SCHEMA_VERSION}-e{repro.__version__}.topo"
    )
    return SNAPSHOT_DIR / name


@lru_cache(maxsize=4)
def built_system(
    pairs: Tuple[Tuple[str, str], ...] = (("Protein", "DNA"), ("Protein", "Interaction")),
    max_length: int = 3,
    seed: int = 7,
) -> TopologySearchSystem:
    """A built system for this configuration, restored from a disk
    snapshot when one exists (see module docstring)."""
    path = snapshot_path(pairs, max_length, seed)
    if snapshots_enabled() and path.exists():
        try:
            return load_system(path)
        except TopologyError:
            path.unlink()  # corrupt/stale snapshot: rebuild below
    ds = dataset(seed)
    system = TopologySearchSystem(ds.database, ds.graph())
    system.build(list(pairs), max_length=max_length)
    if snapshots_enabled():
        save_system(system, path)
    return system


def emit(name: str, text: str) -> None:
    """Print a harness's rendered output and persist it."""
    RESULTS_DIR.mkdir(exist_ok=True)
    banner = f"\n===== {name} =====\n"
    print(banner + text)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
