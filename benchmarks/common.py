"""Shared infrastructure for the benchmark harnesses.

Each harness regenerates one paper table/figure.  Rendered output goes
both to stdout (visible with ``pytest -s``) and to
``benchmarks/results/<name>.txt`` so the teed benchmark run leaves the
reproduced tables on disk.

Scale: ``REPRO_BENCH_SCALE`` ∈ {tiny, small, medium} (default small)
controls the synthetic dataset size.  All claims checked here are shape
claims (who wins, what distribution looks like), never absolute times.

Snapshot reuse: the offline build dominates harness start-up, so
``built_system`` persists each built system under
``benchmarks/.snapshots/`` (via :mod:`repro.persist`) and restores it on
later runs instead of rebuilding.  Set ``REPRO_BENCH_SNAPSHOTS=0`` to
force a fresh build (e.g. after changing the generator or the offline
pipeline); stale or incompatible snapshot files are rebuilt
automatically when the snapshot schema version changes.
"""

from __future__ import annotations

import json
import os
import pathlib
import time
from functools import lru_cache
from typing import Any, Dict, List, Sequence, Tuple

import repro
from repro.biozon import BiozonConfig, generate
from repro.core import TopologySearchSystem
from repro.errors import TopologyError
from repro.persist import SCHEMA_VERSION, load_system, save_system

RESULTS_DIR = pathlib.Path(__file__).parent / "results"
SNAPSHOT_DIR = pathlib.Path(__file__).parent / ".snapshots"
# Machine-readable benchmark output lands at the repo root as
# BENCH_<name>.json so the perf trajectory is tracked across PRs.
REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

# Figure 11's four curves: PD, DU, PI, PU.
FIG11_PAIRS: Tuple[Tuple[str, str], ...] = (
    ("Protein", "DNA"),
    ("DNA", "Unigene"),
    ("Protein", "Interaction"),
    ("Protein", "Unigene"),
)


def bench_scale() -> str:
    scale = os.environ.get("REPRO_BENCH_SCALE", "small").lower()
    if scale not in ("tiny", "small", "medium"):
        raise ValueError(f"bad REPRO_BENCH_SCALE {scale!r}")
    return scale


def bench_config(seed: int = 7) -> BiozonConfig:
    return getattr(BiozonConfig, bench_scale())(seed=seed)


@lru_cache(maxsize=4)
def dataset(seed: int = 7):
    return generate(bench_config(seed))


def snapshots_enabled() -> bool:
    return os.environ.get("REPRO_BENCH_SNAPSHOTS", "1") != "0"


def snapshot_path(
    pairs: Tuple[Tuple[str, str], ...], max_length: int, seed: int
) -> pathlib.Path:
    """Deterministic per-configuration snapshot file name.  Both the
    snapshot format version and the engine version are part of the
    name, so incompatible old files — or systems built by an older
    engine/generator — are ignored and rebuilt rather than silently
    served stale."""
    pair_part = "+".join(f"{a}-{b}" for a, b in pairs)
    name = (
        f"{bench_scale()}-seed{seed}-l{max_length}-{pair_part}"
        f"-v{SCHEMA_VERSION}-e{repro.__version__}.topo"
    )
    return SNAPSHOT_DIR / name


def private_system(
    pairs: Tuple[Tuple[str, str], ...] = (("Protein", "DNA"), ("Protein", "Interaction")),
    max_length: int = 3,
    seed: int = 7,
) -> TopologySearchSystem:
    """A *new* system instance for this configuration (same snapshot
    reuse as :func:`built_system`, but never the shared object) — for
    harnesses that mutate engine state such as calibration factors.

    The no-snapshot path generates a *fresh* dataset rather than using
    the lru-cached one: two systems over one shared ``Database`` would
    re-materialize each other's derived tables and share executor
    counters."""
    path = snapshot_path(pairs, max_length, seed)
    if snapshots_enabled() and path.exists():
        try:
            return load_system(path)
        except TopologyError:
            path.unlink()  # corrupt/stale snapshot: rebuild below
    ds = generate(bench_config(seed))
    system = TopologySearchSystem(ds.database, ds.graph())
    system.build(list(pairs), max_length=max_length)
    if snapshots_enabled():
        save_system(system, path)
    return system


@lru_cache(maxsize=4)
def built_system(
    pairs: Tuple[Tuple[str, str], ...] = (("Protein", "DNA"), ("Protein", "Interaction")),
    max_length: int = 3,
    seed: int = 7,
) -> TopologySearchSystem:
    """A built system for this configuration, restored from a disk
    snapshot when one exists (see module docstring)."""
    return private_system(pairs, max_length, seed)


def emit(name: str, text: str) -> None:
    """Print a harness's rendered output and persist it."""
    RESULTS_DIR.mkdir(exist_ok=True)
    banner = f"\n===== {name} =====\n"
    print(banner + text)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")


def emit_json(name: str, payload: Dict[str, Any]) -> pathlib.Path:
    """Merge ``payload`` into ``BENCH_<name>.json`` at the repo root.

    Merging (rather than overwriting) lets several tests in one harness
    contribute sections to the same file; the ``meta`` block records the
    scale and engine version the numbers were measured at.  Sections are
    only merged with an existing file from the *same* scale and engine
    version — anything else would mix provenance, so the file restarts."""
    path = REPO_ROOT / f"BENCH_{name}.json"
    meta = {
        "engine_version": repro.__version__,
        "scale": bench_scale(),
    }
    data: Dict[str, Any] = {}
    if path.exists():
        try:
            existing = json.loads(path.read_text())
            existing_meta = existing.get("meta", {})
            if all(existing_meta.get(k) == v for k, v in meta.items()):
                data = existing
        except (ValueError, OSError):
            data = {}
    data.update(payload)
    data["meta"] = dict(meta, generated_at=time.strftime("%Y-%m-%dT%H:%M:%S"))
    path.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")
    return path
