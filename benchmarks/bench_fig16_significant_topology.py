"""Figure 16: the biologically significant operon motif — two proteins
encoded by the same DNA sequence that also interact — must be
discoverable and ranked highly by the Domain scheme."""

from __future__ import annotations

from repro.analysis import render_table
from repro.core import NoConstraint, TopologyQuery
from repro.graph import canonical_key

from benchmarks.common import built_system, dataset, emit


def _operon_motif_keys(system, ds):
    """Canonical keys of planted operon motifs as Protein-DNA unions."""
    from repro.core.topologies import topologies_for_pair

    keys = set()
    graph = system.graph
    for operon in ds.truth.operons[:20]:
        a, b = operon.interacting_pair
        for protein in (a, b):
            pair = topologies_for_pair(graph, protein, operon.dna_id, 3)
            keys.update(pair.topology_keys)
    return keys


def test_fig16_operon_motif_found(benchmark):
    ds = dataset()
    system = built_system()
    store = system.require_store()
    assert ds.truth.operons, "generator must plant operon systems"

    query = TopologyQuery(
        "Protein", "DNA", NoConstraint(), NoConstraint(), k=25, ranking="domain"
    )

    result = benchmark(lambda: system.search(query, "fast-top-k-opt"))

    motif_keys = _operon_motif_keys(system, ds)
    motif_tids = {
        store.tid_of(k, ("Protein", "DNA"))
        for k in motif_keys
        if store.tid_of(k, ("Protein", "DNA")) is not None
    }
    # Motifs containing an interaction + shared DNA exist in the store...
    cyclic_motifs = [
        tid
        for tid in motif_tids
        if store.topology(tid).num_edges >= store.topology(tid).num_nodes
    ]
    assert motif_tids

    found = [tid for tid in result.tids if tid in motif_tids]
    rows = [
        ["planted operon systems", len(ds.truth.operons)],
        ["distinct operon-motif topologies", len(motif_tids)],
        ["cyclic (feedback) motif topologies", len(cyclic_motifs)],
        ["motif topologies inside domain top-25", len(found)],
        ["best motif rank", result.tids.index(found[0]) + 1 if found else "-"],
    ]
    emit(
        "fig16_significant_topology",
        render_table(["quantity", "value"], rows,
                     title="Figure 16: operon motif discovery via Domain ranking"),
    )
    # The Domain ranking must surface at least one planted motif high up.
    assert found, "no operon motif in the domain-ranked top 25"
