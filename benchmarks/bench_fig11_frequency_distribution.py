"""Figure 11: distribution of topology frequency is approximately
Zipfian for every entity-set pair (PD, DU, PI, PU curves)."""

from __future__ import annotations

from repro.analysis import fit_zipf, frequency_table, head_mass, render_ascii_loglog, render_table
from repro.core import TopologySearchSystem

from benchmarks.common import FIG11_PAIRS, dataset, emit


def test_fig11_zipfian_frequencies(benchmark):
    ds = dataset()

    def build():
        system = TopologySearchSystem(ds.database, ds.graph())
        system.build(list(FIG11_PAIRS), max_length=3)
        return system

    system = benchmark.pedantic(build, iterations=1, rounds=1)
    store = system.require_store()
    series = frequency_table(store, FIG11_PAIRS)

    rows = []
    for label, freqs in sorted(series.items()):
        fit = fit_zipf(freqs)
        rows.append(
            [
                label,
                len(freqs),
                freqs[0] if freqs else 0,
                f"{fit.exponent:.2f}",
                f"{fit.r_squared:.2f}",
                f"{head_mass(freqs, 5):.2f}",
                "yes" if fit.is_zipf_like else "no",
            ]
        )
    table = render_table(
        ["pair", "topologies", "max freq", "zipf s", "R^2", "top-5 mass", "zipf-like"],
        rows,
        title="Figure 11: topology frequency distributions (rank-frequency fits)",
    )
    plot = render_ascii_loglog({k: v for k, v in series.items() if v})
    emit("fig11_frequency_distribution", table + "\n\n" + plot)

    # Shape assertions: the dominant pairs must be head-heavy and
    # decreasing like a power law.
    pd_freqs = series["PD"]
    assert head_mass(pd_freqs, 5) > 0.35
    assert fit_zipf(pd_freqs).exponent > 0.5
    # Every curve is non-trivial and strictly head-dominated.
    for label, freqs in series.items():
        assert freqs, label
        assert freqs[0] >= freqs[-1]
