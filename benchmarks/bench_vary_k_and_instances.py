"""Section 6.2.4: varying k, and instance-retrieval cost by frequency.

Paper shape: slight degradation with increasing k for the top-k
methods; instance retrieval time grows with topology frequency
(1-50 s on Biozon, milliseconds here)."""

from __future__ import annotations

import time

from repro.analysis import render_table
from repro.core import InstanceRetriever, KeywordConstraint, NoConstraint, TopologyQuery

from benchmarks.common import built_system, emit

K_VALUES = (1, 5, 10, 25, 50)


def test_vary_k(benchmark):
    system = built_system()

    def sweep():
        rows = []
        for k in K_VALUES:
            query = TopologyQuery(
                "Protein", "DNA",
                KeywordConstraint("DESC", "human"),
                NoConstraint(),
                k=k, ranking="rare",
            )
            et = system.search(query, "fast-top-k-et")
            reg = system.search(query, "fast-top-k")
            assert et.tids == reg.tids
            rows.append(
                [
                    k,
                    f"{et.elapsed_seconds * 1000:.1f}",
                    et.work["index_probes"],
                    f"{reg.elapsed_seconds * 1000:.1f}",
                ]
            )
        return rows

    rows = benchmark.pedantic(sweep, iterations=1, rounds=1)
    emit(
        "vary_k",
        render_table(
            ["k", "fast-top-k-et ms", "et probes", "fast-top-k ms"],
            rows,
            title="Section 6.2.4: effect of k",
        ),
    )
    # ET work is monotone non-decreasing in k.
    probes = [r[2] for r in rows]
    assert probes == sorted(probes)


def test_instance_retrieval_by_frequency(benchmark):
    system = built_system()
    store = system.require_store()
    retriever = InstanceRetriever(system)
    tops = sorted(
        store.topologies_for_entity_pair("Protein", "DNA"),
        key=lambda t: -t.frequency,
    )
    sample = [tops[0], tops[len(tops) // 2], tops[-1]]

    def retrieve_all():
        rows = []
        for t in sample:
            start = time.perf_counter()
            instances = retriever.instances(t.tid, limit=200, per_pair_limit=4)
            elapsed = (time.perf_counter() - start) * 1000
            rows.append([t.tid, t.frequency, len(instances), f"{elapsed:.1f}"])
        return rows

    rows = benchmark.pedantic(retrieve_all, iterations=1, rounds=1)
    emit(
        "instance_retrieval",
        render_table(
            ["tid", "frequency", "instances", "ms"],
            rows,
            title="Section 6.2.4: instance retrieval vs topology frequency",
        ),
    )
    # More frequent topologies yield at least as many instances.
    assert rows[0][2] >= rows[-1][2]
    for row in rows:
        assert row[2] >= 1
