"""Plan cache + calibration benchmark: planning time saved, opt regret.

The paper's online argument (Section 5.4) is that the cost-based choice
between the regular and ET plans tracks the better of the two.  This
harness measures the two additions the plan layer makes on top:

* **Plan caching** — repeated same-class traffic must skip the System-R
  enumeration and both DGJ dynamic programs: the mean per-query planning
  time with the cache warm must be at least ``PLANNING_SPEEDUP_FLOOR``
  times lower than with the cache cold (the acceptance criterion).
* **Calibration** — after observing each strategy's real work counters
  on a seeded workload, the planner's chosen alternative must be the
  observed-cheapest at least as often as before calibration, and the
  total excess work ("regret") must not grow.

Machine-readable results land in ``BENCH_plan_cache.json`` at the repo
root so the trajectory is tracked across PRs.
"""

from __future__ import annotations

from typing import Dict, List

from repro.analysis import render_table
from repro.core import KeywordConstraint, NoConstraint, TopologyQuery
from repro.core.methods.et import FastTopKEtMethod
from repro.core.plan import work_units

from benchmarks.common import emit, emit_json, private_system

PLANNING_SPEEDUP_FLOOR = 5.0

KEYWORDS = ["kinase", "binding", "human", "putative", "conserved", "receptor"]


def _same_class_queries(n: int = 9) -> List[TopologyQuery]:
    """One plan class: identical constraint shapes and selectivities,
    k varying inside one power-of-two bucket (5..8)."""
    return [
        TopologyQuery(
            "Protein",
            "DNA",
            KeywordConstraint("DESC", "kinase"),
            NoConstraint(),
            k=5 + (i % 4),
            ranking="freq",
        )
        for i in range(n)
    ]


def _diverse_workload() -> List[TopologyQuery]:
    """Distinct plan classes with different selectivities/k/rankings."""
    queries = []
    for i, keyword in enumerate(KEYWORDS):
        queries.append(
            TopologyQuery(
                "Protein",
                "DNA",
                KeywordConstraint("DESC", keyword),
                NoConstraint(),
                k=3 + 2 * (i % 3),
                ranking=("freq", "rare")[i % 2],
            )
        )
    return queries


def test_plan_cache_planning_speedup(benchmark):
    system = private_system()
    # Freeze calibration during timing: a mid-run version bump would
    # (correctly) invalidate cached plans and contaminate the numbers.
    system.calibration_enabled = False
    queries = _same_class_queries()

    # Cold: every query re-plans (cache dropped each time).
    cold: List[float] = []
    for query in queries:
        system.invalidate_plans()
        cold.append(system.search(query, "fast-top-k-opt").planning_seconds)

    # Warm: plan once, then same-class traffic hits the plan cache.
    system.invalidate_plans()
    hits_before = system.plan_cache_stats().hits
    system.search(queries[0], "fast-top-k-opt")

    def run_warm():
        return [
            system.search(q, "fast-top-k-opt").planning_seconds
            for q in queries[1:]
        ]

    warm = benchmark.pedantic(run_warm, iterations=1, rounds=1)
    hits = system.plan_cache_stats().hits - hits_before
    cold_mean = sum(cold) / len(cold)
    warm_mean = sum(warm) / len(warm)
    speedup = cold_mean / warm_mean
    saved_ms = (cold_mean - warm_mean) * len(warm) * 1e3

    emit(
        "plan_cache_speedup",
        render_table(
            ["metric", "value"],
            [
                ["cold planning mean", f"{cold_mean * 1e3:.3f} ms"],
                ["warm planning mean", f"{warm_mean * 1e3:.3f} ms"],
                ["planning speedup", f"{speedup:.1f}x (floor {PLANNING_SPEEDUP_FLOOR:.0f}x)"],
                ["planning time saved", f"{saved_ms:.2f} ms over {len(warm)} queries"],
                ["plan cache hits", str(hits)],
            ],
            title="Plan cache: same-class traffic skips the optimizer",
        ),
    )
    emit_json(
        "plan_cache",
        {
            "planning": {
                "cold_mean_seconds": cold_mean,
                "warm_mean_seconds": warm_mean,
                "speedup": speedup,
                "speedup_floor": PLANNING_SPEEDUP_FLOOR,
                "cache_hits": hits,
                "queries": len(queries),
            }
        },
    )
    assert hits >= len(warm)
    assert speedup >= PLANNING_SPEEDUP_FLOOR, (
        f"plan cache must cut planning overhead >= {PLANNING_SPEEDUP_FLOOR}x; "
        f"got {speedup:.1f}x ({cold_mean * 1e3:.3f} ms -> {warm_mean * 1e3:.3f} ms)"
    )


def test_calibration_reduces_opt_regret():
    system = private_system()
    system.restore_calibration(None)  # clean slate, plans dropped
    workload = _diverse_workload()

    # Uncalibrated choices.
    before = [system.explain(q, "fast-top-k-opt").strategy for q in workload]

    # Ground truth: run every strategy once per query and record its
    # observed work.  These executions are exactly the feedback the
    # calibrator learns from.
    observed: List[Dict[str, float]] = []
    for query in workload:
        per_strategy = {
            "regular": work_units(system.search(query, "fast-top-k").work)
        }
        for flavor in ("idgj", "hdgj"):
            method = FastTopKEtMethod(system, flavor=flavor)
            per_strategy[f"et-{flavor}"] = work_units(method.run(query).work)
        observed.append(per_strategy)

    # Calibrated choices.
    system.invalidate_plans()
    after = [system.explain(q, "fast-top-k-opt").strategy for q in workload]

    def optimal_picks(choices: List[str]) -> int:
        return sum(
            1
            for choice, obs in zip(choices, observed)
            if obs[choice] <= min(obs.values())
        )

    def total_regret(choices: List[str]) -> float:
        return sum(
            obs[choice] - min(obs.values())
            for choice, obs in zip(choices, observed)
        )

    rows = []
    for query, b, a, obs in zip(workload, before, after, observed):
        best = min(obs, key=obs.get)
        rows.append(
            [
                query.constraint1.to_sql("p")[:34],
                f"k={query.k}/{query.ranking}",
                b,
                a,
                best,
                f"{obs[best]:.0f}",
            ]
        )
    emit(
        "plan_cache_regret",
        render_table(
            ["constraint", "params", "uncalibrated", "calibrated", "observed best", "best work"],
            rows,
            title="Opt-choice regret before/after calibration",
        )
        + (
            f"\noptimal picks: {optimal_picks(before)}/{len(workload)} -> "
            f"{optimal_picks(after)}/{len(workload)}; "
            f"regret (work units): {total_regret(before):.0f} -> {total_regret(after):.0f}"
        ),
    )
    emit_json(
        "plan_cache",
        {
            "calibration": {
                "workload": len(workload),
                "optimal_picks_before": optimal_picks(before),
                "optimal_picks_after": optimal_picks(after),
                "regret_before_work_units": total_regret(before),
                "regret_after_work_units": total_regret(after),
                "factors": system.calibrator.snapshot()["strategies"],
            }
        },
    )
    assert optimal_picks(after) >= optimal_picks(before)
    assert total_regret(after) <= total_regret(before) + 1e-9
