"""Figure 8 + Section 3.1 counts: possible topologies from the schema.

Paper claims reproduced in shape:
* 10 schema paths of length ≤ 3 between Protein and DNA (exact),
* all possible 2-topologies enumerable (Figure 8; 7 on our schema),
* possible 3-topologies explode combinatorially with class mixing
  (the paper's 88453), while only a few hundred are ever observed.
"""

from __future__ import annotations

from repro.analysis import render_table
from repro.biozon import biozon_schema_graph
from repro.graph import enumerate_possible_topologies, enumerate_schema_paths

from benchmarks.common import built_system, emit


def test_fig08_two_topologies(benchmark):
    schema = biozon_schema_graph()
    tops = benchmark(enumerate_possible_topologies, schema, "Protein", "DNA", 2)
    assert len(tops) == 7
    rows = [
        [i + 1, t.num_classes, len(t.form[0]), len(t.form[1])]
        for i, t in enumerate(sorted(tops, key=lambda t: (t.num_classes, t.form)))
    ]
    emit(
        "fig08_two_topologies",
        render_table(
            ["#", "classes", "nodes", "edges"],
            rows,
            title="Figure 8: all possible 2-topologies relating Protein and DNA",
        ),
    )


def test_schema_path_counts(benchmark):
    schema = biozon_schema_graph()
    paths = benchmark(enumerate_schema_paths, schema, "Protein", "DNA", 3)
    assert len(paths) == 10  # the paper's "ten schema paths"
    emit(
        "schema_paths_l3",
        render_table(
            ["len", "path"],
            [[p.length, p.display()] for p in paths],
            title="Schema paths of length <= 3 between Protein and DNA (paper: 10)",
        ),
    )


def test_possible_vs_observed_growth(benchmark):
    """The SQL method's core problem: possible topologies explode with
    class mixing while observed topologies stay small."""
    schema = biozon_schema_graph()

    def enumerate_capped():
        return {
            size: len(
                enumerate_possible_topologies(
                    schema, "Protein", "DNA", 3, max_subset_size=size
                )
            )
            for size in (1, 2)
        }

    counts = benchmark(enumerate_capped)
    system = built_system()
    observed = len(system.require_store().topologies_for_entity_pair("Protein", "DNA"))
    rows = [
        ["possible (1 class)", counts[1]],
        ["possible (<=2 classes mixed)", counts[2]],
        ["possible (all 10 mixed)", "~10^4-10^5 (paper: 88453; capped here)"],
        ["observed in synthetic data", observed],
    ]
    emit(
        "possible_vs_observed",
        render_table(["population", "count"], rows,
                     title="Possible vs observed 3-topologies (Protein-DNA)"),
    )
    assert counts[2] > counts[1] * 4
    assert counts[1] == 10
