"""Observability overhead benchmark: what tracing + metrics cost.

The observability layer is only free if nobody pays for it on the hot
path, so this harness drives the ``bench_http`` socket workload with
tracing enabled (the default) and disabled and pins the closed-loop
throughput regression at ≤5%.

Measurement protocol — this box is a single, slow core (see the
benchmark notes), and its speed drifts by ±10-15% on the timescale of a
benchmark round, so mode A and mode B must never be separated in time:

* Requests run in **adjacent pairs**: the same query traced then
  untraced, back to back, with the within-pair order alternating every
  pair (ABBA) so any first-run penalty hits both modes equally.  Drift
  slower than a couple of milliseconds cancels inside each pair.
* The workload is **cache-mixed like production**: six repeating
  queries (result-cache hits, the worst case for fixed per-request
  overhead) plus every 8th pair a cache-busting unique-keyword query
  that runs the engine.  Both sides of a busting pair use distinct
  keywords so both actually execute.
* The worst 5% of pairs by |delta| are **trimmed symmetrically**: a
  scheduler stall lands on one side of one pair and would otherwise
  swing the total by more than the effect being measured.
* Overhead = Σdelta / Σuntraced over the kept pairs — exactly the
  closed-loop throughput regression, weighted by where the time goes.

The ceiling is *enforced* at non-tiny scale; at tiny scale the engine
work is so small that per-request jitter swamps the signal, so the
number is report-only.  A concurrent 4-client round per mode and the
``GET /metrics`` scrape cost are also reported (never enforced:
multi-client walls on one core carry scheduler noise well above 5%).

Machine-readable results land in ``BENCH_observability.json`` at the
repo root.
"""

from __future__ import annotations

import itertools
import threading
import time
from typing import Dict, List, Tuple

from repro.analysis import render_table
from repro.obs import tracer as obs_tracer
from repro.service import TopologyServer
from repro.service.http import HttpServerThread, create_app

from benchmarks.common import bench_scale, emit, emit_json, private_system
from benchmarks.bench_http import WORKLOAD, _Client

PAIRS = 320
MISS_EVERY = 8  # every 8th pair busts the result cache
TRIM_FRACTION = 0.05
OVERHEAD_CEILING = 0.05
CONCURRENT_CLIENTS = 4
CONCURRENT_REQUESTS_PER_CLIENT = 40
SCRAPES = 20

_uncached = itertools.count()


def _fresh_server() -> TopologyServer:
    server = TopologyServer(private_system())
    server.system.calibration_enabled = False  # pin plan choices
    server.system.restore_calibration(None)
    return server


def _busting_body() -> dict:
    """A query no cache has seen: unique keyword, so the engine runs."""
    body = dict(WORKLOAD[0])
    body["constraint1"] = {
        "kind": "keyword",
        "column": "DESC",
        "keyword": f"uncached{next(_uncached)}",
    }
    return body


def _paired_overhead(base_url: str) -> Dict[str, float]:
    """Run the paired traced/untraced loop; see the module docstring."""
    client = _Client(base_url)
    tracer = obs_tracer()
    try:
        def post(body: dict) -> float:
            status, _, seconds = client.post("/query", body)
            assert status == 200
            return seconds

        for i in range(50):  # warm: caches, code paths
            post(WORKLOAD[i % len(WORKLOAD)])

        deltas: List[float] = []
        untraced: List[float] = []
        try:
            for i in range(PAIRS):
                busting = i % MISS_EVERY == MISS_EVERY - 1

                def timed(mode: bool) -> float:
                    tracer.enabled = mode
                    return post(_busting_body() if busting else WORKLOAD[i % 6])

                if i % 2 == 0:  # ABBA within pairs
                    on, off = timed(True), timed(False)
                else:
                    off, on = timed(False), timed(True)
                deltas.append(on - off)
                untraced.append(off)
        finally:
            tracer.enabled = True
    finally:
        client.close()

    kept = sorted(range(PAIRS), key=lambda j: abs(deltas[j]))
    kept = kept[: PAIRS - int(PAIRS * TRIM_FRACTION)]
    sum_delta = sum(deltas[j] for j in kept)
    sum_off = sum(untraced[j] for j in kept)
    return {
        "pairs": PAIRS,
        "pairs_kept": len(kept),
        "sum_untraced_seconds": sum_off,
        "sum_delta_seconds": sum_delta,
        "overhead_fraction": sum_delta / sum_off,
        "traced_rps": len(kept) / (sum_off + sum_delta),
        "untraced_rps": len(kept) / sum_off,
    }


def _concurrent_wall(base_url: str) -> float:
    """One multi-client closed-loop round; all-200 enforced."""
    statuses: List[int] = []
    lock = threading.Lock()
    barrier = threading.Barrier(CONCURRENT_CLIENTS + 1)

    def client_thread(offset: int) -> None:
        client = _Client(base_url)
        try:
            barrier.wait()
            local = []
            for i in range(CONCURRENT_REQUESTS_PER_CLIENT):
                status, _, _ = client.post(
                    "/query", WORKLOAD[(offset + i) % len(WORKLOAD)]
                )
                local.append(status)
            with lock:
                statuses.extend(local)
        finally:
            client.close()

    threads = [
        threading.Thread(target=client_thread, args=(n,))
        for n in range(CONCURRENT_CLIENTS)
    ]
    for thread in threads:
        thread.start()
    barrier.wait()
    start = time.perf_counter()
    for thread in threads:
        thread.join()
    wall = time.perf_counter() - start
    assert statuses == [200] * (CONCURRENT_CLIENTS * CONCURRENT_REQUESTS_PER_CLIENT)
    return wall


def test_tracing_overhead_closed_loop():
    """Traced vs untraced closed loop, ≤5% enforced at non-tiny scale."""
    concurrent: Dict[str, float] = {}
    with _fresh_server() as server:
        with create_app(server, max_concurrency=CONCURRENT_CLIENTS + 2) as app:
            with HttpServerThread(app) as base_url:
                result = _paired_overhead(base_url)
                try:
                    for mode in (True, False):
                        obs_tracer().enabled = mode
                        concurrent["on" if mode else "off"] = _concurrent_wall(
                            base_url
                        )
                finally:
                    obs_tracer().enabled = True

    overhead = result["overhead_fraction"]
    enforced = bench_scale() != "tiny"
    concurrent_total = CONCURRENT_CLIENTS * CONCURRENT_REQUESTS_PER_CLIENT

    emit(
        "observability_overhead",
        render_table(
            ["metric", "value"],
            [
                ["request pairs (traced/untraced, adjacent)", str(PAIRS)],
                ["pairs kept after 5% stall trim", str(result["pairs_kept"])],
                ["cache-busting pairs", f"1 in {MISS_EVERY}"],
                ["throughput, tracing on", f"{result['traced_rps']:.1f} req/s"],
                ["throughput, tracing off", f"{result['untraced_rps']:.1f} req/s"],
                ["overhead", f"{overhead * 100:.2f} %"],
                ["ceiling", f"{OVERHEAD_CEILING * 100:.0f} % "
                            f"({'enforced' if enforced else 'report-only at tiny'})"],
                [f"concurrent ({CONCURRENT_CLIENTS} clients), tracing on",
                 f"{concurrent_total / concurrent['on']:.1f} req/s (report-only)"],
                [f"concurrent ({CONCURRENT_CLIENTS} clients), tracing off",
                 f"{concurrent_total / concurrent['off']:.1f} req/s (report-only)"],
            ],
            title="Closed-loop HTTP throughput: tracing on vs off",
        ),
    )
    emit_json(
        "observability",
        {
            "overhead": dict(
                result,
                ceiling_fraction=OVERHEAD_CEILING,
                enforced=enforced,
                miss_every=MISS_EVERY,
                concurrent_clients=CONCURRENT_CLIENTS,
                concurrent_traced_rps=concurrent_total / concurrent["on"],
                concurrent_untraced_rps=concurrent_total / concurrent["off"],
            )
        },
    )
    if enforced:
        assert overhead <= OVERHEAD_CEILING, (
            f"tracing costs {overhead * 100:.2f}% closed-loop throughput "
            f"(ceiling {OVERHEAD_CEILING * 100:.0f}%)"
        )


def test_metrics_scrape_cost():
    """GET /metrics wall time with a warm registry — report-only."""
    with _fresh_server() as server:
        with create_app(server) as app:
            with HttpServerThread(app) as base_url:
                client = _Client(base_url)
                try:
                    # Populate every family the scrape will render.
                    for body in WORKLOAD:
                        status, _, _ = client.post("/query", body)
                        assert status == 200

                    timings: List[Tuple[int, float]] = []
                    sizes: List[int] = []
                    for _ in range(SCRAPES):
                        start = time.perf_counter()
                        client.conn.request("GET", "/metrics")
                        response = client.conn.getresponse()
                        data = response.read()
                        timings.append(
                            (response.status, time.perf_counter() - start)
                        )
                        sizes.append(len(data))
                finally:
                    client.close()

    assert all(status == 200 for status, _ in timings)
    best = min(seconds for _, seconds in timings)
    mean = sum(seconds for _, seconds in timings) / len(timings)
    emit(
        "observability_scrape",
        render_table(
            ["metric", "value"],
            [
                ["scrapes", str(SCRAPES)],
                ["best", f"{best * 1000:.2f} ms"],
                ["mean", f"{mean * 1000:.2f} ms"],
                ["exposition size", f"{sizes[-1]} bytes"],
            ],
            title="GET /metrics scrape cost (warm registry)",
        ),
    )
    emit_json(
        "observability",
        {
            "scrape": {
                "scrapes": SCRAPES,
                "best_seconds": best,
                "mean_seconds": mean,
                "exposition_bytes": sizes[-1],
            }
        },
    )
