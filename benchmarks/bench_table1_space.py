"""Table 1: space requirements of Full-Top (AllTops) vs Fast-Top
(LeftTops + ExcpTops), per entity-set pair.

The paper's ratios run from 0.1% to 6.8%; the synthetic data is far
smaller and less skewed, so the asserted shape is: pruning reduces the
stored rows substantially, and the exception table stays a small
fraction of what was pruned away."""

from __future__ import annotations

from repro.analysis import render_table
from repro.core import TopologySearchSystem, apply_pruning, compute_alltops

from benchmarks.common import FIG11_PAIRS, dataset, emit


def test_table1_space_requirements(benchmark):
    ds = dataset()

    def offline_phase():
        reports = {}
        for es1, es2 in FIG11_PAIRS:
            store, _ = compute_alltops(ds.graph(), [(es1, es2)], 3)
            report = apply_pruning(store)
            reports[(es1, es2)] = (store, report)
        return reports

    reports = benchmark.pedantic(offline_phase, iterations=1, rounds=1)

    rows = []
    total_all = total_kept = 0
    for (es1, es2), (store, report) in reports.items():
        ratio = report.space_ratio
        rows.append(
            [
                es1,
                es2,
                report.alltops_rows,
                report.lefttops_rows,
                report.excptops_rows,
                len(report.pruned_tids),
                f"{100 * ratio:.1f}%",
            ]
        )
        total_all += report.alltops_rows
        total_kept += report.lefttops_rows + report.excptops_rows
    emit(
        "table1_space",
        render_table(
            ["object", "object", "AllTops", "LeftTops", "ExcpTops", "pruned", "ratio"],
            rows,
            title="Table 1: space requirement (rows) per entity-set pair",
        ),
    )

    # Shape: pruning must help overall, and exceptions must not erase
    # the savings.
    assert total_kept < total_all
    for (_, _), (store, report) in reports.items():
        if report.pruned_tids:
            removed = report.alltops_rows - report.lefttops_rows
            assert report.excptops_rows <= removed
