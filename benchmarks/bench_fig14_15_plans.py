"""Figures 14-15: the regular optimizer's plan vs the DGJ plans.

Figure 14 shows DB2/SQL Server evaluating SQL4 with hash joins plus a
final sort — all topologies processed, top-k applied last.  Figure 15
shows the DGJ alternatives (IDGJ stack; HDGJ mix).  We print both plan
trees from our engine and assert their structural signatures."""

from __future__ import annotations

from repro.core import KeywordConstraint, TopologyQuery
from repro.core.methods.et import FastTopKEtMethod
from repro.core.methods.topk import FastTopKMethod
from repro.relational.sql.parser import parse

from benchmarks.common import built_system, emit


QUERY = TopologyQuery(
    "Protein",
    "Interaction",
    KeywordConstraint("DESC", "binding"),
    KeywordConstraint("DESC", "direct"),
    k=10,
    ranking="freq",
)


def test_fig14_regular_plan_shape(benchmark):
    system = built_system()
    method = FastTopKMethod(system)
    sql = method.unpruned_sql(QUERY)

    def plan_it():
        query = parse(sql)
        plan, _ = system.engine.planner.plan(query)
        return plan

    plan = benchmark(plan_it)
    text = plan.explain()
    emit("fig14_regular_plan", "SQL4 under the regular optimizer:\n" + text)
    # The Figure-14 signature: join-based plan with a final top-k sort,
    # no early-termination operators.
    assert "TopN" in text or "Sort" in text
    assert "IDGJ" not in text and "HDGJ" not in text
    assert "Join" in text


def test_fig15_dgj_plan_shapes(benchmark):
    system = built_system()

    def build_stacks():
        idgj = FastTopKEtMethod(system, flavor="idgj").build_stack(QUERY)
        hdgj = FastTopKEtMethod(system, flavor="hdgj").build_stack(QUERY)
        return idgj, hdgj

    idgj, hdgj = benchmark(build_stacks)
    idgj_text = idgj.explain()
    hdgj_text = hdgj.explain()
    emit(
        "fig15_dgj_plans",
        "Figure 15(a) IDGJ stack:\n" + idgj_text + "\n\n"
        "Figure 15(b) HDGJ variant:\n" + hdgj_text,
    )
    # Both stacks sit on the score-ordered TopInfo scan.
    assert "OrderedIndexScan(TopInfo" in idgj_text
    assert idgj_text.count("IDGJ") == 3  # LeftTops + two entity levels
    assert "HDGJ" in hdgj_text
    assert "OrderedIndexScan(TopInfo" in hdgj_text
