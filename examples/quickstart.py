"""Quickstart: the paper's running example (Figures 3-5), end to end.

Loads the exact Figure-3 database, runs the offline phase, evaluates
query Q1 = {(Protein, desc contains 'enzyme'), (DNA, type = 'mRNA')},
and prints the four topology results T1-T4 with their witnessing pairs —
exactly the output Section 2.2 derives by hand.  It then snapshots the
built system to disk, restores it in milliseconds, and serves the same
query through the cached :class:`TopologyService`.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import os
import tempfile

from repro.biozon import build_figure3_database
from repro.core import (
    AttributeConstraint,
    InstanceRetriever,
    KeywordConstraint,
    TopologyQuery,
    TopologySearchSystem,
)
from repro.persist import load_system, save_system, snapshot_info
from repro.service import TopologyService


def main() -> None:
    # 1. Load the example database (paper Figure 3).
    db = build_figure3_database()
    print(f"Loaded {db.name}: {sorted(db.table_names())}\n")

    # 2. Offline phase: Topology Computation + Pruning (paper Figure 10).
    system = TopologySearchSystem(db)
    report = system.build([("Protein", "DNA")], max_length=3)
    print(
        f"Offline phase: {report.alltops.pairs_related} related pairs, "
        f"{report.alltops.distinct_topologies} distinct topologies "
        f"({report.elapsed_seconds:.3f}s)\n"
    )

    # 3. The paper's query Q1 (Example 2.1).
    query = TopologyQuery(
        "Protein",
        "DNA",
        KeywordConstraint("DESC", "enzyme"),
        AttributeConstraint("TYPE", "mRNA"),
    )
    print(f"Query: {query.describe()}\n")

    # 4. Evaluate with Fast-Top (Section 4.3) and show the topologies.
    result = system.search(query, method="fast-top")
    retriever = InstanceRetriever(system)
    print(f"{len(result.tids)} topology results (paper: T1, T2, T3, T4):\n")
    for tid in result.tids:
        topology = system.topology(tid)
        pairs = retriever.pairs_for_topology(tid)
        print(f"  T{tid}  ({topology.num_classes} class(es), freq {topology.frequency})")
        print(f"      structure: {topology.display()}")
        print(f"      witnessed by pairs: {pairs}")
    print()

    # 5. Drill into the most complex topology's instances.
    richest = max(result.tids, key=lambda t: system.topology(t).num_edges)
    instances = retriever.instances(richest, query=query)
    print(f"Instances of T{richest}:")
    for inst in instances:
        print(f"  entities {sorted(map(str, inst.entities()))}")

    # 6. Same query, top-2 by rarity, via the cost-based optimizer —
    #    and EXPLAIN: the chosen plan with every alternative's cost.
    topk = TopologyQuery(
        "Protein",
        "DNA",
        KeywordConstraint("DESC", "enzyme"),
        AttributeConstraint("TYPE", "mRNA"),
        k=2,
        ranking="rare",
    )
    ranked = system.search(topk, method="fast-top-k-opt")
    print(f"\nTop-2 by rarity: {ranked.tids} (strategy: {ranked.plan.strategy})")
    print("\n" + system.explain(topk, "fast-top-k-opt").display(topk))

    # 7. Persist the offline phase: save once, cold-start from the
    #    snapshot ever after (no rebuild).
    path = os.path.join(tempfile.mkdtemp(prefix="repro-quickstart-"), "fig3.topo")
    save_system(system, path)
    info = snapshot_info(path)
    print(
        f"\nSaved snapshot {path} "
        f"({info.file_bytes} bytes, {info.topologies} topologies)"
    )
    restored = load_system(path)
    same = restored.search(query, method="fast-top")
    print(f"Restored system answers identically: {same.tids == result.tids}")

    # 8. Serve queries through the cached service facade.
    service = TopologyService(restored, cache_size=64)
    service.query(topk)   # engine execution (miss)
    service.query(topk)   # LRU cache hit
    stats = service.cache_stats()
    print(
        f"Service cache: {stats.hits} hit(s), {stats.misses} miss(es), "
        f"hit rate {stats.hit_rate:.0%}"
    )


if __name__ == "__main__":
    main()
