"""Discovering the Figure-16 motif: operon self-regulation systems.

Section 6.2.1 describes the payoff of topology search: a biologist
browsing Domain-ranked topologies found a subgraph of "two proteins
that are encoded by the same DNA sequence, and also interact with each
other" — the signature of operons and viral genomes whose products are
co-regulated.

This example generates a synthetic Biozon-style database with planted
operon systems, runs an *unconstrained* Protein-DNA topology query
ranked by the Domain scheme, and shows that the operon motif surfaces
near the top — then retrieves its concrete instances and checks them
against the generator's ground truth.

Run:  python examples/operon_discovery.py
"""

from __future__ import annotations

from repro.biozon import BiozonConfig, generate
from repro.core import (
    InstanceRetriever,
    NoConstraint,
    TopologyQuery,
    TopologySearchSystem,
)


def main() -> None:
    # A mid-sized synthetic database with planted operon systems.
    ds = generate(BiozonConfig.small(seed=21))
    print(
        f"Synthetic Biozon: {ds.graph().node_count} entities, "
        f"{ds.graph().edge_count} relationships, "
        f"{len(ds.truth.operons)} planted operon systems\n"
    )

    system = TopologySearchSystem(ds.database, ds.graph())
    report = system.build([("Protein", "DNA")], max_length=3)
    print(
        f"Offline phase: {report.alltops.distinct_topologies} topologies "
        f"in {report.elapsed_seconds:.2f}s\n"
    )

    # Ask the open question: "how are proteins related to DNAs?"
    # ranked by biological interest.
    query = TopologyQuery(
        "Protein", "DNA", NoConstraint(), NoConstraint(), k=10, ranking="domain"
    )
    result = system.search(query, "fast-top-k-opt")
    print("Top-10 topologies by Domain score:")
    cyclic = []
    for rank, (tid, score) in enumerate(result.ranked, start=1):
        topology = system.topology(tid)
        has_cycle = topology.num_edges >= topology.num_nodes
        has_interaction = any(
            etype.startswith("interacts") for _, _, etype in topology.form[1]
        )
        marker = " <-- feedback motif" if has_cycle and has_interaction else ""
        if has_cycle and has_interaction:
            cyclic.append(tid)
        print(
            f"  #{rank:<2} T{tid:<4} score={score:.3f} "
            f"classes={topology.num_classes} "
            f"nodes={topology.num_nodes}{marker}"
        )

    if not cyclic:
        print("\nNo feedback motif in the top 10 on this seed.")
        return

    # Drill into the best feedback motif: its instances should be the
    # planted operons.
    motif = cyclic[0]
    print(f"\nStructure of T{motif}:")
    print(f"  {system.topology(motif).display()}")

    retriever = InstanceRetriever(system)
    instances = retriever.instances(motif, limit=20, per_pair_limit=2)
    planted_dnas = {o.dna_id for o in ds.truth.operons}
    hits = 0
    print(f"\nInstances of T{motif} ({len(instances)} shown):")
    for inst in instances:
        entities = set(inst.entities())
        overlap = entities & planted_dnas
        if overlap:
            hits += 1
        print(
            f"  pair ({inst.e1}, {inst.e2}) entities={sorted(map(str, entities))}"
            + ("   [planted operon]" if overlap else "")
        )
    print(
        f"\n{hits}/{len(instances)} instances coincide with planted operon "
        f"systems — the motif the paper's biologist flagged as worth "
        f"further investigation."
    )


if __name__ == "__main__":
    main()
