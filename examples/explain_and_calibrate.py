"""Explain your query, then let execution feedback recalibrate it.

Walks the plan layer end to end on a synthetic Biozon instance:

1. ``explain()`` — the cost-based optimizer's chosen plan with every
   alternative's estimated cost, rendered as a Figure-14/15-style tree;
2. plan caching — repeated same-class queries skip the optimizer
   (watch ``planning_seconds`` collapse and the plan-cache hits climb);
3. calibration — each execution feeds (estimated cost, observed work)
   to the :class:`~repro.core.plan.CostCalibrator`; its learned
   per-strategy factors shift the next planning round;
4. persistence — the learned factors ride along in a snapshot, so a
   cold-started service plans with them immediately.

Run:  python examples/explain_and_calibrate.py
"""

from __future__ import annotations

import os
import tempfile

from repro.biozon import BiozonConfig, generate
from repro.core import (
    KeywordConstraint,
    NoConstraint,
    TopologyQuery,
    TopologySearchSystem,
)
from repro.service import TopologyService


def main() -> None:
    ds = generate(BiozonConfig.tiny(seed=4))
    system = TopologySearchSystem(ds.database, ds.graph())
    system.build([("Protein", "DNA")], max_length=3)

    query = TopologyQuery(
        "Protein",
        "DNA",
        KeywordConstraint("DESC", "kinase"),
        NoConstraint(),
        k=5,
        ranking="freq",
    )

    # 1. EXPLAIN: the plan search() would execute, costs included.
    print("=== EXPLAIN (uncalibrated) ===")
    print(system.explain(query, "fast-top-k-opt").display(query))

    # 2. Plan caching: same-class queries skip the optimizer.
    system.invalidate_plans()  # drop the plan explain() just cached
    first = system.search(query, "fast-top-k-opt")
    repeat = system.search(
        TopologyQuery(
            "Protein", "DNA",
            KeywordConstraint("DESC", "kinase"), NoConstraint(),
            k=7, ranking="freq",                 # same class: k-bucket 8
        ),
        "fast-top-k-opt",
    )
    stats = system.plan_cache_stats()
    print(
        f"\nPlanning: {first.planning_seconds * 1e3:.3f} ms cold -> "
        f"{repeat.planning_seconds * 1e3:.3f} ms warm "
        f"(plan cache: {stats.hits} hits / {stats.misses} misses)"
    )

    # 3. Calibration: run each strategy so the calibrator sees real
    #    work counters, then re-plan with the learned factors.
    from repro.core.methods.et import FastTopKEtMethod

    for _ in range(3):
        system.search(query, "fast-top-k")                      # regular
        FastTopKEtMethod(system, flavor="idgj").run(query)      # et-idgj
        FastTopKEtMethod(system, flavor="hdgj").run(query)      # et-hdgj
    system.invalidate_plans()
    print("\n=== EXPLAIN (calibrated) ===")
    print(system.explain(query, "fast-top-k-opt").display(query))
    print("\nLearned factors:", system.calibrator.snapshot()["strategies"])

    # 4. Persistence: the factors survive a snapshot round trip.
    path = os.path.join(tempfile.mkdtemp(prefix="repro-explain-"), "calibrated.topo")
    system.save(path)
    service = TopologyService.from_snapshot(path)
    restored_factors = service.calibration_stats()["strategies"]
    print(f"\nRestored service keeps its calibration: {restored_factors}")
    print(
        "Restored choice:",
        service.explain(query, "fast-top-k-opt").strategy,
    )


if __name__ == "__main__":
    main()
