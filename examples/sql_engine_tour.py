"""Tour of the relational substrate: SQL, plans, and DGJ operators.

The paper's system lives *inside* a relational engine; this example
exercises that engine directly — the SQL subset, EXPLAIN output, the
System-R optimizer's choices at different selectivities, and a
hand-built DGJ stack with early termination (Section 5.3).

Run:  python examples/sql_engine_tour.py
"""

from __future__ import annotations

from repro.biozon import BiozonConfig, generate
from repro.core import KeywordConstraint, NoConstraint, TopologyQuery, TopologySearchSystem
from repro.relational.expressions import ColumnRef, Comparison, Literal
from repro.relational.operators import FirstPerGroup, GroupFilter, IDGJ, OrderedIndexScan
from repro.relational.sql import sql_quote


def main() -> None:
    ds = generate(BiozonConfig.small(seed=7))
    system = TopologySearchSystem(ds.database, ds.graph())
    system.build([("Protein", "DNA")], max_length=3)
    engine = system.engine
    db = system.database

    print("=== 1. Plain SQL over the Biozon tables ===\n")
    sql = (
        "SELECT P.ID, D.ID FROM Protein P, Encodes E, DNA D "
        "WHERE CONTAINS(P.DESC, 'kinase') AND D.TYPE = 'genomic' "
        "AND P.ID = E.PID AND D.ID = E.DID FETCH FIRST 5 ROWS ONLY"
    )
    result = engine.execute(sql)
    print(sql)
    print(f"-> {len(result.rows)} rows: {result.rows}\n")

    print("=== 2. EXPLAIN: optimizer choices track selectivity ===\n")
    for keyword, label in (("kinase", "selective ~15%"), ("human", "unselective ~85%")):
        sql = (
            f"SELECT P.ID FROM Protein P, Encodes E "
            f"WHERE CONTAINS(P.DESC, {sql_quote(keyword)}) AND P.ID = E.PID"
        )
        print(f"-- protein predicate {label}")
        print(engine.explain(sql))
        print()

    print("=== 3. The derived topology tables are ordinary tables ===\n")
    r = engine.execute(
        "SELECT T.TID, T.FREQ, T.NCLASSES FROM TopInfo T "
        "WHERE T.ES1 = 'Protein' AND T.ES2 = 'DNA' "
        "ORDER BY T.FREQ DESC FETCH FIRST 5 ROWS ONLY"
    )
    print("Top-5 most frequent topologies (via SQL over TopInfo):")
    for tid, freq, ncls in r.rows:
        print(f"  TID {tid:<4} freq {freq:<6} classes {ncls}")
    print()

    print("=== 4. A hand-built DGJ stack (Figure 15) ===\n")
    topinfo = db.table("TopInfo")
    scan = OrderedIndexScan(
        topinfo, "t", topinfo.sorted_index_on("SCORE_RARE"),
        descending=True,
        group_positions=[topinfo.schema.column_position("TID")],
        stats=db.stats,
    )
    source = GroupFilter(
        scan, Comparison("=", ColumnRef("t", "es1"), Literal("Protein"))
    )
    lefttops = db.table("LeftTops")
    j1 = IDGJ(source, lefttops, "lt", lefttops.hash_index_on(["TID"]),
              [source.layout.position("t", "tid")])
    protein = db.table("Protein")
    j2 = IDGJ(j1, protein, "p", protein.hash_index_on(["ID"]),
              [j1.layout.position("lt", "e1")])
    driver = FirstPerGroup(j2, 3)
    print(driver.explain())
    db.stats.reset()
    rows = driver.run()
    tid_pos = driver.layout.position("t", "tid")
    print(f"\nTop-3 rare topologies with a witness: {[r[tid_pos] for r in rows]}")
    print(f"Engine work: {db.stats.snapshot()}")
    print("(groups_skipped > 0 shows advance_to_next_group early termination)")


if __name__ == "__main__":
    main()
