"""Serve concurrent traffic from one shared engine, rebuilding live.

Walks :class:`~repro.service.TopologyServer` end to end on a synthetic
Biozon instance:

1. concurrent queries — 8 threads hammer the server; the result cache
   and single-flight deduplication keep engine executions at one per
   distinct query, with exact counters;
2. a thundering herd — 6 simultaneous *identical* queries plan and
   execute exactly once, everyone shares the answer;
3. a hot rebuild — the next generation builds on a cloned base while
   traffic keeps flowing, then swaps in; results are stamped with the
   generation that produced them;
4. a parallel batch — ``query_many(parallel=...)`` groups the workload
   by plan class so the optimizer runs once per class, not per query.

Run:  python examples/concurrent_serving.py
"""

from __future__ import annotations

import threading

from repro.biozon import BiozonConfig, generate
from repro.core import (
    AttributeConstraint,
    KeywordConstraint,
    TopologyQuery,
    TopologySearchSystem,
)
from repro.service import TopologyServer


def make_query(keyword: str, k: int = 4) -> TopologyQuery:
    return TopologyQuery(
        "Protein",
        "DNA",
        KeywordConstraint("DESC", keyword),
        AttributeConstraint("TYPE", "mRNA"),
        k=k,
        ranking="rare",
    )


def main() -> None:
    ds = generate(BiozonConfig.tiny(seed=4))
    system = TopologySearchSystem(ds.database, ds.graph())
    system.build([("Protein", "DNA")], max_length=3)

    workload = [make_query(kw, k) for kw in ("kinase", "binding", "human") for k in (2, 4)]

    with TopologyServer(system) as server:
        # 1. Concurrent traffic: 8 threads, repeated-shape workload.
        def reader(offset: int) -> None:
            for i in range(50):
                server.query(workload[(offset + i) % len(workload)])

        threads = [threading.Thread(target=reader, args=(n,)) for n in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        stats = server.stats()
        print("=== 8 threads, 400 requests ===")
        print(
            f"requests={stats.requests} hits={stats.result_cache.hits} "
            f"executions={stats.executions} coalesced={stats.coalesced}"
        )
        assert stats.executions == len(workload)  # one engine run per key

        # 2. Thundering herd: identical queries, single-flight.
        server.invalidate()
        barrier = threading.Barrier(6)
        herd_before = server.stats().executions

        def rush() -> None:
            barrier.wait()
            server.query(make_query("kinase"))

        herd = [threading.Thread(target=rush) for _ in range(6)]
        for t in herd:
            t.start()
        for t in herd:
            t.join()
        print("\n=== thundering herd (6 identical queries) ===")
        print(f"engine executions: {server.stats().executions - herd_before}")

        # 3. Hot rebuild: generation swap under (potential) load.
        before = server.query(make_query("kinase"))
        report = server.rebuild()
        after = server.query(make_query("kinase"))
        print("\n=== hot rebuild ===")
        print(
            f"rebuilt {report.alltops.distinct_topologies} topologies in "
            f"{report.elapsed_seconds:.2f}s; generation "
            f"{before.generation} -> {after.generation}; answers match: "
            f"{before.tids == after.tids}"
        )

        # 4. Parallel batch, grouped by plan class.
        plan_before = server.plan_cache_stats()
        results = server.query_many(workload * 3, parallel=4)
        plan_after = server.plan_cache_stats()
        print("\n=== query_many(parallel=4), 18 queries ===")
        print(
            f"results={len(results)} plan lookups="
            f"{plan_after.requests - plan_before.requests} "
            f"(plan-class grouping amortizes the optimizer)"
        )
        print(f"final generation: {server.generation}")


if __name__ == "__main__":
    main()
