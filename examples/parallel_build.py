"""Parallel offline build walk-through (and CI smoke test).

Builds the same synthetic Biozon instance twice — single-process and
with a 2-worker partitioned pool (:mod:`repro.parallel`) — verifies the
two stores are bit-identical, shows the per-partition timing report,
and round-trips the build configuration through a snapshot so a
restored service rebuilds in parallel automatically.

Run:  python examples/parallel_build.py
"""

from __future__ import annotations

import os
import tempfile

from repro.biozon import BiozonConfig, generate
from repro.core import TopologySearchSystem
from repro.persist import snapshot_info
from repro.service import TopologyService

WORKERS = 2
PAIRS = [("Protein", "DNA"), ("Protein", "Interaction")]


def fresh_system() -> TopologySearchSystem:
    ds = generate(BiozonConfig.tiny(seed=7))
    return TopologySearchSystem(ds.database, ds.graph())


def main() -> None:
    # 1. Baseline: the single-process offline phase.
    serial = fresh_system()
    report = serial.build(PAIRS, max_length=3)
    print(
        f"serial build:   {report.elapsed_seconds:.3f}s "
        f"({report.alltops.pairs_related} pairs, "
        f"{report.alltops.distinct_topologies} topologies)"
    )

    # 2. The same build, partitioned across a worker pool.
    parallel = fresh_system()
    report = parallel.build(PAIRS, max_length=3, parallel=WORKERS)
    p = report.parallel
    print(
        f"parallel build: {report.elapsed_seconds:.3f}s "
        f"({p.workers} workers, {p.partitions} partitions/pair, "
        f"merge {p.merge_seconds:.3f}s, skew {p.partition_skew():.2f})"
    )
    slowest = max(p.tasks, key=lambda t: t.elapsed_seconds)
    print(
        f"  slowest task: pair #{slowest.pair_index} "
        f"partition #{slowest.partition_index} "
        f"({slowest.sources_scanned} sources, {slowest.elapsed_seconds:.3f}s)"
    )

    # 3. The contract: bit-identical stores, not just equivalent answers.
    assert parallel.store.state_digest() == serial.store.state_digest()
    print("stores bit-identical: True")

    # 4. Snapshots record how the store was built; a restored service
    #    reuses that configuration on rebuild.
    with tempfile.TemporaryDirectory(prefix="repro-parallel-") as tmp:
        path = os.path.join(tmp, "demo.topo")
        parallel.save(path)
        info = snapshot_info(path)
        print(f"snapshot build_config: {info.build_config}")
        service = TopologyService.from_snapshot(path)
    rebuilt = service.rebuild()
    assert rebuilt.parallel is not None and rebuilt.parallel.workers == WORKERS
    assert service.system.store.state_digest() == serial.store.state_digest()
    print(f"service rebuild reused {rebuilt.parallel.workers} workers: True")


if __name__ == "__main__":
    main()
