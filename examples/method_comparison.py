"""Compare all nine query-processing methods on one workload.

Reproduces the texture of the paper's Table 2 interactively: run the
same top-k topology query through every method, verify they agree, and
report wall time plus engine work counters (rows scanned, index probes,
groups skipped).  Also shows what the cost-based optimizer chose and
why (Section 5.4).

Run:  python examples/method_comparison.py
"""

from __future__ import annotations

from repro.analysis import render_table
from repro.biozon import BiozonConfig, generate
from repro.core import (
    KeywordConstraint,
    TopologyQuery,
    TopologySearchSystem,
)
from repro.core.methods import ALL_METHOD_NAMES


def main() -> None:
    ds = generate(BiozonConfig.small(seed=7))
    system = TopologySearchSystem(ds.database, ds.graph())
    system.build([("Protein", "Interaction")], max_length=3)
    store = system.require_store()
    print(
        f"Store: {len(store.topologies)} topologies, "
        f"{len(store.pruned_tids)} pruned, "
        f"{len(store.excptops_rows)} exception rows\n"
    )

    query = TopologyQuery(
        "Protein",
        "Interaction",
        KeywordConstraint("DESC", "binding"),   # ~50% of proteins
        KeywordConstraint("DESC", "direct"),    # ~50% of interactions
        k=10,
        ranking="rare",
    )
    print(f"Query: {query.describe()}\n")

    rows = []
    reference = None
    for name in ALL_METHOD_NAMES:
        q = query
        if name in ("sql", "full-top", "fast-top"):
            # Exhaustive methods take the query without k.
            q = TopologyQuery(
                query.entity1, query.entity2,
                query.constraint1, query.constraint2,
            )
        result = system.search(q, name)
        if q.k is not None:
            if reference is None:
                reference = result.tids
            assert result.tids == reference, f"{name} disagrees!"
        rows.append(
            [
                name,
                f"{result.elapsed_seconds * 1000:.1f}",
                result.work["rows_scanned"],
                result.work["index_probes"],
                result.work["groups_skipped"],
                len(result.tids),
                result.plan.strategy,
            ]
        )

    print(
        render_table(
            ["method", "ms", "rows", "probes", "skips", "results", "strategy"],
            rows,
            title="All nine methods, one query (top-k methods must agree)",
        )
    )
    print("\nWhat the optimizer saw (EXPLAIN for fast-top-k-opt):\n")
    print(system.explain(query, "fast-top-k-opt").display(query))
    print(
        "\nReading guide: the SQL method pays for per-topology existence\n"
        "queries; Full-Top scans the big AllTops table; Fast-Top adds\n"
        "online pruned checks; the ET variants skip work via DGJ\n"
        "operators; the Opt variants pick a side using the Theorem-1\n"
        "cost model."
    )


if __name__ == "__main__":
    main()
