"""Observe a running server: traces, metrics, and the slow-query log.

Boots a 2-shard coordinator behind the HTTP app (all in-process) and
walks the observability surface end to end:

1. traced query — ``POST /query`` mints a trace at the HTTP ingress;
   the id comes back in the ``x-trace-id`` header and the response
   body, and ``GET /trace/{id}`` returns the span tree.  The
   ``shard.query`` spans were recorded inside the worker *processes*
   and shipped back with the replies — one trace across the process
   boundary;
2. metrics — ``GET /metrics`` renders every subsystem's counters from
   one consistent snapshot as Prometheus text (cache, plan cache,
   calibrator, admission gate, per-shard health, latency histogram);
3. slow queries — a threshold of 0 forces every query into the slow
   log, each record carrying its trace id, plan choice, and per-span
   breakdown.

Run:  python examples/observability.py
"""

from __future__ import annotations

import tempfile

from repro.biozon import BiozonConfig, generate
from repro.core import TopologySearchSystem
from repro.service import ShardCoordinator
from repro.service.http import TestClient, create_app
from repro.shard import split_system

NUM_SHARDS = 2

QUERY = {
    "entity1": "Protein",
    "entity2": "DNA",
    "constraint1": {"kind": "keyword", "column": "DESC", "keyword": "kinase"},
    "constraint2": {"kind": "none"},
    "k": 4,
    "ranking": "rare",
}


def print_tree(nodes, depth=0) -> None:
    for node in nodes:
        tags = {k: v for k, v in node["tags"].items() if k in ("shard", "pid")}
        suffix = f"  {tags}" if tags else ""
        print(
            f"    {'  ' * depth}{node['name']:<{24 - 2 * depth}}"
            f" {node['elapsed_seconds'] * 1000:7.2f} ms{suffix}"
        )
        print_tree(node["children"], depth + 1)


def main() -> None:
    ds = generate(BiozonConfig.tiny(seed=4))
    system = TopologySearchSystem(ds.database, ds.graph())
    system.build([("Protein", "DNA")], max_length=3)

    with tempfile.TemporaryDirectory(prefix="observability-") as directory:
        split = split_system(system, NUM_SHARDS, directory)
        with ShardCoordinator(
            split.manifest_path, slow_query_seconds=0.0
        ) as coordinator:
            with create_app(coordinator) as app, TestClient(app) as client:
                # 1. One traced query across the process boundary.
                response = client.post("/query", json=QUERY)
                trace_id = response.headers["x-trace-id"]
                print(f"POST /query -> {response.status}, trace {trace_id}")

                tree = client.get(f"/trace/{trace_id}").json()
                print(f"  GET /trace/{trace_id}: {tree['span_count']} spans")
                print_tree(tree["spans"])

                # 2. The Prometheus exposition, one consistent snapshot.
                text = client.get("/metrics").text
                lines = text.splitlines()
                print(f"\nGET /metrics: {len(lines)} lines, e.g.")
                for line in lines:
                    if line.startswith(("repro_shard_up", "repro_cache_",
                                        "repro_trace_spans_recorded")):
                        print(f"    {line}")

                # 3. The slow-query log (threshold 0: everything is slow).
                (record,) = coordinator.slow_query_log.recent()
                print(
                    f"\nslow query: trace {record['trace_id']}, "
                    f"{record['elapsed_seconds'] * 1000:.1f} ms, "
                    f"spans: {[s['name'] for s in record['spans']]}"
                )
                assert record["trace_id"] == trace_id


if __name__ == "__main__":
    main()
