"""Weak relationships at l = 4 (Section 6.2.3 / Appendix B).

Builds the paper's Figure-17 scenario — a biologically meaningful
feedback motif plus a weak ``P-D-P-U-D`` path — and shows:

1. at l = 3 the motif is a single clean topology,
2. at l = 4 the weak path splits it into diluted variants,
3. applying the Table-4 domain rules recovers the clean topology.

Then it scans a synthetic database for weak path classes and reports
how much of the l=4 topology population they contaminate.

Run:  python examples/weak_relationships.py
"""

from __future__ import annotations

from repro.biozon import BiozonConfig, generate
from repro.core import WeakPathRules
from repro.core.topologies import (
    path_equivalence_classes,
    topologies_for_pair,
    topologies_from_classes,
)
from repro.graph import LabeledGraph


def figure17_scene() -> LabeledGraph:
    g = LabeledGraph()
    for nid, t in [
        ("p", "Protein"), ("d", "DNA"), ("p2", "Protein"), ("d2", "DNA"),
        ("i", "Interaction"), ("u1", "Unigene"), ("u2", "Unigene"),
    ]:
        g.add_node(nid, t)
    g.add_edge("e1", "p", "d2", "encodes")
    g.add_edge("e2", "p2", "d2", "encodes")
    g.add_edge("e3", "p2", "d", "encodes")
    g.add_edge("e4", "p", "i", "interacts_protein")
    g.add_edge("e5", "p2", "i", "interacts_protein")
    g.add_edge("e6", "u1", "p2", "uni_encodes")
    g.add_edge("e7", "u1", "d", "uni_contains")
    g.add_edge("e8", "u2", "p2", "uni_encodes")
    g.add_edge("e9", "u2", "d", "uni_contains")
    return g


def main() -> None:
    rules = WeakPathRules()
    g = figure17_scene()

    print("=== The Figure-17 scenario ===\n")
    for l in (3, 4):
        pair = topologies_for_pair(g, "p", "d", l)
        classes = path_equivalence_classes(g, "p", "d", l)
        weak = [s for s in classes if rules.is_weak_class(s)]
        print(
            f"l={l}: {len(classes)} path classes "
            f"({len(weak)} weak), {len(pair.topology_keys)} topologies"
        )
        for sig in classes:
            tag = "WEAK" if rules.is_weak_class(sig) else "ok  "
            print(f"    [{tag}] {'-'.join(sig[0::2])}")
    print()

    # Prune weak classes before unioning (the paper's proposed fix).
    classes4 = path_equivalence_classes(g, "p", "d", 4)
    strong = {s: p for s, p in classes4.items() if not rules.is_weak_class(s)}
    clean, _ = topologies_from_classes(strong, "p", "d")
    diluted = topologies_for_pair(g, "p", "d", 4)
    print(
        f"Weak-path pruning: {len(diluted.topology_keys)} diluted topologies "
        f"-> {len(clean)} clean topology(ies)\n"
    )

    print("=== Weak-path contamination in synthetic data (l=4) ===\n")
    ds = generate(BiozonConfig.tiny(seed=17))
    graph = ds.graph()
    weak_pairs = contaminated = total_pairs = 0
    proteins = [n for n in graph.nodes() if graph.node_type(n) == "Protein"]
    from repro.graph import paths_from_source

    for p in proteins:
        for d, paths in paths_from_source(graph, p, 4, "DNA", per_pair_limit=64).items():
            total_pairs += 1
            sigs = {path.signature() for path in paths}
            n_weak = sum(1 for s in sigs if rules.is_weak_class(s))
            if n_weak:
                weak_pairs += 1
                if n_weak < len(sigs):
                    contaminated += 1
    print(f"Protein-DNA pairs related within l=4 : {total_pairs}")
    print(f"  pairs touched by weak classes      : {weak_pairs}")
    print(f"  pairs where weak classes DILUTE a  ")
    print(f"  meaningful relationship            : {contaminated}")
    print(
        "\nThe paper's conclusion holds: weak relationships are common at\n"
        "l>=4, and pruning them with the Table-4 rules both cleans up the\n"
        "results and avoids the most expensive parts of the offline phase."
    )


if __name__ == "__main__":
    main()
