"""Serve topology search over HTTP — stdlib only, end to end.

Walks the network serving layer on a synthetic Biozon instance:

1. build an engine, wrap it in :class:`~repro.service.TopologyServer`,
   front it with the framework-free ASGI app, and serve it on a real
   socket with the stdlib HTTP/1.1 server;
2. query it with plain ``urllib`` — single queries (chunk-streamed when
   the tid list is large), an NDJSON batch, a plan explanation;
3. trip the validation layer and read the structured, field-tagged
   error body;
4. hot-swap a rebuild through ``POST /rebuild`` while the old
   generation keeps serving, and watch the generation stamp advance;
5. read one consistent counter snapshot from ``GET /stats``.

Run:  python examples/http_serving.py

(If uvicorn happens to be installed, the same app object runs under it
unchanged: ``serve_uvicorn(create_app(server))``.)
"""

from __future__ import annotations

import json
import urllib.error
import urllib.request

from repro.biozon import BiozonConfig, generate
from repro.core import TopologySearchSystem
from repro.service import TopologyServer
from repro.service.http import HttpServerThread, create_app


def post(base_url: str, path: str, payload: dict):
    request = urllib.request.Request(
        base_url + path,
        data=json.dumps(payload).encode(),
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    with urllib.request.urlopen(request) as response:
        return response.status, response.read()


def main() -> None:
    print("== offline phase: build a tiny Biozon instance ==")
    dataset = generate(BiozonConfig.tiny(seed=3))
    system = TopologySearchSystem(dataset.database, dataset.graph())
    report = system.build(
        [("Protein", "DNA"), ("Protein", "Interaction")], max_length=3
    )
    print(
        f"built {report.alltops.alltops_rows} AllTops rows in "
        f"{report.elapsed_seconds:.2f}s"
    )

    with TopologyServer(system) as server:
        app = create_app(server)
        with app, HttpServerThread(app) as base_url:
            print(f"\n== serving at {base_url} (stdlib asyncio, HTTP/1.1) ==")

            with urllib.request.urlopen(base_url + "/healthz") as response:
                print("GET /healthz ->", json.loads(response.read()))

            print("\n== POST /query ==")
            status, body = post(
                base_url,
                "/query",
                {
                    "entity1": "Protein",
                    "entity2": "DNA",
                    "constraint1": {
                        "kind": "keyword", "column": "DESC", "keyword": "kinase"
                    },
                    "k": 4,
                    "ranking": "rare",
                },
            )
            result = json.loads(body)
            print(f"{status}: method={result['method']} gen={result['generation']}")
            print(f"top-{len(result['tids'])} topology ids: {result['tids']}")

            print("\n== POST /explain (plans, never executes) ==")
            status, body = post(
                base_url,
                "/explain",
                {"entity1": "Protein", "entity2": "DNA", "k": 4},
            )
            plan = json.loads(body)
            print(f"{status}: chose {plan['strategy']} out of "
                  f"{[a['strategy'] for a in plan['alternatives']]}")

            print("\n== POST /query_many (NDJSON stream) ==")
            status, body = post(
                base_url,
                "/query_many",
                {
                    "queries": [
                        {"entity1": "Protein", "entity2": "DNA", "k": k}
                        for k in (2, 4, 6)
                    ],
                    "parallel": 2,
                },
            )
            lines = [json.loads(line) for line in body.splitlines() if line]
            for line in lines[:-1]:
                print(f"  result[{line['index']}]: {len(line['tids'])} tids")
            print("  summary:", lines[-1])

            print("\n== validation: structured, field-tagged 422 ==")
            try:
                post(base_url, "/query", {"entity1": "Protein", "k": -5})
            except urllib.error.HTTPError as error:
                payload = json.loads(error.read())
                print(f"{error.code}:", json.dumps(payload["error"]["details"]))

            print("\n== POST /rebuild (hot swap; old generation serves meanwhile) ==")
            status, body = post(base_url, "/rebuild", {"per_pair_path_limit": 1})
            print(f"{status}:", json.loads(body))
            with urllib.request.urlopen(base_url + "/healthz") as response:
                print("GET /healthz ->", json.loads(response.read()))

            print("\n== GET /stats (one consistent snapshot) ==")
            with urllib.request.urlopen(base_url + "/stats") as response:
                stats = json.loads(response.read())
            print(f"requests={stats['requests']} executions={stats['executions']} "
                  f"cache_hits={stats['result_cache']['hits']}")
            print(f"http: {stats['http']['requests_total']} requests, "
                  f"by class {stats['http']['responses_by_class']}")
            for method, snap in stats["latency"].items():
                print(f"latency[{method}]: p50={snap['p50_seconds'] * 1000:.2f}ms "
                      f"p95={snap['p95_seconds'] * 1000:.2f}ms "
                      f"p99={snap['p99_seconds'] * 1000:.2f}ms")


if __name__ == "__main__":
    main()
