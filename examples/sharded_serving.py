"""Shard a built store and serve it scatter-gather.

Walks the sharded serving path (:mod:`repro.shard` +
:class:`~repro.service.ShardCoordinator`) end to end on a synthetic
Biozon instance:

1. split — one built system becomes N self-contained shard snapshots
   plus a manifest; the split is verified lossless (per-shard routing
   filters + canonical union digest) before anything serves;
2. scatter-gather — a coordinator starts one warm worker process per
   shard; every query fans out to all shards and the partial answers
   merge with the engine's own ordering, so sharded answers are
   *identical* to unsharded ones (checked live below);
3. operations — per-shard stats, routing skew, and a generation commit:
   ``rebuild()`` builds and splits a successor set, then swaps it in
   all-or-nothing while queries keep flowing.

Run:  python examples/sharded_serving.py
"""

from __future__ import annotations

import tempfile

from repro.biozon import BiozonConfig, generate
from repro.core import (
    KeywordConstraint,
    NoConstraint,
    TopologyQuery,
    TopologySearchSystem,
)
from repro.service import ShardCoordinator
from repro.shard import split_system

NUM_SHARDS = 3


def make_query(keyword: str, k: int = 4) -> TopologyQuery:
    return TopologyQuery(
        "Protein",
        "DNA",
        KeywordConstraint("DESC", keyword),
        NoConstraint(),
        k=k,
        ranking="rare",
    )


def main() -> None:
    ds = generate(BiozonConfig.tiny(seed=4))
    system = TopologySearchSystem(ds.database, ds.graph())
    system.build([("Protein", "DNA")], max_length=3)

    with tempfile.TemporaryDirectory(prefix="sharded-serving-") as directory:
        # 1. Split into a verified shard set.
        split = split_system(system, NUM_SHARDS, directory)
        print(f"split into {split.num_shards} shards, set {split.set_id}")
        print(f"  routed rows per shard: {list(split.row_histogram)}")
        print(f"  skew (max/mean):       {split.skew:.2f}x")
        print(f"  manifest:              {split.manifest_path}")

        # 2. Serve scatter-gather; answers must match the unsharded engine.
        with ShardCoordinator(split.manifest_path) as coordinator:
            for keyword in ("kinase", "binding", "human"):
                query = make_query(keyword)
                merged = coordinator.query(query)
                reference = system.search(query)
                match = (
                    merged.tids == reference.tids
                    and merged.scores == reference.scores
                )
                print(
                    f"  {keyword:<8} -> {len(merged.tids)} topologies "
                    f"from {merged.work['shards']} shards, "
                    f"identical to unsharded: {match}"
                )
                assert match

            # 3a. Operations: per-shard health + routing skew.
            stats = coordinator.stats()
            for section in stats.shards:
                print(
                    f"  shard {section['index']}: "
                    f"{section['routed_rows']} routed rows, "
                    f"{section['calls']} calls, "
                    f"{section['failures']} failures"
                )
            print(f"  skew report: {coordinator.skew_report()}")

            # 3b. A generation commit: new set built, verified, started,
            # swapped in one step; the old workers retire afterwards.
            coordinator.rebuild()
            after = coordinator.query(make_query("kinase"))
            print(
                f"  after rebuild: generation {coordinator.generation}, "
                f"answer stamped {after.generation}, "
                f"still identical: "
                f"{after.tids == system.search(make_query('kinase')).tids}"
            )


if __name__ == "__main__":
    main()
