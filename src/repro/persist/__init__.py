"""Durable snapshots of the offline phase (save once, load anywhere).

>>> from repro.persist import save_system, load_system
>>> save_system(system, "biozon.topo")          # after system.build(...)
>>> system = load_system("biozon.topo")         # milliseconds, no build()

See :mod:`repro.persist.snapshot` for the on-disk format.
"""

from repro.persist.snapshot import (
    DERIVED_TABLES,
    SCHEMA_VERSION,
    SnapshotInfo,
    load_system,
    read_store_state,
    save_system,
    snapshot_info,
)

__all__ = [
    "DERIVED_TABLES",
    "SCHEMA_VERSION",
    "SnapshotInfo",
    "load_system",
    "read_store_state",
    "save_system",
    "snapshot_info",
]
