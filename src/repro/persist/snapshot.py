"""Schema-versioned SQLite snapshots of a built topology-search system.

The paper's architecture (Figure 10) splits an expensive offline phase
(AllTops computation, pruning, materialization) from cheap online query
dispatch, but assumes the offline output lives in a durable database.
This module supplies that durability: :func:`save_system` serializes a
built :class:`~repro.core.engine.TopologySearchSystem` into a single
SQLite file, and :func:`load_system` restores it without rerunning the
offline phase — a cold start measured in milliseconds instead of the
seconds-to-hours of ``build()``.

Snapshot layout (all in one SQLite database, written atomically via a
temp file + ``os.replace``):

``meta``
    Key/value JSON: format version, engine version, ``max_length``, the
    built entity pairs, the weak-path rules, the recorded build
    configuration, the cost-calibration state (learned per-strategy
    factors, so a restored service keeps them), bookkeeping counters.
``base_tables`` + ``base_<n>_<name>``
    The catalog (schema, declared indexes) and rows of every *base*
    relation.  The four derived tables (TopInfo, AllTops, LeftTops,
    ExcpTops) are **not** dumped as relations — they are re-materialized
    on load from the store state below, which keeps the snapshot free of
    duplicated data and guarantees the restored derived tables agree
    with the restored store.
``store_topologies``
    The topology catalog: canonical key, entity pair, endpoint indices,
    class signatures, frequency, per-scheme scores, pruned flag.
``store_pair_rows``
    The AllTops / LeftTops / ExcpTops row lists, tagged by kind.
``store_pairs``
    Per-pair offline output: entity-set pair and path-class signatures.

Any structural problem — a non-SQLite file, missing tables, or a
format-version mismatch — raises
:class:`~repro.errors.TopologyError` with a message naming the snapshot.
"""

from __future__ import annotations

import contextlib
import json
import os
import sqlite3
import time
from dataclasses import dataclass
from typing import Any, Dict, Iterator, List, Optional, Tuple

import repro
from repro.errors import ReproError, TopologyError
from repro.persist.codec import (
    SQLITE_TYPES,
    cell_decoder,
    check_endpoint,
    encode_cell,
    require,
    sanitize_identifier,
    schema_from_json,
    schema_to_json,
    signatures_from_json,
    signatures_to_json,
)
from repro.relational.database import Database, TableDump

# Bump on any incompatible change to the snapshot layout.
SCHEMA_VERSION = 1

# Tables the offline phase derives; re-materialized on load, never dumped.
DERIVED_TABLES: Tuple[str, ...] = ("TopInfo", "AllTops", "LeftTops", "ExcpTops")

_DDL = """
CREATE TABLE meta (key TEXT PRIMARY KEY, value TEXT NOT NULL);
CREATE TABLE base_tables (
    position INTEGER PRIMARY KEY,
    name TEXT NOT NULL UNIQUE,
    data_table TEXT NOT NULL,
    schema_json TEXT NOT NULL,
    hash_indexes TEXT NOT NULL,
    sorted_indexes TEXT NOT NULL,
    row_count INTEGER NOT NULL
);
CREATE TABLE store_sigsets (
    id INTEGER PRIMARY KEY,
    signatures TEXT NOT NULL
);
CREATE TABLE store_topologies (
    tid INTEGER PRIMARY KEY,
    key TEXT NOT NULL,
    es1 TEXT NOT NULL,
    es2 TEXT NOT NULL,
    ep1 INTEGER NOT NULL,
    ep2 INTEGER NOT NULL,
    frequency INTEGER NOT NULL,
    pruned INTEGER NOT NULL,
    sigset INTEGER NOT NULL REFERENCES store_sigsets(id),
    scores TEXT NOT NULL
);
-- e1/e2 are untyped (NONE affinity): entity ids round-trip natively.
CREATE TABLE store_pair_rows (
    kind TEXT NOT NULL,
    e1,
    e2,
    tid INTEGER NOT NULL
);
CREATE TABLE store_pairs (
    e1,
    e2,
    es1 TEXT NOT NULL,
    es2 TEXT NOT NULL,
    sigset INTEGER NOT NULL REFERENCES store_sigsets(id)
);
"""


@dataclass(frozen=True)
class SnapshotInfo:
    """Cheap metadata about a snapshot file (no full restore)."""

    path: str
    schema_version: int
    engine_version: str
    database_name: str
    max_length: int
    built_pairs: List[Tuple[str, str]]
    topologies: int
    alltops_rows: int
    lefttops_rows: int
    excptops_rows: int
    base_tables: int
    file_bytes: int
    saved_at: float
    # Recorded build() parameters (None for pre-PR-2 snapshots or
    # stores installed via adopt_store without a config).
    build_config: Optional[Dict[str, Any]] = None
    # Cost-calibration state (repro.core.plan); None for snapshots
    # written before the plan layer existed.
    calibration: Optional[Dict[str, Any]] = None
    # Shard membership (repro.shard): index/count/scheme/set_id for a
    # snapshot that is one shard of a sharded store; None for whole
    # (unsharded) snapshots.
    shard: Optional[Dict[str, Any]] = None


# ----------------------------------------------------------------------
# Save
# ----------------------------------------------------------------------
def save_system(system, path, shard: Optional[Dict[str, Any]] = None) -> None:
    """Serialize a built system (base relations + topology store) to a
    single SQLite file at ``path``.  Overwrites atomically.

    ``shard`` optionally records shard membership (index, count,
    routing scheme, set id — see :mod:`repro.shard`) in the snapshot
    meta; a shard snapshot is otherwise a perfectly normal snapshot and
    loads with :func:`load_system` like any other."""
    store = system.require_store()
    state = store.export_state()
    target = os.fspath(path)
    parent = os.path.dirname(target)
    if parent:
        os.makedirs(parent, exist_ok=True)
    tmp = target + ".tmp"
    if os.path.exists(tmp):
        os.remove(tmp)
    conn = sqlite3.connect(tmp)
    try:
        conn.executescript(_DDL)
        _write_meta(conn, system, state, shard)
        _write_base_tables(conn, system.database)
        _write_store(conn, state)
        conn.commit()
    finally:
        conn.close()
    os.replace(tmp, target)


def _write_meta(
    conn: sqlite3.Connection,
    system,
    state: Dict[str, Any],
    shard: Optional[Dict[str, Any]] = None,
) -> None:
    alltops_table_empty = (
        system.database.has_table("AllTops")
        and system.database.table("AllTops").row_count == 0
        and len(state["alltops_rows"]) > 0
    )
    rules = system.weak_rules
    meta = {
        "schema_version": SCHEMA_VERSION,
        "engine_version": repro.__version__,
        "database_name": system.database.name,
        "max_length": system.max_length,
        "built_pairs": [list(p) for p in system.built_pairs],
        "weak_rules": {
            "patterns": [list(p) for p in rules.patterns],
            "min_path_length": rules.min_path_length,
        },
        "truncated_pairs": state["truncated_pairs"],
        "include_alltops": not alltops_table_empty,
        # How the store was built (worker/partition counts, caps, prune
        # settings) — restored so rebuilds reproduce the configuration.
        "build_config": system.build_config,
        # Learned per-strategy cost factors (repro.core.plan) — restored
        # so a cold-started service plans with its calibrated costs.
        "calibration": system.calibrator.export_state(),
        "saved_at": time.time(),
    }
    if shard is not None:
        # Shard membership (repro.shard).  An optional key: pre-shard
        # engines simply never read it, so the format version holds.
        meta["shard"] = dict(shard)
    conn.executemany(
        "INSERT INTO meta (key, value) VALUES (?, ?)",
        [(k, json.dumps(v)) for k, v in meta.items()],
    )


def _write_base_tables(conn: sqlite3.Connection, db: Database) -> None:
    for position, dump in enumerate(db.dump_tables(exclude=DERIVED_TABLES)):
        data_table = f"base_{position}_{sanitize_identifier(dump.schema.name)}"
        conn.execute(
            "INSERT INTO base_tables (position, name, data_table, schema_json,"
            " hash_indexes, sorted_indexes, row_count) VALUES (?, ?, ?, ?, ?, ?, ?)",
            (
                position,
                dump.schema.name,
                data_table,
                schema_to_json(dump.schema),
                json.dumps([[n, list(c)] for n, c in dump.hash_indexes]),
                json.dumps([[n, list(c)] for n, c in dump.sorted_indexes]),
                dump.row_count,
            ),
        )
        dtypes = [c.dtype for c in dump.schema.columns]
        columns = ", ".join(
            f"c{i} {SQLITE_TYPES[dt]}" for i, dt in enumerate(dtypes)
        )
        conn.execute(f"CREATE TABLE {data_table} ({columns})")
        placeholders = ", ".join("?" for _ in dtypes)
        if any(cell_decoder(dt) for dt in dtypes):  # table has BOOL cells
            rows = (
                tuple(encode_cell(dt, v) for dt, v in zip(dtypes, row))
                for row in dump.rows
            )
        else:  # INT/FLOAT/TEXT round-trip natively
            rows = dump.rows
        conn.executemany(
            f"INSERT INTO {data_table} VALUES ({placeholders})", rows
        )


def _write_store(conn: sqlite3.Connection, state: Dict[str, Any]) -> None:
    pruned = set(state["pruned_tids"])
    # Distinct class-signature sets are few; intern them so each is
    # encoded (and later decoded) exactly once.
    sigset_ids: Dict[str, int] = {}

    def sigset(signatures) -> int:
        text = signatures_to_json(sorted(tuple(s) for s in signatures))
        sid = sigset_ids.get(text)
        if sid is None:
            sid = len(sigset_ids) + 1
            sigset_ids[text] = sid
        return sid

    topology_rows = [
        (
            t["tid"],
            t["key"],
            t["entity_pair"][0],
            t["entity_pair"][1],
            t["endpoint_indices"][0],
            t["endpoint_indices"][1],
            t["frequency"],
            int(t["tid"] in pruned),
            sigset(t["class_signatures"]),
            json.dumps(t["scores"]),
        )
        for t in state["topologies"]
    ]
    pair_rows = [
        (
            check_endpoint(p["e1"]),
            check_endpoint(p["e2"]),
            p["entity_pair"][0],
            p["entity_pair"][1],
            sigset(p["class_signatures"]),
        )
        for p in state["pairs"]
    ]
    conn.executemany(
        "INSERT INTO store_sigsets (id, signatures) VALUES (?, ?)",
        ((sid, text) for text, sid in sigset_ids.items()),
    )
    conn.executemany(
        "INSERT INTO store_topologies (tid, key, es1, es2, ep1, ep2, frequency,"
        " pruned, sigset, scores) VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
        topology_rows,
    )
    conn.executemany(
        "INSERT INTO store_pairs (e1, e2, es1, es2, sigset)"
        " VALUES (?, ?, ?, ?, ?)",
        pair_rows,
    )
    for kind, rows_key in (
        ("all", "alltops_rows"),
        ("left", "lefttops_rows"),
        ("excp", "excptops_rows"),
    ):
        conn.executemany(
            "INSERT INTO store_pair_rows (kind, e1, e2, tid) VALUES (?, ?, ?, ?)",
            (
                (kind, check_endpoint(e1), check_endpoint(e2), tid)
                for e1, e2, tid in state[rows_key]
            ),
        )


# ----------------------------------------------------------------------
# Load
# ----------------------------------------------------------------------
@contextlib.contextmanager
def _snapshot_errors(target: str):
    """Translate everything a broken snapshot can throw into
    :class:`TopologyError`, leaving already-contextualized
    ``TopologyError``\\ s (e.g. the version mismatch) untouched."""
    try:
        yield
    except TopologyError:
        raise
    except sqlite3.Error as exc:
        raise TopologyError(
            f"snapshot {target!r} is corrupt or not a topology snapshot: {exc}"
        ) from exc
    except (ReproError, KeyError, ValueError, TypeError, IndexError) as exc:
        raise TopologyError(f"snapshot {target!r} is malformed: {exc!r}") from exc


def load_system(path):
    """Restore a :class:`TopologySearchSystem` from a snapshot file.

    Raises :class:`TopologyError` for a missing file, a file that is not
    a topology snapshot, or a snapshot written with an incompatible
    format version."""
    from repro.core.engine import TopologySearchSystem
    from repro.core.store import TopologyStore
    from repro.core.weak import WeakPathRules

    target = os.fspath(path)
    if not os.path.exists(target):
        raise TopologyError(f"snapshot {target!r} does not exist")
    conn = sqlite3.connect(f"file:{target}?mode=ro", uri=True)
    try:
        with _snapshot_errors(target):
            meta = _read_meta(conn, target)
            db = _read_database(conn, meta)
            state = _read_store_state(conn, meta)
    finally:
        conn.close()

    rules_data = meta["weak_rules"]
    weak_rules = WeakPathRules(
        patterns=tuple(tuple(p) for p in rules_data["patterns"]),
        min_path_length=rules_data["min_path_length"],
    )
    store = TopologyStore.from_state(state, weak_rules)
    system = TopologySearchSystem(db, weak_rules=weak_rules)
    system.adopt_store(
        store,
        max_length=meta["max_length"],
        built_pairs=[tuple(p) for p in meta["built_pairs"]],
        include_alltops=meta.get("include_alltops", True),
        build_config=meta.get("build_config"),
    )
    system.restore_calibration(meta.get("calibration"))
    return system


def _read_meta(conn: sqlite3.Connection, target: str) -> Dict[str, Any]:
    rows = conn.execute("SELECT key, value FROM meta").fetchall()
    meta = {key: json.loads(value) for key, value in rows}
    require(
        "schema_version" in meta,
        f"snapshot {target!r} has no schema_version entry",
    )
    version = meta["schema_version"]
    if version != SCHEMA_VERSION:
        raise TopologyError(
            f"snapshot {target!r} uses schema version {version}, but this "
            f"engine supports version {SCHEMA_VERSION}; regenerate the "
            f"snapshot with save_system()"
        )
    require(
        meta.get("max_length") is not None and "built_pairs" in meta,
        f"snapshot {target!r} is missing build metadata",
    )
    return meta


def _read_database(conn: sqlite3.Connection, meta: Dict[str, Any]) -> Database:
    db = Database(meta.get("database_name", "db"))
    registry = conn.execute(
        "SELECT data_table, schema_json, hash_indexes, sorted_indexes, row_count"
        " FROM base_tables ORDER BY position"
    ).fetchall()
    for data_table, schema_json, hash_json, sorted_json, row_count in registry:
        schema = schema_from_json(schema_json)
        decoders = [cell_decoder(c.dtype) for c in schema.columns]
        cursor = conn.execute(f"SELECT * FROM {data_table} ORDER BY rowid")
        if any(decoders):

            def decoded_rows(cursor=cursor, decoders=decoders) -> Iterator[tuple]:
                for row in cursor:
                    yield tuple(
                        dec(v) if dec else v for dec, v in zip(decoders, row)
                    )

            rows: Iterator[tuple] = decoded_rows()
        else:  # all columns round-trip natively; cursor yields tuples
            rows = iter(cursor)

        db.restore_table(
            TableDump(
                schema=schema,
                hash_indexes=[(n, list(c)) for n, c in json.loads(hash_json)],
                sorted_indexes=[(n, list(c)) for n, c in json.loads(sorted_json)],
                rows=rows,
                row_count=row_count,
            )
        )
    return db


def _read_store_state(
    conn: sqlite3.Connection, meta: Dict[str, Any]
) -> Dict[str, Any]:
    # Each distinct class-signature set decodes exactly once; the store
    # consumes tuples (topology catalog) and frozensets (pair classes),
    # so both shapes are interned here and shared across records.
    sig_tuples: Dict[int, Tuple[Tuple[str, ...], ...]] = {}
    sig_sets: Dict[int, frozenset] = {}
    for sid, text in conn.execute("SELECT id, signatures FROM store_sigsets"):
        decoded = tuple(signatures_from_json(text))
        sig_tuples[sid] = decoded
        sig_sets[sid] = frozenset(decoded)
    topologies = []
    pruned: List[int] = []
    for (
        tid,
        key,
        es1,
        es2,
        ep1,
        ep2,
        frequency,
        pruned_flag,
        sigset,
        scores_json,
    ) in conn.execute(
        "SELECT tid, key, es1, es2, ep1, ep2, frequency, pruned,"
        " sigset, scores FROM store_topologies ORDER BY tid"
    ):
        topologies.append(
            {
                "tid": tid,
                "key": key,
                "entity_pair": (es1, es2),
                "endpoint_indices": (ep1, ep2),
                "class_signatures": sig_tuples[sigset],
                "frequency": frequency,
                "scores": json.loads(scores_json),
            }
        )
        if pruned_flag:
            pruned.append(tid)
    # fetchall() hands back ready-made tuples without a Python loop.
    rows_by_kind: Dict[str, List[Tuple[Any, Any, int]]] = {
        kind: conn.execute(
            "SELECT e1, e2, tid FROM store_pair_rows WHERE kind = ?"
            " ORDER BY rowid",
            (kind,),
        ).fetchall()
        for kind in ("all", "left", "excp")
    }
    pairs = [
        {
            "e1": e1,
            "e2": e2,
            "entity_pair": (es1, es2),
            "class_signatures": sig_sets[sigset],
        }
        for e1, e2, es1, es2, sigset in conn.execute(
            "SELECT e1, e2, es1, es2, sigset FROM store_pairs"
            " ORDER BY rowid"
        )
    ]
    return {
        "topologies": topologies,
        "alltops_rows": rows_by_kind["all"],
        "lefttops_rows": rows_by_kind["left"],
        "excptops_rows": rows_by_kind["excp"],
        "pruned_tids": pruned,
        "pairs": pairs,
        "truncated_pairs": meta.get("truncated_pairs", 0),
    }


def read_store_state(path) -> Dict[str, Any]:
    """The store state of a snapshot, as :meth:`TopologyStore.export_state`
    would produce it — without restoring the base database or
    materializing anything.

    The cheap path for tooling that only inspects the *derived* data:
    shard-split verification (:mod:`repro.shard.verify`) compares
    per-shard states against an unsharded reference without paying N
    full restores."""
    target = os.fspath(path)
    if not os.path.exists(target):
        raise TopologyError(f"snapshot {target!r} does not exist")
    conn = sqlite3.connect(f"file:{target}?mode=ro", uri=True)
    try:
        with _snapshot_errors(target):
            meta = _read_meta(conn, target)
            state = _read_store_state(conn, meta)
    finally:
        conn.close()
    return state


# ----------------------------------------------------------------------
# Inspection
# ----------------------------------------------------------------------
def snapshot_info(path) -> SnapshotInfo:
    """Read a snapshot's metadata and row counts without restoring it."""
    target = os.fspath(path)
    if not os.path.exists(target):
        raise TopologyError(f"snapshot {target!r} does not exist")
    conn = sqlite3.connect(f"file:{target}?mode=ro", uri=True)
    try:
        with _snapshot_errors(target):
            meta = _read_meta(conn, target)

            def count(kind: str) -> int:
                return conn.execute(
                    "SELECT COUNT(*) FROM store_pair_rows WHERE kind = ?",
                    (kind,),
                ).fetchone()[0]

            topologies = conn.execute(
                "SELECT COUNT(*) FROM store_topologies"
            ).fetchone()[0]
            base_tables = conn.execute(
                "SELECT COUNT(*) FROM base_tables"
            ).fetchone()[0]
            return SnapshotInfo(
                path=target,
                schema_version=meta["schema_version"],
                engine_version=meta.get("engine_version", "unknown"),
                database_name=meta.get("database_name", "db"),
                max_length=meta["max_length"],
                built_pairs=[tuple(p) for p in meta["built_pairs"]],
                topologies=topologies,
                alltops_rows=count("all"),
                lefttops_rows=count("left"),
                excptops_rows=count("excp"),
                base_tables=base_tables,
                file_bytes=os.path.getsize(target),
                saved_at=meta.get("saved_at", 0.0),
                build_config=meta.get("build_config"),
                calibration=meta.get("calibration"),
                shard=meta.get("shard"),
            )
    finally:
        conn.close()
