"""Value and schema codecs for the SQLite snapshot format.

The in-memory engine's cell values are exactly the four
:class:`~repro.relational.types.DataType` kinds (plus ``NULL``), all of
which SQLite stores natively — except ``BOOL``, which is widened to an
``INTEGER`` 0/1 and narrowed back on load.  Schemas, index definitions,
and the topology catalog's nested tuples travel as JSON text.
"""

from __future__ import annotations

import json
import re
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.errors import TopologyError
from repro.relational.schema import Column, TableSchema
from repro.relational.types import DataType

# SQLite column affinity per engine data type.
SQLITE_TYPES: Dict[DataType, str] = {
    DataType.INT: "INTEGER",
    DataType.FLOAT: "REAL",
    DataType.TEXT: "TEXT",
    DataType.BOOL: "INTEGER",
}


def encode_cell(dtype: DataType, value: Any) -> Any:
    """Engine cell value -> SQLite storage value."""
    if value is None:
        return None
    if dtype is DataType.BOOL:
        return int(value)
    return value


def cell_decoder(dtype: DataType) -> Optional[Callable[[Any], Any]]:
    """A per-column decoder, or ``None`` when SQLite round-trips the
    value natively (INT, FLOAT, and TEXT all do; only BOOL is widened
    to INTEGER on disk).  Callers skip the decode loop entirely for
    all-native tables — the common case, since the Biozon base schema
    has no BOOL columns."""
    if dtype is DataType.BOOL:
        return lambda v: None if v is None else bool(v)
    return None


def schema_to_json(schema: TableSchema) -> str:
    return json.dumps(
        {
            "name": schema.name,
            "primary_key": schema.primary_key,
            "columns": [
                {"name": c.name, "dtype": c.dtype.value, "not_null": c.not_null}
                for c in schema.columns
            ],
        }
    )


def schema_from_json(text: str) -> TableSchema:
    data = json.loads(text)
    return TableSchema(
        data["name"],
        [
            Column(c["name"], DataType(c["dtype"]), c["not_null"])
            for c in data["columns"]
        ],
        primary_key=data["primary_key"],
    )


def check_endpoint(value: Any) -> Any:
    """Validate a pair-endpoint value for native SQLite storage.

    Endpoints are opaque at the store level, but to keep load fast they
    are stored in untyped (NONE-affinity) columns, which round-trip
    ints, floats, strings, and NULL exactly.  Anything else (including
    bool, which SQLite would silently flatten to an int) is rejected at
    save time rather than corrupted."""
    if value is None or (
        not isinstance(value, bool) and isinstance(value, (int, float, str))
    ):
        return value
    raise TopologyError(
        f"cannot snapshot entity id {value!r}: snapshot endpoints must be "
        f"int, float, str, or None"
    )


def sanitize_identifier(name: str) -> str:
    """A snapshot-internal table-name fragment safe to splice into SQL."""
    return re.sub(r"[^A-Za-z0-9_]", "_", name)


def signatures_to_json(signatures: Sequence[Sequence[str]]) -> str:
    return json.dumps([list(s) for s in signatures])


def signatures_from_json(text: str) -> List[Tuple[str, ...]]:
    return [tuple(s) for s in json.loads(text)]


def require(condition: bool, message: str) -> None:
    """Raise a :class:`TopologyError` for a malformed snapshot."""
    if not condition:
        raise TopologyError(message)
