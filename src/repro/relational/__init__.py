"""Relational engine substrate.

A from-scratch, in-memory relational database: typed tables with hash
and sorted indexes, Volcano-style physical operators (including the
paper's Distinct Group Join family), a SQL subset front end, table
statistics, and a System-R dynamic-programming optimizer extended with
the paper's DGJ cost model.

The paper prototypes on IBM DB2; this package plays DB2's role so the
paper's engine-level contributions (Sections 5.3-5.4) can be
implemented *inside* the engine rather than bolted on outside.
"""

from repro.relational.database import Database, ExecStats
from repro.relational.index import HashIndex, SortedIndex
from repro.relational.schema import Column, TableSchema
from repro.relational.sql.planner import Engine, QueryResult
from repro.relational.statistics import StatsCatalog, collect_table_stats
from repro.relational.table import Table
from repro.relational.types import DataType

__all__ = [
    "Column",
    "DataType",
    "Database",
    "Engine",
    "ExecStats",
    "HashIndex",
    "QueryResult",
    "SortedIndex",
    "StatsCatalog",
    "Table",
    "TableSchema",
    "collect_table_stats",
]
