"""Relational engine substrate.

A from-scratch, in-memory relational database: typed tables with hash
and sorted indexes, Volcano-style physical operators (including the
paper's Distinct Group Join family), a SQL subset front end, table
statistics, and a System-R dynamic-programming optimizer extended with
the paper's DGJ cost model.

The paper prototypes on IBM DB2; this package plays DB2's role so the
paper's engine-level contributions (Sections 5.3-5.4) can be
implemented *inside* the engine rather than bolted on outside.
"""

from repro.relational.column import BATCH_SIZE, HAVE_NUMPY, Batch, ColumnStore
from repro.relational.database import Database, ExecStats
from repro.relational.index import HashIndex, SortedIndex
from repro.relational.runtime import (
    columnar_enabled,
    columnar_mode,
    execution_mode,
    row_mode,
    set_default_mode,
)
from repro.relational.schema import Column, TableSchema
from repro.relational.sql.planner import Engine, PreparedPlan, QueryResult
from repro.relational.statistics import StatsCatalog, collect_table_stats
from repro.relational.table import Table
from repro.relational.types import DataType

__all__ = [
    "BATCH_SIZE",
    "Batch",
    "Column",
    "ColumnStore",
    "DataType",
    "Database",
    "Engine",
    "ExecStats",
    "HAVE_NUMPY",
    "HashIndex",
    "PreparedPlan",
    "QueryResult",
    "SortedIndex",
    "StatsCatalog",
    "Table",
    "TableSchema",
    "collect_table_stats",
    "columnar_enabled",
    "columnar_mode",
    "execution_mode",
    "row_mode",
    "set_default_mode",
]
