"""Execution-mode switch: columnar (default) vs. reference row engine.

The columnar refactor keeps the original Volcano row-at-a-time operator
implementations intact as a *reference engine*: every operator still has
its pre-refactor ``next()`` method, and the batched fast path lives in
``next_batch()``.  Which one drives an execution is decided here, at the
top-level entry points (``Operator.run``, the internal drains of
materializing operators, and the SQL engine's statement cache), never
inside the per-row hot loops.

The differential test harness (``tests/difftest``) relies on this: it
runs the same plans once under :func:`row_mode` and once under the
default columnar mode and asserts bit-identical results.  The reference
path is also what ``benchmarks/bench_columnar.py`` measures the >=10x
speedup floor against — in row mode the engine behaves exactly like the
pre-refactor engine, including the absence of the prepared-statement
cache.

The flag is a thread-local override over a process-wide default, so a
difftest can pin one thread to the row engine while server threads keep
serving columnar, and so ``REPRO_EXECUTION_MODE=row`` can force the
reference engine for a whole run (used by CI to cross-check).
"""

from __future__ import annotations

import contextlib
import os
import threading
from typing import Iterator

_VALID_MODES = ("columnar", "row")

_default_mode = os.environ.get("REPRO_EXECUTION_MODE", "columnar").lower()
if _default_mode not in _VALID_MODES:  # pragma: no cover - env misuse
    raise ValueError(
        f"REPRO_EXECUTION_MODE must be one of {_VALID_MODES}, got {_default_mode!r}"
    )

_local = threading.local()


def execution_mode() -> str:
    """The mode driving executions on this thread."""
    return getattr(_local, "mode", _default_mode)


def columnar_enabled() -> bool:
    return execution_mode() == "columnar"


def set_default_mode(mode: str) -> None:
    """Set the process-wide default (threads without an override)."""
    if mode not in _VALID_MODES:
        raise ValueError(f"unknown execution mode {mode!r}")
    global _default_mode
    _default_mode = mode


@contextlib.contextmanager
def mode(name: str) -> Iterator[None]:
    """Thread-local execution-mode override for a ``with`` block."""
    if name not in _VALID_MODES:
        raise ValueError(f"unknown execution mode {name!r}")
    previous = getattr(_local, "mode", None)
    _local.mode = name
    try:
        yield
    finally:
        if previous is None:
            del _local.mode
        else:
            _local.mode = previous


def row_mode() -> "contextlib._GeneratorContextManager":
    """The retained pre-refactor row-at-a-time reference engine."""
    return mode("row")


def columnar_mode() -> "contextlib._GeneratorContextManager":
    return mode("columnar")
