"""Table/column statistics and selectivity estimation.

Section 5.4.3 assumes "regular database statistics": per-relation
cardinalities, per-column distinct counts, index statistics, and
selectivity estimates for local predicates and joins.  This module
collects those statistics from loaded tables and exposes the estimation
functions the System-R optimizer and the DGJ cost model consume.

Keyword (CONTAINS) predicates are estimated from an inverted
document-frequency table built over text columns — the analogue of a
text-index statistic.  Unknown keywords fall back to a default.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.relational.database import Database
from repro.relational.expressions import (
    And,
    Comparison,
    Contains,
    ColumnRef,
    Expression,
    InList,
    IsNull,
    Like,
    Literal,
    Not,
    Or,
)
from repro.relational.table import Table

DEFAULT_EQ_SELECTIVITY = 0.01
DEFAULT_RANGE_SELECTIVITY = 0.33
DEFAULT_CONTAINS_SELECTIVITY = 0.1
DEFAULT_LIKE_SELECTIVITY = 0.05
MAX_TRACKED_KEYWORDS = 10_000


@dataclass
class ColumnStats:
    """Statistics for one column."""

    n_distinct: int = 0
    null_count: int = 0
    row_count: int = 0
    min_value: Optional[Any] = None
    max_value: Optional[Any] = None

    @property
    def null_fraction(self) -> float:
        return self.null_count / self.row_count if self.row_count else 0.0

    def eq_selectivity(self) -> float:
        if self.n_distinct <= 0:
            return DEFAULT_EQ_SELECTIVITY
        return (1.0 - self.null_fraction) / self.n_distinct

    def range_selectivity(self, op: str, value: Any) -> float:
        """Linear interpolation over [min, max] for numeric columns."""
        if (
            self.min_value is None
            or self.max_value is None
            or not isinstance(value, (int, float))
            or not isinstance(self.min_value, (int, float))
            or not isinstance(self.max_value, (int, float))
        ):
            return DEFAULT_RANGE_SELECTIVITY
        span = float(self.max_value) - float(self.min_value)
        if span <= 0:
            return DEFAULT_RANGE_SELECTIVITY
        frac_below = min(1.0, max(0.0, (float(value) - float(self.min_value)) / span))
        if op in ("<", "<="):
            sel = frac_below
        else:  # ">", ">="
            sel = 1.0 - frac_below
        return min(1.0, max(0.0, sel)) * (1.0 - self.null_fraction)


@dataclass
class TableStats:
    """Statistics for one table."""

    row_count: int = 0
    columns: Dict[str, ColumnStats] = field(default_factory=dict)
    # (column name, keyword) -> fraction of rows containing the keyword
    keyword_fractions: Dict[Tuple[str, str], float] = field(default_factory=dict)

    def column(self, name: str) -> Optional[ColumnStats]:
        return self.columns.get(name.lower())


def collect_table_stats(table: Table, index_keywords: bool = True) -> TableStats:
    """One pass per column computing all column statistics.

    Column-major over the table's column store — each column's values
    are contiguous, so the aggregation loop touches one list at a time
    instead of re-indexing every row tuple.  Deliberately pure Python
    (no numpy) even for numeric columns: statistics feed the optimizer,
    and plan choices must be identical whether or not numpy is
    installed, or unordered query results could legally differ between
    the two configurations.

    ``index_keywords`` additionally builds word-level document
    frequencies for text columns (bounded by
    :data:`MAX_TRACKED_KEYWORDS` per column).
    """
    stats = TableStats(row_count=table.row_count)
    keyword_counts: Dict[str, Dict[str, int]] = {}

    for column, values in zip(table.schema.columns, table.store.columns):
        name = column.name.lower()
        col = ColumnStats(row_count=table.row_count)
        stats.columns[name] = col
        distinct: set = set()
        for value in values:
            if value is None:
                col.null_count += 1
                continue
            distinct.add(value)
            if not isinstance(value, str):
                if col.min_value is None or value < col.min_value:
                    col.min_value = value
                if col.max_value is None or value > col.max_value:
                    col.max_value = value
            elif index_keywords:
                words = keyword_counts.setdefault(name, {})
                if len(words) < MAX_TRACKED_KEYWORDS:
                    for word in set(value.lower().split()):
                        word = word.strip(".,;:()[]")
                        if word:
                            words[word] = words.get(word, 0) + 1
        col.n_distinct = len(distinct)

    if table.row_count:
        for name, words in keyword_counts.items():
            for word, count in words.items():
                stats.keyword_fractions[(name, word)] = count / table.row_count
    return stats


class StatsCatalog:
    """Statistics for every table in a database, with estimation API."""

    def __init__(self, database: Database, index_keywords: bool = True) -> None:
        self.database = database
        self._tables: Dict[str, TableStats] = {}
        self._index_keywords = index_keywords

    def refresh(self, table_name: Optional[str] = None) -> None:
        """(Re)collect statistics for one table or all tables."""
        if table_name is not None:
            table = self.database.table(table_name)
            self._tables[table_name.lower()] = collect_table_stats(
                table, self._index_keywords
            )
            return
        for table in self.database.tables():
            self._tables[table.schema.name.lower()] = collect_table_stats(
                table, self._index_keywords
            )

    def invalidate(self, table_name: Optional[str] = None) -> None:
        """Drop cached statistics (for one table or all) without
        recollecting; the next :meth:`table_stats` call recollects
        lazily.  Cheaper than :meth:`refresh` when the next queries may
        only touch a few tables (e.g. right after a snapshot restore)."""
        if table_name is not None:
            self._tables.pop(table_name.lower(), None)
        else:
            self._tables.clear()

    def table_stats(self, table_name: str) -> TableStats:
        key = table_name.lower()
        if key not in self._tables:
            self.refresh(table_name)
        return self._tables[key]

    def row_count(self, table_name: str) -> int:
        return self.table_stats(table_name).row_count

    # ------------------------------------------------------------------
    # Selectivity estimation
    # ------------------------------------------------------------------
    def predicate_selectivity(
        self,
        expr: Expression,
        alias_tables: Dict[str, str],
    ) -> float:
        """Estimate the fraction of rows satisfying a (single-relation or
        already-joined) predicate.  ``alias_tables`` maps alias -> table
        name so column references resolve to statistics.
        """
        if isinstance(expr, And):
            sel = 1.0
            for item in expr.items:
                sel *= self.predicate_selectivity(item, alias_tables)
            return sel
        if isinstance(expr, Or):
            keep = 1.0
            for item in expr.items:
                keep *= 1.0 - self.predicate_selectivity(item, alias_tables)
            return 1.0 - keep
        if isinstance(expr, Not):
            return max(0.0, 1.0 - self.predicate_selectivity(expr.item, alias_tables))
        if isinstance(expr, Comparison):
            return self._comparison_selectivity(expr, alias_tables)
        if isinstance(expr, Contains):
            return self._contains_selectivity(expr, alias_tables)
        if isinstance(expr, Like):
            return DEFAULT_LIKE_SELECTIVITY
        if isinstance(expr, InList):
            ref = expr.value
            if isinstance(ref, ColumnRef):
                col = self._column_stats(ref, alias_tables)
                if col is not None:
                    sel = min(1.0, len(expr.options) * col.eq_selectivity())
                    return 1.0 - sel if expr.negated else sel
            sel = min(1.0, len(expr.options) * DEFAULT_EQ_SELECTIVITY)
            return 1.0 - sel if expr.negated else sel
        if isinstance(expr, IsNull):
            ref = expr.value
            if isinstance(ref, ColumnRef):
                col = self._column_stats(ref, alias_tables)
                if col is not None:
                    return (1.0 - col.null_fraction) if expr.negated else col.null_fraction
            return 0.05
        return 0.5  # unknown predicate shape

    def _column_stats(
        self, ref: ColumnRef, alias_tables: Dict[str, str]
    ) -> Optional[ColumnStats]:
        if ref.qualifier is None:
            # Unqualified: resolvable only if exactly one table has it.
            hits = [
                self.table_stats(t).column(ref.name)
                for t in alias_tables.values()
                if self.table_stats(t).column(ref.name) is not None
            ]
            return hits[0] if len(hits) == 1 else None
        table_name = alias_tables.get(ref.qualifier)
        if table_name is None:
            return None
        return self.table_stats(table_name).column(ref.name)

    def _comparison_selectivity(
        self, expr: Comparison, alias_tables: Dict[str, str]
    ) -> float:
        ref: Optional[ColumnRef] = None
        lit: Optional[Any] = None
        op = expr.op
        if isinstance(expr.left, ColumnRef) and isinstance(expr.right, Literal):
            ref, lit = expr.left, expr.right.value
        elif isinstance(expr.right, ColumnRef) and isinstance(expr.left, Literal):
            ref, lit = expr.right, expr.left.value
            flip = {"<": ">", "<=": ">=", ">": "<", ">=": "<="}
            op = flip.get(op, op)
        if ref is None:
            # column-to-column (within one row) or computed comparison
            return DEFAULT_RANGE_SELECTIVITY if op != "=" else DEFAULT_EQ_SELECTIVITY
        col = self._column_stats(ref, alias_tables)
        if col is None:
            return DEFAULT_EQ_SELECTIVITY if op == "=" else DEFAULT_RANGE_SELECTIVITY
        if op == "=":
            return col.eq_selectivity()
        if op == "<>":
            return max(0.0, 1.0 - col.eq_selectivity())
        return col.range_selectivity(op, lit)

    def _contains_selectivity(
        self, expr: Contains, alias_tables: Dict[str, str]
    ) -> float:
        if not (isinstance(expr.haystack, ColumnRef) and isinstance(expr.needle, Literal)):
            return DEFAULT_CONTAINS_SELECTIVITY
        ref = expr.haystack
        needle = str(expr.needle.value).lower()
        candidates: List[str]
        if ref.qualifier is not None:
            table_name = alias_tables.get(ref.qualifier)
            candidates = [table_name] if table_name else []
        else:
            candidates = list(alias_tables.values())
        for table_name in candidates:
            stats = self.table_stats(table_name)
            frac = stats.keyword_fractions.get((ref.name, needle))
            if frac is not None:
                return frac
        return DEFAULT_CONTAINS_SELECTIVITY

    def join_selectivity(
        self,
        left_table: str,
        left_column: str,
        right_table: str,
        right_column: str,
    ) -> float:
        """Classic System-R equi-join selectivity: 1 / max(ndv, ndv)."""
        left = self.table_stats(left_table).column(left_column)
        right = self.table_stats(right_table).column(right_column)
        left_ndv = left.n_distinct if left and left.n_distinct > 0 else 1
        right_ndv = right.n_distinct if right and right.n_distinct > 0 else 1
        return 1.0 / max(left_ndv, right_ndv)
