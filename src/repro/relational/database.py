"""The database catalog: named tables plus execution-wide counters."""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.errors import CatalogError
from repro.relational.schema import TableSchema
from repro.relational.table import Row, Table


@dataclass
class ExecStats:
    """Abstract work counters accumulated by the executor.

    The cost model and the benchmarks both use these: wall-clock time in
    pure Python is noisy, while "rows scanned + index probes" tracks the
    same quantities the paper's cost model estimates.

    One instance is only ever written by one thread: the catalog hands
    each thread its own instance (see :attr:`Database.stats`), so the
    per-row ``+= 1`` hot path needs no lock and a before/after
    :meth:`snapshot` diff attributes work to exactly the query that ran
    on that thread.
    """

    rows_scanned: int = 0
    index_probes: int = 0
    rows_joined: int = 0
    rows_emitted: int = 0
    subqueries_run: int = 0
    groups_skipped: int = 0

    def reset(self) -> None:
        self.rows_scanned = 0
        self.index_probes = 0
        self.rows_joined = 0
        self.rows_emitted = 0
        self.subqueries_run = 0
        self.groups_skipped = 0

    def total_work(self) -> int:
        """Single scalar "work" figure for coarse comparisons."""
        return self.rows_scanned + self.index_probes + self.rows_joined

    def snapshot(self) -> Dict[str, int]:
        return {
            "rows_scanned": self.rows_scanned,
            "index_probes": self.index_probes,
            "rows_joined": self.rows_joined,
            "rows_emitted": self.rows_emitted,
            "subqueries_run": self.subqueries_run,
            "groups_skipped": self.groups_skipped,
        }


@dataclass
class TableDump:
    """One table's full state in plain-Python form: the schema, the
    declared secondary indexes, and an iterator over the rows.

    Produced by :meth:`Database.dump_tables` and consumed by
    :meth:`Database.restore_table`; the persistence layer
    (:mod:`repro.persist`) moves these through SQLite without knowing
    anything about table internals.
    """

    schema: TableSchema
    hash_indexes: List[tuple]    # (name, [column, ...])
    sorted_indexes: List[tuple]  # (name, [column])
    rows: Iterator[Row]
    row_count: int


class Database:
    """A named collection of :class:`Table` objects.

    Table lookup is case-insensitive, like the SQL layer's identifiers.
    """

    def __init__(self, name: str = "db") -> None:
        self.name = name
        self._tables: Dict[str, Table] = {}
        self._catalog_version = 0
        # Executor counters are kept per thread: a query plans and
        # executes entirely on one thread, so handing every thread its
        # own ExecStats keeps the per-row increments lock-free *and*
        # keeps per-query before/after diffs exact when many queries run
        # concurrently (a process-wide counter set would interleave
        # them).  ``stats_totals()`` aggregates across threads; buckets
        # of dead threads are folded into ``_stats_retired`` (on the
        # next registration) so thread-per-request callers don't grow
        # the bucket list without bound — and no completed work is ever
        # dropped from the totals.
        self._stats_local = threading.local()
        self._stats_lock = threading.Lock()
        self._stats_buckets: List[Tuple[threading.Thread, ExecStats]] = []
        self._stats_retired = ExecStats()

    @property
    def stats(self) -> ExecStats:
        """This thread's executor counters (created on first use)."""
        stats = getattr(self._stats_local, "stats", None)
        if stats is None:
            stats = ExecStats()
            self._stats_local.stats = stats
            with self._stats_lock:
                self._retire_dead_locked()
                self._stats_buckets.append((threading.current_thread(), stats))
        return stats

    def _retire_dead_locked(self) -> None:
        """Fold buckets of finished threads into the retired totals.
        A dead thread can no longer increment, so the fold is exact."""
        live: List[Tuple[threading.Thread, ExecStats]] = []
        for thread, bucket in self._stats_buckets:
            if thread.is_alive():
                live.append((thread, bucket))
            else:
                for key, value in bucket.snapshot().items():
                    setattr(
                        self._stats_retired,
                        key,
                        getattr(self._stats_retired, key) + value,
                    )
        self._stats_buckets = live

    def stats_totals(self) -> Dict[str, int]:
        """Executor counters summed over every thread that has ever run
        queries against this database (the server-wide view)."""
        with self._stats_lock:
            totals = self._stats_retired.snapshot()
            buckets = [bucket for _, bucket in self._stats_buckets]
        for bucket in buckets:
            for key, value in bucket.snapshot().items():
                totals[key] += value
        return totals

    def reset_all_stats(self) -> None:
        """Zero every thread's counters (and the retired totals).  Not
        safe against concurrent in-flight executions (a racing increment
        may survive); meant for benchmark/test checkpoints on a quiet
        database."""
        with self._stats_lock:
            self._stats_retired.reset()
            buckets = [bucket for _, bucket in self._stats_buckets]
        for bucket in buckets:
            bucket.reset()

    def create_table(self, schema: TableSchema) -> Table:
        key = schema.name.lower()
        if key in self._tables:
            raise CatalogError(f"table {schema.name!r} already exists")
        table = Table(schema)
        self._tables[key] = table
        self._catalog_version += 1
        return table

    def drop_table(self, name: str) -> None:
        key = name.lower()
        if key not in self._tables:
            raise CatalogError(f"unknown table {name!r}")
        del self._tables[key]
        self._catalog_version += 1

    def change_token(self) -> Tuple:
        """A cheap value that changes whenever the catalog or any
        table's data changes — the SQL engine's prepared-statement cache
        revalidates against it, so a cached plan can never serve results
        computed over stale data or a stale schema."""
        return (
            self._catalog_version,
            tuple(table.data_version for table in self._tables.values()),
        )

    def has_table(self, name: str) -> bool:
        return name.lower() in self._tables

    def table(self, name: str) -> Table:
        try:
            return self._tables[name.lower()]
        except KeyError:
            raise CatalogError(f"unknown table {name!r}") from None

    def table_names(self) -> List[str]:
        return [t.schema.name for t in self._tables.values()]

    def tables(self) -> Iterator[Table]:
        return iter(self._tables.values())

    # ------------------------------------------------------------------
    # Dump / restore (snapshot support)
    # ------------------------------------------------------------------
    def dump_tables(
        self, exclude: Optional[Sequence[str]] = None
    ) -> Iterator[TableDump]:
        """Yield every table (optionally excluding some by name) as a
        :class:`TableDump`, in catalog order."""
        skip = {name.lower() for name in (exclude or ())}
        for table in self._tables.values():
            if table.schema.name.lower() in skip:
                continue
            defs = table.index_definitions()
            yield TableDump(
                schema=table.schema,
                hash_indexes=defs["hash"],
                sorted_indexes=defs["sorted"],
                rows=iter(table.rows),
                row_count=table.row_count,
            )

    def restore_table(self, dump: TableDump, validate: bool = False) -> Table:
        """Create a table from a :class:`TableDump`: schema, declared
        indexes, then the rows (unchecked by default — dumps come from
        rows this schema already validated)."""
        table = self.create_table(dump.schema)
        existing = table.index_definitions()
        have_hash = {name for name, _ in existing["hash"]}  # auto "pk"
        for name, columns in dump.hash_indexes:
            if name not in have_hash:
                table.create_hash_index(name, columns)
        for name, columns in dump.sorted_indexes:
            table.create_sorted_index(name, columns[0])
        if validate:
            table.bulk_load(dump.rows)
        else:
            table.load_rows_unchecked(dump.rows)
        return table

    def total_bytes(self) -> int:
        return sum(t.estimated_bytes() for t in self._tables.values())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Database({self.name}, tables={sorted(self._tables)})"
