"""Scalar expressions and predicates over rows.

Expressions are immutable trees.  Before execution they are *bound*
against a :class:`RowLayout` (the qualified column list an operator
produces), yielding a plain Python closure — evaluation is then just a
function call per row, with no name resolution in the hot loop.

SQL three-valued logic is honoured: comparisons against NULL evaluate to
``None`` ("unknown"), AND/OR/NOT propagate unknowns per Kleene logic,
and WHERE treats unknown as false.
"""

from __future__ import annotations

import re
from typing import Any, Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.errors import SqlBindError
from repro.relational.types import comparable

Row = Tuple[Any, ...]
RowFunc = Callable[[Row], Any]
ColumnKey = Tuple[Optional[str], str]  # (qualifier or None, column name), lowercase


class RowLayout:
    """The qualified column list of an operator's output.

    Each entry is ``(alias, column_name)``; unqualified references
    resolve when exactly one entry matches the column name.
    """

    def __init__(self, entries: Sequence[Tuple[str, str]]) -> None:
        self.entries: Tuple[Tuple[str, str], ...] = tuple(
            (alias.lower(), name.lower()) for alias, name in entries
        )
        self._by_qualified: Dict[Tuple[str, str], int] = {}
        self._by_name: Dict[str, List[int]] = {}
        for i, (alias, name) in enumerate(self.entries):
            if (alias, name) in self._by_qualified:
                raise SqlBindError(f"duplicate column {alias}.{name} in row layout")
            self._by_qualified[(alias, name)] = i
            self._by_name.setdefault(name, []).append(i)

    @property
    def arity(self) -> int:
        return len(self.entries)

    def position(self, qualifier: Optional[str], name: str) -> int:
        name = name.lower()
        if qualifier is not None:
            key = (qualifier.lower(), name)
            if key not in self._by_qualified:
                raise SqlBindError(f"unknown column {qualifier}.{name}")
            return self._by_qualified[key]
        hits = self._by_name.get(name, [])
        if not hits:
            raise SqlBindError(f"unknown column {name}")
        if len(hits) > 1:
            raise SqlBindError(f"ambiguous column {name}")
        return hits[0]

    def has(self, qualifier: Optional[str], name: str) -> bool:
        try:
            self.position(qualifier, name)
            return True
        except SqlBindError:
            return False

    def concat(self, other: "RowLayout") -> "RowLayout":
        return RowLayout(list(self.entries) + list(other.entries))

    def aliases(self) -> Set[str]:
        return {alias for alias, _ in self.entries}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "RowLayout(" + ", ".join(f"{a}.{n}" for a, n in self.entries) + ")"


class Expression:
    """Base class.  Subclasses implement :meth:`bind` and
    :meth:`column_refs`."""

    def bind(self, layout: RowLayout) -> RowFunc:
        raise NotImplementedError

    def column_refs(self) -> Set[ColumnKey]:
        """All (qualifier, column) pairs referenced, lowercased."""
        raise NotImplementedError

    # Convenience combinators -------------------------------------------------
    def and_(self, other: "Expression") -> "Expression":
        return And([self, other])

    def evaluate_single(self, layout: RowLayout, row: Row) -> Any:
        return self.bind(layout)(row)


class Literal(Expression):
    def __init__(self, value: Any) -> None:
        self.value = value

    def bind(self, layout: RowLayout) -> RowFunc:
        value = self.value
        return lambda row: value

    def column_refs(self) -> Set[ColumnKey]:
        return set()

    def __repr__(self) -> str:
        return f"Literal({self.value!r})"


class ColumnRef(Expression):
    def __init__(self, qualifier: Optional[str], name: str) -> None:
        self.qualifier = qualifier.lower() if qualifier else None
        self.name = name.lower()

    def bind(self, layout: RowLayout) -> RowFunc:
        pos = layout.position(self.qualifier, self.name)
        return lambda row: row[pos]

    def column_refs(self) -> Set[ColumnKey]:
        return {(self.qualifier, self.name)}

    def display(self) -> str:
        return f"{self.qualifier}.{self.name}" if self.qualifier else self.name

    def __repr__(self) -> str:
        return f"ColumnRef({self.display()})"


_COMPARATORS: Dict[str, Callable[[Any, Any], bool]] = {
    "=": lambda a, b: a == b,
    "<>": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}


class Comparison(Expression):
    """Binary comparison with SQL NULL semantics (NULL -> unknown)."""

    def __init__(self, op: str, left: Expression, right: Expression) -> None:
        if op == "!=":
            op = "<>"
        if op not in _COMPARATORS:
            raise SqlBindError(f"unknown comparison operator {op!r}")
        self.op = op
        self.left = left
        self.right = right

    def bind(self, layout: RowLayout) -> RowFunc:
        lf, rf = self.left.bind(layout), self.right.bind(layout)
        fn = _COMPARATORS[self.op]
        ordered = self.op in ("<", "<=", ">", ">=")

        def run(row: Row) -> Optional[bool]:
            a, b = lf(row), rf(row)
            if a is None or b is None:
                return None
            if ordered and not comparable(a, b):
                return None
            return fn(a, b)

        return run

    def column_refs(self) -> Set[ColumnKey]:
        return self.left.column_refs() | self.right.column_refs()

    def __repr__(self) -> str:
        return f"({self.left!r} {self.op} {self.right!r})"


class And(Expression):
    def __init__(self, items: Sequence[Expression]) -> None:
        self.items = list(items)

    def bind(self, layout: RowLayout) -> RowFunc:
        funcs = [item.bind(layout) for item in self.items]

        def run(row: Row) -> Optional[bool]:
            unknown = False
            for fn in funcs:
                v = fn(row)
                if v is False:
                    return False
                if v is None:
                    unknown = True
            return None if unknown else True

        return run

    def column_refs(self) -> Set[ColumnKey]:
        refs: Set[ColumnKey] = set()
        for item in self.items:
            refs |= item.column_refs()
        return refs

    def __repr__(self) -> str:
        return "And(" + ", ".join(map(repr, self.items)) + ")"


class Or(Expression):
    def __init__(self, items: Sequence[Expression]) -> None:
        self.items = list(items)

    def bind(self, layout: RowLayout) -> RowFunc:
        funcs = [item.bind(layout) for item in self.items]

        def run(row: Row) -> Optional[bool]:
            unknown = False
            for fn in funcs:
                v = fn(row)
                if v is True:
                    return True
                if v is None:
                    unknown = True
            return None if unknown else False

        return run

    def column_refs(self) -> Set[ColumnKey]:
        refs: Set[ColumnKey] = set()
        for item in self.items:
            refs |= item.column_refs()
        return refs

    def __repr__(self) -> str:
        return "Or(" + ", ".join(map(repr, self.items)) + ")"


class Not(Expression):
    def __init__(self, item: Expression) -> None:
        self.item = item

    def bind(self, layout: RowLayout) -> RowFunc:
        fn = self.item.bind(layout)

        def run(row: Row) -> Optional[bool]:
            v = fn(row)
            if v is None:
                return None
            return not v

        return run

    def column_refs(self) -> Set[ColumnKey]:
        return self.item.column_refs()

    def __repr__(self) -> str:
        return f"Not({self.item!r})"


class Contains(Expression):
    """Case-insensitive substring containment — the engine-level
    realization of the paper's ``desc.ct('enzyme')`` keyword predicate."""

    def __init__(self, haystack: Expression, needle: Expression) -> None:
        self.haystack = haystack
        self.needle = needle

    def bind(self, layout: RowLayout) -> RowFunc:
        hf, nf = self.haystack.bind(layout), self.needle.bind(layout)

        def run(row: Row) -> Optional[bool]:
            h, n = hf(row), nf(row)
            if h is None or n is None:
                return None
            return str(n).lower() in str(h).lower()

        return run

    def column_refs(self) -> Set[ColumnKey]:
        return self.haystack.column_refs() | self.needle.column_refs()

    def __repr__(self) -> str:
        return f"Contains({self.haystack!r}, {self.needle!r})"


class Like(Expression):
    """SQL LIKE with ``%`` and ``_`` wildcards (case-sensitive)."""

    def __init__(self, value: Expression, pattern: str, negated: bool = False) -> None:
        self.value = value
        self.pattern = pattern
        self.negated = negated
        # re.escape leaves % and _ untouched (they are not regex
        # metacharacters), so translate them after escaping the rest.
        regex = re.escape(pattern).replace("%", ".*").replace("_", ".")
        self._compiled = re.compile(f"^{regex}$", re.DOTALL)

    def bind(self, layout: RowLayout) -> RowFunc:
        vf = self.value.bind(layout)
        compiled = self._compiled
        negated = self.negated

        def run(row: Row) -> Optional[bool]:
            v = vf(row)
            if v is None:
                return None
            matched = compiled.match(str(v)) is not None
            return (not matched) if negated else matched

        return run

    def column_refs(self) -> Set[ColumnKey]:
        return self.value.column_refs()

    def __repr__(self) -> str:
        return f"Like({self.value!r}, {self.pattern!r})"


class InList(Expression):
    def __init__(self, value: Expression, options: Sequence[Any], negated: bool = False) -> None:
        self.value = value
        self.options = frozenset(options)
        self.negated = negated

    def bind(self, layout: RowLayout) -> RowFunc:
        vf = self.value.bind(layout)
        options = self.options
        negated = self.negated

        def run(row: Row) -> Optional[bool]:
            v = vf(row)
            if v is None:
                return None
            found = v in options
            return (not found) if negated else found

        return run

    def column_refs(self) -> Set[ColumnKey]:
        return self.value.column_refs()

    def __repr__(self) -> str:
        return f"InList({self.value!r}, {sorted(map(repr, self.options))}, negated={self.negated})"


class IsNull(Expression):
    def __init__(self, value: Expression, negated: bool = False) -> None:
        self.value = value
        self.negated = negated

    def bind(self, layout: RowLayout) -> RowFunc:
        vf = self.value.bind(layout)
        negated = self.negated

        def run(row: Row) -> bool:
            is_null = vf(row) is None
            return (not is_null) if negated else is_null

        return run

    def column_refs(self) -> Set[ColumnKey]:
        return self.value.column_refs()

    def __repr__(self) -> str:
        return f"IsNull({self.value!r}, negated={self.negated})"


_ARITH: Dict[str, Callable[[Any, Any], Any]] = {
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "*": lambda a, b: a * b,
    "/": lambda a, b: a / b,
}


class Arith(Expression):
    def __init__(self, op: str, left: Expression, right: Expression) -> None:
        if op not in _ARITH:
            raise SqlBindError(f"unknown arithmetic operator {op!r}")
        self.op = op
        self.left = left
        self.right = right

    def bind(self, layout: RowLayout) -> RowFunc:
        lf, rf = self.left.bind(layout), self.right.bind(layout)
        fn = _ARITH[self.op]

        def run(row: Row) -> Any:
            a, b = lf(row), rf(row)
            if a is None or b is None:
                return None
            return fn(a, b)

        return run

    def column_refs(self) -> Set[ColumnKey]:
        return self.left.column_refs() | self.right.column_refs()

    def __repr__(self) -> str:
        return f"({self.left!r} {self.op} {self.right!r})"


class Neg(Expression):
    def __init__(self, value: Expression) -> None:
        self.value = value

    def bind(self, layout: RowLayout) -> RowFunc:
        vf = self.value.bind(layout)

        def run(row: Row) -> Any:
            v = vf(row)
            return None if v is None else -v

        return run

    def column_refs(self) -> Set[ColumnKey]:
        return self.value.column_refs()

    def __repr__(self) -> str:
        return f"Neg({self.value!r})"


# ----------------------------------------------------------------------
# Predicate analysis helpers (used by the planner/optimizer)
# ----------------------------------------------------------------------
def split_conjuncts(expr: Optional[Expression]) -> List[Expression]:
    """Flatten nested ANDs into a conjunct list ([] for None)."""
    if expr is None:
        return []
    if isinstance(expr, And):
        out: List[Expression] = []
        for item in expr.items:
            out.extend(split_conjuncts(item))
        return out
    return [expr]


def conjoin(conjuncts: Sequence[Expression]) -> Optional[Expression]:
    """Inverse of :func:`split_conjuncts`."""
    items = list(conjuncts)
    if not items:
        return None
    if len(items) == 1:
        return items[0]
    return And(items)


def referenced_aliases(expr: Expression) -> Set[str]:
    """Qualifiers mentioned by the expression (unqualified refs excluded)."""
    return {q for q, _ in expr.column_refs() if q is not None}


def as_equijoin(expr: Expression) -> Optional[Tuple[ColumnRef, ColumnRef]]:
    """If ``expr`` is ``a.x = b.y`` with two different qualifiers, return
    the pair of refs; otherwise None."""
    if (
        isinstance(expr, Comparison)
        and expr.op == "="
        and isinstance(expr.left, ColumnRef)
        and isinstance(expr.right, ColumnRef)
        and expr.left.qualifier is not None
        and expr.right.qualifier is not None
        and expr.left.qualifier != expr.right.qualifier
    ):
        return expr.left, expr.right
    return None


def is_truthy(value: Any) -> bool:
    """WHERE semantics: unknown (None) counts as false."""
    return value is True
