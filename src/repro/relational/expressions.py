"""Scalar expressions and predicates over rows and column batches.

Expressions are immutable trees.  Before execution they are *bound*
against a :class:`RowLayout` (the qualified column list an operator
produces).  Binding comes in two flavors:

* :meth:`Expression.bind` yields a plain Python closure evaluated once
  per row — the retained reference row engine's hot loop.
* :meth:`Expression.bind_batch` yields a closure evaluated once per
  :class:`~repro.relational.column.Batch`, returning a
  :class:`BatchValues` vector — the columnar engine's hot loop.  Where
  both sides of a node are numpy-backed (or constants) the whole batch
  is computed by one vectorized numpy expression; otherwise the node
  falls back to an element-wise Python loop that replicates the row
  semantics exactly.

SQL three-valued logic is honoured identically on both paths:
comparisons against NULL evaluate to ``None`` ("unknown"), AND/OR/NOT
propagate unknowns per Kleene logic, and WHERE treats unknown as false.
The batch path leans on one invariant from the column store: a
numpy-backed batch column never contains NULLs, so vectorized boolean
results never contain unknowns and stay plain ``bool`` arrays.  Any
source of unknowns (NULL literals, incomparable operand types, list
columns with NULL entries) routes through the constant or list
representations, where ``None`` is representable.

The two paths are allowed to diverge only on *errors* in partial
expressions (e.g. division by zero aborts the batch rather than failing
at one row) — never on values.  ``tests/relational/
test_expression_masks.py`` property-checks the agreement.
"""

from __future__ import annotations

import re
from typing import Any, Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.errors import SqlBindError
from repro.relational.column import Batch
from repro.relational.types import comparable

Row = Tuple[Any, ...]
RowFunc = Callable[[Row], Any]
BatchFunc = Callable[[Batch], "BatchValues"]
ColumnKey = Tuple[Optional[str], str]  # (qualifier or None, column name), lowercase


class RowLayout:
    """The qualified column list of an operator's output.

    Each entry is ``(alias, column_name)``; unqualified references
    resolve when exactly one entry matches the column name.
    """

    def __init__(self, entries: Sequence[Tuple[str, str]]) -> None:
        self.entries: Tuple[Tuple[str, str], ...] = tuple(
            (alias.lower(), name.lower()) for alias, name in entries
        )
        self._by_qualified: Dict[Tuple[str, str], int] = {}
        self._by_name: Dict[str, List[int]] = {}
        for i, (alias, name) in enumerate(self.entries):
            if (alias, name) in self._by_qualified:
                raise SqlBindError(f"duplicate column {alias}.{name} in row layout")
            self._by_qualified[(alias, name)] = i
            self._by_name.setdefault(name, []).append(i)

    @property
    def arity(self) -> int:
        return len(self.entries)

    def position(self, qualifier: Optional[str], name: str) -> int:
        name = name.lower()
        if qualifier is not None:
            key = (qualifier.lower(), name)
            if key not in self._by_qualified:
                raise SqlBindError(f"unknown column {qualifier}.{name}")
            return self._by_qualified[key]
        hits = self._by_name.get(name, [])
        if not hits:
            raise SqlBindError(f"unknown column {name}")
        if len(hits) > 1:
            raise SqlBindError(f"ambiguous column {name}")
        return hits[0]

    def has(self, qualifier: Optional[str], name: str) -> bool:
        try:
            self.position(qualifier, name)
            return True
        except SqlBindError:
            return False

    def concat(self, other: "RowLayout") -> "RowLayout":
        return RowLayout(list(self.entries) + list(other.entries))

    def aliases(self) -> Set[str]:
        return {alias for alias, _ in self.entries}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "RowLayout(" + ", ".join(f"{a}.{n}" for a, n in self.entries) + ")"


class BatchValues:
    """One expression result per batch row, in the cheapest faithful
    representation:

    * ``"np"`` — a numpy array (never contains NULL/unknown; boolean
      results have dtype bool);
    * ``"list"`` — a Python list of plain Python values, ``None`` for
      NULL/unknown;
    * ``"const"`` — one Python value broadcast over the batch (how NULL
      literals, uniformly-unknown comparisons, and short-circuited
      AND/OR legs stay O(1)).
    """

    __slots__ = ("kind", "data", "length")

    def __init__(self, kind: str, data: Any, length: int) -> None:
        self.kind = kind
        self.data = data
        self.length = length

    def pylist(self) -> list:
        """Materialize as a Python list of plain Python values."""
        if self.kind == "np":
            return self.data.tolist()
        if self.kind == "const":
            return [self.data] * self.length
        return self.data

    def as_keep(self):
        """Per-row keep flags under WHERE semantics (unknown → drop):
        a numpy bool array or a list of bools."""
        if self.kind == "np":
            if self.data.dtype.kind == "b":
                return self.data
            # Non-bool values are never `is True` under row semantics.
            return [False] * self.length
        if self.kind == "const":
            return [self.data is True] * self.length
        return [v is True for v in self.data]

    def as_column(self):
        """As a batch column (numpy array or list)."""
        if self.kind == "const":
            return [self.data] * self.length
        return self.data

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"BatchValues({self.kind}, n={self.length})"


def _is_bool_side(v: "BatchValues") -> bool:
    if v.kind == "np":
        return v.data.dtype.kind == "b"
    return isinstance(v.data, bool)


def _np_arith_operand(v: "BatchValues"):
    """Operand for vectorized arithmetic.  Python treats bools as ints
    in arithmetic; numpy raises on bool arrays for ``-``, so promote."""
    if v.kind == "np":
        return v.data.astype("int64") if v.data.dtype.kind == "b" else v.data
    return int(v.data) if isinstance(v.data, bool) else v.data


class Expression:
    """Base class.  Subclasses implement :meth:`bind`,
    :meth:`column_refs`, and (optionally) a vectorized
    :meth:`bind_batch` — the default batch binding falls back to the
    row closure applied element-wise, so row-only nodes stay correct."""

    def bind(self, layout: RowLayout) -> RowFunc:
        raise NotImplementedError

    def bind_batch(self, layout: RowLayout) -> BatchFunc:
        fn = self.bind(layout)

        def run(batch: Batch) -> BatchValues:
            return BatchValues("list", [fn(row) for row in batch.to_rows()], batch.length)

        return run

    def column_refs(self) -> Set[ColumnKey]:
        """All (qualifier, column) pairs referenced, lowercased."""
        raise NotImplementedError

    # Convenience combinators -------------------------------------------------
    def and_(self, other: "Expression") -> "Expression":
        return And([self, other])

    def evaluate_single(self, layout: RowLayout, row: Row) -> Any:
        return self.bind(layout)(row)


class Literal(Expression):
    def __init__(self, value: Any) -> None:
        self.value = value

    def bind(self, layout: RowLayout) -> RowFunc:
        value = self.value
        return lambda row: value

    def bind_batch(self, layout: RowLayout) -> BatchFunc:
        value = self.value
        return lambda batch: BatchValues("const", value, batch.length)

    def column_refs(self) -> Set[ColumnKey]:
        return set()

    def __repr__(self) -> str:
        return f"Literal({self.value!r})"


class ColumnRef(Expression):
    def __init__(self, qualifier: Optional[str], name: str) -> None:
        self.qualifier = qualifier.lower() if qualifier else None
        self.name = name.lower()

    def bind(self, layout: RowLayout) -> RowFunc:
        pos = layout.position(self.qualifier, self.name)
        return lambda row: row[pos]

    def bind_batch(self, layout: RowLayout) -> BatchFunc:
        pos = layout.position(self.qualifier, self.name)

        def run(batch: Batch) -> BatchValues:
            column = batch.columns[pos]
            kind = "list" if isinstance(column, list) else "np"
            return BatchValues(kind, column, batch.length)

        return run

    def column_refs(self) -> Set[ColumnKey]:
        return {(self.qualifier, self.name)}

    def display(self) -> str:
        return f"{self.qualifier}.{self.name}" if self.qualifier else self.name

    def __repr__(self) -> str:
        return f"ColumnRef({self.display()})"


_COMPARATORS: Dict[str, Callable[[Any, Any], bool]] = {
    "=": lambda a, b: a == b,
    "<>": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}


class Comparison(Expression):
    """Binary comparison with SQL NULL semantics (NULL -> unknown)."""

    def __init__(self, op: str, left: Expression, right: Expression) -> None:
        if op == "!=":
            op = "<>"
        if op not in _COMPARATORS:
            raise SqlBindError(f"unknown comparison operator {op!r}")
        self.op = op
        self.left = left
        self.right = right

    def bind(self, layout: RowLayout) -> RowFunc:
        lf, rf = self.left.bind(layout), self.right.bind(layout)
        fn = _COMPARATORS[self.op]
        ordered = self.op in ("<", "<=", ">", ">=")

        def run(row: Row) -> Optional[bool]:
            a, b = lf(row), rf(row)
            if a is None or b is None:
                return None
            if ordered and not comparable(a, b):
                return None
            return fn(a, b)

        return run

    def bind_batch(self, layout: RowLayout) -> BatchFunc:
        lf, rf = self.left.bind_batch(layout), self.right.bind_batch(layout)
        fn = _COMPARATORS[self.op]
        op = self.op
        ordered = op in ("<", "<=", ">", ">=")

        def run(batch: Batch) -> BatchValues:
            a, b = lf(batch), rf(batch)
            n = batch.length
            if (a.kind == "const" and a.data is None) or (
                b.kind == "const" and b.data is None
            ):
                return BatchValues("const", None, n)
            if a.kind == "const" and b.kind == "const":
                if ordered and not comparable(a.data, b.data):
                    return BatchValues("const", None, n)
                return BatchValues("const", fn(a.data, b.data), n)
            if a.kind != "list" and b.kind != "list":
                # numpy array vs numpy array / non-NULL constant: neither
                # side can hold NULLs, so the result is a pure bool array
                # — unless the types are incomparable, which is uniform
                # across the batch (numpy-backed columns are homogeneous).
                for side in (a, b):
                    if side.kind == "const" and not isinstance(
                        side.data, (bool, int, float)
                    ):
                        # e.g. a string literal against a numeric column:
                        # Python cross-type equality is plain False.
                        if ordered:
                            return BatchValues("const", None, n)
                        return BatchValues("const", op == "<>", n)
                if ordered and _is_bool_side(a) != _is_bool_side(b):
                    return BatchValues("const", None, n)  # comparable() says no
                return BatchValues("np", fn(a.data, b.data), n)
            # Element-wise path, identical to the row engine.
            out: List[Optional[bool]] = []
            for x, y in zip(a.pylist(), b.pylist()):
                if x is None or y is None:
                    out.append(None)
                elif ordered and not comparable(x, y):
                    out.append(None)
                else:
                    out.append(fn(x, y))
            return BatchValues("list", out, n)

        return run

    def column_refs(self) -> Set[ColumnKey]:
        return self.left.column_refs() | self.right.column_refs()

    def __repr__(self) -> str:
        return f"({self.left!r} {self.op} {self.right!r})"


class And(Expression):
    def __init__(self, items: Sequence[Expression]) -> None:
        self.items = list(items)

    def bind(self, layout: RowLayout) -> RowFunc:
        funcs = [item.bind(layout) for item in self.items]

        def run(row: Row) -> Optional[bool]:
            unknown = False
            for fn in funcs:
                v = fn(row)
                if v is False:
                    return False
                if v is None:
                    unknown = True
            return None if unknown else True

        return run

    def bind_batch(self, layout: RowLayout) -> BatchFunc:
        funcs = [item.bind_batch(layout) for item in self.items]

        def run(batch: Batch) -> BatchValues:
            n = batch.length
            arrays = []  # numpy bool legs: True / False, never unknown
            lists = []  # legs that may hold None / non-bool values
            const_unknown = False
            for fn in funcs:
                v = fn(batch)
                if v.kind == "const":
                    if v.data is False:
                        return BatchValues("const", False, n)
                    if v.data is None:
                        const_unknown = True
                    # Any other constant (True or non-bool) never makes
                    # the AND false or unknown — same identity checks as
                    # the row loop.
                elif v.kind == "np":
                    if v.data.dtype.kind == "b":
                        arrays.append(v.data)
                    # Non-bool numpy values are never `is False`/`is None`.
                else:
                    lists.append(v.data)
            t = None
            if arrays:
                t = arrays[0]
                for arr in arrays[1:]:
                    t = t & arr
            if lists:
                out: List[Optional[bool]] = []
                for i in range(n):
                    if t is not None and not t[i]:
                        out.append(False)
                        continue
                    unknown = const_unknown
                    value: Optional[bool] = True
                    for data in lists:
                        v = data[i]
                        if v is False:
                            value = False
                            break
                        if v is None:
                            unknown = True
                    out.append(None if value and unknown else value)
                return BatchValues("list", out, n)
            if t is not None:
                if const_unknown:
                    return BatchValues(
                        "list", [None if x else False for x in t.tolist()], n
                    )
                return BatchValues("np", t, n)
            return BatchValues("const", None if const_unknown else True, n)

        return run

    def column_refs(self) -> Set[ColumnKey]:
        refs: Set[ColumnKey] = set()
        for item in self.items:
            refs |= item.column_refs()
        return refs

    def __repr__(self) -> str:
        return "And(" + ", ".join(map(repr, self.items)) + ")"


class Or(Expression):
    def __init__(self, items: Sequence[Expression]) -> None:
        self.items = list(items)

    def bind(self, layout: RowLayout) -> RowFunc:
        funcs = [item.bind(layout) for item in self.items]

        def run(row: Row) -> Optional[bool]:
            unknown = False
            for fn in funcs:
                v = fn(row)
                if v is True:
                    return True
                if v is None:
                    unknown = True
            return None if unknown else False

        return run

    def bind_batch(self, layout: RowLayout) -> BatchFunc:
        funcs = [item.bind_batch(layout) for item in self.items]

        def run(batch: Batch) -> BatchValues:
            n = batch.length
            arrays = []
            lists = []
            const_unknown = False
            for fn in funcs:
                v = fn(batch)
                if v.kind == "const":
                    if v.data is True:
                        return BatchValues("const", True, n)
                    if v.data is None:
                        const_unknown = True
                elif v.kind == "np":
                    if v.data.dtype.kind == "b":
                        arrays.append(v.data)
                    # Non-bool numpy values are never `is True`/`is None`.
                else:
                    lists.append(v.data)
            t = None
            if arrays:
                t = arrays[0]
                for arr in arrays[1:]:
                    t = t | arr
            if lists:
                out: List[Optional[bool]] = []
                for i in range(n):
                    if t is not None and t[i]:
                        out.append(True)
                        continue
                    unknown = const_unknown
                    value: Optional[bool] = False
                    for data in lists:
                        v = data[i]
                        if v is True:
                            value = True
                            break
                        if v is None:
                            unknown = True
                    out.append(None if value is False and unknown else value)
                return BatchValues("list", out, n)
            if t is not None:
                if const_unknown:
                    return BatchValues(
                        "list", [True if x else None for x in t.tolist()], n
                    )
                return BatchValues("np", t, n)
            return BatchValues("const", None if const_unknown else False, n)

        return run

    def column_refs(self) -> Set[ColumnKey]:
        refs: Set[ColumnKey] = set()
        for item in self.items:
            refs |= item.column_refs()
        return refs

    def __repr__(self) -> str:
        return "Or(" + ", ".join(map(repr, self.items)) + ")"


class Not(Expression):
    def __init__(self, item: Expression) -> None:
        self.item = item

    def bind(self, layout: RowLayout) -> RowFunc:
        fn = self.item.bind(layout)

        def run(row: Row) -> Optional[bool]:
            v = fn(row)
            if v is None:
                return None
            return not v

        return run

    def bind_batch(self, layout: RowLayout) -> BatchFunc:
        fn = self.item.bind_batch(layout)

        def run(batch: Batch) -> BatchValues:
            v = fn(batch)
            n = batch.length
            if v.kind == "const":
                return BatchValues(
                    "const", None if v.data is None else (not v.data), n
                )
            if v.kind == "np":
                if v.data.dtype.kind == "b":
                    return BatchValues("np", ~v.data, n)
                # `not` on numbers is truthiness, not bitwise inversion.
                return BatchValues("list", [not x for x in v.data.tolist()], n)
            return BatchValues(
                "list", [None if x is None else (not x) for x in v.data], n
            )

        return run

    def column_refs(self) -> Set[ColumnKey]:
        return self.item.column_refs()

    def __repr__(self) -> str:
        return f"Not({self.item!r})"


class Contains(Expression):
    """Case-insensitive substring containment — the engine-level
    realization of the paper's ``desc.ct('enzyme')`` keyword predicate.

    The batch path is where keyword scans get their speed: with a
    constant needle and a direct column haystack on a scan-fresh batch,
    the haystack's ``str.lower()`` comes from the table's lowered-text
    cache instead of being recomputed per row per query.
    """

    def __init__(self, haystack: Expression, needle: Expression) -> None:
        self.haystack = haystack
        self.needle = needle

    def bind(self, layout: RowLayout) -> RowFunc:
        hf, nf = self.haystack.bind(layout), self.needle.bind(layout)

        def run(row: Row) -> Optional[bool]:
            h, n = hf(row), nf(row)
            if h is None or n is None:
                return None
            return str(n).lower() in str(h).lower()

        return run

    def bind_batch(self, layout: RowLayout) -> BatchFunc:
        hf = self.haystack.bind_batch(layout)
        nf = self.needle.bind_batch(layout)
        hpos: Optional[int] = None
        if isinstance(self.haystack, ColumnRef):
            hpos = layout.position(self.haystack.qualifier, self.haystack.name)

        def run(batch: Batch) -> BatchValues:
            n = batch.length
            nv = nf(batch)
            if nv.kind == "const":
                if nv.data is None:
                    return BatchValues("const", None, n)
                needle = str(nv.data).lower()
                if hpos is not None and batch.lowered is not None:
                    low = batch.lowered(hpos)
                    if low is not None:
                        return BatchValues(
                            "list",
                            [None if h is None else (needle in h) for h in low],
                            n,
                        )
                hv = hf(batch)
                if hv.kind == "const":
                    if hv.data is None:
                        return BatchValues("const", None, n)
                    return BatchValues("const", needle in str(hv.data).lower(), n)
                return BatchValues(
                    "list",
                    [
                        None if h is None else (needle in str(h).lower())
                        for h in hv.pylist()
                    ],
                    n,
                )
            hv = hf(batch)
            out: List[Optional[bool]] = []
            for h, nd in zip(hv.pylist(), nv.pylist()):
                if h is None or nd is None:
                    out.append(None)
                else:
                    out.append(str(nd).lower() in str(h).lower())
            return BatchValues("list", out, n)

        return run

    def column_refs(self) -> Set[ColumnKey]:
        return self.haystack.column_refs() | self.needle.column_refs()

    def __repr__(self) -> str:
        return f"Contains({self.haystack!r}, {self.needle!r})"


class Like(Expression):
    """SQL LIKE with ``%`` and ``_`` wildcards (case-sensitive)."""

    def __init__(self, value: Expression, pattern: str, negated: bool = False) -> None:
        self.value = value
        self.pattern = pattern
        self.negated = negated
        # re.escape leaves % and _ untouched (they are not regex
        # metacharacters), so translate them after escaping the rest.
        regex = re.escape(pattern).replace("%", ".*").replace("_", ".")
        self._compiled = re.compile(f"^{regex}$", re.DOTALL)

    def bind(self, layout: RowLayout) -> RowFunc:
        vf = self.value.bind(layout)
        compiled = self._compiled
        negated = self.negated

        def run(row: Row) -> Optional[bool]:
            v = vf(row)
            if v is None:
                return None
            matched = compiled.match(str(v)) is not None
            return (not matched) if negated else matched

        return run

    def bind_batch(self, layout: RowLayout) -> BatchFunc:
        vf = self.value.bind_batch(layout)
        compiled = self._compiled
        negated = self.negated

        def run(batch: Batch) -> BatchValues:
            v = vf(batch)
            n = batch.length
            if v.kind == "const":
                if v.data is None:
                    return BatchValues("const", None, n)
                matched = compiled.match(str(v.data)) is not None
                return BatchValues("const", (not matched) if negated else matched, n)
            out: List[Optional[bool]] = []
            for x in v.pylist():
                if x is None:
                    out.append(None)
                else:
                    matched = compiled.match(str(x)) is not None
                    out.append((not matched) if negated else matched)
            return BatchValues("list", out, n)

        return run

    def column_refs(self) -> Set[ColumnKey]:
        return self.value.column_refs()

    def __repr__(self) -> str:
        return f"Like({self.value!r}, {self.pattern!r})"


class InList(Expression):
    def __init__(self, value: Expression, options: Sequence[Any], negated: bool = False) -> None:
        self.value = value
        self.options = frozenset(options)
        self.negated = negated

    def bind(self, layout: RowLayout) -> RowFunc:
        vf = self.value.bind(layout)
        options = self.options
        negated = self.negated

        def run(row: Row) -> Optional[bool]:
            v = vf(row)
            if v is None:
                return None
            found = v in options
            return (not found) if negated else found

        return run

    def bind_batch(self, layout: RowLayout) -> BatchFunc:
        vf = self.value.bind_batch(layout)
        options = self.options
        negated = self.negated

        def run(batch: Batch) -> BatchValues:
            v = vf(batch)
            n = batch.length
            if v.kind == "const":
                if v.data is None:
                    return BatchValues("const", None, n)
                found = v.data in options
                return BatchValues("const", (not found) if negated else found, n)
            out: List[Optional[bool]] = []
            for x in v.pylist():
                if x is None:
                    out.append(None)
                else:
                    found = x in options
                    out.append((not found) if negated else found)
            return BatchValues("list", out, n)

        return run

    def column_refs(self) -> Set[ColumnKey]:
        return self.value.column_refs()

    def __repr__(self) -> str:
        return f"InList({self.value!r}, {sorted(map(repr, self.options))}, negated={self.negated})"


class IsNull(Expression):
    def __init__(self, value: Expression, negated: bool = False) -> None:
        self.value = value
        self.negated = negated

    def bind(self, layout: RowLayout) -> RowFunc:
        vf = self.value.bind(layout)
        negated = self.negated

        def run(row: Row) -> bool:
            is_null = vf(row) is None
            return (not is_null) if negated else is_null

        return run

    def bind_batch(self, layout: RowLayout) -> BatchFunc:
        vf = self.value.bind_batch(layout)
        negated = self.negated

        def run(batch: Batch) -> BatchValues:
            v = vf(batch)
            n = batch.length
            if v.kind == "const":
                is_null = v.data is None
                return BatchValues("const", (not is_null) if negated else is_null, n)
            if v.kind == "np":
                # numpy-backed values are never NULL.
                return BatchValues("const", bool(negated), n)
            return BatchValues(
                "list",
                [(x is not None) if negated else (x is None) for x in v.data],
                n,
            )

        return run

    def column_refs(self) -> Set[ColumnKey]:
        return self.value.column_refs()

    def __repr__(self) -> str:
        return f"IsNull({self.value!r}, negated={self.negated})"


_ARITH: Dict[str, Callable[[Any, Any], Any]] = {
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "*": lambda a, b: a * b,
    "/": lambda a, b: a / b,
}


class Arith(Expression):
    def __init__(self, op: str, left: Expression, right: Expression) -> None:
        if op not in _ARITH:
            raise SqlBindError(f"unknown arithmetic operator {op!r}")
        self.op = op
        self.left = left
        self.right = right

    def bind(self, layout: RowLayout) -> RowFunc:
        lf, rf = self.left.bind(layout), self.right.bind(layout)
        fn = _ARITH[self.op]

        def run(row: Row) -> Any:
            a, b = lf(row), rf(row)
            if a is None or b is None:
                return None
            return fn(a, b)

        return run

    def bind_batch(self, layout: RowLayout) -> BatchFunc:
        lf, rf = self.left.bind_batch(layout), self.right.bind_batch(layout)
        fn = _ARITH[self.op]
        op = self.op

        def run(batch: Batch) -> BatchValues:
            a, b = lf(batch), rf(batch)
            n = batch.length
            if (a.kind == "const" and a.data is None) or (
                b.kind == "const" and b.data is None
            ):
                return BatchValues("const", None, n)
            if a.kind == "const" and b.kind == "const":
                return BatchValues("const", fn(a.data, b.data), n)
            if a.kind != "list" and b.kind != "list":
                x, y = _np_arith_operand(a), _np_arith_operand(b)
                if op == "/":
                    # Match Python: raise instead of numpy's inf/nan.
                    zero = (y == 0) if b.kind == "const" else bool((y == 0).any())
                    if zero:
                        raise ZeroDivisionError("division by zero")
                return BatchValues("np", fn(x, y), n)
            out: List[Any] = []
            for x, y in zip(a.pylist(), b.pylist()):
                if x is None or y is None:
                    out.append(None)
                else:
                    out.append(fn(x, y))
            return BatchValues("list", out, n)

        return run

    def column_refs(self) -> Set[ColumnKey]:
        return self.left.column_refs() | self.right.column_refs()

    def __repr__(self) -> str:
        return f"({self.left!r} {self.op} {self.right!r})"


class Neg(Expression):
    def __init__(self, value: Expression) -> None:
        self.value = value

    def bind(self, layout: RowLayout) -> RowFunc:
        vf = self.value.bind(layout)

        def run(row: Row) -> Any:
            v = vf(row)
            return None if v is None else -v

        return run

    def bind_batch(self, layout: RowLayout) -> BatchFunc:
        vf = self.value.bind_batch(layout)

        def run(batch: Batch) -> BatchValues:
            v = vf(batch)
            n = batch.length
            if v.kind == "const":
                return BatchValues("const", None if v.data is None else -v.data, n)
            if v.kind == "np":
                if v.data.dtype.kind == "b":
                    # numpy rejects `-` on bool arrays; Python gives -1/0.
                    return BatchValues("list", [-x for x in v.data.tolist()], n)
                return BatchValues("np", -v.data, n)
            return BatchValues(
                "list", [None if x is None else -x for x in v.data], n
            )

        return run

    def column_refs(self) -> Set[ColumnKey]:
        return self.value.column_refs()

    def __repr__(self) -> str:
        return f"Neg({self.value!r})"


# ----------------------------------------------------------------------
# Predicate analysis helpers (used by the planner/optimizer)
# ----------------------------------------------------------------------
def split_conjuncts(expr: Optional[Expression]) -> List[Expression]:
    """Flatten nested ANDs into a conjunct list ([] for None)."""
    if expr is None:
        return []
    if isinstance(expr, And):
        out: List[Expression] = []
        for item in expr.items:
            out.extend(split_conjuncts(item))
        return out
    return [expr]


def conjoin(conjuncts: Sequence[Expression]) -> Optional[Expression]:
    """Inverse of :func:`split_conjuncts`."""
    items = list(conjuncts)
    if not items:
        return None
    if len(items) == 1:
        return items[0]
    return And(items)


def referenced_aliases(expr: Expression) -> Set[str]:
    """Qualifiers mentioned by the expression (unqualified refs excluded)."""
    return {q for q, _ in expr.column_refs() if q is not None}


def as_equijoin(expr: Expression) -> Optional[Tuple[ColumnRef, ColumnRef]]:
    """If ``expr`` is ``a.x = b.y`` with two different qualifiers, return
    the pair of refs; otherwise None."""
    if (
        isinstance(expr, Comparison)
        and expr.op == "="
        and isinstance(expr.left, ColumnRef)
        and isinstance(expr.right, ColumnRef)
        and expr.left.qualifier is not None
        and expr.right.qualifier is not None
        and expr.left.qualifier != expr.right.qualifier
    ):
        return expr.left, expr.right
    return None


def is_truthy(value: Any) -> bool:
    """WHERE semantics: unknown (None) counts as false."""
    return value is True
