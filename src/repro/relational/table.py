"""In-memory tables: columnar storage behind a row-facing facade."""

from __future__ import annotations

from typing import Any, Dict, Iterable, Iterator, List, Optional, Sequence, Tuple, Union

from repro.errors import CatalogError, SchemaError
from repro.relational.column import ColumnStore, RowsView
from repro.relational.index import HashIndex, SortedIndex
from repro.relational.schema import TableSchema

Row = Tuple[Any, ...]


class Table:
    """A table of tuples with optional hash and sorted indexes.

    Storage is array-of-columns (:class:`~repro.relational.column.ColumnStore`)
    so batched operators can evaluate predicates over whole column
    vectors; ``table.rows`` remains the row-facing adapter every
    pre-columnar consumer (snapshots, scans, tests) still reads — a
    :class:`~repro.relational.column.RowsView` that builds tuples on
    demand and supports iteration, indexing, and equality exactly like
    the list of tuples it replaced.

    Rows are append-only (the Biozon workload is bulk-loaded; Section 3.2
    notes updates happen offline in bulk, at which point derived tables
    are recomputed).  A primary-key hash index is created automatically
    when the schema declares one.
    """

    def __init__(self, schema: TableSchema) -> None:
        self.schema = schema
        self.store = ColumnStore([c.dtype for c in schema.columns])
        self.rows = RowsView(self.store)
        self._hash_indexes: Dict[str, HashIndex] = {}
        self._sorted_indexes: Dict[str, SortedIndex] = {}
        if schema.primary_key is not None:
            self.create_hash_index("pk", [schema.primary_key])

    # ------------------------------------------------------------------
    # Index management
    # ------------------------------------------------------------------
    def create_hash_index(self, name: str, columns: Sequence[str]) -> HashIndex:
        if name in self._hash_indexes or name in self._sorted_indexes:
            raise CatalogError(f"index {name!r} already exists on {self.schema.name!r}")
        positions = [self.schema.column_position(c) for c in columns]
        index = HashIndex(name, positions)
        index.bulk_build_columns(self.store)
        self._hash_indexes[name] = index
        return index

    def create_sorted_index(self, name: str, column: str) -> SortedIndex:
        if name in self._hash_indexes or name in self._sorted_indexes:
            raise CatalogError(f"index {name!r} already exists on {self.schema.name!r}")
        index = SortedIndex(name, self.schema.column_position(column))
        index.bulk_build_columns(self.store)
        self._sorted_indexes[name] = index
        return index

    def hash_index_on(self, columns: Sequence[str]) -> Optional[HashIndex]:
        """Find a hash index whose key is exactly these columns (order-
        sensitive), if any."""
        positions = tuple(self.schema.column_position(c) for c in columns)
        for index in self._hash_indexes.values():
            if index.column_positions == positions:
                return index
        return None

    def sorted_index_on(self, column: str) -> Optional[SortedIndex]:
        position = self.schema.column_position(column)
        for index in self._sorted_indexes.values():
            if index.column_position == position:
                return index
        return None

    @property
    def hash_indexes(self) -> Dict[str, HashIndex]:
        return dict(self._hash_indexes)

    @property
    def sorted_indexes(self) -> Dict[str, SortedIndex]:
        return dict(self._sorted_indexes)

    # ------------------------------------------------------------------
    # Data
    # ------------------------------------------------------------------
    def insert(self, values: Union[Sequence[Any], Dict[str, Any]]) -> None:
        if isinstance(values, dict):
            row = self.schema.row_from_mapping(values)
        else:
            row = self.schema.validate_row(values)
        if self.schema.primary_key is not None:
            pk_index = self._hash_indexes["pk"]
            if pk_index.lookup(pk_index.key_of(row)):
                raise SchemaError(
                    f"duplicate primary key {pk_index.key_of(row)!r} in "
                    f"{self.schema.name!r}"
                )
        position = self.store.length
        self.store.append_row(row)
        for index in self._hash_indexes.values():
            index.insert(row, position)
        for index in self._sorted_indexes.values():
            index.insert(row, position)

    def bulk_load(self, rows: Iterable[Union[Sequence[Any], Dict[str, Any]]]) -> int:
        """Validate and append many rows, rebuilding sorted indexes once
        at the end.  Returns the number of rows loaded."""
        sorted_backups = self._sorted_indexes
        self._sorted_indexes = {}
        count = 0
        try:
            for values in rows:
                self.insert(values)
                count += 1
        finally:
            self._sorted_indexes = sorted_backups
            for index in self._sorted_indexes.values():
                index.bulk_build_columns(self.store)
        return count

    def load_rows_unchecked(self, rows: Iterable[Sequence[Any]]) -> int:
        """Append rows without per-row validation or duplicate-key
        checks, then rebuild every index once.

        Fast path for snapshot restore: the rows were validated by this
        same schema when they were first inserted, so re-checking them on
        load only slows the cold start down.  Returns the rows appended.
        """
        base = self.store.length
        count = self.store.extend_rows(rows)
        for index in self._hash_indexes.values():
            if base == 0:
                index.bulk_build_columns(self.store)
            else:
                for position in range(base, self.store.length):
                    index.insert(self.store.row_at(position), position)
        for index in self._sorted_indexes.values():
            index.bulk_build_columns(self.store)
        return count

    def index_definitions(self) -> Dict[str, List[Tuple[str, List[str]]]]:
        """Declared secondary indexes as (name, column names) pairs,
        keyed by kind — the catalog part of a table dump."""
        names = self.schema.column_names
        return {
            "hash": [
                (index.name, [names[p] for p in index.column_positions])
                for index in self._hash_indexes.values()
            ],
            "sorted": [
                (index.name, [names[index.column_position]])
                for index in self._sorted_indexes.values()
            ],
        }

    @property
    def row_count(self) -> int:
        return self.store.length

    @property
    def data_version(self) -> int:
        """Bumped on every data change; feeds statement-cache tokens."""
        return self.store.version

    def scan(self) -> Iterator[Row]:
        return iter(self.rows)

    def row_at(self, position: int) -> Row:
        return self.store.row_at(position)

    def get_by_key(self, key: Any) -> List[Row]:
        """Primary-key lookup (requires a declared primary key)."""
        if self.schema.primary_key is None:
            raise CatalogError(f"table {self.schema.name!r} has no primary key")
        return [self.store.row_at(p) for p in self._hash_indexes["pk"].lookup(key)]

    def estimated_bytes(self) -> int:
        """Rough storage footprint used by the Table-1 space accounting:
        fixed 8 bytes per numeric/bool cell, string length for text."""
        total = 0
        for values in self.store.columns:
            for value in values:
                if isinstance(value, str):
                    total += len(value)
                else:
                    total += 8
        return total

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Table({self.schema.name}, rows={self.row_count})"
