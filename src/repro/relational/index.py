"""Secondary indexes: hash (equality) and sorted (range / ordered scan).

The paper's experiments "built indices on all the primary keys and
queried attributes"; the sorted index additionally provides the
score-ordered scan of ``TopInfo`` that the ET plans rely on
("idxScan TopoInfo (score order)", Figure 15).

Both index kinds map a key value to the *positions* of matching rows in
the owning table's row list.  They are maintained on append; the tables
in this workload are bulk-loaded and never updated in place (Biozon
updates arrive "in bulk every few weeks" per Section 3.2).
"""

from __future__ import annotations

import bisect
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple


class HashIndex:
    """Equality index: key value -> list of row positions."""

    def __init__(self, name: str, column_positions: Sequence[int]) -> None:
        self.name = name
        self.column_positions: Tuple[int, ...] = tuple(column_positions)
        self._buckets: Dict[Any, List[int]] = {}

    def key_of(self, row: Sequence[Any]) -> Any:
        if len(self.column_positions) == 1:
            return row[self.column_positions[0]]
        return tuple(row[p] for p in self.column_positions)

    def insert(self, row: Sequence[Any], position: int) -> None:
        self._buckets.setdefault(self.key_of(row), []).append(position)

    def bulk_build(self, rows: Sequence[Sequence[Any]]) -> None:
        """Rebuild from scratch in one pass (bulk-load / restore path);
        noticeably faster than per-row :meth:`insert` calls."""
        buckets: Dict[Any, List[int]] = {}
        if len(self.column_positions) == 1:
            p = self.column_positions[0]
            for position, row in enumerate(rows):
                buckets.setdefault(row[p], []).append(position)
        else:
            positions = self.column_positions
            for position, row in enumerate(rows):
                key = tuple(row[p] for p in positions)
                buckets.setdefault(key, []).append(position)
        self._buckets = buckets

    def bulk_build_columns(self, store) -> None:
        """Rebuild straight from a table's column store, touching only
        the key columns instead of materializing row tuples."""
        buckets: Dict[Any, List[int]] = {}
        if len(self.column_positions) == 1:
            keys = store.column_values(self.column_positions[0])
            for position, key in enumerate(keys):
                buckets.setdefault(key, []).append(position)
        else:
            key_columns = [store.column_values(p) for p in self.column_positions]
            for position, key in enumerate(zip(*key_columns)):
                buckets.setdefault(key, []).append(position)
        self._buckets = buckets

    def lookup(self, key: Any) -> List[int]:
        return self._buckets.get(key, [])

    def distinct_keys(self) -> int:
        return len(self._buckets)

    def __len__(self) -> int:
        return sum(len(v) for v in self._buckets.values())


class SortedIndex:
    """Ordered index on one column: supports equality, range scans, and
    full scans in ascending/descending key order.

    NULL keys are excluded (matching SQL index semantics closely enough
    for this workload: predicates never match NULL).
    """

    def __init__(self, name: str, column_position: int) -> None:
        self.name = name
        self.column_position = column_position
        self._keys: List[Any] = []
        self._positions: List[int] = []

    def insert(self, row: Sequence[Any], position: int) -> None:
        key = row[self.column_position]
        if key is None:
            return
        idx = bisect.bisect_right(self._keys, key)
        self._keys.insert(idx, key)
        self._positions.insert(idx, position)

    def bulk_build(self, rows: Sequence[Sequence[Any]]) -> None:
        """Rebuild from scratch (faster than repeated inserts)."""
        pairs = [
            (row[self.column_position], pos)
            for pos, row in enumerate(rows)
            if row[self.column_position] is not None
        ]
        pairs.sort(key=lambda kv: kv[0])
        self._keys = [k for k, _ in pairs]
        self._positions = [p for _, p in pairs]

    def bulk_build_columns(self, store) -> None:
        """Rebuild straight from a table's column store, touching only
        the key column instead of materializing row tuples."""
        pairs = [
            (key, pos)
            for pos, key in enumerate(store.column_values(self.column_position))
            if key is not None
        ]
        pairs.sort(key=lambda kv: kv[0])
        self._keys = [k for k, _ in pairs]
        self._positions = [p for _, p in pairs]

    def lookup(self, key: Any) -> List[int]:
        lo = bisect.bisect_left(self._keys, key)
        hi = bisect.bisect_right(self._keys, key)
        return self._positions[lo:hi]

    def range_scan(
        self,
        low: Optional[Any] = None,
        high: Optional[Any] = None,
        low_inclusive: bool = True,
        high_inclusive: bool = True,
    ) -> Iterator[int]:
        """Row positions with key in the given (optionally open) range,
        in ascending key order."""
        if low is None:
            lo = 0
        elif low_inclusive:
            lo = bisect.bisect_left(self._keys, low)
        else:
            lo = bisect.bisect_right(self._keys, low)
        if high is None:
            hi = len(self._keys)
        elif high_inclusive:
            hi = bisect.bisect_right(self._keys, high)
        else:
            hi = bisect.bisect_left(self._keys, high)
        for i in range(lo, hi):
            yield self._positions[i]

    def scan(self, descending: bool = False) -> Iterator[int]:
        """All row positions in key order."""
        if descending:
            return iter(self._positions[::-1])
        return iter(self._positions)

    def distinct_keys(self) -> int:
        count = 0
        prev = object()
        for k in self._keys:
            if k != prev:
                count += 1
                prev = k
        return count

    def min_key(self) -> Optional[Any]:
        return self._keys[0] if self._keys else None

    def max_key(self) -> Optional[Any]:
        return self._keys[-1] if self._keys else None

    def __len__(self) -> int:
        return len(self._keys)
