"""Scan operators: sequential, hash-index, and ordered-index scans."""

from __future__ import annotations

from typing import Any, Iterator, List, Optional, Sequence

from repro.errors import ExecutionError
from repro.relational.database import ExecStats
from repro.relational.expressions import Row, RowLayout
from repro.relational.index import HashIndex, SortedIndex
from repro.relational.operators.base import GroupAware, Operator
from repro.relational.table import Table


def table_layout(table: Table, alias: str) -> RowLayout:
    return RowLayout([(alias, c.name) for c in table.schema.columns])


class SeqScan(Operator):
    """Full scan of a table's heap."""

    def __init__(self, table: Table, alias: str, stats: Optional[ExecStats] = None) -> None:
        super().__init__(table_layout(table, alias), stats)
        self.table = table
        self.alias = alias
        self._iter: Optional[Iterator[Row]] = None

    def open(self) -> None:
        self._iter = iter(self.table.rows)

    def next(self) -> Optional[Row]:
        if self._iter is None:
            raise ExecutionError("SeqScan.next() before open()")
        row = next(self._iter, None)
        if row is not None:
            self.stats.rows_scanned += 1
        return row

    def close(self) -> None:
        self._iter = None

    def describe(self) -> str:
        return f"SeqScan({self.table.schema.name} AS {self.alias})"


class HashIndexScan(Operator):
    """Probe a hash index with a constant key."""

    def __init__(
        self,
        table: Table,
        alias: str,
        index: HashIndex,
        key: Any,
        stats: Optional[ExecStats] = None,
    ) -> None:
        super().__init__(table_layout(table, alias), stats)
        self.table = table
        self.alias = alias
        self.index = index
        self.key = key
        self._positions: Optional[Iterator[int]] = None

    def open(self) -> None:
        self.stats.index_probes += 1
        self._positions = iter(self.index.lookup(self.key))

    def next(self) -> Optional[Row]:
        if self._positions is None:
            raise ExecutionError("HashIndexScan.next() before open()")
        pos = next(self._positions, None)
        if pos is None:
            return None
        self.stats.rows_scanned += 1
        return self.table.rows[pos]

    def close(self) -> None:
        self._positions = None

    def describe(self) -> str:
        return f"HashIndexScan({self.table.schema.name} AS {self.alias}, key={self.key!r})"


class OrderedIndexScan(GroupAware):
    """Full scan in sorted-index key order (asc or desc).

    This is the "idxScan TopoInfo (score order)" leaf of the paper's DGJ
    plans (Figure 15).  It is group-aware with each *key run* — or, when
    ``group_positions`` is given, each distinct combination of those
    column positions — forming a group.
    """

    def __init__(
        self,
        table: Table,
        alias: str,
        index: SortedIndex,
        descending: bool = False,
        group_positions: Optional[Sequence[int]] = None,
        stats: Optional[ExecStats] = None,
    ) -> None:
        super().__init__(table_layout(table, alias), stats)
        self.table = table
        self.alias = alias
        self.index = index
        self.descending = descending
        self.group_positions = (
            tuple(group_positions) if group_positions is not None else (index.column_position,)
        )
        self._positions: Optional[Iterator[int]] = None
        self._current_group: Any = None
        self._pending: Optional[Row] = None

    def _group_of(self, row: Row) -> Any:
        if len(self.group_positions) == 1:
            return row[self.group_positions[0]]
        return tuple(row[p] for p in self.group_positions)

    def open(self) -> None:
        self._positions = self.index.scan(descending=self.descending)
        self._current_group = None
        self._pending = None

    def next(self) -> Optional[Row]:
        if self._positions is None:
            raise ExecutionError("OrderedIndexScan.next() before open()")
        if self._pending is not None:
            row, self._pending = self._pending, None
            self._current_group = self._group_of(row)
            self.stats.rows_scanned += 1
            return row
        pos = next(self._positions, None)
        if pos is None:
            return None
        row = self.table.rows[pos]
        self._current_group = self._group_of(row)
        self.stats.rows_scanned += 1
        return row

    def advance_to_next_group(self) -> None:
        """Skip forward until the group key changes; the first row of the
        next group is buffered for the following ``next()`` call."""
        if self._positions is None:
            raise ExecutionError("advance_to_next_group() before open()")
        self._pending = None
        if self._current_group is None:
            return
        self.stats.groups_skipped += 1
        while True:
            pos = next(self._positions, None)
            if pos is None:
                return
            row = self.table.rows[pos]
            self.stats.rows_scanned += 1
            if self._group_of(row) != self._current_group:
                self._pending = row
                return

    def current_group(self) -> Any:
        return self._current_group

    def close(self) -> None:
        self._positions = None
        self._pending = None

    def describe(self) -> str:
        direction = "desc" if self.descending else "asc"
        return (
            f"OrderedIndexScan({self.table.schema.name} AS {self.alias}, "
            f"key order {direction})"
        )


class RowsSource(Operator):
    """Stream a pre-materialized row list (used for VALUES-like inputs
    and by operators that re-scan a buffered input)."""

    def __init__(self, rows: List[Row], layout: RowLayout, stats: Optional[ExecStats] = None) -> None:
        super().__init__(layout, stats)
        self.rows = rows
        self._iter: Optional[Iterator[Row]] = None

    def open(self) -> None:
        self._iter = iter(self.rows)

    def next(self) -> Optional[Row]:
        if self._iter is None:
            raise ExecutionError("RowsSource.next() before open()")
        return next(self._iter, None)

    def close(self) -> None:
        self._iter = None

    def describe(self) -> str:
        return f"RowsSource({len(self.rows)} rows)"
