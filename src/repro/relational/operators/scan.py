"""Scan operators: sequential, hash-index, and ordered-index scans.

Scans are where batches are born: ``next_batch`` slices the table's
column store directly (zero-copy views for numpy-cached columns) and
attaches a *lowered-text provider* so a ``Contains`` filter sitting
directly above the scan can read lowercased TEXT from the table-level
cache instead of lowering per row.
"""

from __future__ import annotations

from typing import Any, Callable, Iterator, List, Optional, Sequence

from repro.errors import ExecutionError
from repro.relational.column import BATCH_SIZE, Batch, ColumnStore
from repro.relational.database import ExecStats
from repro.relational.expressions import Row, RowLayout
from repro.relational.index import HashIndex, SortedIndex
from repro.relational.operators.base import GroupAware, Operator
from repro.relational.table import Table


def table_layout(table: Table, alias: str) -> RowLayout:
    return RowLayout([(alias, c.name) for c in table.schema.columns])


def _lowered_provider(
    store: ColumnStore, start: int, stop: int
) -> Callable[[int], Optional[list]]:
    def get(position: int) -> Optional[list]:
        lowered = store.lowered(position)
        return None if lowered is None else lowered[start:stop]

    return get


class SeqScan(Operator):
    """Full scan of a table's heap."""

    def __init__(self, table: Table, alias: str, stats: Optional[ExecStats] = None) -> None:
        super().__init__(table_layout(table, alias), stats)
        self.table = table
        self.alias = alias
        self._iter: Optional[Iterator[Row]] = None
        self._cursor = 0

    def open(self) -> None:
        self._iter = iter(self.table.rows)
        self._cursor = 0

    def next(self) -> Optional[Row]:
        if self._iter is None:
            raise ExecutionError("SeqScan.next() before open()")
        row = next(self._iter, None)
        if row is not None:
            self.stats.rows_scanned += 1
        return row

    def next_batch(self) -> Optional[Batch]:
        if self._iter is None:
            raise ExecutionError("SeqScan.next_batch() before open()")
        store = self.table.store
        start = self._cursor
        if start >= store.length:
            return None
        stop = min(start + BATCH_SIZE, store.length)
        self._cursor = stop
        self.stats.rows_scanned += stop - start
        return Batch(
            store.slice_columns(start, stop),
            stop - start,
            lowered=_lowered_provider(store, start, stop),
        )

    def close(self) -> None:
        self._iter = None

    def describe(self) -> str:
        return f"SeqScan({self.table.schema.name} AS {self.alias})"


class HashIndexScan(Operator):
    """Probe a hash index with a constant key."""

    def __init__(
        self,
        table: Table,
        alias: str,
        index: HashIndex,
        key: Any,
        stats: Optional[ExecStats] = None,
    ) -> None:
        super().__init__(table_layout(table, alias), stats)
        self.table = table
        self.alias = alias
        self.index = index
        self.key = key
        self._positions: Optional[Iterator[int]] = None
        self._position_list: List[int] = []
        self._batch_done = False

    def open(self) -> None:
        self.stats.index_probes += 1
        self._position_list = self.index.lookup(self.key)
        self._positions = iter(self._position_list)
        self._batch_done = False

    def next(self) -> Optional[Row]:
        if self._positions is None:
            raise ExecutionError("HashIndexScan.next() before open()")
        pos = next(self._positions, None)
        if pos is None:
            return None
        self.stats.rows_scanned += 1
        return self.table.rows[pos]

    def next_batch(self) -> Optional[Batch]:
        if self._positions is None:
            raise ExecutionError("HashIndexScan.next_batch() before open()")
        if self._batch_done or not self._position_list:
            return None
        self._batch_done = True
        positions = self._position_list
        self.stats.rows_scanned += len(positions)
        return Batch(self.table.store.take_columns(positions), len(positions))

    def close(self) -> None:
        self._positions = None

    def describe(self) -> str:
        return f"HashIndexScan({self.table.schema.name} AS {self.alias}, key={self.key!r})"


class OrderedIndexScan(GroupAware):
    """Full scan in sorted-index key order (asc or desc).

    This is the "idxScan TopoInfo (score order)" leaf of the paper's DGJ
    plans (Figure 15).  It is group-aware with each *key run* — or, when
    ``group_positions`` is given, each distinct combination of those
    column positions — forming a group.
    """

    def __init__(
        self,
        table: Table,
        alias: str,
        index: SortedIndex,
        descending: bool = False,
        group_positions: Optional[Sequence[int]] = None,
        stats: Optional[ExecStats] = None,
    ) -> None:
        super().__init__(table_layout(table, alias), stats)
        self.table = table
        self.alias = alias
        self.index = index
        self.descending = descending
        self.group_positions = (
            tuple(group_positions) if group_positions is not None else (index.column_position,)
        )
        self._positions: Optional[Iterator[int]] = None
        self._current_group: Any = None
        self._pending: Optional[Row] = None

    def _group_of(self, row: Row) -> Any:
        if len(self.group_positions) == 1:
            return row[self.group_positions[0]]
        return tuple(row[p] for p in self.group_positions)

    def open(self) -> None:
        self._positions = self.index.scan(descending=self.descending)
        self._current_group = None
        self._pending = None

    def next(self) -> Optional[Row]:
        if self._positions is None:
            raise ExecutionError("OrderedIndexScan.next() before open()")
        if self._pending is not None:
            row, self._pending = self._pending, None
            self._current_group = self._group_of(row)
            self.stats.rows_scanned += 1
            return row
        pos = next(self._positions, None)
        if pos is None:
            return None
        row = self.table.rows[pos]
        self._current_group = self._group_of(row)
        self.stats.rows_scanned += 1
        return row

    def advance_to_next_group(self) -> None:
        """Skip forward until the group key changes; the first row of the
        next group is buffered for the following ``next()`` call."""
        if self._positions is None:
            raise ExecutionError("advance_to_next_group() before open()")
        self._pending = None
        if self._current_group is None:
            return
        self.stats.groups_skipped += 1
        while True:
            pos = next(self._positions, None)
            if pos is None:
                return
            row = self.table.rows[pos]
            self.stats.rows_scanned += 1
            if self._group_of(row) != self._current_group:
                self._pending = row
                return

    def current_group(self) -> Any:
        return self._current_group

    def close(self) -> None:
        self._positions = None
        self._pending = None

    def describe(self) -> str:
        direction = "desc" if self.descending else "asc"
        return (
            f"OrderedIndexScan({self.table.schema.name} AS {self.alias}, "
            f"key order {direction})"
        )


class RowsSource(Operator):
    """Stream a pre-materialized row list (used for VALUES-like inputs
    and by operators that re-scan a buffered input)."""

    def __init__(self, rows: List[Row], layout: RowLayout, stats: Optional[ExecStats] = None) -> None:
        super().__init__(layout, stats)
        self.rows = rows
        self._iter: Optional[Iterator[Row]] = None
        self._cursor = 0

    def open(self) -> None:
        self._iter = iter(self.rows)
        self._cursor = 0

    def next(self) -> Optional[Row]:
        if self._iter is None:
            raise ExecutionError("RowsSource.next() before open()")
        return next(self._iter, None)

    def next_batch(self) -> Optional[Batch]:
        if self._iter is None:
            raise ExecutionError("RowsSource.next_batch() before open()")
        if self._cursor >= len(self.rows):
            return None
        chunk = self.rows[self._cursor : self._cursor + BATCH_SIZE]
        self._cursor += len(chunk)
        return Batch.from_rows(chunk, self.layout.arity)

    def close(self) -> None:
        self._iter = None

    def describe(self) -> str:
        return f"RowsSource({len(self.rows)} rows)"
