"""Sort, top-N, distinct, union, and limit operators.

Sorting is inherently row-ordered, so the batch path batches the
*drains*: inputs are consumed via ``next_batch`` and the ordered output
is re-emitted in column chunks.  Distinct and limit operate directly on
batches.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Iterator, List, Optional, Sequence, Tuple

from repro.errors import ExecutionError
from repro.relational.column import (
    BATCH_SIZE,
    HAVE_NUMPY,
    Batch,
    is_ndarray,
    np,
    to_pylist,
)
from repro.relational.database import ExecStats
from repro.relational.expressions import Expression, Row, RowLayout
from repro.relational.operators.base import Operator
from repro.relational.runtime import columnar_enabled

# A sort key: (expression, descending?)
SortKey = Tuple[Expression, bool]


class _OrderWrapper:
    """Total-order wrapper handling mixed sort directions.

    NULLs sort last regardless of direction (a simplification over
    DB2's "NULL is highest"; topology scores are never NULL, so the
    paper's queries cannot observe the difference)."""

    __slots__ = ("values",)

    def __init__(self, values: Tuple[Tuple[bool, Any, bool], ...]) -> None:
        # per key: (is_null, value, descending)
        self.values = values

    def __lt__(self, other: "_OrderWrapper") -> bool:
        for (a_null, a, desc), (b_null, b, _) in zip(self.values, other.values):
            if a_null or b_null:
                if a_null == b_null:
                    continue
                return b_null  # non-null sorts before null in asc terms
            if a == b:
                continue
            return (a > b) if desc else (a < b)
        return False

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, _OrderWrapper):
            return NotImplemented
        return all(
            a_null == b_null and (a_null or a == b)
            for (a_null, a, _), (b_null, b, _) in zip(self.values, other.values)
        )

    def __hash__(self) -> int:  # pragma: no cover - wrappers are transient
        return hash(tuple((n, v) for n, v, _ in self.values))


def _make_sort_key(keys: Sequence[SortKey], layout: RowLayout):
    fns = [(expr.bind(layout), desc) for expr, desc in keys]

    def key(row: Row) -> _OrderWrapper:
        values = []
        for fn, desc in fns:
            v = fn(row)
            values.append((v is None, v, desc))
        return _OrderWrapper(tuple(values))

    return key


def _drain_concat(child: Operator, arity: int) -> Batch:
    """Open, drain via ``next_batch``, close; all rows as ONE batch.

    Column-wise concatenation: a position stays numpy-backed only when
    every input chunk is (scan-fresh chunks are consistently one kind,
    but a union of heterogeneous children may mix)."""
    pieces: List[Batch] = []
    child.open()
    try:
        while True:
            batch = child.next_batch()
            if batch is None:
                break
            if batch.length:
                pieces.append(batch)
    finally:
        child.close()
    if not pieces:
        return Batch([[] for _ in range(arity)], 0)
    if len(pieces) == 1:
        return pieces[0]
    columns = []
    for position in range(arity):
        parts = [piece.columns[position] for piece in pieces]
        if HAVE_NUMPY and all(is_ndarray(p) for p in parts):
            columns.append(np.concatenate(parts))
        else:
            merged: list = []
            for p in parts:
                merged.extend(to_pylist(p))
            columns.append(merged)
    return Batch(columns, sum(piece.length for piece in pieces))


def _numeric_key_vector(values: list, desc: bool):
    """``values`` as an ascending-comparable key list, or None."""
    for v in values:
        t = type(v)
        if t is not int and t is not float and t is not bool:
            return None
        if v != v:  # NaN: comparison sorts are unspecified on it
            return None
    return [-v for v in values] if desc else values


def _fast_order(keys: Sequence[SortKey], layout: RowLayout, batch: Batch):
    """Stable ordering permutation identical to sorting with
    ``_OrderWrapper`` keys, computed columnar — or None when identity
    cannot be proven and the caller must fall back to the wrapper.

    Eligible keys contain no NULL/unknown and no NaN, and are either
    all-numeric (bool/int/float; DESC is handled by negation, which is
    exact for Python ints and order-reversing for finite floats) or
    all-``str`` ascending.  Equal keys preserve input order in both
    paths (Python sorts and numpy's stable argsort/lexsort), so the
    permutation matches the row engine's stable wrapper sort even on
    ties."""
    vectors = []
    all_np = HAVE_NUMPY
    for expr, desc in keys:
        values = expr.bind_batch(layout)(batch)
        if values.kind == "np":
            arr = values.data
            if arr.dtype.kind == "f" and bool(np.isnan(arr).any()):
                return None
            if desc:
                if arr.dtype.kind == "b":
                    arr = np.logical_not(arr)
                elif arr.dtype.kind == "i":
                    if arr.size and int(arr.min()) == np.iinfo(arr.dtype).min:
                        return None  # negation would overflow
                    arr = -arr
                else:
                    arr = -arr
            vectors.append(arr)
            continue
        all_np = False
        plain = values.pylist()
        vector = _numeric_key_vector(plain, desc)
        if vector is None:
            if desc or not all(type(v) is str for v in plain):
                return None
            vector = plain
        vectors.append(vector)
    if all_np:
        if len(vectors) == 1:
            return np.argsort(vectors[0], kind="stable")
        return np.lexsort(tuple(reversed(vectors)))
    lists = [to_pylist(v) if is_ndarray(v) else v for v in vectors]
    if len(lists) == 1:
        key_of = lists[0]
    else:
        key_of = list(zip(*lists))
    return sorted(range(batch.length), key=key_of.__getitem__)


class Sort(Operator):
    """Full materializing sort."""

    def __init__(self, child: Operator, keys: Sequence[SortKey]) -> None:
        super().__init__(child.layout, child.stats)
        self.child = child
        self.keys = list(keys)
        self._key_fn = _make_sort_key(self.keys, child.layout)
        self._iter: Optional[Iterator[Row]] = None
        self._rows: Optional[List[Row]] = None
        self._cursor = 0

    def open(self) -> None:
        if columnar_enabled():
            batch = _drain_concat(self.child, self.layout.arity)
            order = _fast_order(self.keys, self.child.layout, batch)
            if order is not None:
                rows = batch.take(order).to_rows()
            else:
                rows = batch.to_rows()
                rows.sort(key=self._key_fn)
        else:
            rows = list(self.child)
            rows.sort(key=self._key_fn)
        self._rows = rows
        self._iter = iter(rows)
        self._cursor = 0

    def next(self) -> Optional[Row]:
        if self._iter is None:
            raise ExecutionError("Sort.next() before open()")
        return next(self._iter, None)

    def next_batch(self) -> Optional[Batch]:
        if self._rows is None:
            raise ExecutionError("Sort.next_batch() before open()")
        if self._cursor >= len(self._rows):
            return None
        chunk = self._rows[self._cursor : self._cursor + BATCH_SIZE]
        self._cursor += len(chunk)
        return Batch.from_rows(chunk, self.layout.arity)

    def close(self) -> None:
        self._iter = None
        self._rows = None

    def describe(self) -> str:
        return f"Sort({len(self.keys)} keys)"

    def children(self) -> List[Operator]:
        return [self.child]


class TopN(Operator):
    """Heap-based ORDER BY ... FETCH FIRST n ROWS ONLY."""

    def __init__(self, child: Operator, keys: Sequence[SortKey], n: int) -> None:
        if n < 0:
            raise ExecutionError("TopN needs n >= 0")
        super().__init__(child.layout, child.stats)
        self.child = child
        self.keys = list(keys)
        self.n = n
        self._key_fn = _make_sort_key(self.keys, child.layout)
        self._iter: Optional[Iterator[Row]] = None
        self._rows: Optional[List[Row]] = None
        self._cursor = 0

    def open(self) -> None:
        self._cursor = 0
        if self.n == 0:
            self._rows = []
            self._iter = iter(())
            return
        if columnar_enabled():
            batch = _drain_concat(self.child, self.layout.arity)
            order = _fast_order(self.keys, self.child.layout, batch)
            if order is not None:
                # nsmallest keyed on (key, input index) is exactly the
                # first n of the stable ascending sort.
                self._rows = batch.take(list(order[: self.n])).to_rows()
                self._iter = iter(self._rows)
                return
            rows = batch.to_rows()
        else:
            rows = list(self.child)
        counter = itertools.count()
        decorated = [(self._key_fn(row), next(counter), row) for row in rows]
        smallest = heapq.nsmallest(self.n, decorated, key=lambda t: (t[0], t[1]))
        self._rows = [row for _, _, row in smallest]
        self._iter = iter(self._rows)

    def next(self) -> Optional[Row]:
        if self._iter is None:
            raise ExecutionError("TopN.next() before open()")
        return next(self._iter, None)

    def next_batch(self) -> Optional[Batch]:
        if self._rows is None:
            raise ExecutionError("TopN.next_batch() before open()")
        if self._cursor >= len(self._rows):
            return None
        chunk = self._rows[self._cursor : self._cursor + BATCH_SIZE]
        self._cursor += len(chunk)
        return Batch.from_rows(chunk, self.layout.arity)

    def close(self) -> None:
        self._iter = None
        self._rows = None

    def describe(self) -> str:
        return f"TopN(n={self.n})"

    def children(self) -> List[Operator]:
        return [self.child]


class Distinct(Operator):
    """Duplicate elimination on the whole row (hash-based, preserves
    first-seen order)."""

    def __init__(self, child: Operator) -> None:
        super().__init__(child.layout, child.stats)
        self.child = child
        self._seen: Optional[set] = None

    def open(self) -> None:
        self.child.open()
        self._seen = set()

    def next(self) -> Optional[Row]:
        if self._seen is None:
            raise ExecutionError("Distinct.next() before open()")
        while True:
            row = self.child.next()
            if row is None:
                return None
            if row not in self._seen:
                self._seen.add(row)
                return row

    def next_batch(self) -> Optional[Batch]:
        if self._seen is None:
            raise ExecutionError("Distinct.next_batch() before open()")
        seen = self._seen
        while True:
            batch = self.child.next_batch()
            if batch is None:
                return None
            if len(batch.columns) == 1:
                result = self._distinct_single(batch, seen)
                if result is None:
                    continue
                return result
            keep: List[bool] = []
            fresh = 0
            for row in batch.to_rows():
                if row in seen:
                    keep.append(False)
                else:
                    seen.add(row)
                    keep.append(True)
                    fresh += 1
            if fresh == 0:
                continue
            if fresh == batch.length:
                return batch
            return batch.compact(keep, fresh)

    @staticmethod
    def _distinct_single(batch: Batch, seen: set) -> Optional[Batch]:
        """Arity-1 fast path: dedup on scalars, no row tuples.

        ``seen`` holds 1-tuples on the row path and bare scalars here;
        the set is private to one execution and the two paths are never
        mixed within one, so the representations cannot collide.  NaN
        floats fall back to the scalar loop (never the numpy unique,
        which collapses distinct NaN objects where ``set`` keeps them).
        """
        col = batch.columns[0]
        if is_ndarray(col) and not (
            col.dtype.kind == "f" and bool(np.isnan(col).any())
        ):
            # First-occurrence index per unique value, emitted in input
            # order — identical to the row-at-a-time seen-set semantics.
            unique, first_at = np.unique(col, return_index=True)
            fresh_at = sorted(
                int(i)
                for v, i in zip(unique.tolist(), first_at.tolist())
                if v not in seen
            )
            if not fresh_at:
                return None
            seen.update(col[fresh_at].tolist())
            if len(fresh_at) == batch.length:
                return batch
            return batch.take(fresh_at)
        keep: List[bool] = []
        fresh = 0
        for value in to_pylist(col):
            if value in seen:
                keep.append(False)
            else:
                seen.add(value)
                keep.append(True)
                fresh += 1
        if fresh == 0:
            return None
        if fresh == batch.length:
            return batch
        return batch.compact(keep, fresh)

    def close(self) -> None:
        self.child.close()
        self._seen = None

    def describe(self) -> str:
        return "Distinct"

    def children(self) -> List[Operator]:
        return [self.child]


class UnionAll(Operator):
    """Concatenate children (arity-checked); output layout is the first
    child's."""

    def __init__(self, children: Sequence[Operator]) -> None:
        if not children:
            raise ExecutionError("UnionAll needs at least one input")
        arity = children[0].layout.arity
        for child in children[1:]:
            if child.layout.arity != arity:
                raise ExecutionError("UNION inputs must have equal arity")
        super().__init__(children[0].layout, children[0].stats)
        self._children = list(children)
        self._current = 0
        self._opened = False

    def open(self) -> None:
        self._current = 0
        self._children[0].open()
        self._opened = True

    def next(self) -> Optional[Row]:
        if not self._opened:
            raise ExecutionError("UnionAll.next() before open()")
        while self._current < len(self._children):
            row = self._children[self._current].next()
            if row is not None:
                return row
            self._children[self._current].close()
            self._current += 1
            if self._current < len(self._children):
                self._children[self._current].open()
        return None

    def next_batch(self) -> Optional[Batch]:
        if not self._opened:
            raise ExecutionError("UnionAll.next_batch() before open()")
        while self._current < len(self._children):
            batch = self._children[self._current].next_batch()
            if batch is not None:
                return batch
            self._children[self._current].close()
            self._current += 1
            if self._current < len(self._children):
                self._children[self._current].open()
        return None

    def close(self) -> None:
        if self._opened and self._current < len(self._children):
            self._children[self._current].close()
        self._opened = False

    def describe(self) -> str:
        return f"UnionAll({len(self._children)} inputs)"

    def children(self) -> List[Operator]:
        return list(self._children)


# Below this cutoff ``Limit.next_batch`` pulls single rows from its
# child instead of whole batches.  A batch pipeline drains BATCH_SIZE
# rows through every operator before a LIMIT can stop it, so a tiny
# LIMIT over a streaming subtree pays for thousands of rows it then
# discards (the topology layer's EXISTS-style ``LIMIT 1`` probes are
# the extreme case).  Row-pulling propagates early termination down the
# whole streaming spine, while blocking operators underneath (Sort,
# TopN, hash builds) still materialize vectorized inside ``open()``.
LIMIT_ROW_PULL_MAX = 64


class Limit(Operator):
    """FETCH FIRST n ROWS ONLY without ordering.

    In batch mode a small ``n`` (<= ``LIMIT_ROW_PULL_MAX``) switches to
    the row protocol internally — see :data:`LIMIT_ROW_PULL_MAX`.  The
    child sees exactly one protocol per execution either way, so
    operators with protocol-specific internal state never observe a mix.
    """

    def __init__(self, child: Operator, n: int) -> None:
        if n < 0:
            raise ExecutionError("Limit needs n >= 0")
        super().__init__(child.layout, child.stats)
        self.child = child
        self.n = n
        self._emitted = 0

    def open(self) -> None:
        self.child.open()
        self._emitted = 0

    def next(self) -> Optional[Row]:
        if self._emitted >= self.n:
            return None
        row = self.child.next()
        if row is None:
            return None
        self._emitted += 1
        return row

    def next_batch(self) -> Optional[Batch]:
        if self._emitted >= self.n:
            return None
        if self.n <= LIMIT_ROW_PULL_MAX:
            rows = []
            while self._emitted < self.n:
                row = self.child.next()
                if row is None:
                    break
                rows.append(row)
                self._emitted += 1
            if not rows:
                return None
            return Batch.from_rows(rows, self.layout.arity)
        batch = self.child.next_batch()
        if batch is None:
            return None
        remaining = self.n - self._emitted
        if batch.length <= remaining:
            self._emitted += batch.length
            return batch
        self._emitted = self.n
        return Batch([col[:remaining] for col in batch.columns], remaining)

    def close(self) -> None:
        self.child.close()

    def describe(self) -> str:
        return f"Limit(n={self.n})"

    def children(self) -> List[Operator]:
        return [self.child]
