"""Sort, top-N, distinct, union, and limit operators."""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Iterator, List, Optional, Sequence, Tuple

from repro.errors import ExecutionError
from repro.relational.database import ExecStats
from repro.relational.expressions import Expression, Row, RowLayout
from repro.relational.operators.base import Operator

# A sort key: (expression, descending?)
SortKey = Tuple[Expression, bool]


class _OrderWrapper:
    """Total-order wrapper handling mixed sort directions.

    NULLs sort last regardless of direction (a simplification over
    DB2's "NULL is highest"; topology scores are never NULL, so the
    paper's queries cannot observe the difference)."""

    __slots__ = ("values",)

    def __init__(self, values: Tuple[Tuple[bool, Any, bool], ...]) -> None:
        # per key: (is_null, value, descending)
        self.values = values

    def __lt__(self, other: "_OrderWrapper") -> bool:
        for (a_null, a, desc), (b_null, b, _) in zip(self.values, other.values):
            if a_null or b_null:
                if a_null == b_null:
                    continue
                return b_null  # non-null sorts before null in asc terms
            if a == b:
                continue
            return (a > b) if desc else (a < b)
        return False

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, _OrderWrapper):
            return NotImplemented
        return all(
            a_null == b_null and (a_null or a == b)
            for (a_null, a, _), (b_null, b, _) in zip(self.values, other.values)
        )

    def __hash__(self) -> int:  # pragma: no cover - wrappers are transient
        return hash(tuple((n, v) for n, v, _ in self.values))


def _make_sort_key(keys: Sequence[SortKey], layout: RowLayout):
    fns = [(expr.bind(layout), desc) for expr, desc in keys]

    def key(row: Row) -> _OrderWrapper:
        values = []
        for fn, desc in fns:
            v = fn(row)
            values.append((v is None, v, desc))
        return _OrderWrapper(tuple(values))

    return key


class Sort(Operator):
    """Full materializing sort."""

    def __init__(self, child: Operator, keys: Sequence[SortKey]) -> None:
        super().__init__(child.layout, child.stats)
        self.child = child
        self.keys = list(keys)
        self._key_fn = _make_sort_key(self.keys, child.layout)
        self._iter: Optional[Iterator[Row]] = None

    def open(self) -> None:
        rows = list(self.child)
        rows.sort(key=self._key_fn)
        self._iter = iter(rows)

    def next(self) -> Optional[Row]:
        if self._iter is None:
            raise ExecutionError("Sort.next() before open()")
        return next(self._iter, None)

    def close(self) -> None:
        self._iter = None

    def describe(self) -> str:
        return f"Sort({len(self.keys)} keys)"

    def children(self) -> List[Operator]:
        return [self.child]


class TopN(Operator):
    """Heap-based ORDER BY ... FETCH FIRST n ROWS ONLY."""

    def __init__(self, child: Operator, keys: Sequence[SortKey], n: int) -> None:
        if n < 0:
            raise ExecutionError("TopN needs n >= 0")
        super().__init__(child.layout, child.stats)
        self.child = child
        self.keys = list(keys)
        self.n = n
        self._key_fn = _make_sort_key(self.keys, child.layout)
        self._iter: Optional[Iterator[Row]] = None

    def open(self) -> None:
        if self.n == 0:
            self._iter = iter(())
            return
        counter = itertools.count()
        heap: List[Tuple[Any, int, Row]] = []
        rows = list(self.child)
        decorated = [(self._key_fn(row), next(counter), row) for row in rows]
        smallest = heapq.nsmallest(self.n, decorated, key=lambda t: (t[0], t[1]))
        self._iter = iter([row for _, _, row in smallest])

    def next(self) -> Optional[Row]:
        if self._iter is None:
            raise ExecutionError("TopN.next() before open()")
        return next(self._iter, None)

    def close(self) -> None:
        self._iter = None

    def describe(self) -> str:
        return f"TopN(n={self.n})"

    def children(self) -> List[Operator]:
        return [self.child]


class Distinct(Operator):
    """Duplicate elimination on the whole row (hash-based, preserves
    first-seen order)."""

    def __init__(self, child: Operator) -> None:
        super().__init__(child.layout, child.stats)
        self.child = child
        self._seen: Optional[set] = None

    def open(self) -> None:
        self.child.open()
        self._seen = set()

    def next(self) -> Optional[Row]:
        if self._seen is None:
            raise ExecutionError("Distinct.next() before open()")
        while True:
            row = self.child.next()
            if row is None:
                return None
            if row not in self._seen:
                self._seen.add(row)
                return row

    def close(self) -> None:
        self.child.close()
        self._seen = None

    def describe(self) -> str:
        return "Distinct"

    def children(self) -> List[Operator]:
        return [self.child]


class UnionAll(Operator):
    """Concatenate children (arity-checked); output layout is the first
    child's."""

    def __init__(self, children: Sequence[Operator]) -> None:
        if not children:
            raise ExecutionError("UnionAll needs at least one input")
        arity = children[0].layout.arity
        for child in children[1:]:
            if child.layout.arity != arity:
                raise ExecutionError("UNION inputs must have equal arity")
        super().__init__(children[0].layout, children[0].stats)
        self._children = list(children)
        self._current = 0
        self._opened = False

    def open(self) -> None:
        self._current = 0
        self._children[0].open()
        self._opened = True

    def next(self) -> Optional[Row]:
        if not self._opened:
            raise ExecutionError("UnionAll.next() before open()")
        while self._current < len(self._children):
            row = self._children[self._current].next()
            if row is not None:
                return row
            self._children[self._current].close()
            self._current += 1
            if self._current < len(self._children):
                self._children[self._current].open()
        return None

    def close(self) -> None:
        if self._opened and self._current < len(self._children):
            self._children[self._current].close()
        self._opened = False

    def describe(self) -> str:
        return f"UnionAll({len(self._children)} inputs)"

    def children(self) -> List[Operator]:
        return list(self._children)


class Limit(Operator):
    """FETCH FIRST n ROWS ONLY without ordering."""

    def __init__(self, child: Operator, n: int) -> None:
        if n < 0:
            raise ExecutionError("Limit needs n >= 0")
        super().__init__(child.layout, child.stats)
        self.child = child
        self.n = n
        self._emitted = 0

    def open(self) -> None:
        self.child.open()
        self._emitted = 0

    def next(self) -> Optional[Row]:
        if self._emitted >= self.n:
            return None
        row = self.child.next()
        if row is None:
            return None
        self._emitted += 1
        return row

    def close(self) -> None:
        self.child.close()

    def describe(self) -> str:
        return f"Limit(n={self.n})"

    def children(self) -> List[Operator]:
        return [self.child]
