"""Volcano-style operator interface, with a batched columnar fast path.

The paper builds on the iterator model of Graefe's Volcano ([17] in the
paper): every operator supports ``open`` / ``next`` / ``close``, and the
DGJ family (Section 5.3) adds ``advance_to_next_group``.  ``next``
returns a row tuple or ``None`` at end of stream.

The columnar engine adds ``next_batch``, returning a
:class:`~repro.relational.column.Batch` of column vectors (or ``None``
at end of stream).  ``open``/``close`` are shared between the two
protocols; a parent must drive each child through exactly *one* of
``next`` or ``next_batch`` per execution.  The base ``next_batch``
wraps ``next``, so operators without a native batch implementation
(the group-aware DGJ family) transparently downgrade their subtree to
row-at-a-time while the rest of the plan stays batched.

Which protocol the top-level drivers (``run`` and the materializing
operators' internal drains) use is decided by
:mod:`repro.relational.runtime` — ``row_mode()`` reproduces the
pre-refactor reference engine exactly.

Every operator carries a :class:`RowLayout` describing its output
columns, so expressions are bound once at plan-construction time.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Tuple

from repro.relational.column import BATCH_SIZE, Batch
from repro.relational.database import ExecStats
from repro.relational.expressions import Row, RowLayout
from repro.relational.runtime import columnar_enabled


class Operator:
    """Base class for all physical operators."""

    layout: RowLayout

    def __init__(self, layout: RowLayout, stats: Optional[ExecStats] = None) -> None:
        self.layout = layout
        self.stats = stats if stats is not None else ExecStats()

    # -- Volcano interface ------------------------------------------------
    def open(self) -> None:
        raise NotImplementedError

    def next(self) -> Optional[Row]:
        raise NotImplementedError

    def close(self) -> None:
        raise NotImplementedError

    # -- Batched interface -------------------------------------------------
    def next_batch(self) -> Optional[Batch]:
        """Next batch of rows, or None at end of stream.

        Default: accumulate rows from :meth:`next` — the protocol
        downgrade point for row-only operators.
        """
        rows = []
        while len(rows) < BATCH_SIZE:
            row = self.next()
            if row is None:
                break
            rows.append(row)
        if not rows:
            return None
        return Batch.from_rows(rows, self.layout.arity)

    def drain_rows(self) -> List[Row]:
        """Open, drain via the mode-appropriate protocol, close; return
        all rows as plain tuples.  Used by materializing operators
        (sort, hash build, nested-loop inner) for their internal drains."""
        if not columnar_enabled():
            return list(self)
        out: List[Row] = []
        self.open()
        try:
            while True:
                batch = self.next_batch()
                if batch is None:
                    break
                out.extend(batch.to_rows())
        finally:
            self.close()
        return out

    # -- Convenience -------------------------------------------------------
    def __iter__(self) -> Iterator[Row]:
        self.open()
        try:
            while True:
                row = self.next()
                if row is None:
                    break
                yield row
        finally:
            self.close()

    def run(self) -> List[Row]:
        """Open, drain, close; return all rows."""
        return self.drain_rows()

    # -- Explain -------------------------------------------------------------
    def describe(self) -> str:
        return type(self).__name__

    def children(self) -> List["Operator"]:
        return []

    def explain(self, indent: int = 0) -> str:
        lines = ["  " * indent + self.describe()]
        for child in self.children():
            lines.append(child.explain(indent + 1))
        return "\n".join(lines)


class GroupAware(Operator):
    """Operators that understand *groups of tuples* (Section 5.3).

    Property (a): group order of the input is preserved in the output.
    Property (b): :meth:`advance_to_next_group` skips the remainder of
    the current group.  :meth:`current_group` identifies the group of
    the most recently returned row.
    """

    def advance_to_next_group(self) -> None:
        raise NotImplementedError

    def current_group(self):
        raise NotImplementedError
