"""Volcano-style operator interface.

The paper builds on the iterator model of Graefe's Volcano ([17] in the
paper): every operator supports ``open`` / ``next`` / ``close``, and the
DGJ family (Section 5.3) adds ``advance_to_next_group``.  ``next``
returns a row tuple or ``None`` at end of stream.

Every operator carries a :class:`RowLayout` describing its output
columns, so expressions are bound once at plan-construction time.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Tuple

from repro.relational.database import ExecStats
from repro.relational.expressions import Row, RowLayout


class Operator:
    """Base class for all physical operators."""

    layout: RowLayout

    def __init__(self, layout: RowLayout, stats: Optional[ExecStats] = None) -> None:
        self.layout = layout
        self.stats = stats if stats is not None else ExecStats()

    # -- Volcano interface ------------------------------------------------
    def open(self) -> None:
        raise NotImplementedError

    def next(self) -> Optional[Row]:
        raise NotImplementedError

    def close(self) -> None:
        raise NotImplementedError

    # -- Convenience -------------------------------------------------------
    def __iter__(self) -> Iterator[Row]:
        self.open()
        try:
            while True:
                row = self.next()
                if row is None:
                    break
                yield row
        finally:
            self.close()

    def run(self) -> List[Row]:
        """Open, drain, close; return all rows."""
        return list(self)

    # -- Explain -------------------------------------------------------------
    def describe(self) -> str:
        return type(self).__name__

    def children(self) -> List["Operator"]:
        return []

    def explain(self, indent: int = 0) -> str:
        lines = ["  " * indent + self.describe()]
        for child in self.children():
            lines.append(child.explain(indent + 1))
        return "\n".join(lines)


class GroupAware(Operator):
    """Operators that understand *groups of tuples* (Section 5.3).

    Property (a): group order of the input is preserved in the output.
    Property (b): :meth:`advance_to_next_group` skips the remainder of
    the current group.  :meth:`current_group` identifies the group of
    the most recently returned row.
    """

    def advance_to_next_group(self) -> None:
        raise NotImplementedError

    def current_group(self):
        raise NotImplementedError
