"""Physical operators (Volcano iterators) including the DGJ family."""

from repro.relational.operators.base import GroupAware, Operator
from repro.relational.operators.dgj import HDGJ, IDGJ, FirstPerGroup
from repro.relational.operators.filter import Filter, GroupFilter, Project
from repro.relational.operators.join import (
    HashJoin,
    HashSemiJoin,
    IndexNestedLoopJoin,
    NestedLoopJoin,
    SortMergeJoin,
)
from repro.relational.operators.scan import (
    HashIndexScan,
    OrderedIndexScan,
    RowsSource,
    SeqScan,
    table_layout,
)
from repro.relational.operators.sort import Distinct, Limit, Sort, TopN, UnionAll

__all__ = [
    "Distinct",
    "Filter",
    "FirstPerGroup",
    "GroupAware",
    "GroupFilter",
    "HDGJ",
    "HashIndexScan",
    "HashJoin",
    "HashSemiJoin",
    "IDGJ",
    "IndexNestedLoopJoin",
    "Limit",
    "NestedLoopJoin",
    "Operator",
    "OrderedIndexScan",
    "Project",
    "RowsSource",
    "SeqScan",
    "Sort",
    "SortMergeJoin",
    "TopN",
    "UnionAll",
    "table_layout",
]
