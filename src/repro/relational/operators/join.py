"""Regular join operators: hash join, index nested-loops, block
nested-loops, and sort-merge — the System-R repertoire the optimizer
enumerates (Section 5.4.1)."""

from __future__ import annotations

from typing import Any, Iterator, List, Optional, Sequence, Tuple

from repro.errors import ExecutionError
from repro.relational.database import ExecStats
from repro.relational.expressions import Expression, Row, RowLayout, is_truthy
from repro.relational.index import HashIndex
from repro.relational.operators.base import Operator
from repro.relational.operators.scan import table_layout
from repro.relational.table import Table


def _key_fn(positions: Sequence[int]):
    if len(positions) == 1:
        p = positions[0]
        return lambda row: row[p]
    ps = tuple(positions)
    return lambda row: tuple(row[p] for p in ps)


class HashJoin(Operator):
    """Equi-join: build a hash table on the right (inner) input, probe
    with the left (outer) input.  Preserves outer order."""

    def __init__(
        self,
        left: Operator,
        right: Operator,
        left_key_positions: Sequence[int],
        right_key_positions: Sequence[int],
        residual: Optional[Expression] = None,
    ) -> None:
        if len(left_key_positions) != len(right_key_positions):
            raise ExecutionError("join key arity mismatch")
        super().__init__(left.layout.concat(right.layout), left.stats)
        self.left = left
        self.right = right
        self.left_key = _key_fn(left_key_positions)
        self.right_key = _key_fn(right_key_positions)
        self.residual = residual
        self._residual_fn = residual.bind(self.layout) if residual is not None else None
        self._hash: Optional[dict] = None
        self._matches: Optional[Iterator[Row]] = None
        self._outer_row: Optional[Row] = None

    def open(self) -> None:
        self._hash = {}
        for row in self.right:
            key = self.right_key(row)
            if key is None or (isinstance(key, tuple) and any(k is None for k in key)):
                continue  # NULL never joins
            self._hash.setdefault(key, []).append(row)
        self.left.open()
        self._matches = None
        self._outer_row = None

    def next(self) -> Optional[Row]:
        if self._hash is None:
            raise ExecutionError("HashJoin.next() before open()")
        while True:
            if self._matches is not None:
                inner = next(self._matches, None)
                if inner is not None:
                    combined = self._outer_row + inner
                    if self._residual_fn is not None and not is_truthy(
                        self._residual_fn(combined)
                    ):
                        continue
                    self.stats.rows_joined += 1
                    return combined
                self._matches = None
            outer = self.left.next()
            if outer is None:
                return None
            key = self.left_key(outer)
            bucket = self._hash.get(key)
            if bucket:
                self._outer_row = outer
                self._matches = iter(bucket)

    def close(self) -> None:
        self.left.close()
        self._hash = None
        self._matches = None

    def describe(self) -> str:
        return "HashJoin"

    def children(self) -> List[Operator]:
        return [self.left, self.right]


class IndexNestedLoopJoin(Operator):
    """For each outer row, probe a hash index on the inner *table*.

    Preserves outer order; this is the regular (non-group-aware) sibling
    of the paper's IDGJ operator.
    """

    def __init__(
        self,
        outer: Operator,
        table: Table,
        alias: str,
        index: HashIndex,
        outer_key_positions: Sequence[int],
        residual: Optional[Expression] = None,
    ) -> None:
        super().__init__(outer.layout.concat(table_layout(table, alias)), outer.stats)
        self.outer = outer
        self.table = table
        self.alias = alias
        self.index = index
        self.outer_key = _key_fn(outer_key_positions)
        self.residual = residual
        self._residual_fn = residual.bind(self.layout) if residual is not None else None
        self._matches: Optional[Iterator[int]] = None
        self._outer_row: Optional[Row] = None
        self._opened = False

    def open(self) -> None:
        self.outer.open()
        self._matches = None
        self._outer_row = None
        self._opened = True

    def next(self) -> Optional[Row]:
        if not self._opened:
            raise ExecutionError("IndexNestedLoopJoin.next() before open()")
        while True:
            if self._matches is not None:
                pos = next(self._matches, None)
                if pos is not None:
                    combined = self._outer_row + self.table.rows[pos]
                    if self._residual_fn is not None and not is_truthy(
                        self._residual_fn(combined)
                    ):
                        continue
                    self.stats.rows_joined += 1
                    return combined
                self._matches = None
            outer = self.outer.next()
            if outer is None:
                return None
            self.stats.index_probes += 1
            self._outer_row = outer
            self._matches = iter(self.index.lookup(self.outer_key(outer)))

    def close(self) -> None:
        self.outer.close()
        self._matches = None
        self._opened = False

    def describe(self) -> str:
        return f"IndexNestedLoopJoin({self.table.schema.name} AS {self.alias})"

    def children(self) -> List[Operator]:
        return [self.outer]


class NestedLoopJoin(Operator):
    """Block nested-loops over a materialized inner input with an
    arbitrary (theta) predicate.  The fallback join."""

    def __init__(
        self,
        left: Operator,
        right: Operator,
        predicate: Optional[Expression] = None,
    ) -> None:
        super().__init__(left.layout.concat(right.layout), left.stats)
        self.left = left
        self.right = right
        self.predicate = predicate
        self._pred_fn = predicate.bind(self.layout) if predicate is not None else None
        self._inner_rows: Optional[List[Row]] = None
        self._outer_row: Optional[Row] = None
        self._inner_pos = 0

    def open(self) -> None:
        self._inner_rows = list(self.right)
        self.left.open()
        self._outer_row = None
        self._inner_pos = 0

    def next(self) -> Optional[Row]:
        if self._inner_rows is None:
            raise ExecutionError("NestedLoopJoin.next() before open()")
        while True:
            if self._outer_row is None:
                self._outer_row = self.left.next()
                if self._outer_row is None:
                    return None
                self._inner_pos = 0
            while self._inner_pos < len(self._inner_rows):
                inner = self._inner_rows[self._inner_pos]
                self._inner_pos += 1
                combined = self._outer_row + inner
                if self._pred_fn is None or is_truthy(self._pred_fn(combined)):
                    self.stats.rows_joined += 1
                    return combined
            self._outer_row = None

    def close(self) -> None:
        self.left.close()
        self._inner_rows = None

    def describe(self) -> str:
        return "NestedLoopJoin"

    def children(self) -> List[Operator]:
        return [self.left, self.right]


class SortMergeJoin(Operator):
    """Equi-join by sorting both inputs on the key and merging.

    Materializes both sides; output is ordered by the join key, which the
    optimizer records as an interesting order.
    """

    def __init__(
        self,
        left: Operator,
        right: Operator,
        left_key_positions: Sequence[int],
        right_key_positions: Sequence[int],
        residual: Optional[Expression] = None,
    ) -> None:
        if len(left_key_positions) != len(right_key_positions):
            raise ExecutionError("join key arity mismatch")
        super().__init__(left.layout.concat(right.layout), left.stats)
        self.left = left
        self.right = right
        self.left_key = _key_fn(left_key_positions)
        self.right_key = _key_fn(right_key_positions)
        self.residual = residual
        self._residual_fn = residual.bind(self.layout) if residual is not None else None
        self._output: Optional[Iterator[Row]] = None

    def _merge(self) -> Iterator[Row]:
        def sortable(key_fn):
            def safe(row):
                k = key_fn(row)
                return k
            return safe

        left_rows = [r for r in self.left if self.left_key(r) is not None]
        right_rows = [r for r in self.right if self.right_key(r) is not None]
        left_rows.sort(key=sortable(self.left_key))
        right_rows.sort(key=sortable(self.right_key))
        i = j = 0
        while i < len(left_rows) and j < len(right_rows):
            lk, rk = self.left_key(left_rows[i]), self.right_key(right_rows[j])
            if lk < rk:
                i += 1
            elif lk > rk:
                j += 1
            else:
                j_end = j
                while j_end < len(right_rows) and self.right_key(right_rows[j_end]) == lk:
                    j_end += 1
                while i < len(left_rows) and self.left_key(left_rows[i]) == lk:
                    for jj in range(j, j_end):
                        combined = left_rows[i] + right_rows[jj]
                        if self._residual_fn is None or is_truthy(self._residual_fn(combined)):
                            self.stats.rows_joined += 1
                            yield combined
                    i += 1
                j = j_end

    def open(self) -> None:
        self._output = self._merge()

    def next(self) -> Optional[Row]:
        if self._output is None:
            raise ExecutionError("SortMergeJoin.next() before open()")
        return next(self._output, None)

    def close(self) -> None:
        self._output = None

    def describe(self) -> str:
        return "SortMergeJoin"

    def children(self) -> List[Operator]:
        return [self.left, self.right]


class HashSemiJoin(Operator):
    """Hash-based semi/anti join: emit left rows that have (semi) or lack
    (anti) a key match in the right input.  This is how decorrelated
    EXISTS / NOT EXISTS subqueries execute — e.g. the ``NOT EXISTS
    (SELECT 1 FROM ExcpTops ...)`` of the paper's SQL1."""

    def __init__(
        self,
        left: Operator,
        right: Operator,
        left_key_positions: Sequence[int],
        right_key_positions: Sequence[int],
        negated: bool = False,
    ) -> None:
        super().__init__(left.layout, left.stats)
        self.left = left
        self.right = right
        self.left_key = _key_fn(left_key_positions)
        self.right_key = _key_fn(right_key_positions)
        self.negated = negated
        self._keys: Optional[set] = None

    def open(self) -> None:
        self._keys = set()
        for row in self.right:
            key = self.right_key(row)
            if key is None or (isinstance(key, tuple) and any(k is None for k in key)):
                continue
            self._keys.add(key)
        self.left.open()

    def next(self) -> Optional[Row]:
        if self._keys is None:
            raise ExecutionError("HashSemiJoin.next() before open()")
        while True:
            row = self.left.next()
            if row is None:
                return None
            found = self.left_key(row) in self._keys
            if found != self.negated:
                self.stats.rows_joined += 1
                return row

    def close(self) -> None:
        self.left.close()
        self._keys = None

    def describe(self) -> str:
        return "HashAntiJoin" if self.negated else "HashSemiJoin"

    def children(self) -> List[Operator]:
        return [self.left, self.right]
