"""Regular join operators: hash join, index nested-loops, block
nested-loops, and sort-merge — the System-R repertoire the optimizer
enumerates (Section 5.4.1).

Batch paths: the hash and index joins probe per *outer batch*, gathering
matching (outer position, inner row) pairs and assembling the combined
batch with one column gather per side — build order, probe order, and
residual filtering mirror the row engine exactly, so emission order is
identical.  Nested-loops stays row-at-a-time (it is the rare theta-join
fallback); sort-merge materializes anyway, so only its input drains are
batched.
"""

from __future__ import annotations

from typing import Any, Iterator, List, Optional, Sequence, Tuple

from repro.errors import ExecutionError
from repro.relational.column import (
    HAVE_NUMPY,
    Batch,
    is_ndarray,
    np,
    take_column,
    to_pylist,
)
from repro.relational.database import ExecStats
from repro.relational.expressions import Expression, Row, RowLayout, is_truthy
from repro.relational.index import HashIndex
from repro.relational.operators.base import Operator
from repro.relational.operators.scan import table_layout
from repro.relational.runtime import columnar_enabled
from repro.relational.table import Table


def _key_fn(positions: Sequence[int]):
    if len(positions) == 1:
        p = positions[0]
        return lambda row: row[p]
    ps = tuple(positions)
    return lambda row: tuple(row[p] for p in ps)


def _batch_keys(batch: Batch, positions: Sequence[int]) -> list:
    """Join-key values per batch row, as plain Python scalars/tuples."""
    if len(positions) == 1:
        return to_pylist(batch.columns[positions[0]])
    key_columns = [to_pylist(batch.columns[p]) for p in positions]
    return list(zip(*key_columns))


def _apply_residual(batch: Batch, batch_fn) -> Optional[Batch]:
    """Filter a joined batch by the residual predicate; None if nothing
    survives."""
    result = batch_fn(batch)
    if result.kind == "const":
        return batch if result.data is True else None
    keep = result.as_keep()
    kept = sum(keep) if isinstance(keep, list) else int(keep.sum())
    if kept == 0:
        return None
    if kept == batch.length:
        return batch
    return batch.compact(keep, kept)


class HashJoin(Operator):
    """Equi-join: build a hash table on the right (inner) input, probe
    with the left (outer) input.  Preserves outer order."""

    def __init__(
        self,
        left: Operator,
        right: Operator,
        left_key_positions: Sequence[int],
        right_key_positions: Sequence[int],
        residual: Optional[Expression] = None,
    ) -> None:
        if len(left_key_positions) != len(right_key_positions):
            raise ExecutionError("join key arity mismatch")
        super().__init__(left.layout.concat(right.layout), left.stats)
        self.left = left
        self.right = right
        self.left_key_positions = tuple(left_key_positions)
        self.left_key = _key_fn(left_key_positions)
        self.right_key = _key_fn(right_key_positions)
        self.residual = residual
        self._residual_fn = residual.bind(self.layout) if residual is not None else None
        self._residual_batch_fn = (
            residual.bind_batch(self.layout) if residual is not None else None
        )
        self._hash: Optional[dict] = None
        self._matches: Optional[Iterator[Row]] = None
        self._outer_row: Optional[Row] = None
        self._probe_fast = None

    def open(self) -> None:
        self._hash = {}
        build_side = self.right.drain_rows() if columnar_enabled() else self.right
        for row in build_side:
            key = self.right_key(row)
            if key is None or (isinstance(key, tuple) and any(k is None for k in key)):
                continue  # NULL never joins
            self._hash.setdefault(key, []).append(row)
        self._probe_fast = self._prepare_fast_probe() if columnar_enabled() else None
        self.left.open()
        self._matches = None
        self._outer_row = None

    def _prepare_fast_probe(self):
        """Sorted-key arrays for a vectorized single-int-key probe.

        Only when every build key is a Python int (bool included —
        ``hash(True) == hash(1)``, so dict and int64 equality agree)
        and every bucket holds exactly one row: then each probe value
        matches at most one inner row, and emitting matches in probe
        order is exactly the row engine's emission order.  Returns
        (sorted key array, sorted-pos → build row index, build columns)
        or None."""
        if not HAVE_NUMPY or len(self.left_key_positions) != 1 or not self._hash:
            return None
        rows = []
        for key, bucket in self._hash.items():
            if len(bucket) != 1 or not isinstance(key, int):
                return None
            rows.append(bucket[0])
        try:
            keys = np.array(list(self._hash), dtype="int64")
        except OverflowError:
            return None
        order = np.argsort(keys, kind="stable")
        right_columns = [list(col) for col in zip(*rows)]
        return keys[order], order, right_columns

    def next(self) -> Optional[Row]:
        if self._hash is None:
            raise ExecutionError("HashJoin.next() before open()")
        while True:
            if self._matches is not None:
                inner = next(self._matches, None)
                if inner is not None:
                    combined = self._outer_row + inner
                    if self._residual_fn is not None and not is_truthy(
                        self._residual_fn(combined)
                    ):
                        continue
                    self.stats.rows_joined += 1
                    return combined
                self._matches = None
            outer = self.left.next()
            if outer is None:
                return None
            key = self.left_key(outer)
            bucket = self._hash.get(key)
            if bucket:
                self._outer_row = outer
                self._matches = iter(bucket)

    def next_batch(self) -> Optional[Batch]:
        if self._hash is None:
            raise ExecutionError("HashJoin.next_batch() before open()")
        while True:
            batch = self.left.next_batch()
            if batch is None:
                return None
            probe = batch.columns[self.left_key_positions[0]] if batch.columns else None
            if (
                self._probe_fast is not None
                and is_ndarray(probe)
                and probe.dtype.kind in "ib"
            ):
                sorted_keys, order, build_columns = self._probe_fast
                at = np.minimum(
                    np.searchsorted(sorted_keys, probe), sorted_keys.size - 1
                )
                matched = sorted_keys[at] == probe
                if not matched.any():
                    continue
                out_positions = np.nonzero(matched)[0]
                inner_at = order[at[matched]].tolist()
                left_columns = [take_column(col, out_positions) for col in batch.columns]
                right_columns = [
                    [col[i] for i in inner_at] for col in build_columns
                ]
                combined = Batch(left_columns + right_columns, len(out_positions))
            else:
                out_positions = []
                inner_rows: List[Row] = []
                get = self._hash.get
                for i, key in enumerate(_batch_keys(batch, self.left_key_positions)):
                    bucket = get(key)
                    if bucket:
                        for inner in bucket:
                            out_positions.append(i)
                            inner_rows.append(inner)
                if not out_positions:
                    continue
                left_columns = [take_column(col, out_positions) for col in batch.columns]
                right_columns = [list(col) for col in zip(*inner_rows)]
                combined = Batch(left_columns + right_columns, len(out_positions))
            if self._residual_batch_fn is not None:
                combined = _apply_residual(combined, self._residual_batch_fn)
                if combined is None:
                    continue
            self.stats.rows_joined += combined.length
            return combined

    def close(self) -> None:
        self.left.close()
        self._hash = None
        self._matches = None
        self._probe_fast = None

    def describe(self) -> str:
        return "HashJoin"

    def children(self) -> List[Operator]:
        return [self.left, self.right]


class IndexNestedLoopJoin(Operator):
    """For each outer row, probe a hash index on the inner *table*.

    Preserves outer order; this is the regular (non-group-aware) sibling
    of the paper's IDGJ operator.
    """

    def __init__(
        self,
        outer: Operator,
        table: Table,
        alias: str,
        index: HashIndex,
        outer_key_positions: Sequence[int],
        residual: Optional[Expression] = None,
    ) -> None:
        super().__init__(outer.layout.concat(table_layout(table, alias)), outer.stats)
        self.outer = outer
        self.table = table
        self.alias = alias
        self.index = index
        self.outer_key_positions = tuple(outer_key_positions)
        self.outer_key = _key_fn(outer_key_positions)
        self.residual = residual
        self._residual_fn = residual.bind(self.layout) if residual is not None else None
        self._residual_batch_fn = (
            residual.bind_batch(self.layout) if residual is not None else None
        )
        self._matches: Optional[Iterator[int]] = None
        self._outer_row: Optional[Row] = None
        self._opened = False

    def open(self) -> None:
        self.outer.open()
        self._matches = None
        self._outer_row = None
        self._opened = True

    def next(self) -> Optional[Row]:
        if not self._opened:
            raise ExecutionError("IndexNestedLoopJoin.next() before open()")
        while True:
            if self._matches is not None:
                pos = next(self._matches, None)
                if pos is not None:
                    combined = self._outer_row + self.table.rows[pos]
                    if self._residual_fn is not None and not is_truthy(
                        self._residual_fn(combined)
                    ):
                        continue
                    self.stats.rows_joined += 1
                    return combined
                self._matches = None
            outer = self.outer.next()
            if outer is None:
                return None
            self.stats.index_probes += 1
            self._outer_row = outer
            self._matches = iter(self.index.lookup(self.outer_key(outer)))

    def next_batch(self) -> Optional[Batch]:
        if not self._opened:
            raise ExecutionError("IndexNestedLoopJoin.next_batch() before open()")
        lookup = self.index.lookup
        while True:
            batch = self.outer.next_batch()
            if batch is None:
                return None
            self.stats.index_probes += batch.length
            out_positions: List[int] = []
            inner_positions: List[int] = []
            for i, key in enumerate(_batch_keys(batch, self.outer_key_positions)):
                for pos in lookup(key):
                    out_positions.append(i)
                    inner_positions.append(pos)
            if not out_positions:
                continue
            outer_columns = [take_column(col, out_positions) for col in batch.columns]
            inner_columns = self.table.store.take_columns(inner_positions)
            combined = Batch(outer_columns + inner_columns, len(out_positions))
            if self._residual_batch_fn is not None:
                combined = _apply_residual(combined, self._residual_batch_fn)
                if combined is None:
                    continue
            self.stats.rows_joined += combined.length
            return combined

    def close(self) -> None:
        self.outer.close()
        self._matches = None
        self._opened = False

    def describe(self) -> str:
        return f"IndexNestedLoopJoin({self.table.schema.name} AS {self.alias})"

    def children(self) -> List[Operator]:
        return [self.outer]


class NestedLoopJoin(Operator):
    """Block nested-loops over a materialized inner input with an
    arbitrary (theta) predicate.  The fallback join."""

    def __init__(
        self,
        left: Operator,
        right: Operator,
        predicate: Optional[Expression] = None,
    ) -> None:
        super().__init__(left.layout.concat(right.layout), left.stats)
        self.left = left
        self.right = right
        self.predicate = predicate
        self._pred_fn = predicate.bind(self.layout) if predicate is not None else None
        self._inner_rows: Optional[List[Row]] = None
        self._outer_row: Optional[Row] = None
        self._inner_pos = 0

    def open(self) -> None:
        # The probe loop itself stays row-at-a-time (rare theta-join
        # fallback); only the inner materialization is batched.
        self._inner_rows = (
            self.right.drain_rows() if columnar_enabled() else list(self.right)
        )
        self.left.open()
        self._outer_row = None
        self._inner_pos = 0

    def next(self) -> Optional[Row]:
        if self._inner_rows is None:
            raise ExecutionError("NestedLoopJoin.next() before open()")
        while True:
            if self._outer_row is None:
                self._outer_row = self.left.next()
                if self._outer_row is None:
                    return None
                self._inner_pos = 0
            while self._inner_pos < len(self._inner_rows):
                inner = self._inner_rows[self._inner_pos]
                self._inner_pos += 1
                combined = self._outer_row + inner
                if self._pred_fn is None or is_truthy(self._pred_fn(combined)):
                    self.stats.rows_joined += 1
                    return combined
            self._outer_row = None

    def close(self) -> None:
        self.left.close()
        self._inner_rows = None

    def describe(self) -> str:
        return "NestedLoopJoin"

    def children(self) -> List[Operator]:
        return [self.left, self.right]


class SortMergeJoin(Operator):
    """Equi-join by sorting both inputs on the key and merging.

    Materializes both sides; output is ordered by the join key, which the
    optimizer records as an interesting order.
    """

    def __init__(
        self,
        left: Operator,
        right: Operator,
        left_key_positions: Sequence[int],
        right_key_positions: Sequence[int],
        residual: Optional[Expression] = None,
    ) -> None:
        if len(left_key_positions) != len(right_key_positions):
            raise ExecutionError("join key arity mismatch")
        super().__init__(left.layout.concat(right.layout), left.stats)
        self.left = left
        self.right = right
        self.left_key = _key_fn(left_key_positions)
        self.right_key = _key_fn(right_key_positions)
        self.residual = residual
        self._residual_fn = residual.bind(self.layout) if residual is not None else None
        self._output: Optional[Iterator[Row]] = None

    def _merge(self) -> Iterator[Row]:
        def sortable(key_fn):
            def safe(row):
                k = key_fn(row)
                return k
            return safe

        if columnar_enabled():
            left_rows = [r for r in self.left.drain_rows() if self.left_key(r) is not None]
            right_rows = [r for r in self.right.drain_rows() if self.right_key(r) is not None]
        else:
            left_rows = [r for r in self.left if self.left_key(r) is not None]
            right_rows = [r for r in self.right if self.right_key(r) is not None]
        left_rows.sort(key=sortable(self.left_key))
        right_rows.sort(key=sortable(self.right_key))
        i = j = 0
        while i < len(left_rows) and j < len(right_rows):
            lk, rk = self.left_key(left_rows[i]), self.right_key(right_rows[j])
            if lk < rk:
                i += 1
            elif lk > rk:
                j += 1
            else:
                j_end = j
                while j_end < len(right_rows) and self.right_key(right_rows[j_end]) == lk:
                    j_end += 1
                while i < len(left_rows) and self.left_key(left_rows[i]) == lk:
                    for jj in range(j, j_end):
                        combined = left_rows[i] + right_rows[jj]
                        if self._residual_fn is None or is_truthy(self._residual_fn(combined)):
                            self.stats.rows_joined += 1
                            yield combined
                    i += 1
                j = j_end

    def open(self) -> None:
        self._output = self._merge()

    def next(self) -> Optional[Row]:
        if self._output is None:
            raise ExecutionError("SortMergeJoin.next() before open()")
        return next(self._output, None)

    def close(self) -> None:
        self._output = None

    def describe(self) -> str:
        return "SortMergeJoin"

    def children(self) -> List[Operator]:
        return [self.left, self.right]


class HashSemiJoin(Operator):
    """Hash-based semi/anti join: emit left rows that have (semi) or lack
    (anti) a key match in the right input.  This is how decorrelated
    EXISTS / NOT EXISTS subqueries execute — e.g. the ``NOT EXISTS
    (SELECT 1 FROM ExcpTops ...)`` of the paper's SQL1."""

    def __init__(
        self,
        left: Operator,
        right: Operator,
        left_key_positions: Sequence[int],
        right_key_positions: Sequence[int],
        negated: bool = False,
    ) -> None:
        super().__init__(left.layout, left.stats)
        self.left = left
        self.right = right
        self.left_key_positions = tuple(left_key_positions)
        self.left_key = _key_fn(left_key_positions)
        self.right_key = _key_fn(right_key_positions)
        self.negated = negated
        self._keys: Optional[set] = None

    def open(self) -> None:
        self._keys = set()
        build_side = self.right.drain_rows() if columnar_enabled() else self.right
        for row in build_side:
            key = self.right_key(row)
            if key is None or (isinstance(key, tuple) and any(k is None for k in key)):
                continue
            self._keys.add(key)
        self.left.open()

    def next(self) -> Optional[Row]:
        if self._keys is None:
            raise ExecutionError("HashSemiJoin.next() before open()")
        while True:
            row = self.left.next()
            if row is None:
                return None
            found = self.left_key(row) in self._keys
            if found != self.negated:
                self.stats.rows_joined += 1
                return row

    def next_batch(self) -> Optional[Batch]:
        if self._keys is None:
            raise ExecutionError("HashSemiJoin.next_batch() before open()")
        keys = self._keys
        negated = self.negated
        while True:
            batch = self.left.next_batch()
            if batch is None:
                return None
            keep = [
                (key in keys) != negated
                for key in _batch_keys(batch, self.left_key_positions)
            ]
            kept = sum(keep)
            if kept == 0:
                continue
            self.stats.rows_joined += kept
            if kept == batch.length:
                return batch
            return batch.compact(keep, kept)

    def close(self) -> None:
        self.left.close()
        self._keys = None

    def describe(self) -> str:
        return "HashAntiJoin" if self.negated else "HashSemiJoin"

    def children(self) -> List[Operator]:
        return [self.left, self.right]
