"""Row-level operators: filter and projection."""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.errors import ExecutionError
from repro.relational.database import ExecStats
from repro.relational.expressions import Expression, Row, RowLayout, is_truthy
from repro.relational.operators.base import GroupAware, Operator


class Filter(Operator):
    """Keep rows for which the predicate is true (unknown -> dropped)."""

    def __init__(self, child: Operator, predicate: Expression) -> None:
        super().__init__(child.layout, child.stats)
        self.child = child
        self.predicate = predicate
        self._fn = predicate.bind(child.layout)

    def open(self) -> None:
        self.child.open()

    def next(self) -> Optional[Row]:
        while True:
            row = self.child.next()
            if row is None:
                return None
            if is_truthy(self._fn(row)):
                return row

    def close(self) -> None:
        self.child.close()

    def describe(self) -> str:
        return f"Filter({self.predicate!r})"

    def children(self) -> List[Operator]:
        return [self.child]


class GroupFilter(GroupAware):
    """A filter that forwards the group-awareness of its child — needed
    because the paper's DGJ plans interleave selections (σ_protein,
    σ_DNA) with DGJ joins (Figure 15)."""

    def __init__(self, child: GroupAware, predicate: Expression) -> None:
        super().__init__(child.layout, child.stats)
        self.child = child
        self.predicate = predicate
        self._fn = predicate.bind(child.layout)

    def open(self) -> None:
        self.child.open()

    def next(self) -> Optional[Row]:
        while True:
            row = self.child.next()
            if row is None:
                return None
            if is_truthy(self._fn(row)):
                return row

    def advance_to_next_group(self) -> None:
        self.child.advance_to_next_group()

    def current_group(self):
        return self.child.current_group()

    def close(self) -> None:
        self.child.close()

    def describe(self) -> str:
        return f"GroupFilter({self.predicate!r})"

    def children(self) -> List[Operator]:
        return [self.child]


class Project(Operator):
    """Compute output expressions; names become the output layout with
    the given alias (default ``""`` for top-level SELECT lists).

    ``entries`` overrides the output layout with explicit (alias, name)
    pairs — used by the SQL planner to keep the originating table alias
    on pass-through columns so ``ORDER BY P.ID`` still resolves after
    projection."""

    def __init__(
        self,
        child: Operator,
        exprs: Sequence[Expression],
        names: Sequence[str],
        alias: str = "",
        entries: Optional[Sequence[Tuple[str, str]]] = None,
    ) -> None:
        if len(exprs) != len(names):
            raise ExecutionError("Project needs one name per expression")
        layout_entries = list(entries) if entries is not None else [(alias, n) for n in names]
        super().__init__(RowLayout(layout_entries), child.stats)
        self.child = child
        self.exprs = list(exprs)
        self.names = list(names)
        self._fns = [e.bind(child.layout) for e in exprs]

    def open(self) -> None:
        self.child.open()

    def next(self) -> Optional[Row]:
        row = self.child.next()
        if row is None:
            return None
        return tuple(fn(row) for fn in self._fns)

    def close(self) -> None:
        self.child.close()

    def describe(self) -> str:
        return f"Project({', '.join(self.names)})"

    def children(self) -> List[Operator]:
        return [self.child]
