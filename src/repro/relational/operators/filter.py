"""Row-level operators: filter and projection."""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.errors import ExecutionError
from repro.relational.column import Batch
from repro.relational.database import ExecStats
from repro.relational.expressions import Expression, Row, RowLayout, is_truthy
from repro.relational.operators.base import GroupAware, Operator


class Filter(Operator):
    """Keep rows for which the predicate is true (unknown -> dropped).

    The batch path evaluates the predicate once per batch to a selection
    mask and compacts survivors; all-pass batches are forwarded intact
    (preserving the scan's lowered-text alignment), all-fail batches are
    skipped without materializing anything.
    """

    def __init__(self, child: Operator, predicate: Expression) -> None:
        super().__init__(child.layout, child.stats)
        self.child = child
        self.predicate = predicate
        self._fn = predicate.bind(child.layout)
        self._batch_fn = predicate.bind_batch(child.layout)

    def open(self) -> None:
        self.child.open()

    def next(self) -> Optional[Row]:
        while True:
            row = self.child.next()
            if row is None:
                return None
            if is_truthy(self._fn(row)):
                return row

    def next_batch(self) -> Optional[Batch]:
        while True:
            batch = self.child.next_batch()
            if batch is None:
                return None
            result = self._batch_fn(batch)
            if result.kind == "const":
                if result.data is True:
                    return batch
                continue
            keep = result.as_keep()
            kept = sum(keep) if isinstance(keep, list) else int(keep.sum())
            if kept == 0:
                continue
            if kept == batch.length:
                return batch
            return batch.compact(keep, kept)

    def close(self) -> None:
        self.child.close()

    def describe(self) -> str:
        return f"Filter({self.predicate!r})"

    def children(self) -> List[Operator]:
        return [self.child]


class GroupFilter(GroupAware):
    """A filter that forwards the group-awareness of its child — needed
    because the paper's DGJ plans interleave selections (σ_protein,
    σ_DNA) with DGJ joins (Figure 15)."""

    def __init__(self, child: GroupAware, predicate: Expression) -> None:
        super().__init__(child.layout, child.stats)
        self.child = child
        self.predicate = predicate
        self._fn = predicate.bind(child.layout)

    def open(self) -> None:
        self.child.open()

    def next(self) -> Optional[Row]:
        while True:
            row = self.child.next()
            if row is None:
                return None
            if is_truthy(self._fn(row)):
                return row

    def advance_to_next_group(self) -> None:
        self.child.advance_to_next_group()

    def current_group(self):
        return self.child.current_group()

    def close(self) -> None:
        self.child.close()

    def describe(self) -> str:
        return f"GroupFilter({self.predicate!r})"

    def children(self) -> List[Operator]:
        return [self.child]


class Project(Operator):
    """Compute output expressions; names become the output layout with
    the given alias (default ``""`` for top-level SELECT lists).

    ``entries`` overrides the output layout with explicit (alias, name)
    pairs — used by the SQL planner to keep the originating table alias
    on pass-through columns so ``ORDER BY P.ID`` still resolves after
    projection."""

    def __init__(
        self,
        child: Operator,
        exprs: Sequence[Expression],
        names: Sequence[str],
        alias: str = "",
        entries: Optional[Sequence[Tuple[str, str]]] = None,
    ) -> None:
        if len(exprs) != len(names):
            raise ExecutionError("Project needs one name per expression")
        layout_entries = list(entries) if entries is not None else [(alias, n) for n in names]
        super().__init__(RowLayout(layout_entries), child.stats)
        self.child = child
        self.exprs = list(exprs)
        self.names = list(names)
        self._fns = [e.bind(child.layout) for e in exprs]
        self._batch_fns = [e.bind_batch(child.layout) for e in exprs]

    def open(self) -> None:
        self.child.open()

    def next(self) -> Optional[Row]:
        row = self.child.next()
        if row is None:
            return None
        return tuple(fn(row) for fn in self._fns)

    def next_batch(self) -> Optional[Batch]:
        batch = self.child.next_batch()
        if batch is None:
            return None
        columns = [fn(batch).as_column() for fn in self._batch_fns]
        return Batch(columns, batch.length)

    def close(self) -> None:
        self.child.close()

    def describe(self) -> str:
        return f"Project({', '.join(self.names)})"

    def children(self) -> List[Operator]:
        return [self.child]
