"""Distinct Group Join (DGJ) operators — Section 5.3 of the paper.

A DGJ operator (a) understands groups of tuples, preserving the group
order of its input in its output, and (b) supports
``advance_to_next_group`` so a caller can skip the remainder of a group
as soon as a single witness row has been produced.  Stacked over a
score-ordered scan of topologies, DGJ joins let top-k topology queries
terminate early both *within* a topology (first witness pair suffices)
and *across* topologies (stop after k results) — the two inefficiencies
of regular plans identified in Section 5.2.

Two implementations, as in the paper:

* :class:`IDGJ` — index nested-loops flavour: per outer tuple, one hash
  index probe into the inner table.  Trivially preserves outer order.
* :class:`HDGJ` — hash flavour: joins one *group at a time*, hashing the
  group's outer tuples and streaming the inner input against them;
  the inner input is re-evaluated once per group (the cost the paper
  calls out), in exchange for hash- rather than index-probing.

:class:`FirstPerGroup` is the early-termination driver at the top of a
DGJ stack: it emits the first surviving row of each group, immediately
advancing past the rest, and stops after ``n_groups`` emissions.
"""

from __future__ import annotations

from typing import Any, Callable, Iterator, List, Optional, Sequence, Tuple

from repro.errors import ExecutionError
from repro.relational.expressions import Expression, Row, is_truthy
from repro.relational.index import HashIndex
from repro.relational.operators.base import GroupAware, Operator
from repro.relational.operators.scan import table_layout
from repro.relational.table import Table


def _key_fn(positions: Sequence[int]):
    if len(positions) == 1:
        p = positions[0]
        return lambda row: row[p]
    ps = tuple(positions)
    return lambda row: tuple(row[p] for p in ps)


class IDGJ(GroupAware):
    """Index nested-loops Distinct Group Join.

    For each tuple of the group-aware outer input, probe a hash index on
    the inner table.  Nested loops preserve outer order, hence group
    order (property (a)); skipping discards the pending probe results
    and delegates to the outer's own ``advance_to_next_group``
    (property (b)).
    """

    def __init__(
        self,
        outer: GroupAware,
        table: Table,
        alias: str,
        index: HashIndex,
        outer_key_positions: Sequence[int],
        residual: Optional[Expression] = None,
    ) -> None:
        super().__init__(outer.layout.concat(table_layout(table, alias)), outer.stats)
        self.outer = outer
        self.table = table
        self.alias = alias
        self.index = index
        self.outer_key = _key_fn(outer_key_positions)
        self.residual = residual
        self._residual_fn = residual.bind(self.layout) if residual is not None else None
        self._outer_row: Optional[Row] = None
        self._matches: Optional[Iterator[int]] = None
        self._opened = False

    def open(self) -> None:
        self.outer.open()
        self._outer_row = None
        self._matches = None
        self._opened = True

    def next(self) -> Optional[Row]:
        if not self._opened:
            raise ExecutionError("IDGJ.next() before open()")
        while True:
            if self._matches is not None:
                pos = next(self._matches, None)
                if pos is not None:
                    combined = self._outer_row + self.table.rows[pos]
                    if self._residual_fn is not None and not is_truthy(
                        self._residual_fn(combined)
                    ):
                        continue
                    self.stats.rows_joined += 1
                    return combined
                self._matches = None
            outer = self.outer.next()
            if outer is None:
                return None
            self.stats.index_probes += 1
            self._outer_row = outer
            self._matches = iter(self.index.lookup(self.outer_key(outer)))

    def advance_to_next_group(self) -> None:
        """Discontinue the current loop and start a new one at the next
        group (the paper's description of IDGJ skipping)."""
        if not self._opened:
            raise ExecutionError("advance_to_next_group() before open()")
        self._outer_row = None
        self._matches = None
        self.stats.groups_skipped += 1
        self.outer.advance_to_next_group()

    def current_group(self) -> Any:
        return self.outer.current_group()

    def close(self) -> None:
        self.outer.close()
        self._matches = None
        self._opened = False

    def describe(self) -> str:
        return f"IDGJ({self.table.schema.name} AS {self.alias})"

    def children(self) -> List[Operator]:
        return [self.outer]


class HDGJ(GroupAware):
    """Hash Distinct Group Join.

    Processes the join one group at a time: materialize the current
    group's outer tuples, hash them on the join key, then stream a fresh
    instance of the inner input, emitting matches.  Group order is
    preserved because groups are handled strictly in input order; the
    inner input is re-evaluated once per group (``inner_factory`` builds
    a fresh operator each time), which the optimizer's cost model
    charges for.
    """

    def __init__(
        self,
        outer: GroupAware,
        inner_factory: Callable[[], Operator],
        outer_key_positions: Sequence[int],
        inner_key_positions: Sequence[int],
        residual: Optional[Expression] = None,
    ) -> None:
        probe = inner_factory()
        super().__init__(outer.layout.concat(probe.layout), outer.stats)
        self.outer = outer
        self.inner_factory = inner_factory
        self.outer_key = _key_fn(outer_key_positions)
        self.inner_key = _key_fn(inner_key_positions)
        self.residual = residual
        self._residual_fn = residual.bind(self.layout) if residual is not None else None
        self._inner_template = probe
        self._group: Any = None
        self._bucket: Optional[dict] = None
        self._inner: Optional[Operator] = None
        self._emit: Optional[Iterator[Row]] = None
        self._pending: Optional[Tuple[Row, Any]] = None
        self._opened = False

    def open(self) -> None:
        self.outer.open()
        self._group = None
        self._bucket = None
        self._inner = None
        self._emit = None
        self._pending = None
        self._opened = True

    def _collect_group(self) -> bool:
        """Materialize the next outer group; returns False at end."""
        if self._pending is not None:
            first, group = self._pending
            self._pending = None
        else:
            first = self.outer.next()
            if first is None:
                return False
            group = self.outer.current_group()
        bucket: dict = {}
        bucket.setdefault(self.outer_key(first), []).append(first)
        while True:
            row = self.outer.next()
            if row is None:
                break
            row_group = self.outer.current_group()
            if row_group != group:
                self._pending = (row, row_group)
                break
            bucket.setdefault(self.outer_key(row), []).append(row)
        self._group = group
        self._bucket = bucket
        self._inner = self.inner_factory()
        self._inner.open()
        self._emit = None
        return True

    def next(self) -> Optional[Row]:
        if not self._opened:
            raise ExecutionError("HDGJ.next() before open()")
        while True:
            if self._emit is not None:
                row = next(self._emit, None)
                if row is not None:
                    self.stats.rows_joined += 1
                    return row
                self._emit = None
            if self._inner is not None:
                inner_row = self._inner.next()
                if inner_row is None:
                    self._inner.close()
                    self._inner = None
                    self._bucket = None
                    continue
                matches = self._bucket.get(self.inner_key(inner_row)) if self._bucket else None
                if matches:
                    combined_rows = []
                    for outer_row in matches:
                        combined = outer_row + inner_row
                        if self._residual_fn is None or is_truthy(self._residual_fn(combined)):
                            combined_rows.append(combined)
                    if combined_rows:
                        self._emit = iter(combined_rows)
                continue
            if not self._collect_group():
                return None

    def advance_to_next_group(self) -> None:
        """Abort the current group's inner scan; the next ``next()`` call
        collects the following group."""
        if not self._opened:
            raise ExecutionError("advance_to_next_group() before open()")
        if self._inner is not None:
            self._inner.close()
            self._inner = None
        self._bucket = None
        self._emit = None
        self.stats.groups_skipped += 1
        # The outer was fully consumed up to the group boundary during
        # _collect_group(), so no downstream skip is required.

    def current_group(self) -> Any:
        return self._group

    def close(self) -> None:
        self.outer.close()
        if self._inner is not None:
            self._inner.close()
            self._inner = None
        self._bucket = None
        self._emit = None
        self._opened = False

    def describe(self) -> str:
        return f"HDGJ(inner={self._inner_template.describe()})"

    def children(self) -> List[Operator]:
        return [self.outer, self._inner_template]


class FirstPerGroup(Operator):
    """Early-termination driver: emit the first surviving row of each
    group and skip the rest; stop after ``n_groups`` groups if given.

    Combined with a score-ordered group source this computes
    ``SELECT DISTINCT <group> ... ORDER BY score DESC FETCH FIRST k``
    without processing whole groups — the paper's Fast-Top-k-ET core.
    """

    def __init__(self, child: GroupAware, n_groups: Optional[int] = None) -> None:
        super().__init__(child.layout, child.stats)
        self.child = child
        self.n_groups = n_groups
        self._emitted = 0

    def open(self) -> None:
        self.child.open()
        self._emitted = 0

    def next(self) -> Optional[Row]:
        if self.n_groups is not None and self._emitted >= self.n_groups:
            return None
        row = self.child.next()
        if row is None:
            return None
        self._emitted += 1
        self.child.advance_to_next_group()
        return row

    def close(self) -> None:
        self.child.close()

    def describe(self) -> str:
        limit = "all" if self.n_groups is None else str(self.n_groups)
        return f"FirstPerGroup(k={limit})"

    def children(self) -> List[Operator]:
        return [self.child]
