"""Table schemas: ordered typed columns with an optional primary key."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.errors import SchemaError
from repro.relational.types import DataType


@dataclass(frozen=True)
class Column:
    """One column: a name, a type, and a nullability flag."""

    name: str
    dtype: DataType
    not_null: bool = False

    def __post_init__(self) -> None:
        if not self.name or not self.name.replace("_", "").isalnum():
            raise SchemaError(f"invalid column name {self.name!r}")


class TableSchema:
    """An ordered list of columns plus an optional primary-key column.

    Column lookup is case-insensitive (SQL style); stored names keep
    their declared casing.
    """

    def __init__(
        self,
        name: str,
        columns: Sequence[Column],
        primary_key: Optional[str] = None,
    ) -> None:
        if not columns:
            raise SchemaError(f"table {name!r} needs at least one column")
        self.name = name
        self.columns: Tuple[Column, ...] = tuple(columns)
        lowered = [c.name.lower() for c in columns]
        if len(set(lowered)) != len(lowered):
            raise SchemaError(f"table {name!r} has duplicate column names")
        self._index: Dict[str, int] = {low: i for i, low in enumerate(lowered)}
        if primary_key is not None:
            if primary_key.lower() not in self._index:
                raise SchemaError(
                    f"primary key {primary_key!r} is not a column of {name!r}"
                )
        self.primary_key = primary_key

    @property
    def column_names(self) -> List[str]:
        return [c.name for c in self.columns]

    @property
    def arity(self) -> int:
        return len(self.columns)

    def has_column(self, name: str) -> bool:
        return name.lower() in self._index

    def column_position(self, name: str) -> int:
        try:
            return self._index[name.lower()]
        except KeyError:
            raise SchemaError(f"table {self.name!r} has no column {name!r}") from None

    def column(self, name: str) -> Column:
        return self.columns[self.column_position(name)]

    def validate_row(self, values: Sequence[Any]) -> Tuple[Any, ...]:
        """Type-check a full row (positional) and return it as a tuple."""
        if len(values) != self.arity:
            raise SchemaError(
                f"table {self.name!r} expects {self.arity} values, got {len(values)}"
            )
        out = []
        for column, value in zip(self.columns, values):
            checked = column.dtype.validate(value)
            if checked is None and column.not_null:
                raise SchemaError(
                    f"column {self.name}.{column.name} is NOT NULL but got NULL"
                )
            out.append(checked)
        return tuple(out)

    def row_from_mapping(self, mapping: Dict[str, Any]) -> Tuple[Any, ...]:
        """Build a positional row from a column->value mapping; missing
        columns become NULL."""
        lowered = {k.lower(): v for k, v in mapping.items()}
        unknown = set(lowered) - set(self._index)
        if unknown:
            raise SchemaError(f"unknown columns for {self.name!r}: {sorted(unknown)}")
        values = [lowered.get(c.name.lower()) for c in self.columns]
        return self.validate_row(values)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        cols = ", ".join(f"{c.name} {c.dtype.value}" for c in self.columns)
        return f"TableSchema({self.name}: {cols})"
