"""Columnar building blocks: column vectors and row batches.

Tables store their data as an array of columns (:class:`ColumnStore`):
one plain Python list per column as the authoritative representation,
plus two lazily-built caches per column where they pay off —

* a numpy array (INT/FLOAT/BOOL columns with no NULLs), used by the
  vectorized expression paths and sliced zero-copy into scan batches;
* a lowercased copy of TEXT columns, used by the vectorized ``CONTAINS``
  predicate (the paper's ``desc.ct('kw')``), whose per-row
  ``str.lower()`` otherwise dominates keyword scans.

numpy is strictly optional: when it is not installed (or disabled via
``REPRO_NO_NUMPY=1``) every path falls back to the list representation
with identical results — the differential harness runs in both
configurations.

The authoritative values are always the Python objects the schema
validated: anything that leaves the columnar domain (row tuples, digest
input, snapshot rows) is converted back via ``ndarray.tolist()``, so no
numpy scalar ever leaks into results, hashes, or ``repr`` output.

A :class:`Batch` is a horizontal slice of an operator's output: one
column per :class:`~repro.relational.expressions.RowLayout` entry, each
either a Python list or a numpy array.  Invariant: a numpy-backed batch
column never contains NULLs (it can only originate from a NULL-free
table column).
"""

from __future__ import annotations

import os
from itertools import compress
from typing import Any, Callable, List, Optional, Sequence, Tuple, Union

from repro.relational.types import DataType

if os.environ.get("REPRO_NO_NUMPY", "") not in ("", "0"):
    np = None  # type: ignore[assignment]
else:
    try:
        import numpy as np  # type: ignore[import-not-found]
    except ImportError:  # pragma: no cover - exercised by the no-numpy CI leg
        np = None  # type: ignore[assignment]

HAVE_NUMPY = np is not None

#: Rows per batch.  Large enough that per-batch Python overhead is
#: negligible, small enough that intermediate batches stay cache-sized.
BATCH_SIZE = 4096

_NUMPY_DTYPES = {DataType.INT: "int64", DataType.FLOAT: "float64", DataType.BOOL: "bool"}

ColumnValues = Union[list, "np.ndarray"]


def is_ndarray(values: Any) -> bool:
    return HAVE_NUMPY and isinstance(values, np.ndarray)


def to_pylist(values: ColumnValues) -> list:
    """A Python list of Python scalars (identity for list columns)."""
    if is_ndarray(values):
        return values.tolist()
    return values


def take_column(values: ColumnValues, indices: Sequence[int]) -> ColumnValues:
    """Gather ``values[i]`` for each index, staying numpy-backed when the
    input is."""
    if is_ndarray(values):
        return values[np.asarray(indices, dtype="int64")] if len(indices) else values[:0]
    return [values[i] for i in indices]


def compact_column(values: ColumnValues, keep: ColumnValues) -> ColumnValues:
    """Keep the entries whose ``keep`` flag is true.  ``keep`` is a bool
    list or a numpy bool array of the same length."""
    if is_ndarray(values):
        if is_ndarray(keep):
            return values[keep]
        return values[np.asarray(keep, dtype=bool)]
    if is_ndarray(keep):
        keep = keep.tolist()
    return list(compress(values, keep))


class Batch:
    """A slice of rows in column-major form.

    ``lowered`` optionally maps a column position to a lowercased copy
    of that (TEXT) column, provided by table scans from the table-level
    cache.  It is only propagated while row alignment with the source
    table is preserved (i.e. on scan-fresh batches); any compaction or
    join drops it.
    """

    __slots__ = ("columns", "length", "lowered")

    def __init__(
        self,
        columns: List[ColumnValues],
        length: int,
        lowered: Optional[Callable[[int], Optional[list]]] = None,
    ) -> None:
        self.columns = columns
        self.length = length
        self.lowered = lowered

    @classmethod
    def from_rows(cls, rows: Sequence[Tuple[Any, ...]], arity: int) -> "Batch":
        if not rows:
            return cls([[] for _ in range(arity)], 0)
        return cls([list(col) for col in zip(*rows)], len(rows))

    def to_rows(self) -> List[Tuple[Any, ...]]:
        """Materialize row tuples of plain Python values."""
        if self.length == 0:
            return []
        return list(zip(*(to_pylist(col) for col in self.columns)))

    def compact(self, keep: ColumnValues, kept: int) -> "Batch":
        """A new batch with only the rows whose ``keep`` flag is true
        (``kept`` is their count, pre-computed by the caller)."""
        return Batch([compact_column(col, keep) for col in self.columns], kept)

    def take(self, indices: Sequence[int]) -> "Batch":
        return Batch([take_column(col, indices) for col in self.columns], len(indices))

    def __len__(self) -> int:
        return self.length

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Batch({len(self.columns)} cols x {self.length} rows)"


class ColumnStore:
    """Array-of-columns storage for one table.

    Appends go to the per-column Python lists; the numpy and lowercase
    caches are invalidated on any append and rebuilt lazily on next use
    (the workload is bulk-load-then-query, so rebuilds are rare).
    """

    __slots__ = ("dtypes", "columns", "length", "version", "_arrays", "_lowered")

    _UNSET = object()

    def __init__(self, dtypes: Sequence[DataType]) -> None:
        self.dtypes: Tuple[DataType, ...] = tuple(dtypes)
        self.columns: List[list] = [[] for _ in self.dtypes]
        self.length = 0
        #: Bumped on every data change; consumed by the SQL engine's
        #: prepared-statement cache invalidation.
        self.version = 0
        self._arrays: List[Any] = [self._UNSET] * len(self.dtypes)
        self._lowered: List[Any] = [self._UNSET] * len(self.dtypes)

    # -- Mutation ----------------------------------------------------------
    def append_row(self, row: Sequence[Any]) -> None:
        for column, value in zip(self.columns, row):
            column.append(value)
        self.length += 1
        self._invalidate()

    def extend_rows(self, rows) -> int:
        """Append many rows (any iterable of sequences); returns count."""
        before = self.length
        columns = self.columns
        for row in rows:
            for column, value in zip(columns, row):
                column.append(value)
            self.length += 1
        self._invalidate()
        return self.length - before

    def _invalidate(self) -> None:
        self.version += 1
        for i in range(len(self._arrays)):
            self._arrays[i] = self._UNSET
            self._lowered[i] = self._UNSET

    # -- Caches ------------------------------------------------------------
    def array(self, position: int) -> Optional["np.ndarray"]:
        """The numpy array for a column, or None when not representable
        (numpy absent, TEXT column, NULLs present, or int64 overflow)."""
        cached = self._arrays[position]
        if cached is not self._UNSET:
            return cached
        array = None
        dtype = _NUMPY_DTYPES.get(self.dtypes[position]) if HAVE_NUMPY else None
        if dtype is not None:
            values = self.columns[position]
            if not any(v is None for v in values):
                try:
                    array = np.array(values, dtype=dtype)
                except (OverflowError, TypeError, ValueError):
                    array = None
        self._arrays[position] = array
        return array

    def lowered(self, position: int) -> Optional[list]:
        """Lowercased copy of a TEXT column (None entries preserved), or
        None for non-TEXT columns."""
        cached = self._lowered[position]
        if cached is not self._UNSET:
            return cached
        lowered = None
        if self.dtypes[position] is DataType.TEXT:
            lowered = [v if v is None else v.lower() for v in self.columns[position]]
        self._lowered[position] = lowered
        return lowered

    # -- Access ------------------------------------------------------------
    def column_values(self, position: int) -> list:
        return self.columns[position]

    def slice_columns(self, start: int, stop: int) -> List[ColumnValues]:
        """One batch worth of columns; numpy-backed columns are sliced
        as (zero-copy) array views."""
        out: List[ColumnValues] = []
        for position, values in enumerate(self.columns):
            array = self.array(position)
            if array is not None:
                out.append(array[start:stop])
            else:
                out.append(values[start:stop])
        return out

    def take_columns(self, row_positions: Sequence[int]) -> List[ColumnValues]:
        """Gather the given rows (by position) as one batch worth of
        columns; numpy-cached columns gather via fancy indexing."""
        out: List[ColumnValues] = []
        for position, values in enumerate(self.columns):
            array = self.array(position)
            if array is not None:
                out.append(take_column(array, row_positions))
            else:
                out.append([values[i] for i in row_positions])
        return out

    def row_at(self, position: int) -> Tuple[Any, ...]:
        return tuple(column[position] for column in self.columns)

    def iter_rows(self):
        return zip(*self.columns) if self.columns else iter(())


class RowsView(Sequence):
    """Row-facing adapter over a :class:`ColumnStore`.

    Presents the pre-refactor ``Table.rows`` contract — ``len``,
    iteration, integer/slice indexing, equality — while the storage
    underneath is columnar.  Tuples are built on demand; iteration goes
    through one C-level ``zip`` over the columns.
    """

    __slots__ = ("_store",)

    def __init__(self, store: ColumnStore) -> None:
        self._store = store

    def __len__(self) -> int:
        return self._store.length

    def __iter__(self):
        return self._store.iter_rows()

    def __getitem__(self, item):
        if isinstance(item, slice):
            columns = [col[item] for col in self._store.columns]
            return [tuple(row) for row in zip(*columns)] if columns else []
        return self._store.row_at(
            item if item >= 0 else self._store.length + item
        )

    def __eq__(self, other: object) -> bool:
        if isinstance(other, RowsView):
            return self._store.columns == other._store.columns
        if isinstance(other, list):
            return list(self) == other
        return NotImplemented

    def __ne__(self, other: object) -> bool:
        result = self.__eq__(other)
        return result if result is NotImplemented else not result

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RowsView({len(self)} rows)"
