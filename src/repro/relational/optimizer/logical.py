"""Logical representation of a select-project-join block.

The optimizer works on one SPJ block at a time: a set of base relations
(each with its local predicates already pushed down) plus the join
conjuncts connecting them.  DISTINCT / ORDER BY / FETCH FIRST live above
the block and are handled by the planner, which may exploit a block
output order (an "interesting order", Section 5.4.1) to avoid sorting.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.errors import OptimizerError
from repro.relational.expressions import (
    ColumnRef,
    Expression,
    as_equijoin,
    referenced_aliases,
    split_conjuncts,
)


@dataclass
class BaseRelation:
    """One FROM-list entry: a stored table under an alias, with the local
    (single-relation) predicates that apply to it."""

    table: str
    alias: str
    local_predicates: List[Expression] = field(default_factory=list)

    def __post_init__(self) -> None:
        self.alias = self.alias.lower()


@dataclass
class SPJBlock:
    """A join block: relations + cross-relation conjuncts."""

    relations: List[BaseRelation]
    join_conjuncts: List[Expression] = field(default_factory=list)

    def __post_init__(self) -> None:
        aliases = [r.alias for r in self.relations]
        if len(set(aliases)) != len(aliases):
            raise OptimizerError(f"duplicate aliases in block: {aliases}")

    @property
    def aliases(self) -> List[str]:
        return [r.alias for r in self.relations]

    def relation(self, alias: str) -> BaseRelation:
        for rel in self.relations:
            if rel.alias == alias.lower():
                return rel
        raise OptimizerError(f"unknown alias {alias!r}")

    def alias_tables(self) -> Dict[str, str]:
        return {r.alias: r.table for r in self.relations}


def build_block(
    relations: Sequence[Tuple[str, str]],
    where_conjuncts: Sequence[Expression],
) -> SPJBlock:
    """Distribute WHERE conjuncts over a FROM list.

    A conjunct referencing a single alias (or no alias — unqualified
    references are treated as single-relation only when exactly one
    relation could own them, which the binder guarantees) becomes a
    local predicate; conjuncts spanning two or more aliases become join
    conjuncts.
    """
    base = [BaseRelation(table=t, alias=a) for t, a in relations]
    by_alias = {r.alias: r for r in base}
    block = SPJBlock(relations=base)
    for conjunct in where_conjuncts:
        aliases = referenced_aliases(conjunct)
        if len(aliases) == 1:
            alias = next(iter(aliases))
            if alias not in by_alias:
                raise OptimizerError(f"conjunct references unknown alias {alias!r}")
            by_alias[alias].local_predicates.append(conjunct)
        elif len(aliases) == 0:
            # Constant predicate; attach to the first relation (it will
            # be evaluated once per row, semantically equivalent).
            base[0].local_predicates.append(conjunct)
        else:
            block.join_conjuncts.append(conjunct)
    return block


@dataclass(frozen=True)
class EquiJoinEdge:
    """An equi-join conjunct viewed as an edge of the join graph."""

    left_alias: str
    left_column: str
    right_alias: str
    right_column: str
    conjunct: Expression


def equi_edges(block: SPJBlock) -> List[EquiJoinEdge]:
    """Extract the equi-join edges from a block's join conjuncts."""
    edges: List[EquiJoinEdge] = []
    for conjunct in block.join_conjuncts:
        pair = as_equijoin(conjunct)
        if pair is None:
            continue
        left, right = pair
        edges.append(
            EquiJoinEdge(
                left_alias=left.qualifier,
                left_column=left.name,
                right_alias=right.qualifier,
                right_column=right.name,
                conjunct=conjunct,
            )
        )
    return edges


def connected_subsets(block: SPJBlock) -> bool:
    """Is the join graph connected (no cartesian products required)?"""
    aliases = set(block.aliases)
    if len(aliases) <= 1:
        return True
    adjacency: Dict[str, Set[str]] = {a: set() for a in aliases}
    for conjunct in block.join_conjuncts:
        refs = referenced_aliases(conjunct) & aliases
        refs = set(refs)
        for a in refs:
            adjacency[a] |= refs - {a}
    seen = set()
    stack = [next(iter(aliases))]
    while stack:
        a = stack.pop()
        if a in seen:
            continue
        seen.add(a)
        stack.extend(adjacency[a] - seen)
    return seen == aliases
