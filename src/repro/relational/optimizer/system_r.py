"""System-R style bottom-up join enumeration (Section 5.4.1).

Dynamic programming over alias subsets, keeping the least-cost plan per
*interesting order* — exactly the framework of Selinger et al. ([24] in
the paper) that Section 5.4 extends.  Physical alternatives considered:

* access paths: heap scan, hash-index probe (constant equality), and
  ordered-index scan (which *creates* an interesting order);
* joins: hash join, index nested-loops, sort-merge (which creates the
  join-key order), and block nested-loops for predicate-less or theta
  splits.

The DGJ-specific extension (the early-termination property and its cost
model) lives in :mod:`repro.relational.optimizer.dgj_cost` and in the
planner's choice between a regular plan and a DGJ stack; this module is
deliberately a faithful *regular* System-R optimizer, because the paper
compares against exactly that baseline (Figure 14).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Callable, Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro.errors import OptimizerError
from repro.relational.database import Database
from repro.relational.expressions import (
    ColumnRef,
    Comparison,
    Expression,
    Literal,
    conjoin,
    referenced_aliases,
)
from repro.relational.operators import (
    Filter,
    HashIndexScan,
    HashJoin,
    IndexNestedLoopJoin,
    NestedLoopJoin,
    Operator,
    OrderedIndexScan,
    SeqScan,
    SortMergeJoin,
)
from repro.relational.optimizer import cost as C
from repro.relational.optimizer.logical import BaseRelation, EquiJoinEdge, SPJBlock, equi_edges
from repro.relational.statistics import StatsCatalog

# An interesting order: (alias, column, descending).
OrderSpec = Tuple[str, str, bool]


@dataclass
class PhysicalCandidate:
    """A costed physical plan for some alias subset."""

    cost: float
    est_rows: float
    order: Optional[OrderSpec]
    build: Callable[[], Operator]
    description: str


class SystemROptimizer:
    """Cost-based optimizer for one SPJ block."""

    def __init__(self, database: Database, stats: StatsCatalog) -> None:
        self.database = database
        self.stats = stats

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def optimize(
        self,
        block: SPJBlock,
        desired_order: Optional[OrderSpec] = None,
    ) -> PhysicalCandidate:
        """Return the least-cost candidate for the whole block.

        When ``desired_order`` is given, a candidate already producing
        that order is preferred if its cost beats the best unordered
        candidate plus the sort it would need (the planner adds the
        explicit sort in that case).
        """
        table = self._enumerate(block)
        full = frozenset(block.aliases)
        candidates = table[full]
        if not candidates:
            raise OptimizerError("no plan found for block")
        best_any = min(candidates.values(), key=lambda c: c.cost)
        if desired_order is None:
            return best_any
        ordered = candidates.get(desired_order)
        if ordered is None:
            return best_any
        sort_penalty = C.sort_cost(best_any.est_rows)
        if ordered.cost <= best_any.cost + sort_penalty:
            return ordered
        return best_any

    def candidates_for_block(self, block: SPJBlock) -> Dict[Optional[OrderSpec], PhysicalCandidate]:
        """All retained candidates for the full block, keyed by order."""
        table = self._enumerate(block)
        return table[frozenset(block.aliases)]

    # ------------------------------------------------------------------
    # Estimation helpers
    # ------------------------------------------------------------------
    def _local_selectivity(self, rel: BaseRelation) -> float:
        if not rel.local_predicates:
            return 1.0
        pred = conjoin(rel.local_predicates)
        return self.stats.predicate_selectivity(pred, {rel.alias: rel.table})

    def _conjunct_selectivity(self, conjunct: Expression, block: SPJBlock) -> float:
        alias_tables = block.alias_tables()
        from repro.relational.expressions import as_equijoin

        pair = as_equijoin(conjunct)
        if pair is not None:
            left, right = pair
            return self.stats.join_selectivity(
                alias_tables[left.qualifier],
                left.name,
                alias_tables[right.qualifier],
                right.name,
            )
        return self.stats.predicate_selectivity(conjunct, alias_tables)

    def _subset_rows(
        self, subset: FrozenSet[str], block: SPJBlock, base_rows: Dict[str, float]
    ) -> float:
        rows = 1.0
        for alias in subset:
            rows *= base_rows[alias]
        for conjunct in block.join_conjuncts:
            refs = referenced_aliases(conjunct)
            if refs and refs <= subset and len(refs) >= 2:
                rows *= self._conjunct_selectivity(conjunct, block)
        return max(rows, 0.0)

    # ------------------------------------------------------------------
    # Access paths
    # ------------------------------------------------------------------
    def _access_paths(self, rel: BaseRelation) -> List[PhysicalCandidate]:
        table = self.database.table(rel.table)
        alias = rel.alias
        stats = self.stats
        n = float(stats.row_count(rel.table))
        sel = self._local_selectivity(rel)
        est = n * sel
        preds = list(rel.local_predicates)
        pred = conjoin(preds)
        db = self.database
        out: List[PhysicalCandidate] = []

        def with_filter(op: Operator, predicate: Optional[Expression]) -> Operator:
            return Filter(op, predicate) if predicate is not None else op

        # 1. Sequential scan.
        scan_cost = n * C.ROW_COST + n * len(preds) * C.PRED_COST

        def build_seq(table=table, alias=alias, pred=pred) -> Operator:
            return with_filter(SeqScan(table, alias, db.stats), pred)

        out.append(
            PhysicalCandidate(scan_cost, est, None, build_seq, f"SeqScan({rel.table})")
        )

        # 2. Hash-index probe for a col = literal conjunct.
        for conjunct in preds:
            key_col, key_val = _constant_equality(conjunct, alias)
            if key_col is None:
                continue
            index = table.hash_index_on([key_col])
            if index is None:
                continue
            col_stats = stats.table_stats(rel.table).column(key_col)
            match_rows = n * (col_stats.eq_selectivity() if col_stats else 0.01)
            remaining = [c for c in preds if c is not conjunct]
            probe_cost = (
                C.INDEX_PROBE_COST
                + match_rows * C.ROW_COST
                + match_rows * len(remaining) * C.PRED_COST
            )

            def build_probe(
                table=table,
                alias=alias,
                index=index,
                key_val=key_val,
                remaining=tuple(remaining),
            ) -> Operator:
                return with_filter(
                    HashIndexScan(table, alias, index, key_val, db.stats),
                    conjoin(remaining),
                )

            out.append(
                PhysicalCandidate(
                    probe_cost,
                    est,
                    None,
                    build_probe,
                    f"HashIndexScan({rel.table}.{key_col})",
                )
            )

        # 3. Ordered-index scans (provide interesting orders).
        for index_name, sorted_index in table.sorted_indexes.items():
            column = table.schema.columns[sorted_index.column_position].name.lower()
            ordered_cost = (
                n * C.ROW_COST * C.ORDERED_SCAN_FACTOR + n * len(preds) * C.PRED_COST
            )
            for descending in (False, True):

                def build_ordered(
                    table=table,
                    alias=alias,
                    sorted_index=sorted_index,
                    descending=descending,
                    pred=pred,
                ) -> Operator:
                    return with_filter(
                        OrderedIndexScan(
                            table, alias, sorted_index, descending, stats=db.stats
                        ),
                        pred,
                    )

                out.append(
                    PhysicalCandidate(
                        ordered_cost,
                        est,
                        (alias, column, descending),
                        build_ordered,
                        f"OrderedIndexScan({rel.table}.{column}"
                        f"{' desc' if descending else ''})",
                    )
                )
        return out

    # ------------------------------------------------------------------
    # DP enumeration
    # ------------------------------------------------------------------
    def _enumerate(
        self, block: SPJBlock
    ) -> Dict[FrozenSet[str], Dict[Optional[OrderSpec], PhysicalCandidate]]:
        aliases = block.aliases
        base_rows = {
            rel.alias: max(
                1.0, self.stats.row_count(rel.table) * self._local_selectivity(rel)
            )
            for rel in block.relations
        }
        # Precompute per-conjunct metadata once: referenced aliases and
        # the equi-join decomposition (the DP touches these thousands of
        # times for wide chain queries).
        from repro.relational.expressions import as_equijoin

        conjunct_refs: List[Tuple[Expression, FrozenSet[str], object]] = [
            (c, frozenset(referenced_aliases(c)), as_equijoin(c))
            for c in block.join_conjuncts
        ]
        adjacency: Dict[str, set] = {a: set() for a in aliases}
        for _, refs, _pair in conjunct_refs:
            for a in refs:
                if a in adjacency:
                    adjacency[a] |= refs - {a}
        overall_connected = self._is_connected(frozenset(aliases), adjacency)

        table: Dict[FrozenSet[str], Dict[Optional[OrderSpec], PhysicalCandidate]] = {}
        for rel in block.relations:
            per_order: Dict[Optional[OrderSpec], PhysicalCandidate] = {}
            for cand in self._access_paths(rel):
                existing = per_order.get(cand.order)
                if existing is None or cand.cost < existing.cost:
                    per_order[cand.order] = cand
            table[frozenset([rel.alias])] = per_order

        for size in range(2, len(aliases) + 1):
            for combo in itertools.combinations(sorted(aliases), size):
                subset = frozenset(combo)
                # Connected subsets only (avoids cartesian intermediate
                # products); when the whole join graph is disconnected a
                # cross product is unavoidable and everything is kept.
                if overall_connected and not self._is_connected(subset, adjacency):
                    continue
                est_rows = self._subset_rows(subset, block, base_rows)
                per_order: Dict[Optional[OrderSpec], PhysicalCandidate] = {}
                splits = list(_splits(subset))
                connected = [
                    (l, r)
                    for l, r in splits
                    if self._spanning(conjunct_refs, l, r)
                ]
                usable = connected if connected else splits
                for left_set, right_set in usable:
                    if left_set not in table or right_set not in table:
                        continue
                    for cand in self._join_candidates(
                        block, table, left_set, right_set, est_rows, conjunct_refs
                    ):
                        existing = per_order.get(cand.order)
                        if existing is None or cand.cost < existing.cost:
                            per_order[cand.order] = cand
                if not per_order:
                    raise OptimizerError(f"no join plan for subset {sorted(subset)}")
                table[subset] = _prune(per_order)
        if frozenset(aliases) not in table:
            raise OptimizerError("no plan found for the full relation set")
        return table

    @staticmethod
    def _is_connected(subset: FrozenSet[str], adjacency: Dict[str, set]) -> bool:
        if len(subset) <= 1:
            return True
        seen = set()
        stack = [next(iter(subset))]
        while stack:
            node = stack.pop()
            if node in seen:
                continue
            seen.add(node)
            stack.extend((adjacency.get(node, set()) & subset) - seen)
        return seen == subset

    @staticmethod
    def _spanning(
        conjunct_refs: List[Tuple[Expression, FrozenSet[str], object]],
        left: FrozenSet[str],
        right: FrozenSet[str],
    ) -> bool:
        union = left | right
        for _, refs, _pair in conjunct_refs:
            if refs & left and refs & right and refs <= union:
                return True
        return False

    def _join_candidates(
        self,
        block: SPJBlock,
        table: Dict[FrozenSet[str], Dict[Optional[OrderSpec], PhysicalCandidate]],
        left_set: FrozenSet[str],
        right_set: FrozenSet[str],
        est_rows: float,
        conjunct_refs: List[Tuple[Expression, FrozenSet[str], object]],
    ) -> List[PhysicalCandidate]:
        subset = left_set | right_set
        spanning = [
            (c, pair)
            for c, refs, pair in conjunct_refs
            if refs & left_set and refs & right_set and refs <= subset
        ]
        edges: List[EquiJoinEdge] = []
        residual: List[Expression] = []
        for conjunct, pair in spanning:
            if pair is None:
                residual.append(conjunct)
                continue
            left_ref, right_ref = pair
            if left_ref.qualifier in left_set and right_ref.qualifier in right_set:
                edges.append(
                    EquiJoinEdge(
                        left_ref.qualifier, left_ref.name,
                        right_ref.qualifier, right_ref.name, conjunct,
                    )
                )
            elif right_ref.qualifier in left_set and left_ref.qualifier in right_set:
                edges.append(
                    EquiJoinEdge(
                        right_ref.qualifier, right_ref.name,
                        left_ref.qualifier, left_ref.name, conjunct,
                    )
                )
            else:
                residual.append(conjunct)

        left_cands = table[left_set]
        right_cands = table[right_set]
        best_left = min(left_cands.values(), key=lambda c: c.cost)
        best_right = min(right_cands.values(), key=lambda c: c.cost)
        residual_pred = conjoin(residual)
        out: List[PhysicalCandidate] = []

        if edges:
            left_keys = [(e.left_alias, e.left_column) for e in edges]
            right_keys = [(e.right_alias, e.right_column) for e in edges]

            # Hash join: build on the (cheapest) right, stream every
            # retained left candidate to preserve its order.
            for left_cand in left_cands.values():
                hj_cost = (
                    left_cand.cost
                    + best_right.cost
                    + best_right.est_rows * C.HASH_BUILD_COST
                    + left_cand.est_rows * C.HASH_PROBE_COST
                    + est_rows * C.OUTPUT_ROW_COST
                )

                def build_hash(
                    left_cand=left_cand,
                    right_cand=best_right,
                    left_keys=tuple(left_keys),
                    right_keys=tuple(right_keys),
                    residual_pred=residual_pred,
                ) -> Operator:
                    left_op = left_cand.build()
                    right_op = right_cand.build()
                    lpos = [left_op.layout.position(a, c) for a, c in left_keys]
                    rpos = [right_op.layout.position(a, c) for a, c in right_keys]
                    return HashJoin(left_op, right_op, lpos, rpos, residual_pred)

                out.append(
                    PhysicalCandidate(
                        hj_cost,
                        est_rows,
                        left_cand.order,
                        build_hash,
                        f"HashJoin({left_cand.description}, {best_right.description})",
                    )
                )

            # Index nested loops: right side must be a single relation
            # with a hash index on its join column(s).
            if len(right_set) == 1:
                inlj = self._inlj_candidate(
                    block, left_cands, right_set, edges, residual_pred, est_rows
                )
                out.extend(inlj)

            # Sort-merge join: produces left-key ascending order.
            first = edges[0]
            smj_cost = (
                best_left.cost
                + best_right.cost
                + C.sort_cost(best_left.est_rows)
                + C.sort_cost(best_right.est_rows)
                + (best_left.est_rows + best_right.est_rows) * C.ROW_COST
                + est_rows * C.OUTPUT_ROW_COST
            )

            def build_smj(
                left_cand=best_left,
                right_cand=best_right,
                left_keys=tuple(left_keys),
                right_keys=tuple(right_keys),
                residual_pred=residual_pred,
            ) -> Operator:
                left_op = left_cand.build()
                right_op = right_cand.build()
                lpos = [left_op.layout.position(a, c) for a, c in left_keys]
                rpos = [right_op.layout.position(a, c) for a, c in right_keys]
                return SortMergeJoin(left_op, right_op, lpos, rpos, residual_pred)

            out.append(
                PhysicalCandidate(
                    smj_cost,
                    est_rows,
                    (first.left_alias, first.left_column, False),
                    build_smj,
                    f"SortMergeJoin({best_left.description}, {best_right.description})",
                )
            )
        else:
            # No equi edge: block nested loops with the residual (theta
            # or cross) predicate.
            nlj_cost = (
                best_left.cost
                + best_right.cost
                + best_left.est_rows * best_right.est_rows * C.NLJ_PAIR_COST
                + est_rows * C.OUTPUT_ROW_COST
            )

            def build_nlj(
                left_cand=best_left,
                right_cand=best_right,
                residual_pred=residual_pred,
            ) -> Operator:
                return NestedLoopJoin(left_cand.build(), right_cand.build(), residual_pred)

            out.append(
                PhysicalCandidate(
                    nlj_cost,
                    est_rows,
                    best_left.order,
                    build_nlj,
                    f"NestedLoopJoin({best_left.description}, {best_right.description})",
                )
            )
        return out

    def _inlj_candidate(
        self,
        block: SPJBlock,
        left_cands: Dict[Optional[OrderSpec], PhysicalCandidate],
        right_set: FrozenSet[str],
        edges: List[EquiJoinEdge],
        residual_pred: Optional[Expression],
        est_rows: float,
    ) -> List[PhysicalCandidate]:
        alias = next(iter(right_set))
        rel = block.relation(alias)
        tab = self.database.table(rel.table)
        out: List[PhysicalCandidate] = []
        for probe_edge in edges:
            index = tab.hash_index_on([probe_edge.right_column])
            if index is None:
                continue
            other_edges = [e for e in edges if e is not probe_edge]
            extra = [e.conjunct for e in other_edges]
            all_residual = ([residual_pred] if residual_pred is not None else []) + extra
            all_residual.extend(rel.local_predicates)
            combined_residual = conjoin(all_residual)
            n_right = float(self.stats.row_count(rel.table))
            fanout = n_right * self.stats.join_selectivity(
                block.alias_tables()[probe_edge.left_alias],
                probe_edge.left_column,
                rel.table,
                probe_edge.right_column,
            )
            for left_cand in left_cands.values():
                inlj_cost = (
                    left_cand.cost
                    + left_cand.est_rows * C.INDEX_PROBE_COST
                    + left_cand.est_rows * fanout * C.ROW_COST
                    + est_rows * C.OUTPUT_ROW_COST
                )

                def build_inlj(
                    left_cand=left_cand,
                    tab=tab,
                    alias=alias,
                    index=index,
                    probe_edge=probe_edge,
                    combined_residual=combined_residual,
                ) -> Operator:
                    left_op = left_cand.build()
                    lpos = [
                        left_op.layout.position(
                            probe_edge.left_alias, probe_edge.left_column
                        )
                    ]
                    return IndexNestedLoopJoin(
                        left_op, tab, alias, index, lpos, combined_residual
                    )

                out.append(
                    PhysicalCandidate(
                        inlj_cost,
                        est_rows,
                        left_cand.order,
                        build_inlj,
                        f"INLJ({left_cand.description} -> {rel.table}.{probe_edge.right_column})",
                    )
                )
            break  # one probe edge is enough; others become residuals
        return out


def _constant_equality(
    conjunct: Expression, alias: str
) -> Tuple[Optional[str], Optional[object]]:
    """If ``conjunct`` is ``alias.col = literal`` (either side), return
    (column, value); else (None, None)."""
    if not isinstance(conjunct, Comparison) or conjunct.op != "=":
        return None, None
    left, right = conjunct.left, conjunct.right
    if isinstance(left, ColumnRef) and isinstance(right, Literal):
        ref, lit = left, right
    elif isinstance(right, ColumnRef) and isinstance(left, Literal):
        ref, lit = right, left
    else:
        return None, None
    if ref.qualifier not in (None, alias):
        return None, None
    return ref.name, lit.value


def _splits(subset: FrozenSet[str]):
    """Left-deep (outer composite, inner single-relation) partitions —
    the System R search space ([24]).  For two-relation subsets this
    yields both orientations."""
    for item in sorted(subset):
        right = frozenset([item])
        yield subset - right, right


def _prune(
    per_order: Dict[Optional[OrderSpec], PhysicalCandidate]
) -> Dict[Optional[OrderSpec], PhysicalCandidate]:
    """Drop ordered candidates that cost more than the best unordered
    candidate would cost *including a sort* — they can never win."""
    if None not in per_order:
        return per_order
    base = per_order[None]
    kept: Dict[Optional[OrderSpec], PhysicalCandidate] = {None: base}
    for order, cand in per_order.items():
        if order is None:
            continue
        if cand.cost <= base.cost + C.sort_cost(base.est_rows):
            kept[order] = cand
    return kept
