"""The paper's cost model for stacks of DGJ operators (Section 5.4.2,
5.4.3 and Appendix A).

Given a stack of ``n`` DGJ joins processing ``m`` groups (topologies) in
score order, with ``Card_i`` outer tuples per group, the model predicts
the expected cost of producing the top ``k`` distinct groups:

* **Lemma 1** — ``x_i``: probability that a tuple entering operator
  ``opr_i`` eventually yields a plan result.
* **Lemma 2** — ``delta_i``: expected index-probe cost charged for a
  tuple entering ``opr_i`` that does not yield a result.
* **Theorem 2** — ``np_i = (1 - x_1)^{Card_i}``: probability a group
  produces no result at all.
* **Theorem 3** — ``nc_i = np_i * Card_i * delta_1``: expected cost
  contribution of exhausting a group fruitlessly.
* **Theorem 4** — ``ec_i``: expected cost of reaching the group's first
  result.
* **Theorem 1** — a dynamic program combining these into
  ``E[Z^k_{1:m}]``, the expected cost of finding ``k`` results over
  groups ``1..m``.

Two corrections to the paper's formulas as printed (both are evident
typos; the proofs' prose states the intended quantities):

1. Lemma 1 prints ``x_{n+1} = 0``; a tuple that survives the last join
   *is* a result, so the base case must be ``x_{n+1} = 1`` (with 0 the
   recurrence collapses to all-zero).
2. The binomial probabilities omit the binomial coefficient
   ``C(s_i N_i, j)``; we use the coefficient-free closed forms of the
   expectations, which is what the proofs actually manipulate.
3. Theorem 4 prints ``rho_l`` where its own proof text says "the
   probability that the jth tuple is a result", i.e. ``x_l``.

These choices are validated against Monte-Carlo simulation of plan
execution in ``tests/relational/test_dgj_cost_montecarlo.py``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple


@dataclass(frozen=True)
class DgjLevel:
    """Statistics for the i-th DGJ join in the stack (Section 5.4.3).

    relation_rows
        ``N_i`` — cardinality of the inner relation joined at this level.
    probe_cost
        ``I_i`` — cost of one index probe on the inner relation.
    local_selectivity
        ``rho_i`` — selectivity of the local predicate on the inner
        relation (fraction of joined tuples surviving the filter).
    join_selectivity
        ``s_i`` — join selectivity; ``s_i * N_i`` is the expected
        fan-out of one outer tuple into the inner relation.
    """

    relation_rows: float
    probe_cost: float
    local_selectivity: float
    join_selectivity: float

    @property
    def fanout(self) -> float:
        """Expected number of inner tuples joined per outer tuple."""
        return max(0.0, self.join_selectivity * self.relation_rows)

    @property
    def surviving_fanout(self) -> float:
        """Fan-out surviving the local predicate."""
        return self.fanout * self.local_selectivity


def result_probabilities(levels: Sequence[DgjLevel]) -> List[float]:
    """Lemma 1: ``x_i`` for i = 1..n+1 (returned list is 1-indexed via
    position 0 = x_1, ..., position n = x_{n+1} = 1).

    We use the expectation-level closed form: an outer tuple at level i
    joins with ``fanout_i`` inner tuples; each survives the local filter
    with probability ``rho_i`` and then is a result with probability
    ``x_{i+1}``, independently.  Hence
    ``x_i = 1 - (1 - rho_i * x_{i+1}) ^ fanout_i``.
    """
    n = len(levels)
    xs = [0.0] * (n + 1)
    xs[n] = 1.0  # x_{n+1}: a tuple past the last join is a result
    for i in range(n - 1, -1, -1):
        level = levels[i]
        p_child = level.local_selectivity * xs[i + 1]
        p_child = min(1.0, max(0.0, p_child))
        fanout = level.fanout
        if fanout <= 0.0 or p_child <= 0.0:
            xs[i] = 0.0
        else:
            xs[i] = 1.0 - (1.0 - p_child) ** fanout
    return xs


def probe_costs(levels: Sequence[DgjLevel]) -> List[float]:
    """Lemma 2: ``delta_i`` for i = 1..n+1 (position n = delta_{n+1} = 0).

    ``delta_i = I_i + rho_i * fanout_i * delta_{i+1}`` — one probe at
    this level plus the expected surviving fan-out each recursively
    charged at the next level.
    """
    n = len(levels)
    deltas = [0.0] * (n + 1)
    for i in range(n - 1, -1, -1):
        level = levels[i]
        deltas[i] = level.probe_cost + level.surviving_fanout * deltas[i + 1]
    return deltas


def _geometric_sums(x: float, h: float) -> Tuple[float, float]:
    """Closed forms used by Theorem 4, for q = 1 - x:

    ``S0 = sum_{j=1..h} x q^{j-1}        = 1 - q^h``
    ``S1 = sum_{j=1..h} x q^{j-1} (j-1)  = (q - q^h (x h + q)) / x``

    ``h`` may be fractional (expected fan-outs are expectations).
    """
    if x <= 0.0 or h <= 0.0:
        return 0.0, 0.0
    if x >= 1.0:
        return 1.0, 0.0
    q = 1.0 - x
    qh = q**h
    s0 = 1.0 - qh
    s1 = (q - qh * (x * h + q)) / x
    return s0, max(0.0, s1)


def _ec_level(
    levels: Sequence[DgjLevel],
    xs: Sequence[float],
    deltas: Sequence[float],
    level_index: int,
    h: float,
) -> float:
    """``EC^{l:n}_h`` (Theorem 4): expected cost for the stack starting
    at level ``l`` (0-based ``level_index``) to find the first result
    among ``h`` input tuples."""
    n = len(levels)
    if level_index >= n or h <= 0.0:
        return 0.0
    level = levels[level_index]
    x_l = xs[level_index]
    s0, s1 = _geometric_sums(x_l, h)
    downstream = _ec_level(levels, xs, deltas, level_index + 1, level.fanout)
    return s1 * deltas[level_index] + s0 * (level.probe_cost + downstream)


@dataclass(frozen=True)
class GroupParameters:
    """Per-group quantities of Section 5.4.2: ``np``, ``nc``, ``ec``."""

    no_result_probability: float
    no_result_cost: float
    first_result_cost: float


def group_parameters(
    levels: Sequence[DgjLevel],
    cardinalities: Sequence[float],
) -> List[GroupParameters]:
    """Theorems 2-4: compute (np_i, nc_i, ec_i) for each group from the
    stack statistics and the group cardinalities ``Card_i``."""
    xs = result_probabilities(levels)
    deltas = probe_costs(levels)
    x1 = xs[0] if levels else 1.0
    delta1 = deltas[0] if levels else 0.0
    params: List[GroupParameters] = []
    for card in cardinalities:
        card = max(0.0, card)
        np_i = (1.0 - x1) ** card if card > 0 else 1.0
        nc_i = np_i * card * delta1
        ec_i = _ec_level(levels, xs, deltas, 0, card)
        params.append(GroupParameters(np_i, nc_i, ec_i))
    return params


def expected_topk_cost(
    params: Sequence[GroupParameters],
    k: int,
) -> float:
    """Theorem 1: dynamic program for ``E[Z^k_{1:m}]``.

    ``E[Z^k_{l:m}] = ec_l + nc_l + (1 - np_l) E[Z^{k-1}_{l+1:m}]
    + np_l E[Z^k_{l+1:m}]``, with ``E = 0`` once ``k = 0`` or ``l > m``.
    """
    if k <= 0:
        return 0.0
    m = len(params)
    # previous[l] = E[Z^{kk-1}_{l+1:m}] during the sweep.
    previous = [0.0] * (m + 1)
    current = [0.0] * (m + 1)
    for _kk in range(1, k + 1):
        for l in range(m - 1, -1, -1):
            p = params[l]
            current[l] = (
                p.first_result_cost
                + p.no_result_cost
                + (1.0 - p.no_result_probability) * previous[l + 1]
                + p.no_result_probability * current[l + 1]
            )
        previous, current = current, previous
        for i in range(m + 1):
            current[i] = 0.0
    return previous[0]


def idgj_stack_cost(
    levels: Sequence[DgjLevel],
    cardinalities: Sequence[float],
    k: int,
) -> float:
    """End-to-end expected cost of an IDGJ stack answering a top-k
    distinct-group query — the quantity the optimizer compares against
    the regular plan's cost (Section 5.4)."""
    params = group_parameters(levels, cardinalities)
    return expected_topk_cost(params, k)


def hdgj_stack_cost(
    levels: Sequence[DgjLevel],
    cardinalities: Sequence[float],
    k: int,
    scan_row_cost: float = 1.0,
) -> float:
    """The "similar extension to HDGJ" (Section 5.4.2).

    HDGJ re-scans each inner relation once per processed group instead
    of index-probing per tuple.  We model the cost of processing group i
    as: materializing its ``Card_i`` outer tuples plus, per level, a
    scan of the inner relation — a full scan when the group yields no
    result, and an expected half scan when it does (the first witness is
    uniformly positioned).  The Theorem-1 dynamic program is reused with
    ``ec``/``nc`` replaced accordingly.
    """
    xs = result_probabilities(levels)
    x1 = xs[0] if levels else 1.0
    full_scan = sum(level.relation_rows * scan_row_cost for level in levels)
    params: List[GroupParameters] = []
    for card in cardinalities:
        card = max(0.0, card)
        np_i = (1.0 - x1) ** card if card > 0 else 1.0
        nc_i = np_i * (card + full_scan)
        ec_i = (1.0 - np_i) * (card + 0.5 * full_scan)
        params.append(GroupParameters(np_i, nc_i, ec_i))
    return expected_topk_cost(params, k)
