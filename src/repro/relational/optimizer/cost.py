"""Cost-model constants shared by the System-R enumerator and the DGJ
cost model.

All costs are abstract work units roughly proportional to "rows touched"
(1.0 = streaming one row through an operator).  Only *relative* costs
matter: the optimizer compares plans, it does not predict seconds.
"""

from __future__ import annotations

import math

# Streaming one row out of a scan.
ROW_COST = 1.0
# Evaluating one predicate against one row.
PRED_COST = 0.2
# One hash-index probe (bucket lookup + pointer chase).
INDEX_PROBE_COST = 2.0
# Inserting one row into a join hash table.
HASH_BUILD_COST = 1.5
# Probing a join hash table with one row.
HASH_PROBE_COST = 1.0
# One pair comparison in a nested-loops join.
NLJ_PAIR_COST = 0.6
# Emitting one joined/output row.
OUTPUT_ROW_COST = 0.5
# Per-row cost of duplicate elimination.
DISTINCT_ROW_COST = 0.8
# Ordered-index scans pay a small penalty over heap scans (pointer
# chasing in key order instead of sequential pages).
ORDERED_SCAN_FACTOR = 1.1


def sort_cost(rows: float) -> float:
    """Comparison-sort cost for ``rows`` input rows."""
    rows = max(rows, 1.0)
    return 1.2 * rows * math.log2(rows + 1.0)


def topn_cost(rows: float, n: int) -> float:
    """Heap-based top-N over ``rows`` input rows."""
    rows = max(rows, 1.0)
    return rows * (1.0 + 0.2 * math.log2(max(n, 2)))
