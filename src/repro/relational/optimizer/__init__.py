"""Cost-based optimization: System-R join enumeration plus the paper's
DGJ cost model (Section 5.4)."""

from repro.relational.optimizer.dgj_cost import (
    DgjLevel,
    GroupParameters,
    expected_topk_cost,
    group_parameters,
    hdgj_stack_cost,
    idgj_stack_cost,
    probe_costs,
    result_probabilities,
)
from repro.relational.optimizer.logical import (
    BaseRelation,
    EquiJoinEdge,
    SPJBlock,
    build_block,
    equi_edges,
)
from repro.relational.optimizer.system_r import (
    OrderSpec,
    PhysicalCandidate,
    SystemROptimizer,
)

__all__ = [
    "BaseRelation",
    "DgjLevel",
    "EquiJoinEdge",
    "GroupParameters",
    "OrderSpec",
    "PhysicalCandidate",
    "SPJBlock",
    "SystemROptimizer",
    "build_block",
    "equi_edges",
    "expected_topk_cost",
    "group_parameters",
    "hdgj_stack_cost",
    "idgj_stack_cost",
    "probe_costs",
    "result_probabilities",
]
