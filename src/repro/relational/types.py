"""Column data types for the relational substrate.

The engine supports the four types the Biozon-style workload needs:
integers (ids), floats (scores), text (descriptions, keywords), and
booleans.  SQL ``NULL`` is represented by Python ``None`` and is legal
in any column unless the column is declared ``not_null``.
"""

from __future__ import annotations

import enum
from typing import Any

from repro.errors import SchemaError


class DataType(enum.Enum):
    """Supported column types."""

    INT = "int"
    FLOAT = "float"
    TEXT = "text"
    BOOL = "bool"

    def validate(self, value: Any) -> Any:
        """Check (and mildly coerce) a Python value for this type.

        ``INT`` accepts ints; ``FLOAT`` accepts ints and floats (ints are
        widened); ``TEXT`` accepts str; ``BOOL`` accepts bool.  ``None``
        always passes (nullability is enforced at the schema level).
        """
        if value is None:
            return None
        if self is DataType.INT:
            if isinstance(value, bool) or not isinstance(value, int):
                raise SchemaError(f"expected INT, got {value!r}")
            return value
        if self is DataType.FLOAT:
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                raise SchemaError(f"expected FLOAT, got {value!r}")
            return float(value)
        if self is DataType.TEXT:
            if not isinstance(value, str):
                raise SchemaError(f"expected TEXT, got {value!r}")
            return value
        if self is DataType.BOOL:
            if not isinstance(value, bool):
                raise SchemaError(f"expected BOOL, got {value!r}")
            return value
        raise SchemaError(f"unknown type {self!r}")  # pragma: no cover


def comparable(left: Any, right: Any) -> bool:
    """Can two non-null runtime values be ordered against each other?"""
    if isinstance(left, bool) or isinstance(right, bool):
        return isinstance(left, bool) and isinstance(right, bool)
    if isinstance(left, (int, float)) and isinstance(right, (int, float)):
        return True
    return type(left) is type(right)
