"""SQL tokenizer for the subset used by the paper's queries."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional

from repro.errors import SqlSyntaxError

KEYWORDS = {
    "select", "distinct", "from", "where", "and", "or", "not", "exists",
    "union", "all", "order", "by", "asc", "desc", "fetch", "first", "rows",
    "row", "only", "limit", "as", "join", "inner", "on", "like", "in",
    "is", "null", "between", "contains", "true", "false",
}

SYMBOLS = ("<=", ">=", "<>", "!=", "=", "<", ">", "(", ")", ",", ".", "+", "-", "*", "/")


def sql_quote(value: object) -> str:
    """Render a Python value as a SQL literal.

    The inverse of this tokenizer's literal handling: embedded single
    quotes are escaped by doubling (``O'Brien`` -> ``'O''Brien'``), so
    any value round-trips through :func:`tokenize`.  Shared by every
    layer that emits SQL text (constraint rendering, the methods'
    generated statements) — never interpolate raw strings into quotes."""
    if value is None:
        return "NULL"
    if isinstance(value, bool):
        return "TRUE" if value else "FALSE"
    if isinstance(value, (int, float)):
        return repr(value)
    escaped = str(value).replace("'", "''")
    return f"'{escaped}'"


@dataclass(frozen=True)
class Token:
    """One lexical token.

    ``kind`` is one of: ``keyword``, ``ident``, ``number``, ``string``,
    ``symbol``, ``param``, ``end``.  ``value`` holds the normalized
    payload (keywords lowercased, numbers converted, strings unquoted).
    """

    kind: str
    value: object
    position: int

    def is_keyword(self, word: str) -> bool:
        return self.kind == "keyword" and self.value == word

    def is_symbol(self, symbol: str) -> bool:
        return self.kind == "symbol" and self.value == symbol


def tokenize(text: str) -> List[Token]:
    """Tokenize SQL text; raises :class:`SqlSyntaxError` on bad input."""
    tokens: List[Token] = []
    i, n = 0, len(text)
    while i < n:
        ch = text[i]
        if ch.isspace():
            i += 1
            continue
        if ch == "-" and i + 1 < n and text[i + 1] == "-":  # line comment
            while i < n and text[i] != "\n":
                i += 1
            continue
        if ch == "'":
            j = i + 1
            buf: List[str] = []
            while True:
                if j >= n:
                    raise SqlSyntaxError(f"unterminated string literal at {i}")
                if text[j] == "'":
                    if j + 1 < n and text[j + 1] == "'":  # escaped quote
                        buf.append("'")
                        j += 2
                        continue
                    break
                buf.append(text[j])
                j += 1
            tokens.append(Token("string", "".join(buf), i))
            i = j + 1
            continue
        if ch.isdigit():
            j = i
            seen_dot = False
            while j < n and (text[j].isdigit() or (text[j] == "." and not seen_dot)):
                if text[j] == ".":
                    # Don't swallow a trailing dot that belongs to syntax.
                    if j + 1 >= n or not text[j + 1].isdigit():
                        break
                    seen_dot = True
                j += 1
            literal = text[i:j]
            value: object = float(literal) if "." in literal else int(literal)
            tokens.append(Token("number", value, i))
            i = j
            continue
        if ch.isalpha() or ch == "_":
            j = i
            while j < n and (text[j].isalnum() or text[j] == "_"):
                j += 1
            word = text[i:j]
            lowered = word.lower()
            if lowered in KEYWORDS:
                tokens.append(Token("keyword", lowered, i))
            else:
                tokens.append(Token("ident", word, i))
            i = j
            continue
        if ch == ":":
            j = i + 1
            while j < n and (text[j].isalnum() or text[j] == "_"):
                j += 1
            if j == i + 1:
                raise SqlSyntaxError(f"dangling ':' at {i}")
            tokens.append(Token("param", text[i + 1 : j], i))
            i = j
            continue
        matched: Optional[str] = None
        for symbol in SYMBOLS:
            if text.startswith(symbol, i):
                matched = symbol
                break
        if matched is None:
            raise SqlSyntaxError(f"unexpected character {ch!r} at {i}")
        if matched == "!=":
            matched = "<>"
        tokens.append(Token("symbol", matched, i))
        i += len(matched)
    tokens.append(Token("end", None, n))
    return tokens
