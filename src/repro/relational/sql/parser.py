"""Recursive-descent parser for the SQL subset.

Supported grammar (enough for every query in the paper, SQL1-SQL6):

.. code-block:: text

    query      := core (UNION [ALL] core)*
                  [ORDER BY order (, order)*]
                  [FETCH FIRST n ROWS ONLY | LIMIT n]
    core       := SELECT [DISTINCT] item (, item)*
                  FROM tableref (, tableref | JOIN tableref ON expr)*
                  [WHERE expr]
    item       := * | expr [[AS] ident]
    tableref   := ident [[AS] ident]
    expr       := or-tree over comparisons, [NOT] EXISTS (query core),
                  CONTAINS(expr, expr), LIKE, IN (...), IS [NOT] NULL,
                  BETWEEN, arithmetic, literals, :params

Named parameters (``:name``) are substituted from the ``params`` mapping
at parse time, becoming literals.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.errors import SqlSyntaxError
from repro.relational.expressions import (
    And,
    Arith,
    ColumnRef,
    Comparison,
    Contains,
    Expression,
    InList,
    IsNull,
    Like,
    Literal,
    Neg,
    Not,
    Or,
)
from repro.relational.sql.ast import (
    ExistsExpr,
    OrderItem,
    Query,
    SelectCore,
    SelectItem,
    TableRef,
)
from repro.relational.sql.tokens import Token, tokenize


class Parser:
    """One-shot parser; use :func:`parse`."""

    def __init__(self, text: str, params: Optional[Dict[str, Any]] = None) -> None:
        self.tokens = tokenize(text)
        self.pos = 0
        self.params = params or {}

    # ------------------------------------------------------------------
    # Token helpers
    # ------------------------------------------------------------------
    def peek(self) -> Token:
        return self.tokens[self.pos]

    def advance(self) -> Token:
        token = self.tokens[self.pos]
        self.pos += 1
        return token

    def accept_keyword(self, word: str) -> bool:
        if self.peek().is_keyword(word):
            self.advance()
            return True
        return False

    def expect_keyword(self, word: str) -> None:
        if not self.accept_keyword(word):
            raise SqlSyntaxError(f"expected {word.upper()} near {self._context()}")

    def accept_symbol(self, symbol: str) -> bool:
        if self.peek().is_symbol(symbol):
            self.advance()
            return True
        return False

    def expect_symbol(self, symbol: str) -> None:
        if not self.accept_symbol(symbol):
            raise SqlSyntaxError(f"expected {symbol!r} near {self._context()}")

    def expect_ident(self) -> str:
        token = self.peek()
        if token.kind != "ident":
            raise SqlSyntaxError(f"expected identifier near {self._context()}")
        self.advance()
        return str(token.value)

    def expect_name(self) -> str:
        """An identifier in a position where keywords cannot occur (after
        a dot), so reserved words like ``desc`` are allowed — the Biozon
        Protein table really has a ``desc`` column."""
        token = self.peek()
        if token.kind not in ("ident", "keyword"):
            raise SqlSyntaxError(f"expected column name near {self._context()}")
        self.advance()
        return str(token.value)

    def _context(self) -> str:
        token = self.peek()
        return f"position {token.position} ({token.kind} {token.value!r})"

    # ------------------------------------------------------------------
    # Grammar
    # ------------------------------------------------------------------
    def parse_query(self) -> Query:
        cores = [self.parse_core()]
        union_all = False
        while self.accept_keyword("union"):
            union_all = self.accept_keyword("all")
            cores.append(self.parse_core())

        order_by: List[OrderItem] = []
        if self.accept_keyword("order"):
            self.expect_keyword("by")
            while True:
                expr = self.parse_expr()
                descending = False
                if self.accept_keyword("desc"):
                    descending = True
                elif self.accept_keyword("asc"):
                    descending = False
                order_by.append(OrderItem(expr, descending))
                if not self.accept_symbol(","):
                    break

        fetch_first: Optional[int] = None
        if self.accept_keyword("fetch"):
            self.expect_keyword("first")
            token = self.advance()
            if token.kind != "number" or not isinstance(token.value, int):
                raise SqlSyntaxError("FETCH FIRST expects an integer")
            fetch_first = token.value
            if not self.accept_keyword("rows"):
                self.accept_keyword("row")
            self.expect_keyword("only")
        elif self.accept_keyword("limit"):
            token = self.advance()
            if token.kind != "number" or not isinstance(token.value, int):
                raise SqlSyntaxError("LIMIT expects an integer")
            fetch_first = token.value

        if self.peek().kind != "end":
            raise SqlSyntaxError(f"unexpected trailing input near {self._context()}")
        return Query(cores, union_all, order_by, fetch_first)

    def parse_core(self) -> SelectCore:
        self.expect_keyword("select")
        distinct = self.accept_keyword("distinct")
        items = [self.parse_select_item()]
        while self.accept_symbol(","):
            items.append(self.parse_select_item())
        self.expect_keyword("from")
        tables: List[TableRef] = [self.parse_table_ref()]
        join_conjuncts: List[Expression] = []
        while True:
            if self.accept_symbol(","):
                tables.append(self.parse_table_ref())
                continue
            if self.peek().is_keyword("inner") or self.peek().is_keyword("join"):
                self.accept_keyword("inner")
                self.expect_keyword("join")
                tables.append(self.parse_table_ref())
                self.expect_keyword("on")
                join_conjuncts.append(self.parse_expr())
                continue
            break
        where: Optional[Expression] = None
        if self.accept_keyword("where"):
            where = self.parse_expr()
        for conjunct in join_conjuncts:
            where = conjunct if where is None else And([where, conjunct])
        return SelectCore(distinct, items, tables, where)

    def parse_select_item(self) -> SelectItem:
        if self.accept_symbol("*"):
            return SelectItem(expr=None, star=True)
        expr = self.parse_expr()
        alias: Optional[str] = None
        if self.accept_keyword("as"):
            alias = self.expect_ident()
        elif self.peek().kind == "ident":
            alias = self.expect_ident()
        return SelectItem(expr=expr, alias=alias)

    def parse_table_ref(self) -> TableRef:
        table = self.expect_ident()
        alias = table
        if self.accept_keyword("as"):
            alias = self.expect_ident()
        elif self.peek().kind == "ident":
            alias = self.expect_ident()
        return TableRef(table=table, alias=alias.lower())

    # -- Expressions -------------------------------------------------------
    def parse_expr(self) -> Expression:
        return self.parse_or()

    def parse_or(self) -> Expression:
        items = [self.parse_and()]
        while self.accept_keyword("or"):
            items.append(self.parse_and())
        return items[0] if len(items) == 1 else Or(items)

    def parse_and(self) -> Expression:
        items = [self.parse_not()]
        while self.accept_keyword("and"):
            items.append(self.parse_not())
        return items[0] if len(items) == 1 else And(items)

    def parse_not(self) -> Expression:
        if self.accept_keyword("not"):
            if self.peek().is_keyword("exists"):
                return self._parse_exists(negated=True)
            return Not(self.parse_not())
        if self.peek().is_keyword("exists"):
            return self._parse_exists(negated=False)
        return self.parse_predicate()

    def _parse_exists(self, negated: bool) -> Expression:
        self.expect_keyword("exists")
        self.expect_symbol("(")
        core = self.parse_core()
        self.expect_symbol(")")
        return ExistsExpr(core, negated)

    def parse_predicate(self) -> Expression:
        if self.peek().is_keyword("contains"):
            self.advance()
            self.expect_symbol("(")
            haystack = self.parse_expr()
            self.expect_symbol(",")
            needle = self.parse_expr()
            self.expect_symbol(")")
            return Contains(haystack, needle)
        left = self.parse_additive()
        token = self.peek()
        if token.kind == "symbol" and token.value in ("=", "<>", "<", "<=", ">", ">="):
            op = str(self.advance().value)
            right = self.parse_additive()
            return Comparison(op, left, right)
        if token.is_keyword("like"):
            self.advance()
            pattern_token = self.advance()
            if pattern_token.kind != "string":
                raise SqlSyntaxError("LIKE expects a string pattern")
            return Like(left, str(pattern_token.value))
        if token.is_keyword("not"):
            # col NOT LIKE / NOT IN / NOT BETWEEN
            self.advance()
            if self.accept_keyword("like"):
                pattern_token = self.advance()
                if pattern_token.kind != "string":
                    raise SqlSyntaxError("LIKE expects a string pattern")
                return Like(left, str(pattern_token.value), negated=True)
            if self.accept_keyword("in"):
                return self._parse_in(left, negated=True)
            raise SqlSyntaxError(f"unexpected NOT near {self._context()}")
        if token.is_keyword("in"):
            self.advance()
            return self._parse_in(left, negated=False)
        if token.is_keyword("is"):
            self.advance()
            negated = self.accept_keyword("not")
            self.expect_keyword("null")
            return IsNull(left, negated=negated)
        if token.is_keyword("between"):
            self.advance()
            low = self.parse_additive()
            self.expect_keyword("and")
            high = self.parse_additive()
            return And([Comparison(">=", left, low), Comparison("<=", left, high)])
        return left

    def _parse_in(self, left: Expression, negated: bool) -> Expression:
        self.expect_symbol("(")
        values: List[Any] = []
        while True:
            token = self.advance()
            if token.kind in ("number", "string"):
                values.append(token.value)
            elif token.kind == "param":
                values.append(self._param_value(token))
            elif token.is_keyword("true"):
                values.append(True)
            elif token.is_keyword("false"):
                values.append(False)
            else:
                raise SqlSyntaxError("IN list expects literals")
            if not self.accept_symbol(","):
                break
        self.expect_symbol(")")
        return InList(left, values, negated=negated)

    def parse_additive(self) -> Expression:
        left = self.parse_multiplicative()
        while True:
            token = self.peek()
            if token.kind == "symbol" and token.value in ("+", "-"):
                op = str(self.advance().value)
                left = Arith(op, left, self.parse_multiplicative())
            else:
                return left

    def parse_multiplicative(self) -> Expression:
        left = self.parse_primary()
        while True:
            token = self.peek()
            if token.kind == "symbol" and token.value in ("*", "/"):
                op = str(self.advance().value)
                left = Arith(op, left, self.parse_primary())
            else:
                return left

    def parse_primary(self) -> Expression:
        token = self.peek()
        if token.is_symbol("("):
            self.advance()
            inner = self.parse_expr()
            self.expect_symbol(")")
            return inner
        if token.is_symbol("-"):
            self.advance()
            return Neg(self.parse_primary())
        if token.kind == "number" or token.kind == "string":
            self.advance()
            return Literal(token.value)
        if token.kind == "param":
            self.advance()
            return Literal(self._param_value(token))
        if token.is_keyword("null"):
            self.advance()
            return Literal(None)
        if token.is_keyword("true"):
            self.advance()
            return Literal(True)
        if token.is_keyword("false"):
            self.advance()
            return Literal(False)
        if token.kind == "ident":
            name = self.expect_ident()
            if self.accept_symbol("."):
                column = self.expect_name()
                return ColumnRef(name, column)
            return ColumnRef(None, name)
        raise SqlSyntaxError(f"unexpected token near {self._context()}")

    def _param_value(self, token: Token) -> Any:
        name = str(token.value)
        if name not in self.params:
            raise SqlSyntaxError(f"missing value for parameter :{name}")
        return self.params[name]


def parse(text: str, params: Optional[Dict[str, Any]] = None) -> Query:
    """Parse SQL text into a :class:`Query` AST."""
    return Parser(text, params).parse_query()
