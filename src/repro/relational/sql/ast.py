"""SQL abstract syntax.

Scalar expressions reuse the runtime :mod:`repro.relational.expressions`
classes directly (the parser builds them); only the constructs that the
planner must transform get dedicated AST nodes here: SELECT cores,
queries, and (correlated) EXISTS placeholders.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Set, Tuple

from repro.relational.expressions import ColumnKey, Expression


@dataclass
class SelectItem:
    """One SELECT-list entry: an expression with an optional output
    alias; ``star=True`` means ``*`` (expanded by the planner)."""

    expr: Optional[Expression]
    alias: Optional[str] = None
    star: bool = False


@dataclass
class TableRef:
    """A FROM-list entry: table name plus alias (defaults to the name)."""

    table: str
    alias: str


@dataclass
class SelectCore:
    """One SELECT ... FROM ... WHERE ... block (no set ops / ordering)."""

    distinct: bool
    items: List[SelectItem]
    tables: List[TableRef]
    where: Optional[Expression]


@dataclass
class OrderItem:
    expr: Expression
    descending: bool


@dataclass
class Query:
    """A full statement: one or more cores combined with UNION [ALL],
    plus optional ORDER BY and FETCH FIRST k ROWS ONLY."""

    cores: List[SelectCore]
    union_all: bool = False
    order_by: List[OrderItem] = field(default_factory=list)
    fetch_first: Optional[int] = None


class ExistsExpr(Expression):
    """Placeholder for [NOT] EXISTS (subquery) inside a WHERE tree.

    Never bound directly: the planner decorrelates it into a hash
    semi/anti join (or evaluates it once when uncorrelated).  ``bind``
    therefore raises — reaching it means a planner bug.
    """

    def __init__(self, subquery: SelectCore, negated: bool) -> None:
        self.subquery = subquery
        self.negated = negated

    def bind(self, layout):  # pragma: no cover - defensive
        raise NotImplementedError(
            "EXISTS must be planned (decorrelated), not bound directly"
        )

    def column_refs(self) -> Set[ColumnKey]:
        # Refs inside the subquery are scoped there; for outer-tree
        # analysis an EXISTS contributes nothing directly.
        return set()

    def __repr__(self) -> str:
        return f"ExistsExpr(negated={self.negated})"
