"""SQL planner: bind names, decorrelate EXISTS, optimize, assemble.

The pipeline for one statement:

1. expand ``*`` items and qualify every unqualified column reference
   (binder role),
2. split WHERE into conjuncts; pull out ``[NOT] EXISTS`` conjuncts,
3. optimize the select-project-join block with the System-R enumerator
   (exploiting an ORDER BY column as a desired interesting order),
4. decorrelate each EXISTS into a hash semi/anti join on top (the
   paper's SQL1/SQL5 ``NOT EXISTS`` over ExcpTops takes this path),
5. add projection, DISTINCT, UNION, ORDER BY (skipped when the chosen
   plan already delivers the order), and FETCH FIRST.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.errors import SqlBindError, SqlError
from repro.relational.database import Database
from repro.relational.expressions import (
    And,
    Arith,
    ColumnRef,
    Comparison,
    Contains,
    Expression,
    InList,
    IsNull,
    Like,
    Literal,
    Neg,
    Not,
    Or,
    Row,
    RowLayout,
    as_equijoin,
    conjoin,
    referenced_aliases,
    split_conjuncts,
)
from repro.relational.operators import (
    Distinct,
    Filter,
    HashSemiJoin,
    Limit,
    Operator,
    Project,
    RowsSource,
    Sort,
    TopN,
    UnionAll,
)
from repro.relational.optimizer.logical import SPJBlock, build_block
from repro.relational.optimizer.system_r import OrderSpec, PhysicalCandidate, SystemROptimizer
from repro.relational.runtime import columnar_enabled
from repro.relational.sql.ast import ExistsExpr, OrderItem, Query, SelectCore, SelectItem
from repro.relational.sql.parser import parse
from repro.relational.statistics import StatsCatalog


@dataclass
class QueryResult:
    """Executed statement output: column names plus row tuples."""

    columns: List[str]
    rows: List[Row]

    def __iter__(self):
        return iter(self.rows)

    def __len__(self) -> int:
        return len(self.rows)

    def scalar(self) -> Any:
        """First column of the first row (None when empty)."""
        return self.rows[0][0] if self.rows else None

    def column(self, name: str) -> List[Any]:
        idx = [c.lower() for c in self.columns].index(name.lower())
        return [row[idx] for row in self.rows]


@dataclass
class PreparedPlan:
    """A parsed, bound, and optimized statement, ready to execute.

    ``build()`` assembles a *fresh* operator tree each call, so one
    prepared plan may be executed concurrently from many threads: every
    execution gets its own operator state, and the builders resolve
    ``Database.stats`` at build time, crediting work to the executing
    thread's counters.  Everything expensive (parsing, binding, the
    System-R enumeration) happened at prepare time; ``build()`` only
    replays the cheap physical-operator construction.  Uncorrelated
    EXISTS subqueries are deliberately (re)evaluated inside ``build()``
    so repeated executions behave exactly like repeated plannings.
    """

    columns: List[str]
    build: Callable[[], Operator]

    def run(self) -> List[Row]:
        return self.build().run()


@dataclass
class _PreparedCore:
    """One SELECT core's replayable pieces (pre-projection)."""

    build: Callable[[], Operator]
    entries: List[Tuple[str, str]]
    exprs: List[Expression]
    delivered: Optional[OrderSpec]


def _rewrite(expr: Expression, fn) -> Expression:
    """Rebuild an expression tree bottom-up, applying ``fn`` to each
    node after its children were rebuilt."""
    if isinstance(expr, And):
        node: Expression = And([_rewrite(i, fn) for i in expr.items])
    elif isinstance(expr, Or):
        node = Or([_rewrite(i, fn) for i in expr.items])
    elif isinstance(expr, Not):
        node = Not(_rewrite(expr.item, fn))
    elif isinstance(expr, Comparison):
        node = Comparison(expr.op, _rewrite(expr.left, fn), _rewrite(expr.right, fn))
    elif isinstance(expr, Contains):
        node = Contains(_rewrite(expr.haystack, fn), _rewrite(expr.needle, fn))
    elif isinstance(expr, Like):
        node = Like(_rewrite(expr.value, fn), expr.pattern, expr.negated)
    elif isinstance(expr, InList):
        node = InList(_rewrite(expr.value, fn), sorted(expr.options, key=repr), expr.negated)
    elif isinstance(expr, IsNull):
        node = IsNull(_rewrite(expr.value, fn), expr.negated)
    elif isinstance(expr, Arith):
        node = Arith(expr.op, _rewrite(expr.left, fn), _rewrite(expr.right, fn))
    elif isinstance(expr, Neg):
        node = Neg(_rewrite(expr.value, fn))
    else:
        node = expr
    return fn(node)


class Planner:
    """Builds executable operator trees for parsed queries."""

    def __init__(
        self,
        database: Database,
        stats: Optional[StatsCatalog] = None,
    ) -> None:
        self.database = database
        self.stats = stats if stats is not None else StatsCatalog(database)
        self.optimizer = SystemROptimizer(database, self.stats)

    # ------------------------------------------------------------------
    # Binding helpers
    # ------------------------------------------------------------------
    def _alias_schemas(self, core: SelectCore) -> Dict[str, Any]:
        seen: Dict[str, Any] = {}
        for ref in core.tables:
            if not self.database.has_table(ref.table):
                raise SqlBindError(f"unknown table {ref.table!r}")
            alias = ref.alias.lower()
            if alias in seen:
                raise SqlBindError(f"duplicate alias {alias!r}")
            seen[alias] = self.database.table(ref.table).schema
        return seen

    def _qualify(
        self,
        expr: Expression,
        alias_schemas: Dict[str, Any],
        outer_schemas: Optional[Dict[str, Any]] = None,
    ) -> Expression:
        """Resolve unqualified column references; verify qualified ones.
        References not resolvable locally but resolvable in
        ``outer_schemas`` are left qualified for correlation handling."""

        def fix(node: Expression) -> Expression:
            if isinstance(node, ExistsExpr):
                return node  # handled by the planner separately
            if not isinstance(node, ColumnRef):
                return node
            if node.qualifier is not None:
                if node.qualifier in alias_schemas:
                    if not alias_schemas[node.qualifier].has_column(node.name):
                        raise SqlBindError(f"unknown column {node.qualifier}.{node.name}")
                    return node
                if outer_schemas is not None and node.qualifier in outer_schemas:
                    if not outer_schemas[node.qualifier].has_column(node.name):
                        raise SqlBindError(f"unknown column {node.qualifier}.{node.name}")
                    return node
                raise SqlBindError(f"unknown alias {node.qualifier!r}")
            owners = [a for a, s in alias_schemas.items() if s.has_column(node.name)]
            if len(owners) == 1:
                return ColumnRef(owners[0], node.name)
            if len(owners) > 1:
                raise SqlBindError(f"ambiguous column {node.name!r}")
            if outer_schemas is not None:
                outer_owners = [
                    a for a, s in outer_schemas.items() if s.has_column(node.name)
                ]
                if len(outer_owners) == 1:
                    return ColumnRef(outer_owners[0], node.name)
                if len(outer_owners) > 1:
                    raise SqlBindError(f"ambiguous column {node.name!r}")
            raise SqlBindError(f"unknown column {node.name!r}")

        return _rewrite(expr, fix)

    # ------------------------------------------------------------------
    # Core planning
    # ------------------------------------------------------------------
    def _prepare_core(
        self,
        core: SelectCore,
        desired_order: Optional[OrderSpec] = None,
    ) -> _PreparedCore:
        """Bind and optimize one SELECT core, returning a replayable
        builder for the operator tree *before projection* plus the
        projected (alias, name) entries, projected expressions, and the
        block order the chosen plan delivers."""
        alias_schemas = self._alias_schemas(core)
        conjuncts: List[Expression] = []
        exists_nodes: List[ExistsExpr] = []
        for conjunct in split_conjuncts(core.where):
            if isinstance(conjunct, ExistsExpr):
                exists_nodes.append(conjunct)
                continue
            if _contains_exists(conjunct):
                raise SqlError("EXISTS is only supported as a top-level conjunct")
            conjuncts.append(self._qualify(conjunct, alias_schemas))

        block = build_block(
            [(t.table, t.alias) for t in core.tables],
            conjuncts,
        )
        candidate = self.optimizer.optimize(block, desired_order=desired_order)
        appliers = [
            self._prepare_exists(exists, alias_schemas) for exists in exists_nodes
        ]
        # Probe build purely for the layout (operator construction has
        # no side effects); EXISTS appliers never change the layout.
        layout = candidate.build().layout
        entries, exprs = self._projection(core, layout, alias_schemas)

        def build_core() -> Operator:
            op = candidate.build()
            for applier in appliers:
                op = applier(op)
            return op

        return _PreparedCore(build_core, entries, exprs, candidate.order)

    def _projection(
        self,
        core: SelectCore,
        layout: RowLayout,
        alias_schemas: Dict[str, Any],
    ) -> Tuple[List[Tuple[str, str]], List[Expression]]:
        entries: List[Tuple[str, str]] = []
        exprs: List[Expression] = []
        for i, item in enumerate(core.items):
            if item.star:
                for alias, name in layout.entries:
                    entries.append((alias, name))
                    exprs.append(ColumnRef(alias, name))
                continue
            expr = self._qualify(item.expr, alias_schemas)
            if item.alias is not None:
                name = item.alias.lower()
            elif isinstance(expr, ColumnRef):
                name = expr.name
            else:
                name = f"col{i + 1}"
            alias = expr.qualifier if isinstance(expr, ColumnRef) else ""
            entries.append((alias or "", name))
            exprs.append(expr)
        if not entries:
            raise SqlError("empty select list")
        return entries, exprs

    def _prepare_exists(
        self,
        exists: ExistsExpr,
        outer_schemas: Dict[str, Any],
    ) -> Callable[[Operator], Operator]:
        """Bind and optimize one ``[NOT] EXISTS`` conjunct, returning an
        applier that wraps the per-execution decorrelation around a
        freshly built outer operator tree."""
        sub = exists.subquery
        sub_schemas = self._alias_schemas(sub)
        overlap = set(sub_schemas) & set(outer_schemas)
        if overlap:
            raise SqlError(f"subquery reuses outer aliases: {sorted(overlap)}")

        local: List[Expression] = []
        corr: List[Tuple[ColumnRef, ColumnRef]] = []  # (outer ref, inner ref)
        for conjunct in split_conjuncts(sub.where):
            if isinstance(conjunct, ExistsExpr) or _contains_exists(conjunct):
                raise SqlError("nested EXISTS inside EXISTS is not supported")
            qualified = self._qualify(conjunct, sub_schemas, outer_schemas)
            refs = referenced_aliases(qualified)
            outer_refs = refs & set(outer_schemas)
            if not outer_refs:
                local.append(qualified)
                continue
            pair = as_equijoin(qualified)
            if pair is None:
                raise SqlError(
                    "correlated subquery predicates must be equality comparisons"
                )
            left, right = pair
            if left.qualifier in outer_schemas and right.qualifier in sub_schemas:
                corr.append((left, right))
            elif right.qualifier in outer_schemas and left.qualifier in sub_schemas:
                corr.append((right, left))
            else:
                raise SqlError("correlation must relate an outer and an inner column")

        sub_block = build_block([(t.table, t.alias) for t in sub.tables], local)
        sub_candidate = self.optimizer.optimize(sub_block)
        negated = exists.negated

        if not corr:
            # Uncorrelated: evaluated per execution (the result is a
            # constant for that execution, so the whole outer tree is
            # either kept or replaced by an empty source).
            def apply_uncorrelated(op: Operator) -> Operator:
                sub_op = Limit(sub_candidate.build(), 1)
                self.database.stats.subqueries_run += 1
                non_empty = bool(sub_op.run())
                if non_empty != negated:
                    return op
                return RowsSource([], op.layout, self.database.stats)

            return apply_uncorrelated

        def apply_correlated(op: Operator) -> Operator:
            sub_op = sub_candidate.build()
            left_positions = [
                op.layout.position(o.qualifier, o.name) for o, _ in corr
            ]
            right_positions = [
                sub_op.layout.position(i.qualifier, i.name) for _, i in corr
            ]
            self.database.stats.subqueries_run += 1
            return HashSemiJoin(op, sub_op, left_positions, right_positions, negated)

        return apply_correlated

    # ------------------------------------------------------------------
    # Statement planning
    # ------------------------------------------------------------------
    def plan(self, query: Query) -> Tuple[Operator, List[str]]:
        """Build the executable operator tree; returns (plan, column
        names)."""
        prepared = self.prepare(query)
        return prepared.build(), prepared.columns

    def prepare(self, query: Query) -> PreparedPlan:
        """Bind and optimize a statement once; the returned
        :class:`PreparedPlan` builds fresh executable trees on demand."""
        single = len(query.cores) == 1
        desired = self._desired_order(query) if single else None

        prepared_cores = [
            self._prepare_core(
                core, desired_order=desired if core is query.cores[0] else None
            )
            for core in query.cores
        ]
        first_entries = prepared_cores[0].entries
        columns = [name for _, name in first_entries]

        if single:
            pc = prepared_cores[0]
            core = query.cores[0]

            def build_single() -> Operator:
                return self._assemble_single(
                    query, core, pc.build(), pc.entries, pc.exprs, pc.delivered
                )

            return PreparedPlan(columns, build_single)

        # UNION: project every core to the first core's arity.
        arity = len(first_entries)
        for pc in prepared_cores:
            if len(pc.exprs) != arity:
                raise SqlError("UNION inputs must have the same number of columns")
        names = [n for _, n in first_entries]

        def build_union() -> Operator:
            projected = [
                Project(pc.build(), pc.exprs, names, alias="")
                for pc in prepared_cores
            ]
            combined: Operator = UnionAll(projected)
            if not query.union_all:
                combined = Distinct(combined)
            if query.order_by:
                keys = self._order_keys(query.order_by, combined.layout)
                if query.fetch_first is not None:
                    return TopN(combined, keys, query.fetch_first)
                return Sort(combined, keys)
            if query.fetch_first is not None:
                return Limit(combined, query.fetch_first)
            return combined

        return PreparedPlan(columns, build_union)

    def _assemble_single(
        self,
        query: Query,
        core: SelectCore,
        op: Operator,
        entries: List[Tuple[str, str]],
        exprs: List[Expression],
        delivered: Optional[OrderSpec],
    ) -> Operator:
        names = [n for _, n in entries]
        # Keep the originating table alias on pass-through columns so
        # ORDER BY can reference them post-projection.
        projected = Project(op, exprs, names, entries=entries)
        result: Operator = projected
        if core.distinct:
            result = Distinct(result)

        if query.order_by:
            order_satisfied = self._order_satisfied(
                query.order_by, exprs, entries, delivered
            ) and not core.distinct
            if order_satisfied:
                if query.fetch_first is not None:
                    return Limit(result, query.fetch_first)
                return result
            keys = self._order_keys(query.order_by, result.layout)
            if query.fetch_first is not None:
                return TopN(result, keys, query.fetch_first)
            return Sort(result, keys)
        if query.fetch_first is not None:
            return Limit(result, query.fetch_first)
        return result

    # ------------------------------------------------------------------
    # Ordering helpers
    # ------------------------------------------------------------------
    def _desired_order(self, query: Query) -> Optional[OrderSpec]:
        if len(query.order_by) != 1 or len(query.cores) != 1:
            return None
        key = query.order_by[0]
        target = self._order_target(key.expr, query.cores[0])
        if target is None:
            return None
        alias, name = target
        return (alias, name, key.descending)

    def _order_target(
        self, expr: Expression, core: SelectCore
    ) -> Optional[Tuple[str, str]]:
        """Map an ORDER BY expression to a block column, through output
        aliases when needed."""
        if isinstance(expr, ColumnRef):
            if expr.qualifier is not None:
                return (expr.qualifier, expr.name)
            # An output alias naming a plain column?
            for item in core.items:
                if item.star or item.alias is None:
                    continue
                if item.alias.lower() == expr.name and isinstance(item.expr, ColumnRef):
                    inner = item.expr
                    if inner.qualifier is not None:
                        return (inner.qualifier, inner.name)
            # A bare column name owned by exactly one table?
            try:
                alias_schemas = self._alias_schemas(core)
            except SqlBindError:
                return None
            owners = [a for a, s in alias_schemas.items() if s.has_column(expr.name)]
            if len(owners) == 1:
                return (owners[0], expr.name)
        return None

    def _order_satisfied(
        self,
        order_by: List[OrderItem],
        exprs: List[Expression],
        entries: List[Tuple[str, str]],
        delivered: Optional[OrderSpec],
    ) -> bool:
        if delivered is None or len(order_by) != 1:
            return False
        key = order_by[0]
        if key.descending != delivered[2]:
            return False
        if isinstance(key.expr, ColumnRef):
            candidates = {(key.expr.qualifier, key.expr.name)}
            if key.expr.qualifier is None:
                # Output alias or bare name: map through projection.
                for (alias, name), expr in zip(entries, exprs):
                    if name == key.expr.name and isinstance(expr, ColumnRef):
                        candidates.add((expr.qualifier, expr.name))
            return (delivered[0], delivered[1]) in candidates
        return False

    def _order_keys(self, order_by: List[OrderItem], layout: RowLayout):
        keys = []
        for item in order_by:
            expr = item.expr
            if isinstance(expr, ColumnRef) and expr.qualifier is None:
                # Resolve against output names (unqualified post-projection).
                keys.append((ColumnRef(None, expr.name), item.descending))
            else:
                keys.append((expr, item.descending))
        # Validate now for a clear error message.
        for expr, _ in keys:
            expr.bind(layout)
        return keys


def _contains_exists(expr: Expression) -> bool:
    if isinstance(expr, ExistsExpr):
        return True
    for attr in ("items",):
        items = getattr(expr, attr, None)
        if items is not None:
            return any(_contains_exists(i) for i in items)
    for attr in ("item", "left", "right", "haystack", "needle", "value"):
        child = getattr(expr, attr, None)
        if isinstance(child, Expression) and _contains_exists(child):
            return True
    return False


#: Bound on the number of prepared statements an Engine retains.
PLAN_CACHE_SIZE = 256


class Engine:
    """Top-level query interface over a :class:`Database`.

    >>> engine = Engine(db)
    >>> result = engine.execute("SELECT id FROM protein WHERE id = 32")
    >>> result.rows
    [(32,)]

    Repeated statements hit a prepared-statement cache keyed by the SQL
    text and parameter bindings.  Every entry is validated against
    :meth:`Database.change_token` before reuse, so any table create/drop
    or data change invalidates it — a cached plan can never bind to a
    stale catalog or skip re-running an uncorrelated EXISTS against
    changed data.  The cache only serves the batched columnar execution
    mode; in row mode (:func:`repro.relational.runtime.row_mode`) every
    statement is re-planned from scratch, preserving the reference
    engine's exact pre-cache behavior for differential testing.
    """

    def __init__(self, database: Database, stats: Optional[StatsCatalog] = None) -> None:
        self.database = database
        self.stats = stats if stats is not None else StatsCatalog(database)
        self.planner = Planner(database, self.stats)
        self._plan_cache: "OrderedDict[Tuple, Tuple[Tuple, PreparedPlan]]" = OrderedDict()
        self._plan_cache_lock = threading.Lock()
        self.plan_cache_hits = 0
        self.plan_cache_misses = 0

    def refresh_statistics(self) -> None:
        self.stats.refresh()

    def clear_plan_cache(self) -> None:
        with self._plan_cache_lock:
            self._plan_cache.clear()

    @staticmethod
    def _cache_key(sql: str, params: Optional[Dict[str, Any]]) -> Optional[Tuple]:
        if not params:
            return (sql, None)
        try:
            return (sql, tuple(sorted(params.items())))
        except TypeError:
            return None  # unhashable/unorderable bindings: skip the cache

    def _prepared(self, sql: str, params: Optional[Dict[str, Any]]) -> PreparedPlan:
        key = self._cache_key(sql, params)
        # Token captured *before* planning: if data changes while we
        # plan, the entry is cached under the old token and fails
        # revalidation next time — stale in the safe direction.
        token = self.database.change_token()
        if key is not None:
            with self._plan_cache_lock:
                entry = self._plan_cache.get(key)
                if entry is not None and entry[0] == token:
                    self._plan_cache.move_to_end(key)
                    self.plan_cache_hits += 1
                    return entry[1]
        prepared = self.planner.prepare(parse(sql, params))
        if key is not None:
            # relint: disable=R2 (get-or-compute: each return reads under a single acquisition, the pair never assembles one value)
            with self._plan_cache_lock:
                self.plan_cache_misses += 1
                self._plan_cache[key] = (token, prepared)
                self._plan_cache.move_to_end(key)
                while len(self._plan_cache) > PLAN_CACHE_SIZE:
                    self._plan_cache.popitem(last=False)
        return prepared

    def execute(self, sql: str, params: Optional[Dict[str, Any]] = None) -> QueryResult:
        if columnar_enabled():
            prepared = self._prepared(sql, params)
        else:
            prepared = self.planner.prepare(parse(sql, params))
        plan = prepared.build()
        rows = plan.run()
        self.database.stats.rows_emitted += len(rows)
        return QueryResult(list(prepared.columns), rows)

    def explain(self, sql: str, params: Optional[Dict[str, Any]] = None) -> str:
        query = parse(sql, params)
        plan, _ = self.planner.plan(query)
        return plan.explain()
