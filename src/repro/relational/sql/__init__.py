"""SQL front end: tokenizer, parser, planner, engine."""

from repro.relational.sql.ast import (
    ExistsExpr,
    OrderItem,
    Query,
    SelectCore,
    SelectItem,
    TableRef,
)
from repro.relational.sql.parser import parse
from repro.relational.sql.planner import Engine, Planner, QueryResult
from repro.relational.sql.tokens import Token, sql_quote, tokenize

__all__ = [
    "Engine",
    "ExistsExpr",
    "OrderItem",
    "Planner",
    "Query",
    "QueryResult",
    "SelectCore",
    "SelectItem",
    "TableRef",
    "Token",
    "parse",
    "sql_quote",
    "tokenize",
]
