"""Generate SQL join chains for path-equivalence classes.

The Fast-Top method checks pruned topologies online with "relatively
simple" SQL joins along the pruned topology's path structure (the
``Uni_encodes JOIN Uni_contains`` of the paper's SQL1).  This module
turns a class signature like ``(Protein, uni_encodes, Unigene,
uni_contains, DNA)`` into FROM/WHERE fragments over the relationship
tables, anchored at the two endpoint entity aliases.

Instance-level paths must be *simple*: the generated WHERE includes
``<>`` conditions between every two same-typed node positions so chain
walks cannot revisit an entity (e.g. ``P-encodes-D-encodes-P`` must bind
two distinct proteins).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.biozon.schema import RELATIONSHIPS, RelationshipSpec
from repro.core.model import ClassSignature
from repro.errors import TopologyError

_BY_EDGE_TYPE: Dict[str, RelationshipSpec] = {spec.edge_type: spec for spec in RELATIONSHIPS}


@dataclass(frozen=True)
class ChainFragments:
    """FROM items and WHERE conditions realizing one path class."""

    from_items: Tuple[str, ...]   # e.g. ("UniEncodes c0r0", ...)
    conditions: Tuple[str, ...]   # join + simplicity conditions

    def from_sql(self) -> str:
        return ", ".join(self.from_items)

    def where_sql(self) -> str:
        return " AND ".join(self.conditions)


def orient_signature(
    signature: ClassSignature, end1_type: str, end2_type: str
) -> ClassSignature:
    """Return the signature oriented so it starts at ``end1_type`` and
    ends at ``end2_type`` (signatures are stored direction-normalized)."""
    if signature[0] == end1_type and signature[-1] == end2_type:
        return signature
    reversed_sig = signature[::-1]
    if reversed_sig[0] == end1_type and reversed_sig[-1] == end2_type:
        return reversed_sig
    raise TopologyError(
        f"signature {signature} does not connect {end1_type} and {end2_type}"
    )


def _edge_columns(edge_type: str, from_type: str, to_type: str) -> Tuple[str, str, str]:
    """(relationship table, column on ``from_type`` side, column on
    ``to_type`` side)."""
    spec = _BY_EDGE_TYPE.get(edge_type)
    if spec is None:
        raise TopologyError(f"unknown relationship {edge_type!r}")
    if spec.left_table == from_type and spec.right_table == to_type:
        return spec.table, spec.left_column, spec.right_column
    if spec.right_table == from_type and spec.left_table == to_type:
        return spec.table, spec.right_column, spec.left_column
    raise TopologyError(
        f"relationship {edge_type!r} does not connect {from_type!r} and {to_type!r}"
    )


def chain_fragments(
    signature: ClassSignature,
    end1_alias: str,
    end2_alias: str,
    chain_prefix: str,
) -> ChainFragments:
    """Build the join chain for one oriented signature.

    ``end1_alias`` / ``end2_alias`` are entity-table aliases the caller
    provides elsewhere in the query (e.g. ``P`` and ``D``); relationship
    tables get aliases ``{chain_prefix}r{i}``.
    """
    node_types = signature[0::2]
    edge_types = signature[1::2]
    from_items: List[str] = []
    conditions: List[str] = []

    # node_exprs[i]: SQL expression for the id of the i-th node.
    node_exprs: List[str] = [f"{end1_alias}.ID"]
    prev_expr = f"{end1_alias}.ID"
    for i, edge_type in enumerate(edge_types):
        table, from_col, to_col = _edge_columns(
            edge_type, node_types[i], node_types[i + 1]
        )
        alias = f"{chain_prefix}r{i}"
        from_items.append(f"{table} {alias}")
        conditions.append(f"{alias}.{from_col} = {prev_expr}")
        prev_expr = f"{alias}.{to_col}"
        node_exprs.append(prev_expr)
    conditions.append(f"{end2_alias}.ID = {prev_expr}")
    node_exprs[-1] = f"{end2_alias}.ID"

    # Simplicity: same-typed nodes must bind distinct entities.
    for i in range(len(node_types)):
        for j in range(i + 1, len(node_types)):
            if node_types[i] == node_types[j]:
                conditions.append(f"{node_exprs[i]} <> {node_exprs[j]}")
    return ChainFragments(tuple(from_items), tuple(conditions))


def multi_chain_fragments(
    signatures: Sequence[ClassSignature],
    end1_type: str,
    end2_type: str,
    end1_alias: str,
    end2_alias: str,
) -> ChainFragments:
    """Fragments asserting that *every* given class has an instance path
    between the two endpoints — the path condition of a (possibly
    multi-class) pruned topology."""
    from_items: List[str] = []
    conditions: List[str] = []
    for idx, signature in enumerate(sorted(signatures)):
        oriented = orient_signature(signature, end1_type, end2_type)
        chain = chain_fragments(oriented, end1_alias, end2_alias, f"c{idx}")
        from_items.extend(chain.from_items)
        conditions.extend(chain.conditions)
    return ChainFragments(tuple(from_items), tuple(conditions))
