"""Offline Topology Computation module (Section 4.1, Figure 10).

For each requested entity-set pair, enumerate all simple paths of
length ≤ l between entities of the two sets, group them into equivalence
classes per pair, realize the pair's l-topologies (Definition 2), and
record everything into a :class:`~repro.core.store.TopologyStore`.

The paper drives this with one SQL query per schema path and merges the
results per entity pair; we drive it with one pruned DFS per source
entity, which produces the identical per-pair path sets (tests verify
this against the SQL chain joins) while being the natural formulation
over the in-memory graph.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.store import TopologyStore
from repro.core.topologies import DEFAULT_COMBINATION_CAP, topologies_from_classes
from repro.errors import TopologyError
from repro.graph.labeled_graph import LabeledGraph, NodeId, Path
from repro.graph.paths import paths_from_source


@dataclass
class AllTopsReport:
    """Summary of one offline computation run."""

    entity_pairs: Tuple[Tuple[str, str], ...]
    max_length: int
    pairs_related: int = 0
    alltops_rows: int = 0
    distinct_topologies: int = 0
    truncated_pairs: int = 0
    elapsed_seconds: float = 0.0


def _nodes_by_type(graph: LabeledGraph) -> Dict[str, List[NodeId]]:
    grouped: Dict[str, List[NodeId]] = {}
    for node in graph.nodes():
        grouped.setdefault(graph.node_type(node), []).append(node)
    return grouped


def compute_alltops(
    graph: LabeledGraph,
    entity_pairs: Sequence[Tuple[str, str]],
    max_length: int,
    store: Optional[TopologyStore] = None,
    combination_cap: int = DEFAULT_COMBINATION_CAP,
    per_pair_path_limit: Optional[int] = None,
) -> Tuple[TopologyStore, AllTopsReport]:
    """Populate (or extend) a store with every pair's topologies.

    ``per_pair_path_limit`` truncates the path set of hot pairs (weak
    relationships reach thousands of paths per pair at l=4 in the
    paper); ``combination_cap`` bounds Definition 2's representative
    cross-product.  Both truncations are counted in the report.
    """
    if store is None:
        store = TopologyStore()
    seen = set()
    for es1, es2 in entity_pairs:
        key = (es1, es2)
        if key in seen or (es2, es1) in seen:
            raise TopologyError(f"entity pair {key!r} listed twice")
        seen.add(key)

    report = AllTopsReport(tuple(entity_pairs), max_length)
    start = time.perf_counter()
    by_type = _nodes_by_type(graph)

    for es1, es2 in entity_pairs:
        sources = by_type.get(es1, [])
        for a in sources:
            endpoint_paths = paths_from_source(
                graph, a, max_length, es2, per_pair_limit=per_pair_path_limit
            )
            for b, paths in endpoint_paths.items():
                if es1 == es2 and not _ordered(a, b):
                    continue  # unordered pair: keep one orientation
                classes: Dict[Tuple[str, ...], List[Path]] = {}
                for path in paths:
                    classes.setdefault(path.signature(), []).append(path)
                truncated = (
                    per_pair_path_limit is not None
                    and len(paths) >= per_pair_path_limit
                )
                topology_endpoints, combo_truncated = topologies_from_classes(
                    classes, a, b, combination_cap
                )
                store.record_pair(
                    a,
                    b,
                    (es1, es2),
                    frozenset(classes),
                    topology_endpoints,
                    truncated or combo_truncated,
                )
                report.pairs_related += 1
                report.alltops_rows += len(topology_endpoints)

    store.finalize()
    report.distinct_topologies = len(store.topologies)
    report.truncated_pairs = store.truncated_pairs
    report.elapsed_seconds = time.perf_counter() - start
    return store, report


def _ordered(a: NodeId, b: NodeId) -> bool:
    try:
        return a < b  # type: ignore[operator]
    except TypeError:
        return str(a) < str(b)
