"""Offline Topology Computation module (Section 4.1, Figure 10).

For each requested entity-set pair, enumerate all simple paths of
length ≤ l between entities of the two sets, group them into equivalence
classes per pair, realize the pair's l-topologies (Definition 2), and
record everything into a :class:`~repro.core.store.TopologyStore`.

The paper drives this with one SQL query per schema path and merges the
results per entity pair; we drive it with one pruned DFS per source
entity, which produces the identical per-pair path sets (tests verify
this against the SQL chain joins) while being the natural formulation
over the in-memory graph.

Enumeration order and determinism
---------------------------------
The offline phase is **fully deterministic**, and downstream consumers
depend on the exact order, not just the contents:

1. Entity-set pairs are processed in the order given to
   :func:`compute_alltops` (duplicates, in either orientation, are
   rejected up front).
2. Within a pair ``(ES1, ES2)``, source entities of type ``ES1`` are
   visited in **graph insertion order** (``LabeledGraph`` stores nodes
   in insertion-ordered dicts, which for Biozon-style loads means
   primary-key order).
3. For one source ``a``, endpoints ``b`` appear in the order
   :func:`~repro.graph.paths.paths_from_source` first reaches them
   (DFS over insertion-ordered adjacency lists), and the paths inside
   each endpoint bucket are in DFS emission order.  For an unordered
   pair (``ES1 == ES2``) only the ``a < b`` orientation is kept.
4. Distinct topologies of one pair are recorded in the first-encounter
   order of :func:`~repro.core.topologies.topologies_from_classes`
   (itself deterministic; see that module's docstring).

Consequences: TIDs are interned in first-encounter order, ``AllTops``
rows are appended in the order above, and two runs over the same graph
and pair list produce byte-identical stores.  The partitioned build in
:mod:`repro.parallel` leans on exactly this contract — workers compute
:func:`pair_source_records` for disjoint source buckets, and the merge
replays them in the serial order (1)-(3), which reproduces the serial
TID interning (4) without any cross-process coordination.  Anything
that changes this order is a format-breaking change and must be
mirrored in :mod:`repro.parallel` and called out in
``docs/OFFLINE_PIPELINE.md``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.store import TopologyStore
from repro.core.topologies import DEFAULT_COMBINATION_CAP, topologies_from_classes
from repro.errors import TopologyError
from repro.graph.labeled_graph import LabeledGraph, NodeId, Path
from repro.graph.paths import paths_from_source


@dataclass
class AllTopsReport:
    """Summary of one offline computation run."""

    entity_pairs: Tuple[Tuple[str, str], ...]
    max_length: int
    pairs_related: int = 0
    alltops_rows: int = 0
    distinct_topologies: int = 0
    truncated_pairs: int = 0
    elapsed_seconds: float = 0.0


@dataclass(frozen=True)
class PairRecord:
    """One (source, endpoint) pair's offline output, as plain data.

    This is the unit of work exchanged between the computation and the
    store (and, in the partitioned build, between worker processes and
    the merging parent — every field pickles cheaply):

    ``endpoint``
        The right entity ``b``.
    ``class_signatures``
        The pair's path-equivalence-class signatures, in DFS
        first-encounter order (the store keeps them as a frozenset, so
        the order here is irrelevant to correctness but kept stable
        anyway).
    ``topology_items``
        ``(canonical key, (endpoint index of a, endpoint index of b))``
        per distinct topology, in **first-encounter order** — the order
        TID interning depends on.
    ``truncated``
        Whether the path limit or the combination cap cut this pair's
        enumeration short.
    """

    endpoint: NodeId
    class_signatures: Tuple[Tuple[str, ...], ...]
    topology_items: Tuple[Tuple[str, Tuple[int, int]], ...]
    truncated: bool


def validate_entity_pairs(entity_pairs: Sequence[Tuple[str, str]]) -> None:
    """Reject a pair list containing duplicates in either orientation."""
    seen = set()
    for es1, es2 in entity_pairs:
        key = (es1, es2)
        if key in seen or (es2, es1) in seen:
            raise TopologyError(f"entity pair {key!r} listed twice")
        seen.add(key)


def nodes_by_type(graph: LabeledGraph) -> Dict[str, List[NodeId]]:
    """Group node ids by entity type, preserving graph insertion order
    (the source-visit order of the offline phase)."""
    grouped: Dict[str, List[NodeId]] = {}
    for node in graph.nodes():
        grouped.setdefault(graph.node_type(node), []).append(node)
    return grouped


def pair_source_records(
    graph: LabeledGraph,
    source: NodeId,
    entity_pair: Tuple[str, str],
    max_length: int,
    combination_cap: int = DEFAULT_COMBINATION_CAP,
    per_pair_path_limit: Optional[int] = None,
) -> List[PairRecord]:
    """Compute every :class:`PairRecord` for one source entity.

    One pruned DFS from ``source`` reaches every endpoint of type
    ``entity_pair[1]``; per endpoint, paths are grouped into equivalence
    classes and realized into topologies (Definition 2).  This is the
    kernel shared by the serial loop (:func:`compute_alltops`) and the
    partition workers (:mod:`repro.parallel.worker`) — keeping them on
    one code path is what makes "parallel build ≡ serial build" a
    structural guarantee rather than a test-enforced one.
    """
    es1, es2 = entity_pair
    endpoint_paths = paths_from_source(
        graph, source, max_length, es2, per_pair_limit=per_pair_path_limit
    )
    records: List[PairRecord] = []
    for b, paths in endpoint_paths.items():
        if es1 == es2 and not _ordered(source, b):
            continue  # unordered pair: keep one orientation
        classes: Dict[Tuple[str, ...], List[Path]] = {}
        for path in paths:
            classes.setdefault(path.signature(), []).append(path)
        truncated = (
            per_pair_path_limit is not None
            and len(paths) >= per_pair_path_limit
        )
        topology_endpoints, combo_truncated = topologies_from_classes(
            classes, source, b, combination_cap
        )
        records.append(
            PairRecord(
                endpoint=b,
                class_signatures=tuple(classes),
                topology_items=tuple(topology_endpoints.items()),
                truncated=truncated or combo_truncated,
            )
        )
    return records


def replay_source_records(
    store: TopologyStore,
    report: AllTopsReport,
    source: NodeId,
    entity_pair: Tuple[str, str],
    records: Iterable[PairRecord],
) -> None:
    """Feed one source's records into the store, updating the report.

    Records must arrive in the order :func:`pair_source_records`
    produced them — the store interns TIDs on first encounter, so the
    replay order *is* the TID assignment."""
    for record in records:
        store.record_pair(
            source,
            record.endpoint,
            entity_pair,
            frozenset(record.class_signatures),
            dict(record.topology_items),
            record.truncated,
        )
        report.pairs_related += 1
        report.alltops_rows += len(record.topology_items)


def compute_alltops(
    graph: LabeledGraph,
    entity_pairs: Sequence[Tuple[str, str]],
    max_length: int,
    store: Optional[TopologyStore] = None,
    combination_cap: int = DEFAULT_COMBINATION_CAP,
    per_pair_path_limit: Optional[int] = None,
) -> Tuple[TopologyStore, AllTopsReport]:
    """Populate (or extend) a store with every pair's topologies.

    ``per_pair_path_limit`` truncates the path set of hot pairs (weak
    relationships reach thousands of paths per pair at l=4 in the
    paper); ``combination_cap`` bounds Definition 2's representative
    cross-product.  Both truncations are counted in the report.

    This is the single-process formulation; for bulk builds over large
    graphs use :func:`repro.parallel.compute_alltops_parallel` (or
    ``TopologySearchSystem.build(parallel=N)``), which partitions the
    source space across a worker pool and merges into an identical
    store.
    """
    if store is None:
        store = TopologyStore()
    validate_entity_pairs(entity_pairs)

    report = AllTopsReport(tuple(entity_pairs), max_length)
    start = time.perf_counter()
    by_type = nodes_by_type(graph)

    for es1, es2 in entity_pairs:
        for a in by_type.get(es1, []):
            records = pair_source_records(
                graph,
                a,
                (es1, es2),
                max_length,
                combination_cap=combination_cap,
                per_pair_path_limit=per_pair_path_limit,
            )
            replay_source_records(store, report, a, (es1, es2), records)

    store.finalize()
    report.distinct_topologies = len(store.topologies)
    report.truncated_pairs = store.truncated_pairs
    report.elapsed_seconds = time.perf_counter() - start
    return store, report


def _ordered(a: NodeId, b: NodeId) -> bool:
    try:
        return a < b  # type: ignore[operator]
    except TypeError:
        return str(a) < str(b)
