"""Topology ranking schemes (Section 6.1).

The paper evaluates three scoring functions:

* **Freq** — higher score for more frequent topologies (common patterns
  first),
* **Rare** — higher score for less frequent topologies (surprising
  patterns first),
* **Domain** — a domain expert's biological-significance assessment.

Scores are materialized into the TopInfo table (one column per scheme)
so every query method — SQL ORDER BY, staged top-k, and the
score-ordered index scans of the ET plans — consumes them identically.

The Domain expert is replaced by a deterministic structural surrogate
(see DESIGN.md): it rewards interaction participation, feedback cycles,
and class diversity, and penalizes weak paths.  The experiments only
need a third ordering that is largely uncorrelated with frequency, which
this provides reproducibly.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Tuple

from repro.core.model import Topology
from repro.core.weak import WeakPathRules

RANKING_SCHEMES: Tuple[str, ...] = ("freq", "rare", "domain")


def score_column(scheme: str) -> str:
    """TopInfo column name holding a scheme's scores."""
    if scheme not in RANKING_SCHEMES:
        raise ValueError(f"unknown ranking scheme {scheme!r}")
    return f"SCORE_{scheme.upper()}"


def freq_score(topology: Topology, max_frequency: int) -> float:
    if max_frequency <= 0:
        return 0.0
    return topology.frequency / max_frequency


def rare_score(topology: Topology) -> float:
    return 1.0 / (1.0 + topology.frequency)


def domain_score(topology: Topology, rules: WeakPathRules) -> float:
    """Structural surrogate for the expert's biological-significance
    score.  Cycles (e.g. the Figure-16 operon motif: two proteins on one
    DNA that also interact) and interaction edges rank high; weak-path
    content ranks low."""
    node_types, edges = topology.form
    score = 0.1
    score += 0.15 * min(topology.num_classes, 4)
    if any(etype.startswith("interacts") for _, _, etype in edges):
        score += 0.25
    if len(edges) >= len(node_types):  # contains a cycle => feedback
        score += 0.2
    score -= 0.4 * rules.topology_weak_fraction(topology)
    return max(0.01, min(1.5, score))


# Equal scores are possible (e.g. equal frequencies); every ranked path
# in the system breaks ties by descending TID so all methods produce
# the same total order (the ET plans inherit this from the score-index
# scan, whose equal-key runs come back in descending insertion order
# when scanned descending).
TIE_BREAK_ORDER = "tid desc"


def compute_scores(
    topologies: Iterable[Topology],
    rules: WeakPathRules = WeakPathRules(),
) -> None:
    """Fill every topology's ``scores`` dict (in place)."""
    topo_list = list(topologies)
    max_frequency = max((t.frequency for t in topo_list), default=0)
    for topology in topo_list:
        topology.scores["freq"] = freq_score(topology, max_frequency)
        topology.scores["rare"] = rare_score(topology)
        topology.scores["domain"] = domain_score(topology, rules)
