"""Instance-level retrieval for a topology (Section 6.2.4).

After topology results are shown, the user drills into one topology to
see the concrete biological systems realizing it.  Retrieval anchors the
topology's structure at each related entity pair (from AllTops/LeftTops)
and enumerates labeled subgraph embeddings in the data graph.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.model import Topology
from repro.core.query import TopologyQuery
from repro.core.topologies import topologies_for_pair
from repro.errors import TopologyError
from repro.graph.isomorphism import find_embeddings
from repro.graph.labeled_graph import LabeledGraph, NodeId


@dataclass(frozen=True)
class TopologyInstance:
    """One concrete occurrence of a topology: the entity pair plus the
    full mapping of canonical structure positions to data entities and
    relationship edges."""

    tid: int
    e1: NodeId
    e2: NodeId
    node_map: Tuple[Tuple[int, NodeId], ...]
    edge_map: Tuple[Tuple[str, object], ...]

    def entities(self) -> List[NodeId]:
        return [nid for _, nid in self.node_map]


class InstanceRetriever:
    """Retrieves instances for topologies produced by a system."""

    def __init__(self, system) -> None:
        self.system = system

    def pairs_for_topology(self, tid: int) -> List[Tuple[NodeId, NodeId]]:
        """All entity pairs related by the topology (from the store)."""
        return self.system.require_store().pairs_for_tid(tid)

    def instances(
        self,
        tid: int,
        query: Optional[TopologyQuery] = None,
        limit: Optional[int] = 100,
        per_pair_limit: Optional[int] = 10,
    ) -> List[TopologyInstance]:
        """Enumerate instances of a topology, optionally restricted to
        pairs whose endpoints satisfy a query's constraints.

        The paper reports 1-50 s per topology on Biozon, scaling with
        topology frequency; ``limit`` bounds the result set.
        """
        system = self.system
        topology = system.topology(tid)
        pattern = topology.graph()
        end1_idx, end2_idx = topology.endpoint_indices
        graph = system.graph

        keep = self._pair_filter(topology, query)
        out: List[TopologyInstance] = []
        for e1, e2 in self.pairs_for_topology(tid):
            if not keep(e1, e2):
                continue
            embeddings = self._anchored_embeddings(
                pattern, graph, end1_idx, end2_idx, e1, e2, per_pair_limit
            )
            for node_map, edge_map in embeddings:
                out.append(
                    TopologyInstance(
                        tid=tid,
                        e1=e1,
                        e2=e2,
                        node_map=tuple(sorted(node_map.items(), key=lambda kv: str(kv[0]))),
                        edge_map=tuple(
                            sorted(
                                ((str(k), v) for k, v in edge_map.items()),
                                key=lambda kv: kv[0],
                            )
                        ),
                    )
                )
                if limit is not None and len(out) >= limit:
                    return out
        return out

    def verify_pair(self, tid: int, e1: NodeId, e2: NodeId, max_length: int) -> bool:
        """Reference check: is the pair related by exactly this topology
        (Definition 2)?  Used by tests and the SQL method."""
        topology = self.system.topology(tid)
        pair = topologies_for_pair(self.system.graph, e1, e2, max_length)
        return topology.key in pair.topology_keys

    # ------------------------------------------------------------------
    def _pair_filter(self, topology: Topology, query: Optional[TopologyQuery]):
        if query is None:
            return lambda e1, e2: True
        system = self.system
        db = system.database

        def satisfies(entity_table: str, constraint, entity_id: NodeId) -> bool:
            table = db.table(entity_table)
            rows = table.get_by_key(entity_id)
            if not rows:
                return False
            from repro.relational.operators import table_layout

            layout = table_layout(table, "x")
            fn = constraint.to_expression("x").bind(layout)
            return fn(rows[0]) is True

        oriented = system.orientation(query)

        def keep(e1: NodeId, e2: NodeId) -> bool:
            if oriented:
                return satisfies(query.entity1, query.constraint1, e1) and satisfies(
                    query.entity2, query.constraint2, e2
                )
            return satisfies(query.entity1, query.constraint1, e2) and satisfies(
                query.entity2, query.constraint2, e1
            )

        return keep

    def _anchored_embeddings(
        self,
        pattern: LabeledGraph,
        graph: LabeledGraph,
        end1_idx: int,
        end2_idx: int,
        e1: NodeId,
        e2: NodeId,
        per_pair_limit: Optional[int],
    ):
        embeddings = find_embeddings(
            pattern,
            graph,
            anchors={end1_idx: e1, end2_idx: e2},
            limit=per_pair_limit,
        )
        if embeddings:
            return embeddings
        # Same-typed endpoints may anchor in the opposite orientation.
        if pattern.node_type(end1_idx) == pattern.node_type(end2_idx):
            return find_embeddings(
                pattern,
                graph,
                anchors={end1_idx: e2, end2_idx: e1},
                limit=per_pair_limit,
            )
        return []
