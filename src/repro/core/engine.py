"""The Topology Query Engine facade (Figure 10's architecture).

``TopologySearchSystem`` owns the base data (relational database + data
graph), runs the offline phase (Topology Computation -> Topology
Pruning -> materialized tables), and dispatches queries to any of the
nine methods the paper evaluates (Section 6.1):

====================  =====================================================
method name           description
====================  =====================================================
``sql``               one existence query per candidate topology (§3.1)
``full-top``          single join against the full AllTops table (§3.2)
``fast-top``          LeftTops join + online checks for pruned (§4.3, SQL1)
``full-top-k``        AllTops + ORDER BY score FETCH FIRST k (SQL3/4)
``fast-top-k``        staged LeftTops top-k + pruned checks (SQL4/SQL5)
``full-top-k-et``     DGJ stack over AllTops (§5.3)
``fast-top-k-et``     DGJ stack over LeftTops + pruned merging (§5.3)
``full-top-k-opt``    cost-based choice between full-top-k and its ET plan
``fast-top-k-opt``    cost-based choice between fast-top-k and its ET plan
====================  =====================================================
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

from repro.biozon.schema import database_to_graph
from repro.core.alltops import AllTopsReport, compute_alltops
from repro.core.model import Topology
from repro.core.plan import (
    CostCalibrator,
    PlanCache,
    PlanCacheStats,
    Planner,
    QueryPlan,
    work_units,
)
from repro.core.pruning import PruneReport, apply_pruning
from repro.core.query import TopologyQuery
from repro.core.store import TopologyStore
from repro.core.topologies import DEFAULT_COMBINATION_CAP
from repro.core.weak import WeakPathRules
from repro.errors import TopologyError
from repro.graph.labeled_graph import LabeledGraph
from repro.obs import span as obs_span
from repro.obs import tracer as obs_tracer
from repro.relational.database import Database
from repro.relational.sql.planner import Engine
from repro.relational.statistics import StatsCatalog

if TYPE_CHECKING:  # runtime import stays inside build() (cycle-free)
    from repro.parallel import ParallelBuildReport


@dataclass
class BuildReport:
    """Combined offline-phase summary.

    ``parallel`` is populated only for partitioned builds
    (``build(parallel=N)`` with N >= 2): worker count, partition count,
    per-partition task timings, and merge overhead.  ``spans`` holds the
    build-phase trace (wire-format span records: compute, prune,
    materialize — plus the parallel fan-out phases when applicable) when
    tracing is enabled."""

    alltops: AllTopsReport
    pruning: Optional[PruneReport]
    elapsed_seconds: float
    parallel: Optional["ParallelBuildReport"] = None
    spans: List[Dict[str, object]] = field(default_factory=list)


class TopologySearchSystem:
    """Offline computation plus online query dispatch.

    Concurrency contract: :meth:`search`, :meth:`explain` and the plan
    layer only *read* the built store and base tables, and every shared
    mutable hot-path structure they touch — the plan cache, the cost
    calibrator, the per-thread executor counters, the lazily refreshed
    statistics — is thread-safe, so any number of threads may query one
    system concurrently.  :meth:`build` and :meth:`adopt_store` are
    exclusive writers: they replace the materialized tables in place and
    must not overlap with queries (that fencing is the job of
    :class:`~repro.service.server.TopologyServer`, which hot-swaps a
    freshly built clone instead of mutating the serving generation)."""

    def __init__(
        self,
        database: Database,
        graph: Optional[LabeledGraph] = None,
        weak_rules: Optional[WeakPathRules] = None,
    ) -> None:
        self.database = database
        self.graph = graph if graph is not None else database_to_graph(database)
        self.weak_rules = weak_rules or WeakPathRules()
        self.store: Optional[TopologyStore] = None
        self.max_length: Optional[int] = None
        self.built_pairs: List[Tuple[str, str]] = []
        self.stats = StatsCatalog(database)
        self.engine = Engine(database, self.stats)
        self.build_report: Optional[BuildReport] = None
        # The parameters of the last build() — persisted into snapshots
        # (repro.persist) and reused by TopologyService.rebuild(), so a
        # system built in parallel rebuilds in parallel.
        self.build_config: Optional[Dict[str, object]] = None
        # Bumped on every (re)build or snapshot restore; caches layered on
        # top of the system (e.g. repro.service) key their validity on it.
        self.build_generation: int = 0
        self._methods: Dict[str, object] = {}
        # The plan layer (repro.core.plan): per-strategy cost calibration
        # learned from execution feedback, the planner that applies it,
        # and a plan cache keyed by query class so repeated-shape traffic
        # skips the optimizer.  The cache invalidates itself when
        # build_generation moves (like the service's result cache).
        self.calibrator = CostCalibrator()
        self.planner = Planner(self)
        self.plan_cache = PlanCache()
        self.calibration_enabled = True
        self._plan_generation = self.build_generation

    # ------------------------------------------------------------------
    # Offline phase
    # ------------------------------------------------------------------
    def build(
        self,
        entity_pairs: Sequence[Tuple[str, str]],
        max_length: int = 3,
        prune_threshold: Optional[int] = None,
        prune: bool = True,
        combination_cap: int = DEFAULT_COMBINATION_CAP,
        per_pair_path_limit: Optional[int] = None,
        parallel: int = 0,
        partitions: Optional[int] = None,
    ) -> BuildReport:
        """Run Topology Computation and Topology Pruning, then
        materialize the derived tables and refresh statistics.

        ``parallel`` >= 2 runs the Topology Computation step across
        that many worker processes (:mod:`repro.parallel`), partitioned
        into ``partitions`` deterministic hash buckets per entity pair
        (default: 4 per worker); 0 or 1 keeps the single-process path.
        The resulting store is bit-identical either way — only the
        wall-clock and :attr:`BuildReport.parallel` differ."""
        start = time.perf_counter()
        if parallel < 0:
            raise TopologyError(
                f"parallel must be >= 0 (0/1 = serial), got {parallel}"
            )
        store = TopologyStore(self.weak_rules)
        parallel_report: Optional["ParallelBuildReport"] = None
        with obs_span(
            "engine.build", ingress=True, pairs=len(entity_pairs), max_length=max_length
        ) as build_span:
            with obs_span("build.compute_alltops", parallel=int(parallel or 0)):
                if parallel and parallel >= 2:
                    from repro.parallel import compute_alltops_parallel

                    store, alltops_report, parallel_report = compute_alltops_parallel(
                        self.graph,
                        entity_pairs,
                        max_length,
                        workers=parallel,
                        partitions=partitions,
                        store=store,
                        combination_cap=combination_cap,
                        per_pair_path_limit=per_pair_path_limit,
                    )
                else:
                    store, alltops_report = compute_alltops(
                        self.graph,
                        entity_pairs,
                        max_length,
                        store=store,
                        combination_cap=combination_cap,
                        per_pair_path_limit=per_pair_path_limit,
                    )
            prune_report: Optional[PruneReport] = None
            with obs_span("build.prune", enabled=prune):
                if prune:
                    prune_report = apply_pruning(store, prune_threshold)
                else:
                    store.lefttops_rows = list(store.alltops_rows)
                    store.excptops_rows = []
            with obs_span("build.materialize"):
                store.materialize(self.database)
                self.stats.refresh()
        build_spans: List[Dict[str, object]] = []
        if build_span.trace_id is not None:
            build_spans = [
                s.to_wire() for s in obs_tracer().trace_spans(build_span.trace_id)
            ]
        self.store = store
        self.max_length = max_length
        self.built_pairs = [tuple(p) for p in entity_pairs]
        self._methods.clear()
        self.build_generation += 1
        self.build_config = {
            "max_length": max_length,
            "prune": prune,
            "prune_threshold": prune_threshold,
            "combination_cap": combination_cap,
            "per_pair_path_limit": per_pair_path_limit,
            "parallel": int(parallel) if parallel and parallel >= 2 else 0,
            "partitions": (
                parallel_report.partitions if parallel_report is not None else None
            ),
        }
        self.build_report = BuildReport(
            alltops=alltops_report,
            pruning=prune_report,
            elapsed_seconds=time.perf_counter() - start,
            parallel=parallel_report,
            spans=build_spans,
        )
        return self.build_report

    def require_store(self) -> TopologyStore:
        if self.store is None:
            raise TopologyError("offline phase not run: call build() first")
        return self.store

    # ------------------------------------------------------------------
    # Persistence (see repro.persist for the snapshot format)
    # ------------------------------------------------------------------
    def save(self, path) -> None:
        """Write a snapshot of the built system to ``path`` (SQLite)."""
        from repro.persist import save_system

        save_system(self, path)

    @classmethod
    def from_snapshot(cls, path) -> "TopologySearchSystem":
        """Restore a system from a snapshot written by :meth:`save` —
        the millisecond-scale cold start that replaces rerunning
        :meth:`build`."""
        from repro.persist import load_system

        return load_system(path)

    def clone_base(self) -> "TopologySearchSystem":
        """A new system over a *copy* of the base relations.

        The derived tables (TopInfo, AllTops, LeftTops, ExcpTops) are
        excluded — the clone is meant to run its own offline phase — and
        the clone shares no mutable state with this system: its own
        database (tables, indexes, executor counters), its own data
        graph rebuilt from the copied relations, its own statistics,
        plan cache and calibrator.  That independence is what makes a
        hot rebuild possible: :class:`~repro.service.server.TopologyServer`
        builds the next generation on a clone while readers keep
        querying this one, then swaps.

        Row tuples are shared (they are immutable); only the containers
        are copied.  Safe to call while other threads run queries — it
        only reads the base tables, which queries never mutate."""
        from repro.persist.snapshot import DERIVED_TABLES

        database = Database(self.database.name)
        for dump in self.database.dump_tables(exclude=DERIVED_TABLES):
            database.restore_table(dump)
        return TopologySearchSystem(database, weak_rules=self.weak_rules)

    def adopt_store(
        self,
        store: TopologyStore,
        max_length: int,
        built_pairs: Sequence[Tuple[str, str]],
        include_alltops: bool = True,
        validate: bool = False,
        build_config: Optional[Dict[str, object]] = None,
    ) -> None:
        """Install an externally restored store: materialize its derived
        tables and refresh the engine state, without recomputing AllTops.

        This is the restore-side counterpart of :meth:`build`; the
        persistence layer calls it after rebuilding the store and the
        base database from a snapshot.  ``build_config`` carries the
        original build's recorded parameters (snapshots persist them) so
        a later ``rebuild()`` can reproduce the build — including its
        parallel worker/partition configuration."""
        store.materialize(
            self.database, include_alltops=include_alltops, validate=validate
        )
        # Invalidate rather than refresh: statistics recollect lazily on
        # first use, keeping the snapshot-restore cold start minimal.
        self.stats.invalidate()
        self.store = store
        self.max_length = max_length
        self.built_pairs = [tuple(p) for p in built_pairs]
        self._methods.clear()
        self.build_generation += 1
        self.build_report = None
        self.build_config = dict(build_config) if build_config else None

    # ------------------------------------------------------------------
    # Query orientation helpers
    # ------------------------------------------------------------------
    def orientation(self, query: TopologyQuery) -> bool:
        """True when the query's (entity1, entity2) matches the build
        orientation (entity1 -> E1); False when reversed."""
        pair = (query.entity1, query.entity2)
        if pair in self.built_pairs:
            return True
        if (pair[1], pair[0]) in self.built_pairs:
            return False
        raise TopologyError(
            f"entity pair {pair!r} was not covered by build(); "
            f"built pairs: {self.built_pairs}"
        )

    def store_entity_pair(self, query: TopologyQuery) -> Tuple[str, str]:
        """The entity pair as stored in TopInfo (build orientation)."""
        if self.orientation(query):
            return (query.entity1, query.entity2)
        return (query.entity2, query.entity1)

    def validate_query(self, query: TopologyQuery) -> None:
        if self.max_length is not None and query.max_length != self.max_length:
            raise TopologyError(
                f"store was built for l={self.max_length}, "
                f"query asks l={query.max_length}"
            )
        self.orientation(query)

    # ------------------------------------------------------------------
    # Method dispatch
    # ------------------------------------------------------------------
    def method(self, name: str):
        """Get (and cache) a method instance by its paper name.

        Safe under concurrent callers: method objects are stateless
        (they hold only the system handle), so if two threads race the
        first lookup both build an equivalent instance and ``setdefault``
        keeps exactly one."""
        from repro.core.methods import create_method

        key = name.lower()
        instance = self._methods.get(key)
        if instance is None:
            instance = self._methods.setdefault(key, create_method(key, self))
        return instance

    def search(self, query: TopologyQuery, method: str = "fast-top-k-opt"):
        """Run one query with the chosen method."""
        self.validate_query(query)
        return self.method(method).run(query)

    # ------------------------------------------------------------------
    # Plan layer: caching, EXPLAIN, calibration feedback
    # ------------------------------------------------------------------
    def plan_query(
        self, query: TopologyQuery, method, with_costs: bool = False
    ) -> QueryPlan:
        """The plan ``method`` should execute for ``query``, served from
        the plan cache when its query class was planned before under the
        current build and calibration state."""
        self._check_plan_generation()
        plan_class = self.planner.classify(query, method)
        # One version read serves both the lookup and the store: if the
        # calibrator drifts while we plan, re-reading at put() would tag
        # a stale-factored plan as current and the cache's
        # evict-on-version-mismatch could never catch it.  Tagged with
        # the pre-planning version, such a plan is simply evicted and
        # re-planned on the next lookup.
        version = self.calibrator.version
        cached = self.plan_cache.get(plan_class, version, require_costed=with_costs)
        if cached is not None:
            return cached
        plan = self.planner.plan_for(method, query, with_costs=with_costs)
        self.plan_cache.put(plan_class, version, plan)
        return plan

    def explain(self, query: TopologyQuery, method: str = "fast-top-k-opt") -> QueryPlan:
        """The plan ``search(query, method)`` would execute, with every
        alternative's estimated and calibrated cost filled in — render
        it with :meth:`~repro.core.plan.QueryPlan.display`."""
        self.validate_query(query)
        return self.plan_query(query, self.method(method), with_costs=True)

    def record_plan_observation(self, plan: QueryPlan, work: Dict[str, int]) -> None:
        """Feed one execution's (estimated cost, observed work) pair to
        the calibrator.  Only plans from methods that price their
        strategy on the hot path contribute — a plan that is costed
        merely because an EXPLAIN forced estimates must not (its
        execution regime may not match the estimate's basis)."""
        if not self.calibration_enabled or not plan.feeds_calibration:
            return
        chosen = plan.chosen
        if chosen is None or chosen.estimated_cost is None:
            return
        observed = work_units(work)
        if observed <= 0.0:
            return
        self.calibrator.record(plan.calibration_key, chosen.estimated_cost, observed)

    def invalidate_plans(self) -> None:
        """Drop every cached plan (counters survive)."""
        self.plan_cache.clear()

    def plan_cache_stats(self) -> PlanCacheStats:
        return self.plan_cache.stats()

    def restore_calibration(self, state: Optional[Dict[str, object]]) -> None:
        """Install persisted calibration state (snapshot restore path)
        and drop plans made under the previous factors."""
        self.calibrator = CostCalibrator.from_state(state)
        self.invalidate_plans()

    def _check_plan_generation(self) -> None:
        """Drop cached plans when the store was rebuilt behind them."""
        if self.build_generation != self._plan_generation:
            self.plan_cache.clear()
            self._plan_generation = self.build_generation

    # ------------------------------------------------------------------
    # Convenience
    # ------------------------------------------------------------------
    def topology(self, tid: int) -> Topology:
        return self.require_store().topology(tid)

    def describe_topologies(self, tids: Sequence[int]) -> List[str]:
        return [self.topology(t).display() for t in tids]
