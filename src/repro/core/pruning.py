"""Topology Pruning module (Section 4.2, Figure 10).

The Zipfian frequency distribution (Figure 11) means a handful of
topologies account for most AllTops rows.  Pruning them:

* shrinks the stored table dramatically (Table 1's LeftTops column),
* keeps queries correct because a pruned topology's *path condition* is
  cheap to check online, and
* uses an exception table for the one subtlety: a pair may satisfy a
  pruned topology's path condition while actually being related by a
  more complex topology (entities 78/215 vs T2 in the paper) — such
  pairs go to ExcpTops and are subtracted at query time.

``ExcpTops = {(a, b, T) : CS(T) ⊆ classes(a, b)  and  T ∉ l-Top(a, b)}``

where ``CS(T) ⊆ classes(a, b)`` (every constituent class of T has an
instance path between a and b) is exactly the condition the online SQL
chain joins test — necessary for ``T ∈ l-Top(a, b)``, so the exception
subtraction makes Fast-Top exact for *any* pruned set.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.core.store import TopologyStore
from repro.errors import TopologyError


@dataclass
class PruneReport:
    """What pruning did — the numbers behind Table 1."""

    threshold: int
    pruned_tids: Tuple[int, ...]
    alltops_rows: int
    lefttops_rows: int
    excptops_rows: int

    @property
    def space_ratio(self) -> float:
        """(LeftTops + ExcpTops) / AllTops — the paper's Ratio column."""
        if self.alltops_rows == 0:
            return 1.0
        return (self.lefttops_rows + self.excptops_rows) / self.alltops_rows


def suggest_threshold(
    store: TopologyStore, max_pruned_fraction: float = 0.03
) -> int:
    """Pick a frequency threshold pruning at most ``max_pruned_fraction``
    of topologies (the paper pruned 19 of 805 ≈ 2.4% with its 2M
    threshold, chosen "based on the expected performance gains")."""
    freqs = sorted((t.frequency for t in store.topologies.values()), reverse=True)
    if not freqs:
        return 0
    budget = max(1, int(len(freqs) * max_pruned_fraction))
    # Prune the topologies strictly above the frequency at the budget
    # boundary; ties at the boundary stay unpruned.
    return freqs[budget] if budget < len(freqs) else freqs[-1]


def apply_pruning(store: TopologyStore, threshold: Optional[int] = None) -> PruneReport:
    """Prune topologies with frequency > threshold; build LeftTops and
    ExcpTops.  With ``threshold=None`` a threshold is suggested from the
    frequency distribution."""
    if threshold is None:
        threshold = suggest_threshold(store)
    if threshold < 0:
        raise TopologyError("threshold must be >= 0")

    pruned: Set[int] = {
        tid for tid, t in store.topologies.items() if t.frequency > threshold
    }
    store.pruned_tids = pruned
    store.lefttops_rows = [
        row for row in store.alltops_rows if row[2] not in pruned
    ]

    excp: List[Tuple[object, object, int]] = []
    pruned_class_sets = {
        tid: (
            store.topologies[tid].entity_pair,
            frozenset(store.topologies[tid].class_signatures),
        )
        for tid in pruned
    }
    for pair, classes in store.pair_classes.items():
        pair_tids = store.pair_tids[pair]
        pair_types = store.pair_entity_types[pair]
        for tid, (entity_pair, class_set) in pruned_class_sets.items():
            if (
                entity_pair == pair_types
                and class_set <= classes
                and tid not in pair_tids
            ):
                excp.append((pair[0], pair[1], tid))
    store.excptops_rows = excp

    return PruneReport(
        threshold=threshold,
        pruned_tids=tuple(sorted(pruned)),
        alltops_rows=len(store.alltops_rows),
        lefttops_rows=len(store.lefttops_rows),
        excptops_rows=len(excp),
    )
