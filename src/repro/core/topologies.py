"""Reference implementation of Definitions 1-3 (Section 2.2).

These functions compute path equivalence classes, per-pair topologies,
and full query topology results directly over the data graph.  They are
the semantic ground truth: every query-processing method (Full-Top,
Fast-Top, the top-k variants) must agree with them, which the test suite
checks on both the Figure-3 fixture and random synthetic databases.

Determinism
-----------
Definition 2's enumeration is deterministic end to end, and the offline
phase (:mod:`repro.core.alltops`) — including its partitioned variant in
:mod:`repro.parallel` — relies on that:

* equivalence classes are visited in **sorted signature order**
  (``sorted(classes)`` in :func:`topologies_from_classes`), not dict
  order, so the representative cross-product is the same regardless of
  how the class dict was built;
* within one class, representatives keep their path-enumeration order
  (DFS emission order — see :mod:`repro.graph.paths`);
* ``itertools.product`` walks combinations in a fixed lexicographic
  order over those lists, so the *first-encounter order of canonical
  keys* — which downstream TID interning depends on — is a pure
  function of the input classes;
* the returned dict preserves that first-encounter order (insertion
  ordered), which is why callers may treat ``topologies.items()`` as an
  ordered sequence.

The combination cap
-------------------
``combination_cap`` bounds the number of representative combinations
*inspected* (not the number of distinct topologies returned).  Weak
relationships can reach thousands of paths per pair at l=4 (Section
6.2.3), making the cross-product astronomically large; the cap cuts the
walk after ``combination_cap`` combinations and reports
``truncated=True``.  Because the walk order is deterministic, a capped
enumeration is still reproducible: serial and partitioned builds cap at
the same combination and therefore agree on the (possibly partial)
topology set.
"""

from __future__ import annotations

import itertools
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from repro.core.model import ClassSignature, PairTopologies
from repro.graph.canonical import canonical_form_and_order, canonical_key
from repro.graph.labeled_graph import LabeledGraph, NodeId, Path, union_all
from repro.graph.paths import path_set

# Safety valve for Definition 2's cross-product of representatives; the
# paper hits the same explosion on weak relationships (Section 6.2.3).
DEFAULT_COMBINATION_CAP = 4096


def path_equivalence_classes(
    graph: LabeledGraph,
    a: NodeId,
    b: NodeId,
    max_length: int,
    per_pair_limit: Optional[int] = None,
) -> Dict[ClassSignature, List[Path]]:
    """Definition 1: ``l-PathEC(a, b)`` — the simple paths of length ≤ l
    between a and b, grouped into labeled-isomorphism classes.

    For path-shaped graphs the direction-normalized label signature *is*
    a canonical form, so grouping is a dictionary build rather than
    repeated isomorphism tests.
    """
    grouped: Dict[ClassSignature, List[Path]] = {}
    for path in path_set(graph, a, b, max_length, limit=per_pair_limit):
        grouped.setdefault(path.signature(), []).append(path)
    return grouped


def topologies_from_classes(
    classes: Dict[ClassSignature, List[Path]],
    a: NodeId,
    b: NodeId,
    combination_cap: int = DEFAULT_COMBINATION_CAP,
) -> Tuple[Dict[str, Tuple[int, int]], bool]:
    """Definition 2 core: union one representative per class, over all
    choices, and canonicalize.

    Returns ``(topologies, truncated)`` where ``topologies`` maps the
    canonical key of each distinct union to the canonical indices of the
    endpoints ``(a, b)``, and ``truncated`` reports whether the
    ``combination_cap`` cut enumeration short.

    The returned dict is insertion-ordered by **first encounter** during
    the deterministic combination walk (classes in sorted-signature
    order, representatives in path-enumeration order); TID assignment in
    :class:`~repro.core.store.TopologyStore` replays this order, so it
    must not be re-sorted here.
    """
    if not classes:
        return {}, False
    class_lists = [classes[sig] for sig in sorted(classes)]
    total = 1
    truncated = False
    for lst in class_lists:
        total *= len(lst)
        if total > combination_cap:
            truncated = True
            break

    out: Dict[str, Tuple[int, int]] = {}
    count = 0
    for combo in itertools.product(*class_lists):
        count += 1
        if count > combination_cap:
            truncated = True
            break
        union = union_all([p.as_graph() for p in combo])
        form, order = canonical_form_and_order(union)
        key = canonical_key(union)
        if key not in out:
            position = {nid: i for i, nid in enumerate(order)}
            out[key] = (position[a], position[b])
    return out, truncated


def topologies_for_pair(
    graph: LabeledGraph,
    a: NodeId,
    b: NodeId,
    max_length: int,
    combination_cap: int = DEFAULT_COMBINATION_CAP,
) -> PairTopologies:
    """Definition 2: ``l-Top(a, b)``."""
    classes = path_equivalence_classes(graph, a, b, max_length)
    topologies, truncated = topologies_from_classes(classes, a, b, combination_cap)
    return PairTopologies(
        e1=a,
        e2=b,
        class_signatures=frozenset(classes),
        topology_keys=tuple(sorted(topologies)),
        truncated=truncated,
    )


def topology_result(
    graph: LabeledGraph,
    set_a: Iterable[NodeId],
    set_b: Iterable[NodeId],
    max_length: int,
    combination_cap: int = DEFAULT_COMBINATION_CAP,
) -> Dict[str, Set[Tuple[NodeId, NodeId]]]:
    """Definition 3: the l-topology result of a query whose satisfying
    entity sets are ``set_a`` and ``set_b``.

    Returns each topology's canonical key mapped to the witnessing
    entity pairs (the paper reports topologies first, then the
    instance-level pairs per topology).
    """
    out: Dict[str, Set[Tuple[NodeId, NodeId]]] = {}
    set_b = list(set_b)
    seen_pairs: Set[Tuple[NodeId, NodeId]] = set()
    for a in set_a:
        for b in set_b:
            if a == b or (a, b) in seen_pairs:
                continue
            seen_pairs.add((a, b))
            pair = topologies_for_pair(graph, a, b, max_length, combination_cap)
            for key in pair.topology_keys:
                out.setdefault(key, set()).add((a, b))
    return out
