"""Core topology-search library: the paper's primary contribution.

Public API tour:

>>> from repro.biozon import build_figure3_database
>>> from repro.core import (TopologySearchSystem, TopologyQuery,
...                         KeywordConstraint, AttributeConstraint)
>>> system = TopologySearchSystem(build_figure3_database())
>>> system.build([("Protein", "DNA")], max_length=3)       # offline phase
>>> query = TopologyQuery("Protein", "DNA",
...                       KeywordConstraint("DESC", "enzyme"),
...                       AttributeConstraint("TYPE", "mRNA"))
>>> result = system.search(query, method="fast-top")
>>> len(result.tids)                                        # T1..T4
4
"""

from repro.core.alltops import AllTopsReport, compute_alltops
from repro.core.engine import BuildReport, TopologySearchSystem
from repro.core.instances import InstanceRetriever, TopologyInstance
from repro.core.methods import ALL_METHOD_NAMES, Method, MethodResult, create_method
from repro.core.model import ClassSignature, PairTopologies, Topology
from repro.core.plan import (
    CostCalibrator,
    PlanAlternative,
    PlanCacheStats,
    PlanClass,
    Planner,
    QueryPlan,
    work_units,
)
from repro.core.pruning import PruneReport, apply_pruning, suggest_threshold
from repro.core.query import (
    AttributeConstraint,
    ConjunctionConstraint,
    Constraint,
    KeywordConstraint,
    NoConstraint,
    TopologyQuery,
)
from repro.core.ranking import RANKING_SCHEMES, compute_scores, score_column
from repro.core.store import TopologyStore
from repro.core.topologies import (
    path_equivalence_classes,
    topologies_for_pair,
    topology_result,
)
from repro.core.weak import BIOZON_WEAK_PATTERNS, WeakPathRules

__all__ = [
    "ALL_METHOD_NAMES",
    "AllTopsReport",
    "AttributeConstraint",
    "BIOZON_WEAK_PATTERNS",
    "BuildReport",
    "ClassSignature",
    "ConjunctionConstraint",
    "Constraint",
    "CostCalibrator",
    "InstanceRetriever",
    "KeywordConstraint",
    "Method",
    "MethodResult",
    "NoConstraint",
    "PairTopologies",
    "PlanAlternative",
    "PlanCacheStats",
    "PlanClass",
    "Planner",
    "PruneReport",
    "QueryPlan",
    "RANKING_SCHEMES",
    "Topology",
    "TopologyInstance",
    "TopologyQuery",
    "TopologySearchSystem",
    "TopologyStore",
    "apply_pruning",
    "compute_alltops",
    "compute_scores",
    "create_method",
    "path_equivalence_classes",
    "score_column",
    "suggest_threshold",
    "topologies_for_pair",
    "topology_result",
    "work_units",
]
